//! Algorithm 1 — DAG transformation `τ ⇒ τ'`.
//!
//! The transformation inserts a synchronization node `v_sync` with zero
//! WCET immediately before the offloaded node `v_off` *and* before every
//! node that may execute in parallel with it, so that the parallel sub-DAG
//! `G_par` and `v_off` are guaranteed to begin execution simultaneously.
//! This is what makes it *safe* to discount offloaded work from the
//! self-interference term of the response-time bound (Theorem 1): without
//! the barrier, the host could sit idle while `v_off` runs (Figure 1(c) of
//! the paper), defeating any interference reduction.
//!
//! Faithful to the paper's pseudo-code:
//!
//! ```text
//! 1  compute Pred(v_off), Succ(v_off)
//! 2  V' = V ∪ {v_sync}; E' = E; directPred = ∅
//! 3  for each (v_i, v_off) ∈ E':
//! 4      directPred ∪= {v_i}
//! 5      E' = E' ∪ {(v_i, v_sync)} \ {(v_i, v_off)}
//! 6      for each (v_i, v_j) ∈ E':
//! 7          if v_j ≠ v_sync:
//! 8              E' = E' ∪ {(v_sync, v_j)} \ {(v_i, v_j)}
//! 9  E' ∪= {(v_sync, v_off)}
//! 10 for each v_i ∈ Pred(v_off) \ directPred:
//! 11     for each (v_i, v_j) ∈ E':
//! 12         if v_j ∉ Pred(v_off):
//! 13             E' = E' ∪ {(v_sync, v_j)} \ {(v_i, v_j)}
//! 14 V_par = V \ Pred(v_off) \ Succ(v_off)          (v_off itself excluded)
//! 15 E_par = {(v_i, v_j) ∈ E : v_i, v_j ∈ V_par}
//! ```
//!
//! Because the model forbids transitive edges, every rerouted successor
//! `v_j` is necessarily parallel to `v_off` (see the module tests and
//! [`crate::properties`]); the rerouting therefore never loses a precedence
//! constraint that mattered, it only *adds* the barrier.

use hetrta_dag::algo::CriticalPath;
use hetrta_dag::{BitSet, Dag, HeteroDagTask, NodeId, Ticks};

use crate::AnalysisError;

/// The result of Algorithm 1: the transformed task `τ'` plus the parallel
/// sub-DAG `G_par` and everything the RTA needs about them.
///
/// Node ids of the original DAG remain valid in the transformed DAG
/// (`v_sync` is appended with a fresh id), so callers can correlate nodes
/// across `G` and `G'` directly.
#[derive(Debug, Clone)]
pub struct TransformedTask {
    original: HeteroDagTask,
    transformed: Dag,
    sync: NodeId,
    par_nodes: BitSet,
    g_par: Dag,
    g_par_old_ids: Vec<NodeId>,
    len_transformed: Ticks,
    len_g_par: Ticks,
    vol_g_par: Ticks,
    off_on_critical_path: bool,
}

impl TransformedTask {
    /// The untouched original task `τ`.
    #[must_use]
    pub fn original(&self) -> &HeteroDagTask {
        &self.original
    }

    /// The transformed DAG `G'` (original ids preserved, `v_sync` appended).
    #[must_use]
    pub fn transformed(&self) -> &Dag {
        &self.transformed
    }

    /// The synchronization node `v_sync` (zero WCET) in `G'`.
    #[must_use]
    pub fn sync_node(&self) -> NodeId {
        self.sync
    }

    /// The offloaded node `v_off` (same id in `G` and `G'`).
    #[must_use]
    pub fn offloaded(&self) -> NodeId {
        self.original.offloaded()
    }

    /// `C_off`, the accelerator WCET.
    #[must_use]
    pub fn c_off(&self) -> Ticks {
        self.original.c_off()
    }

    /// The node set `V_par` (ids in the original/transformed id space).
    #[must_use]
    pub fn par_nodes(&self) -> &BitSet {
        &self.par_nodes
    }

    /// The parallel sub-DAG `G_par` as a standalone graph.
    ///
    /// Its node ids are dense; [`TransformedTask::g_par_original_id`] maps
    /// them back.
    #[must_use]
    pub fn g_par(&self) -> &Dag {
        &self.g_par
    }

    /// Maps a node of [`g_par`](TransformedTask::g_par) to its id in the
    /// original DAG.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a node of `G_par`.
    #[must_use]
    pub fn g_par_original_id(&self, v: NodeId) -> NodeId {
        self.g_par_old_ids[v.index()]
    }

    /// `len(G')` — critical-path length of the transformed DAG.
    #[must_use]
    pub fn len_transformed(&self) -> Ticks {
        self.len_transformed
    }

    /// `vol(G')` — equals `vol(G)` because `v_sync` has zero WCET.
    #[must_use]
    pub fn vol_transformed(&self) -> Ticks {
        self.original.volume()
    }

    /// `len(G_par)`.
    #[must_use]
    pub fn len_g_par(&self) -> Ticks {
        self.len_g_par
    }

    /// `vol(G_par)`.
    #[must_use]
    pub fn vol_g_par(&self) -> Ticks {
        self.vol_g_par
    }

    /// `true` if `v_off` lies on a critical path of `G'` — the discriminator
    /// between Scenario 1 and Scenarios 2.x of Theorem 1.
    #[must_use]
    pub fn off_on_critical_path(&self) -> bool {
        self.off_on_critical_path
    }

    /// `true` if the parallel sub-DAG is empty (every node is an ancestor or
    /// descendant of `v_off`); the analysis degenerates to Scenario 2.1 with
    /// `vol(G_par) = 0`.
    #[must_use]
    pub fn is_degenerate(&self) -> bool {
        self.par_nodes.is_empty()
    }

    /// A [`HeteroDagTask`] view of the transformed task `τ'` (same period,
    /// deadline and offloaded node, transformed graph).
    ///
    /// Useful for simulating `τ'` with `hetrta-sim`.
    #[must_use]
    pub fn as_task(&self) -> HeteroDagTask {
        HeteroDagTask::new(
            self.transformed.clone(),
            self.offloaded(),
            self.original.period(),
            self.original.deadline(),
        )
        .expect("transformed task keeps a valid offloaded node and deadline")
    }
}

/// Runs Algorithm 1 on `task`, producing [`TransformedTask`].
///
/// # Errors
///
/// Returns [`AnalysisError::Dag`] if the task's graph is cyclic (cannot
/// happen for graphs built via [`hetrta_dag::DagBuilder`]).
///
/// # Examples
///
/// See the [crate-level example](crate#the-worked-example-of-the-paper-figures-12)
/// and [`crate::analysis::HeterogeneousAnalysis`].
pub fn transform(task: &HeteroDagTask) -> Result<TransformedTask, AnalysisError> {
    // Line 1, closure-free: only Pred(v_off)/Succ(v_off) matter, so two
    // per-node traversals (O(V+E) time, O(V/8) space) replace the
    // all-pairs closure — this is what keeps n = 10⁵–10⁶ tasks viable.
    let (pred, succ) = hetrta_dag::algo::node_reach_sets(task.dag(), task.offloaded())?;
    transform_with_sets(task, pred, succ)
}

/// Runs Algorithm 1 reusing a precomputed reachability closure of the
/// task's *original* graph, so line 1 of the algorithm costs nothing.
///
/// [`transform`] no longer needs the closure (it derives the two per-node
/// sets directly); this entry point remains for callers that already hold
/// a [`Reachability`](hetrta_dag::algo::Reachability) and for parity tests
/// pinning the two paths bitwise-identical.
///
/// # Errors
///
/// Returns [`AnalysisError::Dag`] if the task's graph is cyclic.
///
/// # Panics
///
/// Panics if `reach` was computed for a graph with a different node count.
pub fn transform_with_reachability(
    task: &HeteroDagTask,
    reach: &hetrta_dag::algo::Reachability,
) -> Result<TransformedTask, AnalysisError> {
    assert_eq!(
        reach.node_count(),
        task.dag().node_count(),
        "reachability closure does not match the task graph"
    );
    let v_off = task.offloaded();
    transform_with_sets(
        task,
        reach.ancestors(v_off).clone(),
        reach.descendants(v_off).clone(),
    )
}

/// Algorithm 1's rewiring given line 1's `Pred(v_off)`/`Succ(v_off)` sets.
fn transform_with_sets(
    task: &HeteroDagTask,
    pred: BitSet,
    succ: BitSet,
) -> Result<TransformedTask, AnalysisError> {
    let dag = task.dag();
    let v_off = task.offloaded();
    let n = dag.node_count();

    // The rewiring is computed *symbolically* against the immutable
    // original graph and assembled into the transformed CSR arrays in one
    // pass — the frozen `Dag` is never mutated (edge-by-edge rewiring
    // cost `O(|V| + |E|)` per touched edge on CSR storage). The edit set
    // of Algorithm 1 is fully characterized by `Pred(v_off)`:
    //
    // * every edge out of a *direct* predecessor of `v_off` is removed
    //   (lines 3–8 reroute all of them through `v_sync`);
    // * every edge from a remaining ancestor to a non-ancestor is removed
    //   (lines 10–13; the target is necessarily parallel to `v_off`
    //   because the model has no transitive edges);
    // * `v_sync` gains the rerouted targets (deduplicated, in first-seen
    //   order), then `v_off`, then the line-10–13 targets — appended
    //   edges land at the end of each endpoint's segment, exactly as
    //   incremental insertion ordered them.
    let sync = NodeId::from_index(n);
    let direct_pred: Vec<NodeId> = dag.predecessors(v_off).to_vec();
    let mut is_direct = BitSet::new(n);
    for &vi in &direct_pred {
        is_direct.insert(vi);
    }

    // Successor list of v_sync, in the order the mutation path added the
    // edges; `sync_targets` doubles as the "already added" dedup set.
    let mut sync_targets = BitSet::new(n);
    let mut sync_succ: Vec<NodeId> = Vec::new();
    // Lines 3–8: reroute the remaining successors of direct predecessors.
    for &vi in &direct_pred {
        for &vj in dag.successors(vi) {
            if vj == v_off {
                continue; // the (v_i, v_off) edge is removed, not rerouted
            }
            if sync_targets.insert(vj) {
                sync_succ.push(vj);
            }
        }
    }
    // Line 9: (v_sync, v_off).
    sync_targets.insert(v_off);
    sync_succ.push(v_off);
    // Lines 10–13: reroute ancestor edges that leave Pred(v_off).
    for vi in pred.iter().filter(|v| !is_direct.contains(*v)) {
        for &vj in dag.successors(vi) {
            if pred.contains(vj) {
                continue;
            }
            // The model has no transitive edges, so v_j ∉ Succ(v_off):
            // it is parallel to v_off and must start after the barrier.
            debug_assert!(!succ.contains(vj), "transitive edge slipped through");
            if sync_targets.insert(vj) {
                sync_succ.push(vj);
            }
        }
    }

    // An original edge (u, v) survives the rewiring iff u is not a direct
    // predecessor (those lose every outgoing edge) and, when u is a
    // remaining ancestor, v stays inside Pred(v_off).
    let kept =
        |u: NodeId, v: NodeId| !is_direct.contains(u) && (!pred.contains(u) || pred.contains(v));
    debug_assert!(
        direct_pred.iter().all(|&u| pred.contains(u)),
        "direct predecessors are ancestors"
    );

    // Assemble G' = (V ∪ {v_sync}, E') directly in CSR form, preserving
    // the exact per-segment adjacency order of the mutation path: kept
    // original edges keep their positions, appended edges follow.
    let mut wcets = Vec::with_capacity(n + 1);
    let mut labels = Vec::with_capacity(n + 1);
    let mut succ_off = Vec::with_capacity(n + 2);
    succ_off.push(0u32);
    let mut succs = Vec::with_capacity(dag.edge_count() + sync_succ.len() + direct_pred.len());
    let mut pred_off = Vec::with_capacity(n + 2);
    pred_off.push(0u32);
    let mut preds = Vec::with_capacity(dag.edge_count() + sync_succ.len() + direct_pred.len());
    for u in dag.node_ids() {
        wcets.push(dag.wcet(u));
        labels.push(dag.label(u).to_owned());
        if is_direct.contains(u) {
            // Lines 3–8 leave v_sync as the node's only successor.
            succs.push(sync);
        } else {
            succs.extend(dag.successors(u).iter().copied().filter(|&vj| kept(u, vj)));
        }
        succ_off.push(succs.len() as u32);
        preds.extend(
            dag.predecessors(u)
                .iter()
                .copied()
                .filter(|&vi| kept(vi, u)),
        );
        if sync_targets.contains(u) {
            preds.push(sync);
        }
        pred_off.push(preds.len() as u32);
    }
    // v_sync itself: the rerouted targets out, the direct predecessors in.
    wcets.push(Ticks::ZERO);
    labels.push("v_sync".to_owned());
    succs.extend_from_slice(&sync_succ);
    succ_off.push(succs.len() as u32);
    preds.extend_from_slice(&direct_pred);
    pred_off.push(preds.len() as u32);
    let g2 = Dag::from_csr_parts(wcets, labels, succ_off, succs, pred_off, preds);

    // Line 14: V_par = V \ Pred(v_off) \ Succ(v_off) \ {v_off}.
    let mut par_nodes = BitSet::full(n);
    par_nodes.difference_with(&pred);
    par_nodes.difference_with(&succ);
    par_nodes.remove(v_off);

    // Line 15–17: E_par from the *original* edge set.
    let (g_par, g_par_old_ids) = dag.induced_subgraph(&par_nodes);

    let cp2 = CriticalPath::try_of(&g2)?;
    let cp_par = CriticalPath::try_of(&g_par)?;
    let off_on_critical_path = cp2.on_critical_path(v_off, &g2);

    Ok(TransformedTask {
        original: task.clone(),
        len_transformed: cp2.length(),
        len_g_par: cp_par.length(),
        vol_g_par: g_par.volume(),
        off_on_critical_path,
        transformed: g2,
        sync,
        par_nodes,
        g_par,
        g_par_old_ids,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetrta_dag::algo::{is_acyclic, Reachability};
    use hetrta_dag::DagBuilder;

    /// The paper's Figure 1(a) with WCETs reconstructed from the stated
    /// aggregates (see DESIGN.md): C1=1, C2=4, C3=6, C4=2, C5=1, C_off=4.
    fn figure1_task() -> (HeteroDagTask, [NodeId; 6]) {
        let mut b = DagBuilder::new();
        let v1 = b.node("v1", Ticks::new(1));
        let v2 = b.node("v2", Ticks::new(4));
        let v3 = b.node("v3", Ticks::new(6));
        let v4 = b.node("v4", Ticks::new(2));
        let v5 = b.node("v5", Ticks::new(1));
        let voff = b.node("v_off", Ticks::new(4));
        b.edges([
            (v1, v2),
            (v1, v3),
            (v1, v4),
            (v4, voff),
            (v2, v5),
            (v3, v5),
            (voff, v5),
        ])
        .unwrap();
        let task =
            HeteroDagTask::new(b.build().unwrap(), voff, Ticks::new(50), Ticks::new(50)).unwrap();
        (task, [v1, v2, v3, v4, v5, voff])
    }

    /// The paper's Figure 3(a): a larger example exercising both loops of
    /// Algorithm 1 (direct and indirect predecessors with parallel
    /// successors).
    ///
    /// Structure (all WCET 1 unless noted):
    /// v1 → v2, v1 → v3 ;  v3 → v7, v3 → v8 ; v8 → v_off, v8 → v11 ;
    /// v9 → v_off ; v1 → v9 (so v9 is a second direct predecessor) ;
    /// v2 → v10 ; v7 → v10 ; v_off → v12 ; v11 → v12 ; v10 → v12.
    fn figure3_task() -> (
        HeteroDagTask,
        std::collections::HashMap<&'static str, NodeId>,
    ) {
        let mut b = DagBuilder::new();
        let mut m = std::collections::HashMap::new();
        for name in [
            "v1", "v2", "v3", "v7", "v8", "v9", "v_off", "v10", "v11", "v12",
        ] {
            m.insert(name, b.node(name, Ticks::new(1)));
        }
        b.edges([
            (m["v1"], m["v2"]),
            (m["v1"], m["v3"]),
            (m["v1"], m["v9"]),
            (m["v3"], m["v7"]),
            (m["v3"], m["v8"]),
            (m["v8"], m["v_off"]),
            (m["v8"], m["v11"]),
            (m["v9"], m["v_off"]),
            (m["v2"], m["v10"]),
            (m["v7"], m["v10"]),
            (m["v_off"], m["v12"]),
            (m["v11"], m["v12"]),
            (m["v10"], m["v12"]),
        ])
        .unwrap();
        let task = HeteroDagTask::new(
            b.build().unwrap(),
            m["v_off"],
            Ticks::new(99),
            Ticks::new(99),
        )
        .unwrap();
        (task, m)
    }

    #[test]
    fn figure1_transformation_structure() {
        let (task, [v1, v2, v3, v4, v5, voff]) = figure1_task();
        let t = transform(&task).unwrap();
        let g2 = t.transformed();
        let sync = t.sync_node();

        // v_sync properties
        assert_eq!(g2.wcet(sync), Ticks::ZERO);
        assert_eq!(g2.node_count(), 7);

        // Edges: v1→v4 kept; v4→v_sync; v_sync→{v2, v3, v_off}; v2,v3,v_off→v5.
        assert!(g2.has_edge(v1, v4));
        assert!(g2.has_edge(v4, sync));
        assert!(g2.has_edge(sync, v2));
        assert!(g2.has_edge(sync, v3));
        assert!(g2.has_edge(sync, voff));
        assert!(g2.has_edge(v2, v5));
        assert!(g2.has_edge(v3, v5));
        assert!(g2.has_edge(voff, v5));
        // removed edges
        assert!(!g2.has_edge(v4, voff));
        assert!(!g2.has_edge(v1, v2));
        assert!(!g2.has_edge(v1, v3));

        // len(G') = 10 (paper §3.3), vol unchanged.
        assert_eq!(t.len_transformed(), Ticks::new(10));
        assert_eq!(t.vol_transformed(), Ticks::new(18));

        // G_par = {v2, v3}: len 6, vol 10.
        assert_eq!(t.par_nodes().len(), 2);
        assert!(t.par_nodes().contains(v2) && t.par_nodes().contains(v3));
        assert_eq!(t.len_g_par(), Ticks::new(6));
        assert_eq!(t.vol_g_par(), Ticks::new(10));

        // v_off is NOT on the critical path of G' (8 < 10): Scenario 1.
        assert!(!t.off_on_critical_path());
        assert!(!t.is_degenerate());
    }

    #[test]
    fn figure3_transformation_edges() {
        let (task, m) = figure3_task();
        let t = transform(&task).unwrap();
        let g2 = t.transformed();
        let sync = t.sync_node();

        // Direct predecessors v8, v9: green edges to v_sync, removed to v_off.
        assert!(g2.has_edge(m["v8"], sync));
        assert!(g2.has_edge(m["v9"], sync));
        assert!(!g2.has_edge(m["v8"], m["v_off"]));
        assert!(!g2.has_edge(m["v9"], m["v_off"]));
        // Black edge: v8's other successor v11 now hangs from v_sync.
        assert!(!g2.has_edge(m["v8"], m["v11"]));
        assert!(g2.has_edge(sync, m["v11"]));
        // Yellow edge.
        assert!(g2.has_edge(sync, m["v_off"]));
        // Pink edges: (v1,v2) and (v3,v7) rerouted through v_sync.
        assert!(!g2.has_edge(m["v1"], m["v2"]));
        assert!(!g2.has_edge(m["v3"], m["v7"]));
        assert!(g2.has_edge(sync, m["v2"]));
        assert!(g2.has_edge(sync, m["v7"]));
        // Ancestor-to-ancestor edges are untouched: v1→v3, v3→v8, v1→v9.
        assert!(g2.has_edge(m["v1"], m["v3"]));
        assert!(g2.has_edge(m["v3"], m["v8"]));
        assert!(g2.has_edge(m["v1"], m["v9"]));
        // G_par = {v2, v7, v10, v11}.
        let par: Vec<&str> = ["v2", "v7", "v10", "v11"].to_vec();
        assert_eq!(t.par_nodes().len(), 4);
        for p in par {
            assert!(t.par_nodes().contains(m[p]), "{p} should be parallel");
        }
        // E_par keeps internal edges (v2,v10), (v7,v10) but not (v11,v12).
        assert_eq!(t.g_par().edge_count(), 2);
    }

    #[test]
    fn closure_free_transform_matches_reachability_path_bitwise() {
        for (task, _) in [
            {
                let (t, v) = figure1_task();
                (t, v.to_vec())
            },
            {
                let (t, m) = figure3_task();
                (t, m.values().copied().collect())
            },
        ] {
            let reach = Reachability::of(task.dag()).unwrap();
            let a = transform(&task).unwrap();
            let b = transform_with_reachability(&task, &reach).unwrap();
            assert_eq!(a.len_transformed(), b.len_transformed());
            assert_eq!(a.len_g_par(), b.len_g_par());
            assert_eq!(a.vol_g_par(), b.vol_g_par());
            assert_eq!(a.sync_node(), b.sync_node());
            assert_eq!(a.par_nodes(), b.par_nodes());
            assert_eq!(a.off_on_critical_path(), b.off_on_critical_path());
            let (ga, gb) = (a.transformed(), b.transformed());
            assert_eq!(ga.node_count(), gb.node_count());
            for v in ga.node_ids() {
                assert_eq!(ga.label(v), gb.label(v));
                assert_eq!(ga.wcet(v), gb.wcet(v));
                assert_eq!(ga.successors(v), gb.successors(v), "succ segment of {v}");
                assert_eq!(
                    ga.predecessors(v),
                    gb.predecessors(v),
                    "pred segment of {v}"
                );
            }
        }
    }

    #[test]
    fn transformed_graph_is_acyclic_with_single_terminals() {
        let (task, _) = figure1_task();
        let t = transform(&task).unwrap();
        assert!(is_acyclic(t.transformed()));
        assert_eq!(t.transformed().sources().len(), 1);
        assert_eq!(t.transformed().sinks().len(), 1);
        let (task3, _) = figure3_task();
        let t3 = transform(&task3).unwrap();
        assert!(is_acyclic(t3.transformed()));
        assert_eq!(t3.transformed().sources().len(), 1);
        assert_eq!(t3.transformed().sinks().len(), 1);
    }

    #[test]
    fn sync_dominates_off_and_gpar() {
        let (task, _) = figure3_task();
        let t = transform(&task).unwrap();
        let g2 = t.transformed();
        let reach = Reachability::of(g2).unwrap();
        // every parallel node and v_off are descendants of v_sync
        assert!(reach.descendants(t.sync_node()).contains(t.offloaded()));
        for v in t.par_nodes().iter() {
            assert!(
                reach.descendants(t.sync_node()).contains(v),
                "{v} must start after the barrier"
            );
        }
    }

    #[test]
    fn volume_preserved() {
        let (task, _) = figure1_task();
        let t = transform(&task).unwrap();
        assert_eq!(t.transformed().volume(), task.volume());
    }

    #[test]
    fn gpar_mapping_roundtrip() {
        let (task, m) = figure3_task();
        let t = transform(&task).unwrap();
        for v in t.g_par().node_ids() {
            let orig = t.g_par_original_id(v);
            assert!(t.par_nodes().contains(orig));
            assert_eq!(t.g_par().wcet(v), task.dag().wcet(orig));
        }
        let _ = m;
    }

    #[test]
    fn chain_task_has_empty_gpar() {
        // v_off in series with everything: G_par must be empty (degenerate).
        let mut b = DagBuilder::new();
        let a = b.node("a", Ticks::new(2));
        let k = b.node("k", Ticks::new(5));
        let z = b.node("z", Ticks::new(2));
        b.edges([(a, k), (k, z)]).unwrap();
        let task =
            HeteroDagTask::new(b.build().unwrap(), k, Ticks::new(20), Ticks::new(20)).unwrap();
        let t = transform(&task).unwrap();
        assert!(t.is_degenerate());
        assert_eq!(t.vol_g_par(), Ticks::ZERO);
        assert_eq!(t.len_g_par(), Ticks::ZERO);
        // Chain plus barrier: a → v_sync → k → z, len unchanged.
        assert_eq!(t.len_transformed(), Ticks::new(9));
        assert!(t.off_on_critical_path());
    }

    #[test]
    fn as_task_preserves_timing_and_offload() {
        let (task, _) = figure1_task();
        let t = transform(&task).unwrap();
        let t2 = t.as_task();
        assert_eq!(t2.period(), task.period());
        assert_eq!(t2.deadline(), task.deadline());
        assert_eq!(t2.offloaded(), task.offloaded());
        assert_eq!(t2.c_off(), task.c_off());
        assert_eq!(t2.dag().node_count(), task.dag().node_count() + 1);
    }

    #[test]
    fn shared_parallel_successor_of_two_direct_preds() {
        // Both p1 and p2 are direct preds of v_off and both point at the
        // same parallel node w: the rerouted edge (v_sync, w) must be added
        // only once.
        let mut b = DagBuilder::new();
        let src = b.node("src", Ticks::ONE);
        let p1 = b.node("p1", Ticks::ONE);
        let p2 = b.node("p2", Ticks::ONE);
        let w = b.node("w", Ticks::ONE);
        let voff = b.node("v_off", Ticks::new(3));
        let sink = b.node("sink", Ticks::ONE);
        b.edges([
            (src, p1),
            (src, p2),
            (p1, voff),
            (p2, voff),
            (p1, w),
            (p2, w),
            (voff, sink),
            (w, sink),
        ])
        .unwrap();
        let task =
            HeteroDagTask::new(b.build().unwrap(), voff, Ticks::new(30), Ticks::new(30)).unwrap();
        let t = transform(&task).unwrap();
        let g2 = t.transformed();
        let sync = t.sync_node();
        assert!(g2.has_edge(sync, w));
        assert!(g2.has_edge(p1, sync) && g2.has_edge(p2, sync));
        assert!(is_acyclic(g2));
        // w appears exactly once among sync's successors
        assert_eq!(g2.successors(sync).iter().filter(|&&v| v == w).count(), 1);
    }
}
