//! Soundness of the multi-offload extension against the multi-device
//! simulator: for random tasks with several offloaded nodes, every
//! work-conserving schedule stays below the `r_het_multi` bound.

use hetrta_core::multi::{r_het_multi, typed_graham_bound};
use hetrta_dag::{Dag, NodeId};
use hetrta_gen::{generate_nfj, NfjParams};
use hetrta_sim::policy::{BreadthFirst, CriticalPathFirst, DepthFirst, Policy, RandomTieBreak};
use hetrta_sim::trace::validate_schedule_multi;
use hetrta_sim::{simulate_multi, Platform};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a DAG and picks `k` distinct interior nodes as offloaded set.
fn random_multi(seed: u64, k: usize) -> (Dag, Vec<NodeId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let dag = generate_nfj(&NfjParams::small_tasks().with_node_range(6, 40), &mut rng)
        .expect("generation succeeds");
    let source = dag.source();
    let sink = dag.sink();
    let mut candidates: Vec<NodeId> = dag
        .node_ids()
        .filter(|&v| Some(v) != source && Some(v) != sink && !dag.wcet(v).is_zero())
        .collect();
    let mut offloaded = Vec::new();
    for _ in 0..k.min(candidates.len()) {
        let i = rng.gen_range(0..candidates.len());
        offloaded.push(candidates.swap_remove(i));
    }
    (dag, offloaded)
}

fn policies(seed: u64) -> Vec<Box<dyn Policy>> {
    vec![
        Box::new(BreadthFirst::new()),
        Box::new(DepthFirst::new()),
        Box::new(CriticalPathFirst::new()),
        Box::new(RandomTieBreak::new(seed)),
        Box::new(RandomTieBreak::new(seed ^ 0xdead_beef)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn multi_bound_dominates_all_schedules(
        seed in 0u64..4000, k in 1usize..4, m in 1usize..9, d in 1usize..4
    ) {
        let (dag, offloaded) = random_multi(seed, k);
        prop_assume!(!offloaded.is_empty());
        let bound = r_het_multi(&dag, &offloaded, m as u64, d as u64).unwrap();
        let platform = Platform::new(m, d);
        for mut p in policies(seed) {
            // The typed bound certifies the ORIGINAL program…
            let run = simulate_multi(&dag, &offloaded, platform, p.as_mut()).unwrap();
            prop_assert!(
                run.makespan().to_rational() <= bound.typed_bound(),
                "{}: makespan {} > typed bound {} (k={}, m={}, d={})",
                p.name(), run.makespan(), bound.typed_bound(), offloaded.len(), m, d
            );
            validate_schedule_multi(&dag, &offloaded, &run).unwrap();
            // …and the candidate bound certifies its TRANSFORMED program.
            if let Some(plan) = bound.candidate() {
                let run_t =
                    simulate_multi(&plan.transformed, &offloaded, platform, p.as_mut()).unwrap();
                prop_assert!(
                    run_t.makespan().to_rational() <= plan.bound,
                    "{}: transformed makespan {} > candidate bound {} (node {}, k={}, m={}, d={})",
                    p.name(), run_t.makespan(), plan.bound, plan.node, offloaded.len(), m, d
                );
                validate_schedule_multi(&plan.transformed, &offloaded, &run_t).unwrap();
            }
        }
    }

    #[test]
    fn typed_bound_alone_is_sound_for_shared_device(
        seed in 0u64..4000, k in 2usize..5, m in 1usize..9
    ) {
        // One device, several offloaded nodes: only the typed bound applies.
        let (dag, offloaded) = random_multi(seed, k);
        prop_assume!(offloaded.len() >= 2);
        let typed = typed_graham_bound(&dag, &offloaded, m as u64, 1).unwrap();
        let platform = Platform::with_accelerator(m);
        for mut p in policies(seed) {
            let run = simulate_multi(&dag, &offloaded, platform, p.as_mut()).unwrap();
            prop_assert!(
                run.makespan().to_rational() <= typed,
                "{}: makespan {} > typed bound {}", p.name(), run.makespan(), typed
            );
        }
    }

    #[test]
    fn more_devices_never_raise_the_bound(seed in 0u64..2000, k in 1usize..4, m in 1usize..9) {
        let (dag, offloaded) = random_multi(seed, k);
        prop_assume!(!offloaded.is_empty());
        let mut prev = r_het_multi(&dag, &offloaded, m as u64, 1).unwrap().value();
        for d in 2u64..=4 {
            let cur = r_het_multi(&dag, &offloaded, m as u64, d).unwrap().value();
            prop_assert!(cur <= prev, "bound rose with devices: {prev} -> {cur}");
            prev = cur;
        }
    }

    #[test]
    fn single_offload_multi_matches_or_beats_paper_route(seed in 0u64..2000, m in 1usize..9) {
        // With |O| = 1 and one device, r_het_multi is min(Theorem 1, typed):
        // never worse than Theorem 1 alone.
        let (dag, offloaded) = random_multi(seed, 1);
        prop_assume!(offloaded.len() == 1);
        let vol = dag.volume();
        let task = hetrta_dag::HeteroDagTask::new(dag.clone(), offloaded[0], vol, vol).unwrap();
        let theorem1 = hetrta_core::r_het(&hetrta_core::transform(&task).unwrap(), m as u64)
            .unwrap()
            .tight_value();
        let multi = r_het_multi(&dag, &offloaded, m as u64, 1).unwrap().value();
        prop_assert!(multi <= theorem1);
    }
}
