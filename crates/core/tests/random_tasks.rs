//! Property tests of transformation + RTA over randomly generated tasks.

use hetrta_core::properties::check_transform_invariants;
use hetrta_core::{r_het, r_hom_dag, transform, HeterogeneousAnalysis, Scenario};
use hetrta_dag::{HeteroDagTask, Rational};
use hetrta_gen::offload::{make_hetero_task, CoffSizing, OffloadSelection};
use hetrta_gen::{generate_nfj, NfjParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_task(seed: u64, fraction: f64) -> HeteroDagTask {
    let mut rng = StdRng::seed_from_u64(seed);
    let dag = generate_nfj(&NfjParams::small_tasks(), &mut rng).expect("generation succeeds");
    if dag.node_count() < 3 {
        // guarantee an interior node exists by regenerating deterministically
        return random_task(seed.wrapping_add(0x9e37_79b9), fraction);
    }
    make_hetero_task(
        dag,
        OffloadSelection::AnyInterior,
        CoffSizing::VolumeFraction(fraction),
        &mut rng,
    )
    .expect("offload assignment succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transform_invariants_hold(seed in 0u64..5000, pct in 1u32..70) {
        let task = random_task(seed, f64::from(pct) / 100.0);
        let t = transform(&task).unwrap();
        check_transform_invariants(&task, &t).unwrap();
    }

    #[test]
    fn r_het_vs_r_hom_of_transformed(seed in 0u64..5000, pct in 1u32..70, m in 1u64..17) {
        let task = random_task(seed, f64::from(pct) / 100.0);
        let t = transform(&task).unwrap();
        let bound = r_het(&t, m).unwrap();
        let hom_t = r_hom_dag(t.transformed(), m).unwrap();
        prop_assert_eq!(bound.r_hom_transformed(), hom_t);
        // Scenarios 1 and 2.1 are provably no worse than Eq. 1 on G'
        // (they discount a non-negative term). Scenario 2.2 may exceed it
        // on non-generic structures (see the tightness note in rta.rs) but
        // the capped value never does.
        match bound.scenario() {
            Scenario::OffNotOnCriticalPath | Scenario::OffOnCriticalPathDominant => {
                prop_assert!(bound.value() <= hom_t, "R_het {} > R_hom(τ') {}", bound.value(), hom_t);
            }
            Scenario::OffOnCriticalPathDominated => {
                prop_assert!(bound.tight_value() <= hom_t);
            }
        }
    }

    #[test]
    fn bounds_dominate_critical_path_and_volume_over_m(seed in 0u64..5000, pct in 1u32..70, m in 1u64..17) {
        // Any sound bound is at least len(G') and at least the host
        // workload divided by m.
        let task = random_task(seed, f64::from(pct) / 100.0);
        let t = transform(&task).unwrap();
        let het = r_het(&t, m).unwrap().value();
        prop_assert!(het >= t.len_transformed().to_rational() - task.c_off().to_rational());
        let host_share = Rational::new(task.host_volume().get() as i128, m as i128);
        prop_assert!(het >= host_share);
    }

    #[test]
    fn scenario_matches_definitions(seed in 0u64..5000, pct in 1u32..70, m in 1u64..17) {
        let task = random_task(seed, f64::from(pct) / 100.0);
        let t = transform(&task).unwrap();
        let bound = r_het(&t, m).unwrap();
        let r_gpar = r_hom_dag(t.g_par(), m).unwrap();
        match bound.scenario() {
            Scenario::OffNotOnCriticalPath => {
                prop_assert!(!t.off_on_critical_path());
                // paper: scenario 1 implies len(G_par) > C_off
                prop_assert!(t.len_g_par() >= task.c_off());
            }
            Scenario::OffOnCriticalPathDominant => {
                prop_assert!(t.off_on_critical_path());
                prop_assert!(task.c_off().to_rational() >= r_gpar);
            }
            Scenario::OffOnCriticalPathDominated => {
                prop_assert!(t.off_on_critical_path());
                prop_assert!(task.c_off().to_rational() < r_gpar);
            }
        }
    }

    #[test]
    fn m_one_het_bound_equals_serialized_host_plus_overlap(seed in 0u64..2000, pct in 5u32..60) {
        // On a single host core the bound never exceeds host work + C_off
        // (everything serialized) and never drops below host work.
        let task = random_task(seed, f64::from(pct) / 100.0);
        let t = transform(&task).unwrap();
        let het = r_het(&t, 1).unwrap().value();
        prop_assert!(het <= task.volume().to_rational());
        prop_assert!(het >= task.host_volume().to_rational());
    }

    #[test]
    fn monotone_in_cores(seed in 0u64..2000, pct in 1u32..70) {
        let task = random_task(seed, f64::from(pct) / 100.0);
        let t = transform(&task).unwrap();
        let mut prev = r_het(&t, 1).unwrap().value();
        for m in [2u64, 4, 8, 16, 64] {
            let cur = r_het(&t, m).unwrap().value();
            prop_assert!(cur <= prev, "bound increased from m: {prev} -> {cur}");
            prev = cur;
        }
    }

    #[test]
    fn report_consistent_with_parts(seed in 0u64..2000, pct in 1u32..70, m in 1u64..17) {
        let task = random_task(seed, f64::from(pct) / 100.0);
        let report = HeterogeneousAnalysis::run(&task, m).unwrap();
        let t = transform(&task).unwrap();
        prop_assert_eq!(report.r_het(), r_het(&t, m).unwrap().value());
        prop_assert_eq!(report.r_hom_original(), r_hom_dag(task.dag(), m).unwrap());
        prop_assert_eq!(report.best_bound(), report.r_het().min(report.r_hom_original()));
    }

    #[test]
    fn large_coff_makes_het_win(seed in 0u64..500) {
        // For a 60% offload fraction the heterogeneous analysis should
        // essentially always beat the homogeneous baseline (paper Fig. 9:
        // crossover is below ~5% for every m).
        let task = random_task(seed, 0.6);
        let report = HeterogeneousAnalysis::run(&task, 4).unwrap();
        prop_assert!(
            report.r_het() <= report.r_hom_original(),
            "R_het {} > R_hom {} at 60% offload",
            report.r_het(),
            report.r_hom_original()
        );
    }
}
