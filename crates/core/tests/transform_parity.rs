//! Algorithm-1 rewiring parity: the mutation-free CSR assembly in
//! `hetrta_core::transform` must produce a transformed graph **bitwise
//! identical** to the legacy path (clone the task graph, then
//! `remove_edge`/`add_edge` per rerouted edge) — same `v_sync` id, same
//! adjacency order in every successor and predecessor segment, same
//! derived quantities. The legacy reference below is a verbatim copy of
//! the pre-refactor implementation, running on the `legacy-mutation`
//! feature of `hetrta-dag`.

use hetrta_core::transform;
use hetrta_dag::algo::Reachability;
use hetrta_dag::{BitSet, Dag, HeteroDagTask, NodeId, Ticks};
use hetrta_gen::offload::{make_hetero_task, CoffSizing, OffloadSelection};
use hetrta_gen::{generate_nfj, NfjParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The pre-refactor Algorithm 1: mutate a clone of the task graph.
/// Returns `(G', v_sync, V_par)`.
fn legacy_transform(task: &HeteroDagTask) -> (Dag, NodeId, BitSet) {
    let reach = Reachability::of(task.dag()).expect("acyclic");
    let dag = task.dag();
    let v_off = task.offloaded();
    let n = dag.node_count();

    let pred = reach.ancestors(v_off).clone();
    let succ = reach.descendants(v_off).clone();

    let mut g2 = dag.clone();
    let sync = g2.add_labeled_node("v_sync", Ticks::ZERO);

    let direct_pred: Vec<NodeId> = g2.predecessors(v_off).to_vec();
    for &vi in &direct_pred {
        g2.remove_edge(vi, v_off).expect("direct pred edge");
        if !g2.has_edge(vi, sync) {
            g2.add_edge(vi, sync).expect("fresh sync edge");
        }
        for vj in g2.successors(vi).to_vec() {
            if vj == sync {
                continue;
            }
            g2.remove_edge(vi, vj).expect("snapshot edge");
            if !g2.has_edge(sync, vj) {
                g2.add_edge(sync, vj).expect("rerouted edge");
            }
        }
    }

    g2.add_edge(sync, v_off).expect("barrier edge");

    for vi in pred.iter().filter(|v| !direct_pred.contains(v)) {
        for vj in g2.successors(vi).to_vec() {
            if vj == sync || pred.contains(vj) {
                continue;
            }
            assert!(!succ.contains(vj), "transitive edge slipped through");
            g2.remove_edge(vi, vj).expect("snapshot edge");
            if !g2.has_edge(sync, vj) {
                g2.add_edge(sync, vj).expect("rerouted edge");
            }
        }
    }

    let mut par_nodes = BitSet::full(n);
    par_nodes.difference_with(&pred);
    par_nodes.difference_with(&succ);
    par_nodes.remove(v_off);

    (g2, sync, par_nodes)
}

fn assert_same_dag(new: &Dag, legacy: &Dag) {
    assert_eq!(new.node_count(), legacy.node_count(), "node count");
    assert_eq!(new.edge_count(), legacy.edge_count(), "edge count");
    for v in new.node_ids() {
        assert_eq!(new.wcet(v), legacy.wcet(v), "wcet of {v}");
        assert_eq!(new.label(v), legacy.label(v), "label of {v}");
        assert_eq!(
            new.successors(v),
            legacy.successors(v),
            "successor segment of {v}"
        );
        assert_eq!(
            new.predecessors(v),
            legacy.predecessors(v),
            "predecessor segment of {v}"
        );
    }
}

fn random_task(seed: u64, fraction: f64) -> HeteroDagTask {
    let mut rng = StdRng::seed_from_u64(seed);
    let dag = generate_nfj(&NfjParams::small_tasks(), &mut rng).expect("generation succeeds");
    if dag.node_count() < 3 {
        return random_task(seed.wrapping_add(0x9e37_79b9), fraction);
    }
    make_hetero_task(
        dag,
        OffloadSelection::AnyInterior,
        CoffSizing::VolumeFraction(fraction),
        &mut rng,
    )
    .expect("offload assignment succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn transform_matches_legacy_mutation_path(seed in 0u64..100_000, pct in 1u32..70) {
        let task = random_task(seed, f64::from(pct) / 100.0);
        let t = transform(&task).expect("transformable");
        let (legacy_g2, legacy_sync, legacy_par) = legacy_transform(&task);

        prop_assert_eq!(t.sync_node(), legacy_sync);
        assert_same_dag(t.transformed(), &legacy_g2);
        prop_assert_eq!(t.par_nodes().iter().collect::<Vec<_>>(),
                        legacy_par.iter().collect::<Vec<_>>());
        // Every offloaded node in G' hangs directly off the barrier.
        prop_assert!(t.transformed().has_edge(legacy_sync, task.offloaded()));
    }
}

/// Offloading *every* interior node of a fixed graph covers the edit-set
/// corners the uniform sampler rarely hits (off at a fork, at a join,
/// with shared parallel successors).
#[test]
fn transform_matches_legacy_for_every_offload_choice() {
    for seed in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let dag = generate_nfj(&NfjParams::small_tasks(), &mut rng).expect("generates");
        let n = dag.node_count();
        for v in 0..n {
            let v = NodeId::from_index(v);
            if Some(v) == dag.source() || Some(v) == dag.sink() {
                continue;
            }
            let task = HeteroDagTask::new(dag.clone(), v, Ticks::new(10_000), Ticks::new(10_000))
                .expect("valid task");
            let t = transform(&task).expect("transformable");
            let (legacy_g2, legacy_sync, _) = legacy_transform(&task);
            assert_eq!(t.sync_node(), legacy_sync);
            assert_same_dag(t.transformed(), &legacy_g2);
        }
    }
}
