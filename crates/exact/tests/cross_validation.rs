//! Cross-validation of the exact solver against the simulator and bounds.
//!
//! Each property has two drivers over the same check function: a quick
//! default run (a handful of cases, so `cargo test` stays fast) and the
//! full-depth sweep behind `#[ignore]` — run it with
//! `cargo test -p hetrta-exact -- --ignored`.

use hetrta_core::{r_het, r_hom_dag, transform};
use hetrta_dag::HeteroDagTask;
use hetrta_exact::bounds::root_bound;
use hetrta_exact::{list_schedule_cp_first, solve, SolverConfig, MAX_NODES_SUPPORTED};
use hetrta_gen::offload::{make_hetero_task, CoffSizing, OffloadSelection};
use hetrta_gen::{generate_nfj, NfjParams};
use hetrta_sim::policy::{BreadthFirst, DepthFirst, RandomTieBreak};
use hetrta_sim::{simulate, Platform};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_task(seed: u64, fraction: f64) -> HeteroDagTask {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = NfjParams::small_tasks().with_node_range(3, 24);
    let dag = generate_nfj(&params, &mut rng).expect("generation succeeds");
    if dag.node_count() < 3 {
        return small_task(seed.wrapping_add(0x9e37_79b9), fraction);
    }
    make_hetero_task(
        dag,
        OffloadSelection::AnyInterior,
        CoffSizing::VolumeFraction(fraction),
        &mut rng,
    )
    .expect("offload assignment succeeds")
}

/// `exact ≤` every simulated schedule (any policy).
fn check_exact_below_every_simulated_schedule(seed: u64, pct: u32, m: u64) {
    let task = small_task(seed, f64::from(pct) / 100.0);
    let sol = solve(
        task.dag(),
        Some(task.offloaded()),
        m,
        &SolverConfig::default(),
    )
    .unwrap();
    if !sol.is_optimal() {
        return; // unproven instances carry no guarantee to check
    }
    for policy in 0..3u8 {
        let r = match policy {
            0 => simulate(
                task.dag(),
                Some(task.offloaded()),
                Platform::with_accelerator(m as usize),
                &mut BreadthFirst::new(),
            ),
            1 => simulate(
                task.dag(),
                Some(task.offloaded()),
                Platform::with_accelerator(m as usize),
                &mut DepthFirst::new(),
            ),
            _ => simulate(
                task.dag(),
                Some(task.offloaded()),
                Platform::with_accelerator(m as usize),
                &mut RandomTieBreak::new(seed),
            ),
        }
        .unwrap();
        assert!(
            sol.makespan() <= r.makespan(),
            "exact {} > simulated {}",
            sol.makespan(),
            r.makespan()
        );
    }
}

/// The solution lies within the root lower bound and the list-schedule
/// upper bound.
fn check_exact_within_root_bounds(seed: u64, pct: u32, m: u64) {
    let task = small_task(seed, f64::from(pct) / 100.0);
    let sol = solve(
        task.dag(),
        Some(task.offloaded()),
        m,
        &SolverConfig::default(),
    )
    .unwrap();
    let lb = root_bound(task.dag(), Some(task.offloaded()), m);
    assert!(sol.makespan() >= lb);
    let (ub, _) = list_schedule_cp_first(task.dag(), Some(task.offloaded()), m).unwrap();
    assert!(sol.makespan() <= ub);
}

/// The chain `exact ≤ R_het(τ')` for the transformed task and
/// `exact ≤ R_hom(τ)` for the original — Figure 7's premise.
fn check_analytic_bounds_dominate_exact_makespan(seed: u64, pct: u32, m: u64) {
    let task = small_task(seed, f64::from(pct) / 100.0);
    let t = transform(&task).unwrap();

    let exact_orig = solve(
        task.dag(),
        Some(task.offloaded()),
        m,
        &SolverConfig::default(),
    )
    .unwrap();
    if !exact_orig.is_optimal() {
        return;
    }
    assert!(exact_orig.makespan().to_rational() <= r_hom_dag(task.dag(), m).unwrap());

    let exact_trans = solve(
        t.transformed(),
        Some(task.offloaded()),
        m,
        &SolverConfig::default(),
    )
    .unwrap();
    if !exact_trans.is_optimal() {
        return;
    }
    assert!(exact_trans.makespan().to_rational() <= r_het(&t, m).unwrap().value());

    // The barrier never lets the transformed task finish earlier than
    // the untransformed optimum (it only removes schedules).
    assert!(exact_orig.makespan() <= exact_trans.makespan());
}

/// With the accelerator, the optimum can only improve (or tie) over the
/// all-host optimum on the same core count.
fn check_homogeneous_exact_at_most_heterogeneous(seed: u64, pct: u32) {
    let task = small_task(seed, f64::from(pct) / 100.0);
    let m = 2;
    let het = solve(
        task.dag(),
        Some(task.offloaded()),
        m,
        &SolverConfig::default(),
    )
    .unwrap();
    let hom = solve(task.dag(), None, m, &SolverConfig::default()).unwrap();
    if !(het.is_optimal() && hom.is_optimal()) {
        return;
    }
    assert!(het.makespan() <= hom.makespan());
}

// Quick default drivers: a handful of cases keep `cargo test` fast while
// still exercising every property end to end.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn exact_below_every_simulated_schedule_quick(seed in 0u64..400, pct in 1u32..60, m in 1u64..9) {
        check_exact_below_every_simulated_schedule(seed, pct, m);
    }

    #[test]
    fn exact_within_root_bounds_quick(seed in 0u64..400, pct in 1u32..60, m in 1u64..9) {
        check_exact_within_root_bounds(seed, pct, m);
    }

    #[test]
    fn analytic_bounds_dominate_exact_makespan_quick(seed in 0u64..400, pct in 1u32..60, m in 1u64..9) {
        check_analytic_bounds_dominate_exact_makespan(seed, pct, m);
    }

    #[test]
    fn homogeneous_exact_at_most_heterogeneous_quick(seed in 0u64..200, pct in 5u32..50) {
        check_homogeneous_exact_at_most_heterogeneous(seed, pct);
    }
}

// The full-depth sweeps of the original suite, gated behind `--ignored`.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    #[ignore = "full-depth cross-validation (minutes); run with --ignored"]
    fn exact_below_every_simulated_schedule(seed in 0u64..3000, pct in 1u32..60, m in 1u64..9) {
        check_exact_below_every_simulated_schedule(seed, pct, m);
    }

    #[test]
    #[ignore = "full-depth cross-validation (minutes); run with --ignored"]
    fn exact_within_root_bounds(seed in 0u64..3000, pct in 1u32..60, m in 1u64..9) {
        check_exact_within_root_bounds(seed, pct, m);
    }

    #[test]
    #[ignore = "full-depth cross-validation (minutes); run with --ignored"]
    fn analytic_bounds_dominate_exact_makespan(seed in 0u64..3000, pct in 1u32..60, m in 1u64..9) {
        check_analytic_bounds_dominate_exact_makespan(seed, pct, m);
    }

    #[test]
    #[ignore = "full-depth cross-validation (minutes); run with --ignored"]
    fn homogeneous_exact_at_most_heterogeneous_volume_argument(seed in 0u64..1500, pct in 5u32..50) {
        check_homogeneous_exact_at_most_heterogeneous(seed, pct);
    }
}

/// Mirrors the paper's setup: the ILP oracle must actually close small
/// instances. Counts optimality over a fixed batch.
fn assert_mostly_optimal(total: u64) {
    let mut optimal = 0;
    for seed in 0..total {
        let task = small_task(seed, 0.2);
        assert!(task.dag().node_count() <= MAX_NODES_SUPPORTED);
        let sol = solve(
            task.dag(),
            Some(task.offloaded()),
            4,
            &SolverConfig::default(),
        )
        .unwrap();
        if sol.is_optimal() {
            optimal += 1;
        }
    }
    assert!(
        optimal >= total * 9 / 10,
        "only {optimal}/{total} instances closed"
    );
}

#[test]
fn most_small_instances_are_proven_optimal_quick() {
    assert_mostly_optimal(20);
}

#[test]
#[ignore = "full 60-instance oracle batch; run with --ignored"]
fn most_small_instances_are_proven_optimal() {
    assert_mostly_optimal(60);
}
