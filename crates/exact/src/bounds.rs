//! Makespan lower bounds.

use hetrta_dag::algo::CriticalPath;
use hetrta_dag::{Dag, NodeId, Ticks};

/// The critical-path lower bound: no schedule can finish before `len(G)`.
#[must_use]
pub fn critical_path_bound(dag: &Dag) -> Ticks {
    CriticalPath::of(dag).length()
}

/// The workload ("area") lower bound for `m` host cores with the node
/// `offloaded` excluded from host work: `ceil((vol − C_off)/m)`.
///
/// # Panics
///
/// Panics if `m == 0`.
#[must_use]
pub fn workload_bound(dag: &Dag, offloaded: Option<NodeId>, m: u64) -> Ticks {
    assert!(m > 0, "workload bound needs at least one core");
    let off = offloaded.map_or(Ticks::ZERO, |v| dag.wcet(v));
    (dag.volume() - off).div_ceil(m)
}

/// The root lower bound used by the solver:
/// `max(len(G), ceil(host volume / m))`.
///
/// # Panics
///
/// Panics if `m == 0`.
///
/// # Examples
///
/// ```
/// use hetrta_dag::{DagBuilder, Ticks};
/// use hetrta_exact::bounds::root_bound;
///
/// let mut b = DagBuilder::new();
/// let v1 = b.unlabeled_node(Ticks::new(3));
/// let v2 = b.unlabeled_node(Ticks::new(3));
/// let v3 = b.unlabeled_node(Ticks::new(3));
/// b.edge(v1, v2)?;
/// let dag = b.freeze(); // v3 floats free: two sources, two sinks
/// // len = 6; workload = ceil(9/2) = 5 → bound 6
/// assert_eq!(root_bound(&dag, None, 2), Ticks::new(6));
/// # let _ = v3;
/// # Ok::<(), hetrta_dag::DagError>(())
/// ```
#[must_use]
pub fn root_bound(dag: &Dag, offloaded: Option<NodeId>, m: u64) -> Ticks {
    critical_path_bound(dag).max(workload_bound(dag, offloaded, m))
}

/// Water-filling workload bound from a partial state: the minimal `M` such
/// that the host cores, free from times `core_free`, can absorb `work`
/// more ticks by `M`: `Σ_i max(0, M − F_i) ≥ work`.
///
/// Used by the solver to bound every open branch. `core_free` need not be
/// sorted.
#[must_use]
pub fn water_filling_bound(core_free: &[u64], work: u64) -> u64 {
    if work == 0 {
        return core_free.iter().copied().min().unwrap_or(0);
    }
    let mut f: Vec<u64> = core_free.to_vec();
    f.sort_unstable();
    // Raise the water level band by band.
    let mut remaining = work as u128;
    let m = f.len() as u128;
    for i in 0..f.len() {
        let width = (i + 1) as u128;
        let band = if i + 1 < f.len() {
            (f[i + 1] - f[i]) as u128
        } else {
            u128::MAX
        };
        if width.saturating_mul(band) >= remaining {
            return f[i] + (remaining as u64).div_ceil(width as u64);
        }
        remaining -= width * band;
    }
    // unreachable: the last band is unbounded
    f[f.len() - 1] + (remaining as u64).div_ceil(m as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn water_filling_equal_cores() {
        // 3 cores all free at 0, 9 units of work → level 3.
        assert_eq!(water_filling_bound(&[0, 0, 0], 9), 3);
        // 10 units → ceil(10/3) = 4
        assert_eq!(water_filling_bound(&[0, 0, 0], 10), 4);
    }

    #[test]
    fn water_filling_staggered_cores() {
        // cores free at 0 and 4; 2 units fit on the first core by t=2.
        assert_eq!(water_filling_bound(&[4, 0], 2), 2);
        // 6 units: first core works 0..5, second 4..5 → level 5
        assert_eq!(water_filling_bound(&[4, 0], 6), 5);
        // 0 work: bound is the earliest core availability
        assert_eq!(water_filling_bound(&[4, 2], 0), 2);
    }

    #[test]
    fn water_filling_single_core() {
        assert_eq!(water_filling_bound(&[7], 5), 12);
    }

    #[test]
    fn workload_bound_excludes_offloaded() {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::new(10));
        let k = dag.add_node(Ticks::new(6));
        dag.add_edge(a, k).unwrap();
        assert_eq!(workload_bound(&dag, None, 2), Ticks::new(8));
        assert_eq!(workload_bound(&dag, Some(k), 2), Ticks::new(5));
    }

    #[test]
    fn root_bound_takes_max() {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::new(2));
        let b = dag.add_node(Ticks::new(2));
        let c = dag.add_node(Ticks::new(20));
        dag.add_edge(a, b).unwrap();
        let _ = c;
        // len = 20 (isolated c), workload = ceil(24/4) = 6
        assert_eq!(root_bound(&dag, None, 4), Ticks::new(20));
        // with m = 1: workload 24 > len 20
        assert_eq!(root_bound(&dag, None, 1), Ticks::new(24));
    }
}
