//! Branch-and-bound search over active schedules.
//!
//! Serial schedule-generation branching: each search node dispatches one
//! precedence-eligible job at its earliest feasible start time. The set of
//! schedules reachable this way is exactly the set of *active* schedules,
//! which contains a makespan-optimal schedule (the classical
//! list-scheduling/RCPSP result — `P|prec|Cmax` is RCPSP with one unit
//! resource of capacity `m`). Dedicated-resource moves (the offloaded node;
//! zero-WCET nodes) are dispatched greedily, which is dominance-optimal:
//! they consume no shared capacity, so starting them at their ready time
//! can only relax constraints.

use std::collections::HashMap;

use hetrta_dag::algo::{topological_order, CriticalPath};
use hetrta_dag::{Dag, DagError, HeteroDagTask, NodeId, Ticks};

use crate::bounds::{root_bound, water_filling_bound};
use crate::heuristics::list_schedule_cp_first;
use crate::schedule::{ExactSchedule, Optimality};
use crate::ExactError;

/// Tuning knobs of the exact solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolverConfig {
    /// Maximum number of branch-and-bound nodes to explore before giving up
    /// with [`Optimality::Feasible`]. The paper's analogue is the "12 hour
    /// CPLEX budget" per instance.
    pub max_nodes: u64,
    /// Maximum dominance signatures remembered per scheduled-set (memory
    /// cap of the dominance store).
    pub max_memo_per_mask: usize,
    /// Optional wall-clock budget; on expiry the search stops with
    /// [`Optimality::Feasible`] (checked every few thousand nodes, so the
    /// overrun is bounded and the per-node overhead negligible).
    pub time_limit: Option<std::time::Duration>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            max_nodes: 2_000_000,
            max_memo_per_mask: 64,
            time_limit: None,
        }
    }
}

/// Maximum node count the solver supports (scheduled sets are `u128`
/// bitmasks). The paper's ILP experiment is limited to 100-node tasks for
/// the same order-of-magnitude reason.
pub const MAX_NODES_SUPPORTED: usize = 128;

/// Computes the minimum makespan of `dag` on `m` identical host cores plus
/// (if `offloaded` is set) one dedicated accelerator.
///
/// Returns the best schedule found together with its [`Optimality`] status:
/// `Optimal` when the search space was exhausted or the incumbent met the
/// lower bound, `Feasible` when the node budget ran out first.
///
/// # Errors
///
/// - [`ExactError::ZeroCores`] if `m == 0`;
/// - [`ExactError::Dag`] if the graph is cyclic, `offloaded` is unknown, or
///   the graph exceeds [`MAX_NODES_SUPPORTED`] nodes.
///
/// # Examples
///
/// ```
/// use hetrta_dag::{DagBuilder, Ticks};
/// use hetrta_exact::{solve, SolverConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Figure 1(a): optimal heterogeneous makespan is 8 on m = 2.
/// let mut b = DagBuilder::new();
/// let v1 = b.node("v1", Ticks::new(1));
/// let v2 = b.node("v2", Ticks::new(4));
/// let v3 = b.node("v3", Ticks::new(6));
/// let v4 = b.node("v4", Ticks::new(2));
/// let v5 = b.node("v5", Ticks::new(1));
/// let voff = b.node("v_off", Ticks::new(4));
/// b.edges([(v1, v2), (v1, v3), (v1, v4), (v4, voff), (v2, v5), (v3, v5), (voff, v5)])?;
/// let dag = b.build()?;
/// let sol = solve(&dag, Some(voff), 2, &SolverConfig::default())?;
/// assert_eq!(sol.makespan(), Ticks::new(8));
/// assert!(sol.is_optimal());
/// # Ok(())
/// # }
/// ```
pub fn solve(
    dag: &Dag,
    offloaded: Option<NodeId>,
    m: u64,
    config: &SolverConfig,
) -> Result<ExactSchedule, ExactError> {
    solve_with(&mut SolverWorkspace::new(), dag, offloaded, m, config)
}

/// Reusable scratch state of the branch-and-bound search: per-node tail
/// and WCET tables, the chain-bound estimation buffer, and the dominance
/// memo.
///
/// One workspace serves any number of sequential solves; each
/// [`solve_with`] call resets (but does not reallocate) the buffers.
/// Batch engines keep one per worker thread so steady-state sweeps do
/// near-zero setup allocation per solved instance — and the chain bound,
/// evaluated at every search node, stops allocating entirely.
#[derive(Debug, Default)]
pub struct SolverWorkspace {
    tails: Vec<u64>,
    wcets: Vec<u64>,
    est_finish: Vec<u64>,
    memo: HashMap<u128, Vec<Vec<u64>>>,
}

impl SolverWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    #[must_use]
    pub fn new() -> Self {
        SolverWorkspace::default()
    }
}

/// [`solve`] with caller-owned scratch state (see [`SolverWorkspace`]).
///
/// # Errors
///
/// See [`solve`].
pub fn solve_with(
    ws: &mut SolverWorkspace,
    dag: &Dag,
    offloaded: Option<NodeId>,
    m: u64,
    config: &SolverConfig,
) -> Result<ExactSchedule, ExactError> {
    if m == 0 {
        return Err(ExactError::ZeroCores);
    }
    if let Some(off) = offloaded {
        if !dag.contains_node(off) {
            return Err(ExactError::Dag(DagError::UnknownNode(off)));
        }
    }
    let n = dag.node_count();
    if n > MAX_NODES_SUPPORTED {
        return Err(ExactError::Dag(DagError::UnknownNode(NodeId::from_index(
            n,
        ))));
    }
    if n == 0 {
        return Ok(ExactSchedule::new(
            Ticks::ZERO,
            Vec::new(),
            Optimality::Optimal,
            Ticks::ZERO,
            0,
        ));
    }
    let topo = topological_order(dag)?;
    let cp = CriticalPath::try_of(dag)?;
    let SolverWorkspace {
        tails,
        wcets,
        est_finish,
        memo,
    } = ws;
    tails.clear();
    tails.extend(dag.node_ids().map(|v| cp.tail(v).get()));
    wcets.clear();
    wcets.extend(dag.node_ids().map(|v| dag.wcet(v).get()));
    est_finish.clear();
    est_finish.resize(n, 0);
    memo.clear();

    // Incumbent from the CP-first list schedule.
    let (inc_makespan, inc_starts) = list_schedule_cp_first(dag, offloaded, m)?;
    let root_lb = root_bound(dag, offloaded, m);

    let mut search = Search {
        dag,
        offloaded,
        topo: &topo,
        tails,
        wcets,
        est_finish,
        config,
        best_makespan: inc_makespan.get(),
        best_starts: inc_starts.iter().map(|t| t.get()).collect(),
        explored: 0,
        exhausted: false,
        memo,
        deadline: config.time_limit.map(|d| std::time::Instant::now() + d),
    };

    if inc_makespan > root_lb {
        let mut state = State {
            mask: 0,
            starts: vec![0; n],
            finishes: vec![0; n],
            cores: vec![0; m as usize],
            scheduled_count: 0,
            remaining_work: wcets
                .iter()
                .enumerate()
                .filter(|&(i, _)| Some(NodeId::from_index(i)) != offloaded)
                .map(|(_, &w)| w)
                .sum(),
        };
        search.dfs(&mut state);
    }

    let status = if search.exhausted {
        Optimality::Feasible
    } else {
        Optimality::Optimal
    };
    let lower_bound = match status {
        Optimality::Optimal => Ticks::new(search.best_makespan),
        Optimality::Feasible => root_lb,
    };
    Ok(ExactSchedule::new(
        Ticks::new(search.best_makespan),
        search.best_starts.iter().map(|&t| Ticks::new(t)).collect(),
        status,
        lower_bound,
        search.explored,
    ))
}

/// Convenience wrapper: minimum makespan of a [`HeteroDagTask`].
///
/// # Errors
///
/// See [`solve`].
pub fn solve_hetero_task(
    task: &HeteroDagTask,
    m: u64,
    config: &SolverConfig,
) -> Result<ExactSchedule, ExactError> {
    solve(task.dag(), Some(task.offloaded()), m, config)
}

#[derive(Clone)]
struct State {
    mask: u128,
    starts: Vec<u64>,
    finishes: Vec<u64>,
    /// Sorted host-core availability times.
    cores: Vec<u64>,
    scheduled_count: usize,
    /// Unscheduled host work.
    remaining_work: u64,
}

struct Search<'a> {
    dag: &'a Dag,
    offloaded: Option<NodeId>,
    topo: &'a [NodeId],
    tails: &'a [u64],
    wcets: &'a [u64],
    /// Chain-bound estimation buffer (fully overwritten per evaluation).
    est_finish: &'a mut Vec<u64>,
    config: &'a SolverConfig,
    best_makespan: u64,
    best_starts: Vec<u64>,
    explored: u64,
    exhausted: bool,
    memo: &'a mut HashMap<u128, Vec<Vec<u64>>>,
    deadline: Option<std::time::Instant>,
}

impl Search<'_> {
    fn is_scheduled(state: &State, v: NodeId) -> bool {
        state.mask & (1u128 << v.index()) != 0
    }

    fn ready_time(&self, state: &State, v: NodeId) -> Option<u64> {
        let mut ready = 0u64;
        for &p in self.dag.predecessors(v) {
            if !Self::is_scheduled(state, p) {
                return None;
            }
            ready = ready.max(state.finishes[p.index()]);
        }
        Some(ready)
    }

    /// Dispatches all dominant moves (offloaded node, zero-WCET nodes) in
    /// place; returns `true` if anything was dispatched.
    fn dispatch_dominant(&self, state: &mut State) -> bool {
        let mut any = false;
        loop {
            let mut progressed = false;
            for i in 0..self.dag.node_count() {
                let v = NodeId::from_index(i);
                if Self::is_scheduled(state, v) {
                    continue;
                }
                let dedicated = Some(v) == self.offloaded || self.wcets[i] == 0;
                if !dedicated {
                    continue;
                }
                if let Some(ready) = self.ready_time(state, v) {
                    state.mask |= 1u128 << i;
                    state.starts[i] = ready;
                    state.finishes[i] = ready + self.wcets[i];
                    state.scheduled_count += 1;
                    // dedicated moves never consume host work budget:
                    // zero-WCET contributes 0; the offloaded node was never
                    // part of remaining_work.
                    progressed = true;
                    any = true;
                }
            }
            if !progressed {
                return any;
            }
        }
    }

    /// Chain lower bound: earliest possible completion of the whole task
    /// from this partial state, ignoring future core contention.
    ///
    /// Evaluated at every search node — the estimation buffer lives in the
    /// [`SolverWorkspace`] and is fully overwritten here, so the bound is
    /// allocation-free.
    fn chain_bound(&mut self, state: &State) -> u64 {
        let est_finish = &mut *self.est_finish;
        let mut bound = state.finishes.iter().copied().max().unwrap_or(0);
        let earliest_core = state.cores[0];
        for &v in self.topo {
            let i = v.index();
            if Self::is_scheduled(state, v) {
                est_finish[i] = state.finishes[i];
                continue;
            }
            let mut ready = 0u64;
            for &p in self.dag.predecessors(v) {
                ready = ready.max(est_finish[p.index()]);
            }
            let host = Some(v) != self.offloaded && self.wcets[i] > 0;
            if host {
                ready = ready.max(earliest_core);
            }
            est_finish[i] = ready + self.wcets[i];
            // tail already includes C_v
            bound = bound.max(ready + self.tails[i]);
        }
        bound
    }

    fn dfs(&mut self, state: &mut State) {
        if self.exhausted {
            return;
        }
        self.explored += 1;
        if self.explored > self.config.max_nodes {
            self.exhausted = true;
            return;
        }
        if self.explored.is_multiple_of(4096) {
            if let Some(deadline) = self.deadline {
                if std::time::Instant::now() >= deadline {
                    self.exhausted = true;
                    return;
                }
            }
        }

        self.dispatch_dominant(state);

        let n = self.dag.node_count();
        if state.scheduled_count == n {
            let makespan = state.finishes.iter().copied().max().unwrap_or(0);
            if makespan < self.best_makespan {
                self.best_makespan = makespan;
                self.best_starts = state.starts.clone();
            }
            return;
        }

        // Bounds.
        let lb_chain = self.chain_bound(state);
        let lb_work = water_filling_bound(&state.cores, state.remaining_work);
        let lb = lb_chain.max(lb_work);
        if lb >= self.best_makespan {
            return;
        }

        // Dominance: signature = sorted core availability + finish times of
        // scheduled nodes that still gate unscheduled successors.
        let mut sig = state.cores.clone();
        for i in 0..n {
            let v = NodeId::from_index(i);
            if Self::is_scheduled(state, v)
                && self
                    .dag
                    .successors(v)
                    .iter()
                    .any(|&s| !Self::is_scheduled(state, s))
            {
                sig.push(state.finishes[i]);
            }
        }
        let entries = self.memo.entry(state.mask).or_default();
        if entries
            .iter()
            .any(|e| e.len() == sig.len() && e.iter().zip(&sig).all(|(a, b)| a <= b))
        {
            return;
        }
        if entries.len() < self.config.max_memo_per_mask {
            entries.push(sig);
        }

        // Eligible host jobs with their earliest feasible starts.
        let mut candidates: Vec<(u64, u64, usize)> = Vec::new(); // (start, -tail sortkey later, idx)
        for i in 0..n {
            let v = NodeId::from_index(i);
            if Self::is_scheduled(state, v) {
                continue;
            }
            if let Some(ready) = self.ready_time(state, v) {
                let start = ready.max(state.cores[0]);
                candidates.push((start, u64::MAX - self.tails[i], i));
            }
        }
        debug_assert!(
            !candidates.is_empty(),
            "non-terminal state must have eligible jobs"
        );
        candidates.sort_unstable();

        for (start, _, i) in candidates {
            let w = self.wcets[i];
            // Prune: even this single job busts the incumbent.
            if start + self.tails[i] >= self.best_makespan {
                continue;
            }
            // Assign the latest-available core not later than `start`
            // (dominant among identical cores).
            let core_idx = match state.cores.binary_search(&start) {
                Ok(mut k) => {
                    while k + 1 < state.cores.len() && state.cores[k + 1] <= start {
                        k += 1;
                    }
                    k
                }
                Err(0) => 0, // start < all free times ⇒ start == cores[0] case handled by max above
                Err(k) => k - 1,
            };
            let mut child = state.clone();
            child.mask |= 1u128 << i;
            child.starts[i] = start;
            child.finishes[i] = start + w;
            child.scheduled_count += 1;
            child.remaining_work -= w;
            child.cores.remove(core_idx);
            let pos = child.cores.partition_point(|&c| c <= start + w);
            child.cores.insert(pos, start + w);
            self.dfs(&mut child);
            if self.best_makespan <= lb {
                // proved optimal for this subtree's ancestors too
                return;
            }
            if self.exhausted {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetrta_dag::DagBuilder;

    fn figure1() -> (Dag, NodeId) {
        let mut b = DagBuilder::new();
        let v1 = b.node("v1", Ticks::new(1));
        let v2 = b.node("v2", Ticks::new(4));
        let v3 = b.node("v3", Ticks::new(6));
        let v4 = b.node("v4", Ticks::new(2));
        let v5 = b.node("v5", Ticks::new(1));
        let voff = b.node("v_off", Ticks::new(4));
        b.edges([
            (v1, v2),
            (v1, v3),
            (v1, v4),
            (v4, voff),
            (v2, v5),
            (v3, v5),
            (voff, v5),
        ])
        .unwrap();
        (b.build().unwrap(), voff)
    }

    fn assert_valid_schedule(dag: &Dag, offloaded: Option<NodeId>, m: u64, sol: &ExactSchedule) {
        // precedence
        for (f, t) in dag.edges() {
            assert!(
                sol.start_of(f) + dag.wcet(f) <= sol.start_of(t),
                "precedence ({f},{t}) violated"
            );
        }
        // host capacity at every start event
        let host: Vec<NodeId> = dag
            .node_ids()
            .filter(|&v| Some(v) != offloaded && !dag.wcet(v).is_zero())
            .collect();
        for &v in &host {
            let s = sol.start_of(v);
            let overlapping = host
                .iter()
                .filter(|&&u| sol.start_of(u) <= s && s < sol.start_of(u) + dag.wcet(u))
                .count();
            assert!(overlapping as u64 <= m, "capacity exceeded at {s}");
        }
    }

    #[test]
    fn figure1_heterogeneous_optimum_is_8() {
        let (dag, voff) = figure1();
        let sol = solve(&dag, Some(voff), 2, &SolverConfig::default()).unwrap();
        assert_eq!(sol.makespan(), Ticks::new(8));
        assert!(sol.is_optimal());
        assert_valid_schedule(&dag, Some(voff), 2, &sol);
    }

    #[test]
    fn figure1_homogeneous_optimum() {
        let (dag, _) = figure1();
        let sol = solve(&dag, None, 2, &SolverConfig::default()).unwrap();
        // all 18 units on 2 cores, len 8 → lower bound 9; a 9-schedule
        // exists: c0: v1(0-1), v2(1-5), v4(5-7)… let the solver decide.
        assert!(sol.makespan() >= Ticks::new(9));
        assert!(sol.makespan() <= Ticks::new(10));
        assert!(sol.is_optimal());
        assert_valid_schedule(&dag, None, 2, &sol);
    }

    #[test]
    fn chain_is_trivially_optimal() {
        let mut b = DagBuilder::new();
        let a = b.node("a", Ticks::new(3));
        let c = b.node("c", Ticks::new(4));
        b.edge(a, c).unwrap();
        let dag = b.build().unwrap();
        let sol = solve(&dag, None, 4, &SolverConfig::default()).unwrap();
        assert_eq!(sol.makespan(), Ticks::new(7));
        assert!(sol.is_optimal());
        assert_eq!(sol.explored_nodes(), 0); // incumbent met the root bound
    }

    #[test]
    fn independent_jobs_pack_like_bins() {
        // 4 jobs of sizes 5,4,3,3 on 2 cores with dummy terminals:
        // optimum is ceil(15/2) = 8 (5+3 | 4+3… = 8/7 → 8).
        let mut b = DagBuilder::new();
        let src = b.node("src", Ticks::ZERO);
        let sink = b.node("sink", Ticks::ZERO);
        for (i, w) in [5u64, 4, 3, 3].into_iter().enumerate() {
            let v = b.node(format!("j{i}"), Ticks::new(w));
            b.edge(src, v).unwrap();
            b.edge(v, sink).unwrap();
        }
        let dag = b.build().unwrap();
        let sol = solve(&dag, None, 2, &SolverConfig::default()).unwrap();
        assert_eq!(sol.makespan(), Ticks::new(8));
        assert!(sol.is_optimal());
    }

    #[test]
    fn anomaly_case_where_list_scheduling_is_suboptimal() {
        // Classic Graham anomaly shape: greedy CP-first can be beaten.
        // jobs: a(3), b(2), c(2), d(4) with d after b; m=2.
        // CP-first may run a,b then c,d → 3 + … ; optimum packs b first.
        let mut b = DagBuilder::new();
        let src = b.node("src", Ticks::ZERO);
        let sink = b.node("sink", Ticks::ZERO);
        let ja = b.node("a", Ticks::new(3));
        let jb = b.node("b", Ticks::new(2));
        let jc = b.node("c", Ticks::new(2));
        let jd = b.node("d", Ticks::new(4));
        b.edges([
            (src, ja),
            (src, jb),
            (src, jc),
            (jb, jd),
            (ja, sink),
            (jc, sink),
            (jd, sink),
        ])
        .unwrap();
        let dag = b.build().unwrap();
        let sol = solve(&dag, None, 2, &SolverConfig::default()).unwrap();
        // optimum: core0: b(0-2), d(2-6); core1: a(0-3), c(3-5) → 6
        assert_eq!(sol.makespan(), Ticks::new(6));
        assert!(sol.is_optimal());
    }

    #[test]
    fn accelerator_overlap_reduces_makespan() {
        // host chain 6 + offloaded 6 in parallel: with accelerator the
        // makespan is 8 (1+6+1), homogeneous on one core it is 14.
        let mut b = DagBuilder::new();
        let src = b.node("src", Ticks::ONE);
        let sink = b.node("sink", Ticks::ONE);
        let h = b.node("h", Ticks::new(6));
        let k = b.node("k", Ticks::new(6));
        b.edges([(src, h), (src, k), (h, sink), (k, sink)]).unwrap();
        let dag = b.build().unwrap();
        let het = solve(&dag, Some(k), 1, &SolverConfig::default()).unwrap();
        assert_eq!(het.makespan(), Ticks::new(8));
        let hom = solve(&dag, None, 1, &SolverConfig::default()).unwrap();
        assert_eq!(hom.makespan(), Ticks::new(14));
    }

    #[test]
    fn budget_exhaustion_reports_feasible() {
        // A dense random-ish instance with a tiny budget.
        let mut b = DagBuilder::new();
        let src = b.node("src", Ticks::ZERO);
        let sink = b.node("sink", Ticks::ZERO);
        let mut mids = Vec::new();
        for i in 0..12 {
            let v = b.node(format!("m{i}"), Ticks::new(3 + (i % 5) as u64));
            b.edge(src, v).unwrap();
            b.edge(v, sink).unwrap();
            mids.push(v);
        }
        let dag = b.build().unwrap();
        let cfg = SolverConfig {
            max_nodes: 3,
            ..SolverConfig::default()
        };
        let sol = solve(&dag, None, 3, &cfg).unwrap();
        // whatever happened, the incumbent is a valid schedule and the
        // status reflects the truncated search (unless the incumbent
        // already met the root bound).
        assert!(sol.makespan() >= sol.lower_bound());
        assert_valid_schedule(&dag, None, 3, &sol);
    }

    #[test]
    fn empty_and_oversized_graphs() {
        let sol = solve(&Dag::new(), None, 2, &SolverConfig::default()).unwrap();
        assert_eq!(sol.makespan(), Ticks::ZERO);
        let mut big = Dag::new();
        for _ in 0..129 {
            big.add_node(Ticks::ONE);
        }
        assert!(solve(&big, None, 2, &SolverConfig::default()).is_err());
    }

    #[test]
    fn zero_cores_rejected() {
        let (dag, voff) = figure1();
        assert_eq!(
            solve(&dag, Some(voff), 0, &SolverConfig::default()).unwrap_err(),
            ExactError::ZeroCores
        );
    }

    #[test]
    fn zero_time_limit_still_returns_incumbent() {
        // A hard-ish instance with an expired clock: the solver must return
        // the (valid) list-schedule incumbent immediately.
        let mut b = DagBuilder::new();
        let src = b.node("src", Ticks::ZERO);
        let sink = b.node("sink", Ticks::ZERO);
        for i in 0..14 {
            let v = b.node(format!("j{i}"), Ticks::new(3 + (i % 7) as u64));
            b.edge(src, v).unwrap();
            b.edge(v, sink).unwrap();
        }
        let dag = b.build().unwrap();
        let cfg = SolverConfig {
            time_limit: Some(std::time::Duration::ZERO),
            ..SolverConfig::default()
        };
        let sol = solve(&dag, None, 3, &cfg).unwrap();
        assert!(sol.makespan() >= sol.lower_bound());
        assert_valid_schedule(&dag, None, 3, &sol);
    }

    #[test]
    fn solve_hetero_task_wrapper() {
        let (dag, voff) = figure1();
        let task = HeteroDagTask::new(dag, voff, Ticks::new(99), Ticks::new(99)).unwrap();
        let sol = solve_hetero_task(&task, 2, &SolverConfig::default()).unwrap();
        assert_eq!(sol.makespan(), Ticks::new(8));
    }
}
