//! Solution representation.

use hetrta_dag::{NodeId, Ticks};

/// Whether the returned makespan is proven minimal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Optimality {
    /// The search completed (or the incumbent met the lower bound): the
    /// makespan is the exact minimum.
    Optimal,
    /// The node budget was exhausted first: the makespan is an upper bound
    /// on the minimum (compare with [`ExactSchedule::lower_bound`]).
    Feasible,
}

/// A (possibly proven-optimal) schedule found by the solver.
#[derive(Debug, Clone)]
pub struct ExactSchedule {
    makespan: Ticks,
    starts: Vec<Ticks>,
    optimality: Optimality,
    lower_bound: Ticks,
    explored: u64,
}

impl ExactSchedule {
    pub(crate) fn new(
        makespan: Ticks,
        starts: Vec<Ticks>,
        optimality: Optimality,
        lower_bound: Ticks,
        explored: u64,
    ) -> Self {
        ExactSchedule {
            makespan,
            starts,
            optimality,
            lower_bound,
            explored,
        }
    }

    /// The makespan of the best schedule found.
    #[must_use]
    pub fn makespan(&self) -> Ticks {
        self.makespan
    }

    /// Start time of each node (indexed by [`NodeId`]).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for the solved graph.
    #[must_use]
    pub fn start_of(&self, v: NodeId) -> Ticks {
        self.starts[v.index()]
    }

    /// All start times, indexed by node id.
    #[must_use]
    pub fn starts(&self) -> &[Ticks] {
        &self.starts
    }

    /// Proof status of the makespan.
    #[must_use]
    pub fn optimality(&self) -> Optimality {
        self.optimality
    }

    /// `true` if the makespan is the proven minimum.
    #[must_use]
    pub fn is_optimal(&self) -> bool {
        self.optimality == Optimality::Optimal
    }

    /// The best lower bound established during the search; equals
    /// [`makespan`](ExactSchedule::makespan) when optimal.
    #[must_use]
    pub fn lower_bound(&self) -> Ticks {
        self.lower_bound
    }

    /// Number of branch-and-bound nodes explored.
    #[must_use]
    pub fn explored_nodes(&self) -> u64 {
        self.explored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_roundtrip() {
        let s = ExactSchedule::new(
            Ticks::new(10),
            vec![Ticks::ZERO, Ticks::new(3)],
            Optimality::Optimal,
            Ticks::new(10),
            42,
        );
        assert_eq!(s.makespan(), Ticks::new(10));
        assert_eq!(s.start_of(NodeId::from_index(1)), Ticks::new(3));
        assert_eq!(s.starts().len(), 2);
        assert!(s.is_optimal());
        assert_eq!(s.lower_bound(), Ticks::new(10));
        assert_eq!(s.explored_nodes(), 42);
    }

    #[test]
    fn feasible_status() {
        let s = ExactSchedule::new(
            Ticks::new(12),
            vec![],
            Optimality::Feasible,
            Ticks::new(10),
            7,
        );
        assert!(!s.is_optimal());
        assert_eq!(s.optimality(), Optimality::Feasible);
    }
}
