//! List-scheduling heuristics (incumbent seeds for the solver).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use hetrta_dag::algo::CriticalPath;
use hetrta_dag::{Dag, NodeId, Ticks};

use crate::ExactError;

/// A critical-path-first (longest remaining chain) work-conserving list
/// schedule on `m` host cores plus an accelerator for `offloaded`.
///
/// Semantics match `hetrta-sim`: non-preemptive, the offloaded node starts
/// the moment it is ready, zero-WCET nodes complete instantly without a
/// core. Returns `(makespan, start_times)`.
///
/// This is both the solver's initial incumbent and a strong standalone
/// heuristic (HLF — "highest level first" — in the classic scheduling
/// literature).
///
/// # Errors
///
/// - [`ExactError::ZeroCores`] if `m == 0`;
/// - [`ExactError::Dag`] if the graph is cyclic or `offloaded` is unknown.
pub fn list_schedule_cp_first(
    dag: &Dag,
    offloaded: Option<NodeId>,
    m: u64,
) -> Result<(Ticks, Vec<Ticks>), ExactError> {
    if m == 0 {
        return Err(ExactError::ZeroCores);
    }
    if let Some(off) = offloaded {
        if !dag.contains_node(off) {
            return Err(ExactError::Dag(hetrta_dag::DagError::UnknownNode(off)));
        }
    }
    let n = dag.node_count();
    let cp = CriticalPath::try_of(dag)?;
    let tails: Vec<u64> = dag.node_ids().map(|v| cp.tail(v).get()).collect();

    let mut remaining: Vec<usize> = (0..n)
        .map(|i| dag.in_degree(NodeId::from_index(i)))
        .collect();
    let mut starts = vec![Ticks::ZERO; n];
    let mut done = 0usize;
    let mut free: BinaryHeap<Reverse<u64>> = (0..m).map(|_| Reverse(0u64)).collect();
    // (finish, node)
    let mut running: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    // ready host jobs, picked by max tail (ties: smallest id)
    let mut ready: Vec<NodeId> = Vec::new();
    let mut now = 0u64;

    #[allow(clippy::too_many_arguments)] // internal event helper threading engine state
    fn release(
        v: NodeId,
        now: u64,
        dag: &Dag,
        offloaded: Option<NodeId>,
        tails: &[u64],
        ready: &mut Vec<NodeId>,
        running: &mut BinaryHeap<Reverse<(u64, u32)>>,
        starts: &mut [Ticks],
        done: &mut usize,
        remaining: &mut [usize],
    ) {
        let w = dag.wcet(v).get();
        if w == 0 {
            starts[v.index()] = Ticks::new(now);
            *done += 1;
            for &s in dag.successors(v) {
                remaining[s.index()] -= 1;
                if remaining[s.index()] == 0 {
                    release(
                        s, now, dag, offloaded, tails, ready, running, starts, done, remaining,
                    );
                }
            }
        } else if offloaded == Some(v) {
            starts[v.index()] = Ticks::new(now);
            running.push(Reverse((now + w, v.index() as u32)));
        } else {
            let pos = ready
                .binary_search_by(|x| {
                    (Reverse(tails[x.index()]), x.index())
                        .cmp(&(Reverse(tails[v.index()]), v.index()))
                })
                .unwrap_or_else(|p| p);
            ready.insert(pos, v);
        }
    }

    for v in dag.sources() {
        release(
            v,
            now,
            dag,
            offloaded,
            &tails,
            &mut ready,
            &mut running,
            &mut starts,
            &mut done,
            &mut remaining,
        );
    }

    loop {
        while !ready.is_empty() {
            let Some(&Reverse(core_free)) = free.peek() else {
                break;
            };
            if core_free > now {
                break;
            }
            free.pop();
            let v = ready.remove(0);
            starts[v.index()] = Ticks::new(now);
            let finish = now + dag.wcet(v).get();
            free.push(Reverse(finish));
            running.push(Reverse((finish, v.index() as u32)));
        }
        // next event: earliest running completion, or earliest core slot if
        // jobs are waiting (cores all busy)
        let Some(&Reverse((fin, _))) = running.peek() else {
            break;
        };
        now = fin;
        while let Some(&Reverse((f, vi))) = running.peek() {
            if f != now {
                break;
            }
            running.pop();
            done += 1;
            let v = NodeId::from_index(vi as usize);
            for &s in dag.successors(v).to_vec().iter() {
                remaining[s.index()] -= 1;
                if remaining[s.index()] == 0 {
                    release(
                        s,
                        now,
                        dag,
                        offloaded,
                        &tails,
                        &mut ready,
                        &mut running,
                        &mut starts,
                        &mut done,
                        &mut remaining,
                    );
                }
            }
        }
    }
    if done != n {
        return Err(ExactError::Dag(hetrta_dag::DagError::Cycle(
            (0..n)
                .map(NodeId::from_index)
                .find(|v| remaining[v.index()] > 0)
                .unwrap_or(NodeId::from_index(0)),
        )));
    }
    let makespan = dag
        .node_ids()
        .map(|v| starts[v.index()] + dag.wcet(v))
        .max()
        .unwrap_or(Ticks::ZERO);
    Ok((makespan, starts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetrta_dag::DagBuilder;

    fn figure1() -> (Dag, NodeId) {
        let mut b = DagBuilder::new();
        let v1 = b.node("v1", Ticks::new(1));
        let v2 = b.node("v2", Ticks::new(4));
        let v3 = b.node("v3", Ticks::new(6));
        let v4 = b.node("v4", Ticks::new(2));
        let v5 = b.node("v5", Ticks::new(1));
        let voff = b.node("v_off", Ticks::new(4));
        b.edges([
            (v1, v2),
            (v1, v3),
            (v1, v4),
            (v4, voff),
            (v2, v5),
            (v3, v5),
            (voff, v5),
        ])
        .unwrap();
        (b.build().unwrap(), voff)
    }

    #[test]
    fn cp_first_achieves_optimum_on_figure1() {
        let (dag, voff) = figure1();
        let (makespan, starts) = list_schedule_cp_first(&dag, Some(voff), 2).unwrap();
        assert_eq!(makespan, Ticks::new(8));
        assert_eq!(starts.len(), 6);
    }

    #[test]
    fn single_core_serializes_host_work() {
        let (dag, voff) = figure1();
        let (makespan, _) = list_schedule_cp_first(&dag, Some(voff), 1).unwrap();
        // host work = 14, plus possible accelerator overlap; serial host is
        // the dominant term here: v1(1) then 13 more host ticks, with v_off
        // overlapping. 14 ≤ makespan ≤ 18.
        assert!(
            makespan >= Ticks::new(14) && makespan <= Ticks::new(18),
            "{makespan}"
        );
    }

    #[test]
    fn homogeneous_schedule_uses_host_for_all() {
        let (dag, _) = figure1();
        let (makespan, starts) = list_schedule_cp_first(&dag, None, 2).unwrap();
        assert!(makespan >= Ticks::new(9)); // ceil(18/2)
        assert!(makespan <= Ticks::new(13)); // R_hom
                                             // precedence sanity
        for (f, t) in dag.edges() {
            assert!(starts[f.index()] + dag.wcet(f) <= starts[t.index()]);
        }
    }

    #[test]
    fn zero_cores_rejected() {
        let (dag, voff) = figure1();
        assert_eq!(
            list_schedule_cp_first(&dag, Some(voff), 0).unwrap_err(),
            ExactError::ZeroCores
        );
    }

    #[test]
    fn unknown_offload_rejected() {
        let (dag, _) = figure1();
        assert!(list_schedule_cp_first(&dag, Some(NodeId::from_index(77)), 2).is_err());
    }

    #[test]
    fn cyclic_graph_rejected() {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::ONE);
        let b = dag.add_node(Ticks::ONE);
        dag.add_edge(a, b).unwrap();
        dag.add_edge(b, a).unwrap();
        assert!(list_schedule_cp_first(&dag, None, 1).is_err());
    }
}
