//! Solver errors.

use core::fmt;

use hetrta_dag::DagError;

/// Errors produced by the exact solver.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExactError {
    /// The platform must have at least one host core.
    ZeroCores,
    /// The task graph is unusable (wrapped cause).
    Dag(DagError),
}

impl fmt::Display for ExactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExactError::ZeroCores => write!(f, "host must have at least one core"),
            ExactError::Dag(e) => write!(f, "invalid task graph: {e}"),
        }
    }
}

impl std::error::Error for ExactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExactError::Dag(e) => Some(e),
            ExactError::ZeroCores => None,
        }
    }
}

impl From<DagError> for ExactError {
    fn from(e: DagError) -> Self {
        ExactError::Dag(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        assert_eq!(
            ExactError::ZeroCores.to_string(),
            "host must have at least one core"
        );
        let e = ExactError::from(DagError::Empty);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("no nodes"));
    }
}
