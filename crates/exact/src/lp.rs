//! Time-indexed ILP formulation export (CPLEX LP file format).
//!
//! The paper computes minimum makespans with "an ILP formulation (based on
//! \[13\])" — Melani et al., *A static scheduling approach to enable
//! safety-critical OpenMP applications*, ASP-DAC 2017 — solved by IBM
//! CPLEX. Our solver ([`crate::solve`]) replaces CPLEX, but for users who
//! have access to an external MILP solver this module renders the
//! equivalent time-indexed formulation:
//!
//! * binary `x_i_t` — node `i` starts at tick `t`;
//! * each node starts exactly once;
//! * precedence: `start_j ≥ start_i + C_i` for every edge `(i, j)`;
//! * host capacity: at every tick at most `m` host nodes are running;
//! * the makespan variable `M` dominates every completion;
//! * objective: `minimize M`.
//!
//! The horizon `H` (latest considered completion) is taken from the
//! critical-path-first list schedule, which is always feasible — so the
//! formulation is never infeasible by construction.

use std::fmt::Write as _;

use hetrta_dag::{Dag, NodeId};

use crate::heuristics::list_schedule_cp_first;
use crate::ExactError;

/// Renders the time-indexed makespan-minimization ILP for `dag` on `m`
/// host cores (+ accelerator for `offloaded`) in CPLEX LP file format.
///
/// The output can be fed to CPLEX (`cplex -c "read model.lp" "optimize"`),
/// Gurobi, SCIP, HiGHS, CBC or any LP-format-compatible solver; the optimal
/// objective equals [`crate::solve`]'s makespan.
///
/// # Errors
///
/// Propagates [`ExactError`] from the feasibility pre-pass (zero cores,
/// cyclic graph, unknown offloaded node).
///
/// # Examples
///
/// ```
/// use hetrta_dag::{DagBuilder, Ticks};
/// use hetrta_exact::lp::to_lp_format;
///
/// let mut b = DagBuilder::new();
/// let a = b.node("a", Ticks::new(2));
/// let z = b.node("z", Ticks::new(3));
/// b.edge(a, z)?;
/// let dag = b.build()?;
/// let lp = to_lp_format(&dag, None, 1)?;
/// assert!(lp.starts_with("\\ time-indexed DAG makespan model"));
/// assert!(lp.contains("Minimize"));
/// assert!(lp.contains("Binaries"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn to_lp_format(dag: &Dag, offloaded: Option<NodeId>, m: u64) -> Result<String, ExactError> {
    let (horizon, _) = list_schedule_cp_first(dag, offloaded, m)?;
    let h = horizon.get();
    let n = dag.node_count();
    let w = |v: NodeId| dag.wcet(v).get();
    let latest_start = |v: NodeId| h - w(v);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "\\ time-indexed DAG makespan model ({} nodes, m = {m}, horizon = {h})",
        n
    );
    let _ = writeln!(
        out,
        "\\ after Melani et al. (ASP-DAC 2017), as used by Serrano & Quinones (DAC 2018)"
    );
    let _ = writeln!(out, "Minimize\n obj: M");
    let _ = writeln!(out, "Subject To");

    // Each node starts exactly once.
    for v in dag.node_ids() {
        let mut terms = Vec::new();
        for t in 0..=latest_start(v) {
            terms.push(format!("x_{}_{t}", v.index()));
        }
        let _ = writeln!(out, " once_{}: {} = 1", v.index(), terms.join(" + "));
    }

    // Precedence: Σ t·x_j ≥ Σ t·x_i + C_i  ⇔  Σ t·x_j − Σ t·x_i ≥ C_i.
    for (i, j) in dag.edges() {
        let mut lhs = Vec::new();
        for t in 1..=latest_start(j) {
            lhs.push(format!("{t} x_{}_{t}", j.index()));
        }
        for t in 1..=latest_start(i) {
            lhs.push(format!("- {t} x_{}_{t}", i.index()));
        }
        let body = if lhs.is_empty() {
            "0".to_owned()
        } else {
            lhs.join(" + ").replace("+ -", "-")
        };
        let _ = writeln!(out, " prec_{}_{}: {body} >= {}", i.index(), j.index(), w(i));
    }

    // Host capacity at every tick.
    for t in 0..h {
        let mut terms = Vec::new();
        for v in dag.node_ids() {
            if Some(v) == offloaded || w(v) == 0 {
                continue;
            }
            let lo = t.saturating_sub(w(v) - 1);
            for s in lo..=t.min(latest_start(v)) {
                terms.push(format!("x_{}_{s}", v.index()));
            }
        }
        if !terms.is_empty() {
            let _ = writeln!(out, " cap_{t}: {} <= {m}", terms.join(" + "));
        }
    }

    // Makespan dominates every completion.
    for v in dag.node_ids() {
        let mut terms = vec!["M".to_owned()];
        for t in 1..=latest_start(v) {
            terms.push(format!("- {t} x_{}_{t}", v.index()));
        }
        let _ = writeln!(out, " mk_{}: {} >= {}", v.index(), terms.join(" "), w(v));
    }

    let _ = writeln!(out, "Bounds\n 0 <= M <= {h}");
    let _ = writeln!(out, "Binaries");
    for v in dag.node_ids() {
        for t in 0..=latest_start(v) {
            let _ = write!(out, " x_{}_{t}", v.index());
        }
    }
    let _ = writeln!(out, "\nEnd");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetrta_dag::{DagBuilder, Ticks};

    fn small() -> (Dag, NodeId) {
        let mut b = DagBuilder::new();
        let a = b.node("a", Ticks::new(2));
        let k = b.node("k", Ticks::new(3));
        let z = b.node("z", Ticks::new(1));
        b.edges([(a, k), (k, z)]).unwrap();
        (b.build().unwrap(), k)
    }

    #[test]
    fn structure_of_lp_output() {
        let (dag, _) = small();
        let lp = to_lp_format(&dag, None, 2).unwrap();
        assert!(lp.contains("Minimize"));
        assert!(lp.contains("Subject To"));
        assert!(lp.contains("Bounds"));
        assert!(lp.contains("Binaries"));
        assert!(lp.trim_end().ends_with("End"));
        // one `once` row per node
        assert_eq!(lp.matches("once_").count(), 3);
        // one precedence row per edge
        assert_eq!(lp.matches("prec_").count(), 2);
        // horizon = chain length 6 → capacity rows 0..5
        assert!(lp.contains("cap_0:"));
        assert!(lp.contains("cap_5:"));
        assert!(!lp.contains("cap_6:"));
    }

    #[test]
    fn offloaded_node_not_in_capacity_rows() {
        let (dag, k) = small();
        let lp = to_lp_format(&dag, Some(k), 1).unwrap();
        for line in lp.lines().filter(|l| l.trim_start().starts_with("cap_")) {
            assert!(
                !line.contains("x_1_"),
                "offloaded node in capacity row: {line}"
            );
        }
        // but it still has a once-row and precedence rows
        assert!(lp.contains("once_1:"));
    }

    #[test]
    fn horizon_comes_from_feasible_schedule() {
        let (dag, k) = small();
        let lp = to_lp_format(&dag, Some(k), 2).unwrap();
        assert!(lp.contains("horizon = 6"));
    }

    #[test]
    fn errors_propagate() {
        let (dag, _) = small();
        assert!(to_lp_format(&dag, None, 0).is_err());
    }
}
