//! # hetrta-exact — exact minimum makespan of heterogeneous DAG tasks
//!
//! The paper's accuracy experiment (§5.3, Figure 7) compares the analytical
//! bounds against "the minimum time interval needed to execute a given
//! heterogeneous DAG task on m cores and one accelerator device", computed
//! by an ILP formulation solved with IBM CPLEX. CPLEX is proprietary; this
//! crate substitutes a **branch-and-bound solver over active schedules**
//! that computes the *same quantity exactly* (see DESIGN.md §4):
//!
//! * serial schedule-generation branching (every active schedule is
//!   reachable; the active set contains an optimal schedule for makespan);
//! * dedicated-resource dominance: the offloaded node and zero-WCET nodes
//!   are dispatched greedily (provably optimal);
//! * critical-path + workload ("water-filling") lower bounds at every node;
//! * a critical-path-first list schedule as the initial incumbent;
//! * state dominance pruning keyed on the scheduled set;
//! * an explored-node budget with [`Optimality`] status, mirroring the
//!   paper's "instances CPLEX solved within 12 h" cutoff.
//!
//! For users who *do* have an external MILP solver, [`lp`] renders the
//! time-indexed ILP formulation (after Melani et al., ASP-DAC 2017 — the
//! paper's reference \[13\]) in CPLEX LP file format.
//!
//! ## Example
//!
//! ```
//! use hetrta_dag::{DagBuilder, Ticks};
//! use hetrta_exact::{solve, SolverConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = DagBuilder::new();
//! let a = b.node("a", Ticks::new(1));
//! let x = b.node("x", Ticks::new(4));
//! let y = b.node("y", Ticks::new(4));
//! let z = b.node("z", Ticks::new(1));
//! b.edges([(a, x), (a, y), (x, z), (y, z)])?;
//! let dag = b.build()?;
//!
//! let sol = solve(&dag, None, 2, &SolverConfig::default())?;
//! assert_eq!(sol.makespan(), Ticks::new(6)); // a; x ∥ y; z
//! assert!(sol.is_optimal());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bounds;
mod error;
mod heuristics;
pub mod lp;
mod schedule;
mod solver;

pub use error::ExactError;
pub use heuristics::list_schedule_cp_first;
pub use schedule::{ExactSchedule, Optimality};
pub use solver::{
    solve, solve_hetero_task, solve_with, SolverConfig, SolverWorkspace, MAX_NODES_SUPPORTED,
};
