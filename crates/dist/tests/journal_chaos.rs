//! Crash-safe distributed sweeps: the coordinator journals every
//! accepted job, a resumed run executes only the remainder, and a
//! seeded fault plan drives deterministic chaos (generalized worker
//! kills + worker-side disk/wire faults) without losing a single job.

use std::path::PathBuf;
use std::sync::Arc;

use hetrta_dist::{run_distributed, DistConfig, WorkerLauncher};
use hetrta_engine::{Engine, FaultPlan, GeneratorPreset, JournalConfig, SweepJournal, SweepSpec};

fn launcher() -> WorkerLauncher {
    WorkerLauncher {
        program: PathBuf::from(env!("CARGO_BIN_EXE_hetrta-dist-worker")),
        args: Vec::new(),
    }
}

fn spec() -> SweepSpec {
    SweepSpec::fractions(
        GeneratorPreset::Small,
        vec![2, 4],
        vec![0.1, 0.3],
        4,
        0xD15C,
    )
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hetrta-dist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn resumed_coordinator_replays_the_journal_and_executes_only_the_remainder() {
    let spec = spec();
    let local = Engine::new(0).run(&spec).expect("local run");
    let total = local.stats.jobs;

    // Simulate a run that crashed after 4 jobs: journal exactly those
    // `done` records (no seal — the "crash" tears the active segment
    // boundary, which the reader tolerates).
    let dir = temp_dir("journal");
    let journaled = [0usize, 3, 7, 11];
    {
        let cfg = JournalConfig::new(&dir);
        let (journal, replay) =
            SweepJournal::open(&cfg, &spec, total).expect("fresh journal opens");
        assert!(replay.results.is_empty());
        Engine::new(1)
            .run_job_subset(&spec, &journaled, |result| {
                journal.record_done(&result);
            })
            .expect("prefix subset runs");
    }

    let mut config = DistConfig::local(2, launcher());
    config.worker_threads = 2;
    config.journal = Some(JournalConfig::new(&dir).resuming());
    let out = run_distributed(&spec, &config, &hetrta_obs::NOOP, None, |_| {})
        .expect("resumed distributed run");

    assert_eq!(out.completed, total, "replayed + executed covers the sweep");
    assert_eq!(
        out.worker_jobs.iter().sum::<u64>(),
        (total - journaled.len()) as u64,
        "the fleet executed only the remainder — zero re-executed jobs"
    );
    assert_eq!(
        out.aggregate, local.aggregate,
        "resumed distributed aggregate is bitwise identical to one uninterrupted local run"
    );

    // Resuming the now-complete journal needs no fleet and re-executes
    // nothing at all.
    let out = run_distributed(&spec, &config, &hetrta_obs::NOOP, None, |_| {})
        .expect("fully-replayed run");
    assert_eq!(out.completed, total);
    assert_eq!(out.worker_jobs.iter().sum::<u64>(), 0);
    assert_eq!(out.aggregate, local.aggregate);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seeded_fault_plan_kills_a_worker_and_no_job_is_lost() {
    // Heavy enough jobs that the plan-drawn kill lands mid-shard.
    let spec = SweepSpec::fractions(
        GeneratorPreset::LargeGraphs(2500),
        vec![2],
        vec![0.1, 0.3],
        10,
        0xFA_17,
    );
    let local = Engine::new(0).run(&spec).expect("local run");

    let cache = temp_dir("chaos-cache");
    let mut config = DistConfig::local(2, launcher());
    config.worker_threads = 2;
    config.cache_dir = Some(cache.clone());
    // Forwarded `--chaos` also arms worker-side disk/wire faults, which
    // can cost extra (recoverable) deaths; give the budget headroom.
    config.max_respawns = 5;
    // No explicit kill hook: the generalized schedule draws a
    // deterministic (worker, K) from the plan's `dist.kill_worker`
    // stream. Restricting the plan keeps coordinator-side wire faults
    // out of this test (they get their own soak in CI).
    let plan = Arc::new(FaultPlan::new(0xC4A05).restrict_to(["dist.kill_worker"]));
    config.fault = Some(Arc::clone(&plan));

    let out = run_distributed(&spec, &config, &hetrta_obs::NOOP, None, |_| {})
        .expect("chaos run completes");

    assert_eq!(out.completed, out.total, "zero lost jobs");
    assert!(
        out.worker_deaths >= 1,
        "the plan-drawn kill fired and was detected"
    );
    assert_eq!(
        out.aggregate, local.aggregate,
        "bitwise-identical aggregate despite the plan-drawn kill"
    );
    let events = plan.events();
    assert!(
        events.iter().any(|e| e.site == "dist.kill_worker"),
        "the kill draw is on the fault-event log"
    );
    // Same seed, same draw: the schedule is a pure function of the plan.
    let replay = FaultPlan::new(0xC4A05).restrict_to(["dist.kill_worker"]);
    let bits = replay.draw("dist.kill_worker");
    assert_eq!(
        events[0].bits, bits,
        "identical fault sequence for the seed"
    );

    let _ = std::fs::remove_dir_all(&cache);
}
