//! Property tests of the coordinator ⇄ worker protocol against
//! defective bytes: truncation of any `DistMsg` frame reads back as a
//! typed error, bitflips never panic, and the payload decoder survives
//! arbitrary bytes — the contract the `--chaos` wire faults rely on.

use std::io::Cursor;
use std::sync::OnceLock;
use std::time::Duration;

use hetrta_dist::{DistMsg, WireJobResult};
use hetrta_engine::{GeneratorPreset, JobMetrics, SweepSpec};
use proptest::prelude::*;

fn tiny_spec() -> SweepSpec {
    SweepSpec::fractions(GeneratorPreset::Small, vec![2], vec![0.1], 1, 0xFADE)
}

/// Every message kind once, encoded to its frame bytes.
fn sample_frames() -> &'static Vec<Vec<u8>> {
    static FRAMES: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    FRAMES.get_or_init(|| {
        let messages = [
            DistMsg::Hello { worker: 1 },
            DistMsg::Assign {
                indices: vec![0, 3, 7, 11],
                spec: Box::new(tiny_spec()),
            },
            DistMsg::JobDone(Box::new(WireJobResult {
                index: 3,
                cell: 1,
                identity: 0xDEAD_BEEF_CAFE,
                cache_hit: false,
                wall_time: Duration::from_micros(417),
                metrics: Ok(JobMetrics::Skipped),
            })),
            DistMsg::JobDone(Box::new(WireJobResult {
                index: 4,
                cell: 2,
                identity: 7,
                cache_hit: true,
                wall_time: Duration::from_millis(3),
                metrics: Err("worker error: demo".into()),
            })),
            DistMsg::Heartbeat { jobs_done: 42 },
            DistMsg::ShardDone { completed: 9 },
            DistMsg::Shutdown,
        ];
        messages
            .iter()
            .map(|msg| {
                let mut buf = Vec::new();
                msg.write_to(&mut buf).expect("encode message");
                buf
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn truncated_dist_frames_read_back_as_typed_errors(
        pick in 0usize..10_000,
        cut_seed in 0usize..1_000_000,
    ) {
        let frames = sample_frames();
        let frame = &frames[pick % frames.len()];
        let cut = cut_seed % frame.len();
        prop_assert!(DistMsg::read_from(&mut Cursor::new(&frame[..cut])).is_err());
    }

    #[test]
    fn bitflipped_dist_frames_never_panic(
        pick in 0usize..10_000,
        bit_seed in 0usize..10_000_000,
    ) {
        let frames = sample_frames();
        let frame = &frames[pick % frames.len()];
        let bit = bit_seed % (frame.len() * 8);
        let mut corrupted = frame.clone();
        corrupted[bit / 8] ^= 1 << (bit % 8);
        let _ = DistMsg::read_from(&mut Cursor::new(&corrupted));
    }

    #[test]
    fn arbitrary_payload_bytes_never_panic_the_decoder(
        kind in 0u8..=255,
        payload in proptest::collection::vec(0u8..=255, 0..200),
    ) {
        let _ = DistMsg::decode(kind, &payload);
    }
}
