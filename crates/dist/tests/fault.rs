//! Fault injection: SIGKILL a worker mid-sweep and prove zero jobs are
//! lost — the coordinator re-dispatches the dead worker's unfinished
//! shard and the final aggregate is bitwise identical to a
//! single-process run.

use std::path::PathBuf;

use hetrta_dist::{run_distributed, DistConfig, DistProgress, WorkerLauncher};
use hetrta_engine::{Engine, GeneratorPreset, SweepSpec};

fn launcher() -> WorkerLauncher {
    WorkerLauncher {
        program: PathBuf::from(env!("CARGO_BIN_EXE_hetrta-dist-worker")),
        args: Vec::new(),
    }
}

#[test]
fn sigkilled_worker_is_respawned_and_no_job_is_lost() {
    // Jobs heavy enough (≥ ~10ms each even in release) that the kill
    // lands while worker 0 still owes most of its 10-job shard.
    let spec = SweepSpec::fractions(
        GeneratorPreset::LargeGraphs(2500),
        vec![2],
        vec![0.1, 0.3],
        10,
        0xFA_17,
    );
    let local = Engine::new(0).run(&spec).expect("local run");

    let dir = std::env::temp_dir().join(format!("hetrta-dist-fault-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = DistConfig::local(2, launcher());
    config.worker_threads = 2;
    config.cache_dir = Some(dir.clone());
    // Chaos hook: the coordinator SIGKILLs worker 0's process (that is
    // what `Child::kill` delivers on unix) after accepting 2 of its
    // jobs.
    config.chaos_kill_after = Some((0, 2));

    let mut downs = 0u64;
    let out = run_distributed(&spec, &config, &hetrta_obs::NOOP, None, |p| {
        if let DistProgress::WorkerDown { redispatched, .. } = p {
            assert!(redispatched > 0);
            downs += 1;
        }
    })
    .expect("distributed run survives the kill");

    assert!(out.worker_deaths >= 1, "the kill was detected");
    assert_eq!(downs, out.worker_deaths);
    assert!(
        out.redispatched_jobs >= 1,
        "orphaned jobs were re-dispatched"
    );
    assert!(out.respawns >= 1, "a replacement worker was spawned");
    assert_eq!(out.completed, out.total, "zero lost jobs");
    assert_eq!(out.worker_jobs.iter().sum::<u64>(), out.total as u64);
    assert_eq!(
        out.aggregate, local.aggregate,
        "the aggregate is bitwise identical despite the mid-sweep kill"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
