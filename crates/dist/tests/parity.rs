//! Golden-aggregate parity: a distributed sweep must produce *bitwise*
//! the aggregate of a single-process run — cold, warm (shared disk
//! cache), and for any worker count.

use std::path::PathBuf;

use hetrta_dist::{run_distributed, shard_indices, DistConfig, DistProgress, WorkerLauncher};
use hetrta_engine::{Aggregator, Engine, GeneratorPreset, SweepSpec};

fn launcher() -> WorkerLauncher {
    WorkerLauncher {
        program: PathBuf::from(env!("CARGO_BIN_EXE_hetrta-dist-worker")),
        args: Vec::new(),
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hetrta-dist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fig8_spec() -> SweepSpec {
    // A small Figure-8-shaped sweep: 2 core counts × 2 fractions × 6
    // tasks per point = 24 jobs.
    SweepSpec::fractions(
        GeneratorPreset::Small,
        vec![2, 4],
        vec![0.1, 0.3],
        6,
        0xDAC_2018,
    )
}

#[test]
fn distributed_aggregate_is_bitwise_the_single_process_one() {
    let spec = fig8_spec();
    let local = Engine::new(2).run(&spec).expect("local run");
    let dir = temp_dir("parity");

    let mut config = DistConfig::local(2, launcher());
    config.worker_threads = 2;
    config.cache_dir = Some(dir.clone());
    config.partial_every = Some(5);

    // Cold: every job computed somewhere in the fleet.
    let mut jobs_seen = 0usize;
    let mut partials = 0usize;
    let cold = run_distributed(&spec, &config, &hetrta_obs::NOOP, None, |p| match p {
        DistProgress::Job { .. } => jobs_seen += 1,
        DistProgress::Partial {
            completed, total, ..
        } => {
            assert!(completed <= total);
            partials += 1;
        }
        DistProgress::WorkerDown { .. } => panic!("no worker should die here"),
    })
    .expect("cold distributed run");
    assert_eq!(cold.total, spec.job_count());
    assert_eq!(cold.completed, cold.total);
    assert_eq!(jobs_seen, cold.total);
    assert!(partials > 0, "partial snapshots streamed");
    assert!(!cold.cancelled);
    assert_eq!(cold.worker_deaths, 0);
    assert_eq!(cold.duplicates, 0);
    assert_eq!(
        cold.aggregate, local.aggregate,
        "cold dist == single-process"
    );
    assert_eq!(cold.worker_jobs.len(), 2);
    assert_eq!(cold.worker_jobs.iter().sum::<u64>(), cold.total as u64);
    assert!(
        cold.worker_jobs.iter().all(|&j| j > 0),
        "both workers contributed: {:?}",
        cold.worker_jobs
    );
    assert!(cold.bytes_tx > 0 && cold.bytes_rx > 0);

    // Warm: a *fresh* fleet over the same cache directory replays every
    // job from disk — warm cells never recompute anywhere.
    let mut warm_hits = 0usize;
    let warm = run_distributed(&spec, &config, &hetrta_obs::NOOP, None, |p| {
        if let DistProgress::Job { cache_hit, .. } = p {
            warm_hits += usize::from(cache_hit);
        }
    })
    .expect("warm distributed run");
    assert_eq!(
        warm.aggregate, local.aggregate,
        "warm dist == single-process"
    );
    assert_eq!(
        warm_hits, warm.total,
        "every warm job came from the shared cache"
    );

    // Worker-count invariance: 3 workers over the warm cache, same bits.
    let mut wide = config.clone();
    wide.workers = 3;
    let three =
        run_distributed(&spec, &wide, &hetrta_obs::NOOP, None, |_| {}).expect("3-worker run");
    assert_eq!(
        three.aggregate, local.aggregate,
        "3 workers == single-process"
    );
    assert_eq!(three.worker_jobs.len(), 3);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn in_process_shards_reassemble_bitwise() {
    // The `--shard i/k` building block: running each deterministic
    // shard in its own engine and merging through one aggregator equals
    // the unsharded run exactly.
    let spec = fig8_spec();
    let local = Engine::new(2).run(&spec).expect("local run");
    let (cells, jobs) = spec.expand();
    let mut merged = Aggregator::new(cells, jobs.len(), spec.cell_shape());
    for shard in 0..3 {
        let engine = Engine::new(2);
        let indices = shard_indices(jobs.len(), shard, 3);
        let ran = engine
            .run_job_subset(&spec, &indices, |result| merged.accept(result))
            .expect("shard runs");
        assert_eq!(ran, indices.len());
    }
    assert_eq!(merged.finalize().expect("complete"), local.aggregate);
}

#[test]
fn cancellation_stops_the_fleet_with_a_partial_outcome() {
    let spec = fig8_spec();
    let cancel = std::sync::atomic::AtomicBool::new(true); // cancelled up front
    let config = DistConfig::local(2, launcher());
    let out = run_distributed(&spec, &config, &hetrta_obs::NOOP, Some(&cancel), |_| {})
        .expect("cancelled run still returns");
    assert!(out.cancelled);
    assert!(out.completed < out.total);
}
