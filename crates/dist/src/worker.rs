//! The worker side of a distributed sweep: one process, one engine,
//! assignments over a socket.
//!
//! A worker connects to the coordinator, introduces itself with
//! [`DistMsg::Hello`], and then loops: receive an assignment, run the
//! indices through [`Engine::run_job_subset`], stream one
//! [`DistMsg::JobDone`] per result, finish with [`DistMsg::ShardDone`],
//! and wait for the next assignment (or [`DistMsg::Shutdown`]). A
//! background thread sends [`DistMsg::Heartbeat`]s on a fixed cadence,
//! so the coordinator distinguishes a worker grinding through an
//! expensive job from one that died — the job loop itself may go quiet
//! for seconds.
//!
//! Workers pointed at the same `--cache-dir` share one disk-cache
//! namespace: keys are content-addressed, so a cell warmed by any fleet
//! member (or by an earlier single-process run) is a pure read for
//! every other.

use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use hetrta_api::wire::FrameFaults;
use hetrta_engine::{Engine, EngineBuilder, FaultPlan};
use hetrta_obs::{span, Recorder};

use crate::protocol::{DistMsg, WireJobResult};
use crate::DistError;

/// How a worker process joins a fleet.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Coordinator address to connect to (`host:port`).
    pub addr: String,
    /// This worker's fleet slot, announced in the hello.
    pub worker: usize,
    /// Engine threads (0 = all cores).
    pub threads: usize,
    /// Shared disk-cache directory, if the fleet runs warm.
    pub cache_dir: Option<PathBuf>,
    /// Heartbeat cadence. Must be well under the coordinator's timeout.
    pub heartbeat_every: Duration,
    /// Chaos seed (the `--chaos` flag): builds a deterministic
    /// [`FaultPlan`] injecting disk faults into this worker's engine,
    /// wire faults into its frames, and delays into its heartbeats. The
    /// per-worker stream is derived from `(seed, slot)` so fleet
    /// members don't fault in lockstep.
    pub chaos: Option<u64>,
}

impl WorkerConfig {
    /// The default heartbeat cadence (the coordinator's default timeout
    /// is ten times this).
    pub const DEFAULT_HEARTBEAT: Duration = Duration::from_millis(200);
}

/// Runs one worker until the coordinator shuts it down or hangs up.
/// Returns the total number of jobs completed across assignments.
///
/// # Errors
///
/// [`DistError::Io`] / [`DistError::Wire`] on connection trouble,
/// [`DistError::Engine`] when the engine cannot be built or an
/// assignment names out-of-range indices. A clean [`DistMsg::Shutdown`]
/// and a bare hangup between assignments both end the loop normally: a
/// worker must not report failure just because the coordinator left
/// first.
pub fn run_worker(config: &WorkerConfig, recorder: &dyn Recorder) -> Result<u64, DistError> {
    let _span = span!(recorder, "dist.worker", worker = config.worker);
    let stream = TcpStream::connect(&config.addr)
        .map_err(|e| DistError::Io(format!("connect to coordinator {}: {e}", config.addr)))?;
    let mut reader = stream
        .try_clone()
        .map_err(|e| DistError::Io(format!("clone worker stream: {e}")))?;
    // The job loop and the heartbeat thread share the write half; frames
    // must not interleave mid-frame, so writes go through a mutex.
    let writer = Arc::new(Mutex::new(stream));

    // Derive this worker's fault stream from (seed, slot): same seed →
    // same per-worker fault sequence, but the fleet doesn't fault in
    // lockstep.
    let fault = config.chaos.map(|seed| {
        Arc::new(FaultPlan::new(
            seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(config.worker as u64 + 1),
        ))
    });

    let mut engine = EngineBuilder::new().threads(config.threads);
    if let Some(dir) = &config.cache_dir {
        engine = engine.with_cache_dir(dir);
    }
    if let Some(plan) = &fault {
        engine = engine.with_fault_plan(Arc::clone(plan));
    }
    let engine: Engine = engine.build()?;

    // The hello is deliberately exempt from wire faults: a respawned
    // worker replays the same derived fault stream, so a corrupt hello
    // would deterministically kill every replacement of this slot.
    DistMsg::Hello {
        worker: config.worker,
    }
    .write_to(&mut *lock(&writer))?;

    let jobs_done = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let heartbeat = {
        let writer = Arc::clone(&writer);
        let jobs_done = Arc::clone(&jobs_done);
        let stop = Arc::clone(&stop);
        let every = config.heartbeat_every;
        let fault = fault.clone();
        std::thread::spawn(move || loop {
            std::thread::sleep(every);
            if stop.load(Ordering::Relaxed) {
                return;
            }
            // Chaos: delay this beat, pushing the worker toward (but not
            // deterministically past) the coordinator's silence timeout.
            if let Some(bits) = fault
                .as_deref()
                .and_then(|p| p.fires("dist.heartbeat_delay"))
            {
                std::thread::sleep(Duration::from_millis(1 + bits % 200));
            }
            let beat = DistMsg::Heartbeat {
                jobs_done: jobs_done.load(Ordering::Relaxed),
            };
            // A failed write means the coordinator is gone; the main
            // loop will notice on its next read. Just stop beating.
            if beat
                .write_to_with(&mut *lock(&writer), faults_of(&fault))
                .is_err()
            {
                return;
            }
        })
    };

    let outcome = assignment_loop(&mut reader, &engine, &writer, &jobs_done, &fault, recorder);
    stop.store(true, Ordering::Relaxed);
    // Unblock quickly: the heartbeat thread wakes at most one cadence
    // later and exits on the stop flag.
    let _ = heartbeat.join();
    outcome.map(|()| jobs_done.load(Ordering::Relaxed))
}

fn assignment_loop(
    reader: &mut TcpStream,
    engine: &Engine,
    writer: &Arc<Mutex<TcpStream>>,
    jobs_done: &AtomicU64,
    fault: &Option<Arc<FaultPlan>>,
    recorder: &dyn Recorder,
) -> Result<(), DistError> {
    loop {
        match DistMsg::read_from_with(reader, faults_of(fault)) {
            Ok(DistMsg::Assign { indices, spec }) => {
                let _span = span!(recorder, "dist.assignment", jobs = indices.len());
                let mut completed = 0usize;
                engine.run_job_subset(&spec, &indices, |result| {
                    let msg = DistMsg::JobDone(Box::new(WireJobResult::from(&result)));
                    // A send failure here means the coordinator is gone
                    // mid-assignment; keep draining the pool (results
                    // still land in the shared caches) and let the next
                    // read surface the hangup.
                    let _ = msg.write_to_with(&mut *lock(writer), faults_of(fault));
                    completed += 1;
                    jobs_done.fetch_add(1, Ordering::Relaxed);
                })?;
                DistMsg::ShardDone { completed }
                    .write_to_with(&mut *lock(writer), faults_of(fault))?;
            }
            Ok(DistMsg::Shutdown) => return Ok(()),
            Ok(other) => {
                return Err(DistError::Io(format!(
                    "unexpected message from coordinator: {other:?}"
                )))
            }
            Err(hetrta_api::wire::WireError::Eof) => return Ok(()),
            Err(e) => return Err(DistError::Wire(e)),
        }
    }
}

fn lock(writer: &Arc<Mutex<TcpStream>>) -> std::sync::MutexGuard<'_, TcpStream> {
    writer
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The worker-side frame-fault seam: present only under `--chaos`.
fn faults_of(fault: &Option<Arc<FaultPlan>>) -> Option<&dyn FrameFaults> {
    fault.as_deref().map(|p| p as &dyn FrameFaults)
}
