//! Deterministic sharding of a spec's job expansion across a fleet.
//!
//! The shard function is pure arithmetic on the expansion index —
//! `index % shards == shard` — so every participant (coordinator,
//! workers, an operator running one shard by hand with
//! `hetrta engine sweep --shard i/k`) derives the same partition from
//! the spec alone, with no assignment table to distribute. Round-robin
//! also interleaves neighbouring grid cells across workers, which keeps
//! per-worker cost balanced even when one end of the grid is heavier.

/// The expansion indices of shard `shard` of `shards`, ascending.
///
/// Every index in `0..job_count` lands in exactly one shard; shards
/// differ in size by at most one job. An out-of-range `shard` yields an
/// empty vector (callers validate with [`parse_shard`]).
#[must_use]
pub fn shard_indices(job_count: usize, shard: usize, shards: usize) -> Vec<usize> {
    if shards == 0 || shard >= shards {
        return Vec::new();
    }
    (shard..job_count).step_by(shards).collect()
}

/// Parses an `i/k` shard argument (shard `i` of `k`, zero-based).
///
/// # Errors
///
/// A human-readable message when the argument is not `i/k` with
/// `k >= 1` and `i < k`.
pub fn parse_shard(arg: &str) -> Result<(usize, usize), String> {
    let (i, k) = arg
        .split_once('/')
        .ok_or_else(|| format!("shard `{arg}` is not of the form i/k (e.g. 0/4)"))?;
    let shard: usize = i
        .parse()
        .map_err(|_| format!("shard index `{i}` is not a number"))?;
    let shards: usize = k
        .parse()
        .map_err(|_| format!("shard count `{k}` is not a number"))?;
    if shards == 0 {
        return Err("shard count must be at least 1".into());
    }
    if shard >= shards {
        return Err(format!(
            "shard index {shard} is out of range for {shards} shards (indices are zero-based)"
        ));
    }
    Ok((shard, shards))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_partition_the_expansion() {
        for job_count in [0usize, 1, 7, 32, 100] {
            for shards in [1usize, 2, 3, 8, 150] {
                let mut seen = vec![false; job_count];
                let mut sizes = Vec::new();
                for shard in 0..shards {
                    let indices = shard_indices(job_count, shard, shards);
                    assert!(indices.windows(2).all(|w| w[0] < w[1]), "ascending");
                    for &index in &indices {
                        assert!(!seen[index], "index {index} assigned twice");
                        seen[index] = true;
                        assert_eq!(index % shards, shard);
                    }
                    sizes.push(indices.len());
                }
                assert!(seen.iter().all(|&s| s), "every index assigned");
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "balanced within one job");
            }
        }
    }

    #[test]
    fn out_of_range_shards_are_empty() {
        assert!(shard_indices(10, 3, 3).is_empty());
        assert!(shard_indices(10, 0, 0).is_empty());
    }

    #[test]
    fn shard_args_parse_and_reject() {
        assert_eq!(parse_shard("0/4"), Ok((0, 4)));
        assert_eq!(parse_shard("3/4"), Ok((3, 4)));
        assert_eq!(parse_shard("0/1"), Ok((0, 1)));
        for bad in ["", "3", "a/4", "1/b", "4/4", "5/2", "1/0", "1/2/3"] {
            assert!(parse_shard(bad).is_err(), "accepted `{bad}`");
        }
    }
}
