//! Standalone dist worker binary.
//!
//! Spawned by the coordinator (and by the integration tests); the
//! `hetrta dist worker` subcommand accepts the same flags and calls the
//! same [`hetrta_dist::run_worker`] entry point.

use std::path::PathBuf;
use std::time::Duration;

use hetrta_dist::{run_worker, WorkerConfig};

fn parse_args(args: &[String]) -> Result<WorkerConfig, String> {
    let mut config = WorkerConfig {
        addr: String::new(),
        worker: 0,
        threads: 0,
        cache_dir: None,
        heartbeat_every: WorkerConfig::DEFAULT_HEARTBEAT,
        chaos: None,
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |what: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a {what}"))
        };
        match flag.as_str() {
            "--connect" => config.addr = value("coordinator address")?,
            "--worker" => {
                config.worker = value("worker id")?
                    .parse()
                    .map_err(|_| format!("{flag} needs a number"))?;
            }
            "--threads" => {
                config.threads = value("thread count")?
                    .parse()
                    .map_err(|_| format!("{flag} needs a number"))?;
            }
            "--cache-dir" => config.cache_dir = Some(PathBuf::from(value("directory")?)),
            "--heartbeat-ms" => {
                let ms: u64 = value("milliseconds")?
                    .parse()
                    .map_err(|_| format!("{flag} needs a number"))?;
                config.heartbeat_every = Duration::from_millis(ms.max(1));
            }
            "--chaos" => {
                let raw = value("seed")?;
                let seed = raw
                    .strip_prefix("0x")
                    .map_or_else(|| raw.parse(), |hex| u64::from_str_radix(hex, 16))
                    .map_err(|_| format!("{flag} needs a seed (decimal or 0x hex)"))?;
                config.chaos = Some(seed);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if config.addr.is_empty() {
        return Err("--connect <host:port> is required".into());
    }
    Ok(config)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(msg) => {
            eprintln!("hetrta-dist-worker: {msg}");
            eprintln!(
                "usage: hetrta-dist-worker --connect <host:port> [--worker N] \
                 [--threads N] [--cache-dir DIR] [--heartbeat-ms N] [--chaos SEED]"
            );
            std::process::exit(2);
        }
    };
    match run_worker(&config, &hetrta_obs::NOOP) {
        Ok(_jobs) => {}
        Err(e) => {
            eprintln!("hetrta-dist-worker: {e}");
            std::process::exit(1);
        }
    }
}
