//! The coordinator ⇄ worker control protocol, over the checksummed
//! frame layer of `hetrta-api` ([`hetrta_api::wire`]).
//!
//! Distributed sweeps speak six message kinds (`0x20`–`0x25`, disjoint
//! from the serve request/reply kinds and the outcome/aggregate kinds):
//! a worker introduces itself with [`DistMsg::Hello`], the coordinator
//! hands it a shard with [`DistMsg::Assign`] (the job indices plus the
//! full spec text — workers re-expand the spec themselves, so only
//! indices travel), and the worker streams one [`DistMsg::JobDone`] per
//! finished job, a periodic [`DistMsg::Heartbeat`], and a terminal
//! [`DistMsg::ShardDone`]. Payloads are textual in the bit-exact style
//! of [`AnalysisOutcome::encode`](hetrta_api::AnalysisOutcome::encode):
//! every `f64` crosses the wire as its bit pattern, so a re-assembled
//! aggregate is *bitwise* the single-process one.

use std::io::{Read, Write};
use std::time::Duration;

use hetrta_api::wire::{self, malformed, parse_num, text_payload, Tokens, WireError};
use hetrta_api::AnalysisOutcome;
use hetrta_engine::wire::{decode_spec, encode_spec};
use hetrta_engine::{JobMetrics, JobResult, SweepSpec};

/// Frame kind of a [`DistMsg::Assign`].
pub const KIND_ASSIGN: u8 = 0x20;
/// Frame kind of a [`DistMsg::JobDone`].
pub const KIND_JOB_DONE: u8 = 0x21;
/// Frame kind of a [`DistMsg::Heartbeat`].
pub const KIND_HEARTBEAT: u8 = 0x22;
/// Frame kind of a [`DistMsg::ShardDone`].
pub const KIND_SHARD_DONE: u8 = 0x23;
/// Frame kind of a [`DistMsg::Shutdown`].
pub const KIND_SHUTDOWN: u8 = 0x24;
/// Frame kind of a [`DistMsg::Hello`].
pub const KIND_HELLO: u8 = 0x25;

/// Bytes one frame adds around its payload (magic + version + kind +
/// length + checksum) — the byte-accounting constant the coordinator's
/// `bytes_tx`/`bytes_rx` counters use.
pub const FRAME_OVERHEAD: usize = 19;

/// A [`JobResult`] minus its coordinator-irrelevant parts: per-analysis
/// timings feed the *worker's* cost model and stay there, and the
/// executing thread id is replaced by the dist-level worker id on
/// reconstruction.
#[derive(Debug, Clone, PartialEq)]
pub struct WireJobResult {
    /// The job's expansion index.
    pub index: usize,
    /// The cell it contributes to.
    pub cell: usize,
    /// Stable content key of the job's input recipe.
    pub identity: u128,
    /// Whether the worker served it entirely from its caches.
    pub cache_hit: bool,
    /// Wall-clock execution time on the worker.
    pub wall_time: Duration,
    /// Metrics, or the failure message.
    pub metrics: Result<JobMetrics, String>,
}

impl From<&JobResult> for WireJobResult {
    fn from(result: &JobResult) -> Self {
        WireJobResult {
            index: result.index,
            cell: result.cell,
            identity: result.identity,
            cache_hit: result.cache_hit,
            wall_time: result.wall_time,
            metrics: result.metrics.clone(),
        }
    }
}

impl WireJobResult {
    /// Reconstructs an aggregator-ready [`JobResult`], attributing the
    /// job to dist worker `worker`.
    #[must_use]
    pub fn into_result(self, worker: usize) -> JobResult {
        JobResult {
            index: self.index,
            cell: self.cell,
            worker,
            identity: self.identity,
            cache_hit: self.cache_hit,
            wall_time: self.wall_time,
            timings: Vec::new(),
            metrics: self.metrics,
        }
    }
}

/// One coordinator ⇄ worker message.
#[derive(Debug, Clone)]
pub enum DistMsg {
    /// Worker → coordinator, first frame on a fresh connection: which
    /// fleet slot this process is (re-)attaching as.
    Hello {
        /// The worker's fleet slot (`0..workers`).
        worker: usize,
    },
    /// Coordinator → worker: run these expansion indices of this spec.
    /// A worker may receive several assignments over its lifetime (its
    /// own shard first, orphaned indices of a dead peer later).
    Assign {
        /// Expansion indices to run, ascending.
        indices: Vec<usize>,
        /// The sweep (boxed: a spec is large next to the other kinds).
        spec: Box<SweepSpec>,
    },
    /// Worker → coordinator: one finished job.
    JobDone(Box<WireJobResult>),
    /// Worker → coordinator, periodic liveness signal (also sent while a
    /// long job computes, so a busy worker is not mistaken for a dead
    /// one).
    Heartbeat {
        /// Jobs this worker has finished so far, across assignments.
        jobs_done: u64,
    },
    /// Worker → coordinator: the current assignment is fully streamed.
    ShardDone {
        /// Jobs the assignment completed.
        completed: usize,
    },
    /// Coordinator → worker: drain and exit cleanly.
    Shutdown,
}

fn encode_indices(indices: &[usize]) -> String {
    if indices.is_empty() {
        return "-".into();
    }
    let strings: Vec<String> = indices.iter().map(usize::to_string).collect();
    strings.join(",")
}

fn decode_indices(s: &str) -> Result<Vec<usize>, WireError> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(',').map(|t| parse_num(t, "job index")).collect()
}

fn encode_job(result: &WireJobResult) -> String {
    let mut out = format!(
        "job {} {} {:032x} {} {} ",
        result.index,
        result.cell,
        result.identity,
        u8::from(result.cache_hit),
        result.wall_time.as_nanos()
    );
    match &result.metrics {
        Ok(JobMetrics::Outcomes(outcomes)) => {
            out.push_str(&format!("outcomes {}", outcomes.len()));
            for outcome in outcomes {
                out.push('\n');
                out.push_str(&outcome.encode());
            }
        }
        Ok(JobMetrics::Skipped) => out.push_str("skipped"),
        Err(message) => {
            out.push_str("error\n");
            out.push_str(message);
        }
    }
    out
}

fn decode_job(text: &str) -> Result<WireJobResult, WireError> {
    let (header, rest) = match text.split_once('\n') {
        Some((header, rest)) => (header, rest),
        None => (text, ""),
    };
    let mut tokens = Tokens::new(header, "job result");
    if tokens.next()? != "job" {
        return Err(malformed(format!("job result header `{header}`")));
    }
    let index = parse_num(tokens.next()?, "job index")?;
    let cell = parse_num(tokens.next()?, "cell index")?;
    let identity = {
        let hex = tokens.next()?;
        if hex.len() != 32 {
            return Err(malformed(format!("identity `{hex}` is not 32 hex digits")));
        }
        u128::from_str_radix(hex, 16)
            .map_err(|_| malformed(format!("unparseable identity `{hex}`")))?
    };
    let cache_hit = match tokens.next()? {
        "0" => false,
        "1" => true,
        other => return Err(malformed(format!("cache-hit bit `{other}` is not 0/1"))),
    };
    let wall_time = {
        let nanos: u64 = parse_num(tokens.next()?, "wall time")?;
        Duration::from_nanos(nanos)
    };
    let metrics = match tokens.next()? {
        "outcomes" => {
            let count: usize = parse_num(tokens.next()?, "outcome count")?;
            tokens.finish()?;
            let lines: Vec<&str> = if rest.is_empty() {
                Vec::new()
            } else {
                rest.lines().collect()
            };
            if lines.len() != count {
                return Err(malformed(format!(
                    "job result promises {count} outcomes, carries {}",
                    lines.len()
                )));
            }
            let outcomes = lines
                .iter()
                .map(|line| {
                    AnalysisOutcome::decode(line)
                        .ok_or_else(|| malformed(format!("unparseable outcome line `{line}`")))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(JobMetrics::Outcomes(outcomes))
        }
        "skipped" => {
            tokens.finish()?;
            if !rest.is_empty() {
                return Err(malformed("trailing lines after a skipped job result"));
            }
            Ok(JobMetrics::Skipped)
        }
        // The message is the whole remaining text (it may span lines).
        "error" => {
            tokens.finish()?;
            Err(rest.to_string())
        }
        other => return Err(malformed(format!("unknown job metrics tag `{other}`"))),
    };
    Ok(WireJobResult {
        index,
        cell,
        identity,
        cache_hit,
        wall_time,
        metrics,
    })
}

impl DistMsg {
    /// Encodes this message as `(frame kind, payload)`.
    #[must_use]
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            DistMsg::Hello { worker } => (KIND_HELLO, format!("worker {worker}").into_bytes()),
            DistMsg::Assign { indices, spec } => (
                KIND_ASSIGN,
                format!("indices {}\n{}", encode_indices(indices), encode_spec(spec)).into_bytes(),
            ),
            DistMsg::JobDone(result) => (KIND_JOB_DONE, encode_job(result).into_bytes()),
            DistMsg::Heartbeat { jobs_done } => (
                KIND_HEARTBEAT,
                format!("jobs-done {jobs_done}").into_bytes(),
            ),
            DistMsg::ShardDone { completed } => (
                KIND_SHARD_DONE,
                format!("completed {completed}").into_bytes(),
            ),
            DistMsg::Shutdown => (KIND_SHUTDOWN, Vec::new()),
        }
    }

    /// Decodes one message from `(frame kind, payload)`.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] for unknown kinds or defective payloads;
    /// nothing panics on untrusted input.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<DistMsg, WireError> {
        match kind {
            KIND_HELLO => {
                let text = text_payload(payload, "hello")?;
                let rest = text
                    .strip_prefix("worker ")
                    .ok_or_else(|| malformed(format!("expected `worker …`, got `{text}`")))?;
                Ok(DistMsg::Hello {
                    worker: parse_num(rest, "worker id")?,
                })
            }
            KIND_ASSIGN => {
                let text = text_payload(payload, "assign")?;
                let (index_line, spec_text) = text
                    .split_once('\n')
                    .ok_or_else(|| malformed("assign payload has no spec after the index line"))?;
                let rest = index_line.strip_prefix("indices ").ok_or_else(|| {
                    malformed(format!("expected `indices …`, got `{index_line}`"))
                })?;
                Ok(DistMsg::Assign {
                    indices: decode_indices(rest)?,
                    spec: Box::new(decode_spec(spec_text)?),
                })
            }
            KIND_JOB_DONE => {
                let text = text_payload(payload, "job result")?;
                Ok(DistMsg::JobDone(Box::new(decode_job(&text)?)))
            }
            KIND_HEARTBEAT => {
                let text = text_payload(payload, "heartbeat")?;
                let rest = text
                    .strip_prefix("jobs-done ")
                    .ok_or_else(|| malformed(format!("expected `jobs-done …`, got `{text}`")))?;
                Ok(DistMsg::Heartbeat {
                    jobs_done: parse_num(rest, "jobs done")?,
                })
            }
            KIND_SHARD_DONE => {
                let text = text_payload(payload, "shard done")?;
                let rest = text
                    .strip_prefix("completed ")
                    .ok_or_else(|| malformed(format!("expected `completed …`, got `{text}`")))?;
                Ok(DistMsg::ShardDone {
                    completed: parse_num(rest, "completed count")?,
                })
            }
            KIND_SHUTDOWN => Ok(DistMsg::Shutdown),
            other => Err(malformed(format!("unknown dist message kind {other:#04x}"))),
        }
    }

    /// Writes this message as one frame.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the write fails.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> Result<(), WireError> {
        self.write_to_with(writer, None)
    }

    /// Writes this message as one frame, routed through an optional
    /// fault-injection seam (see
    /// [`FrameFaults`](hetrta_api::wire::FrameFaults)).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the write fails.
    pub fn write_to_with<W: Write>(
        &self,
        writer: &mut W,
        faults: Option<&dyn wire::FrameFaults>,
    ) -> Result<(), WireError> {
        let (kind, payload) = self.encode();
        wire::write_frame_with(writer, kind, &payload, faults)
    }

    /// Reads one message frame.
    ///
    /// # Errors
    ///
    /// [`WireError::Eof`] when the peer hung up between frames; every
    /// other defect maps to its variant.
    pub fn read_from<R: Read>(reader: &mut R) -> Result<DistMsg, WireError> {
        Self::read_from_with(reader, None)
    }

    /// Reads one message frame through an optional fault-injection
    /// seam (stalled reads).
    ///
    /// # Errors
    ///
    /// [`WireError::Eof`] when the peer hung up between frames; every
    /// other defect maps to its variant.
    pub fn read_from_with<R: Read>(
        reader: &mut R,
        faults: Option<&dyn wire::FrameFaults>,
    ) -> Result<DistMsg, WireError> {
        let (kind, payload) = wire::read_frame_with(reader, faults)?;
        DistMsg::decode(kind, &payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetrta_api::SimOutcome;
    use hetrta_engine::GeneratorPreset;

    fn sample_spec() -> SweepSpec {
        SweepSpec::fractions(
            GeneratorPreset::Small,
            vec![2, 8],
            vec![0.05, 0.30],
            8,
            0xDAC_2018,
        )
    }

    fn sample_results() -> Vec<WireJobResult> {
        let outcomes = vec![
            AnalysisOutcome::Hom {
                r_hom: 991.0 + f64::EPSILON,
            },
            AnalysisOutcome::Sim(SimOutcome {
                makespan: 812,
                transformed_makespan: None,
            }),
        ];
        vec![
            WireJobResult {
                index: 7,
                cell: 2,
                identity: 0xDEAD_BEEF_0123_4567_89AB_CDEF_0011_2233,
                cache_hit: true,
                wall_time: Duration::from_nanos(123_456_789),
                metrics: Ok(JobMetrics::Outcomes(outcomes)),
            },
            WireJobResult {
                index: 0,
                cell: 0,
                identity: 1,
                cache_hit: false,
                wall_time: Duration::ZERO,
                metrics: Ok(JobMetrics::Skipped),
            },
            WireJobResult {
                index: 3,
                cell: 1,
                identity: 42,
                cache_hit: false,
                wall_time: Duration::from_micros(5),
                metrics: Err("generation failed: too few nodes\n(second line)".into()),
            },
        ]
    }

    #[test]
    fn frame_overhead_matches_the_frame_layer() {
        for payload in [&b""[..], b"x", b"some longer payload"] {
            assert_eq!(
                wire::encode_frame(KIND_HELLO, payload).len(),
                payload.len() + FRAME_OVERHEAD
            );
        }
    }

    #[test]
    fn messages_roundtrip() {
        let msgs = vec![
            DistMsg::Hello { worker: 3 },
            DistMsg::Assign {
                indices: vec![0, 2, 4, 31],
                spec: Box::new(sample_spec()),
            },
            DistMsg::Assign {
                indices: Vec::new(),
                spec: Box::new(sample_spec()),
            },
            DistMsg::Heartbeat { jobs_done: 17 },
            DistMsg::ShardDone { completed: 16 },
            DistMsg::Shutdown,
        ];
        for msg in &msgs {
            let (kind, payload) = msg.encode();
            let back = DistMsg::decode(kind, &payload).expect("decodes");
            // DistMsg has no PartialEq (SweepSpec has none); re-encoding
            // is the equality witness, as in the engine's wire tests.
            assert_eq!(back.encode(), (kind, payload.clone()), "msg {msg:?}");
        }
    }

    #[test]
    fn job_results_roundtrip_bitwise() {
        for result in sample_results() {
            let msg = DistMsg::JobDone(Box::new(result.clone()));
            let (kind, payload) = msg.encode();
            let DistMsg::JobDone(back) = DistMsg::decode(kind, &payload).expect("decodes") else {
                panic!("wrong kind back")
            };
            assert_eq!(*back, result);
            let rebuilt = back.into_result(5);
            assert_eq!(rebuilt.worker, 5);
            assert_eq!(rebuilt.index, result.index);
            assert!(rebuilt.timings.is_empty(), "timings stay worker-side");
        }
    }

    #[test]
    fn wire_results_carry_real_job_results() {
        let spec = SweepSpec::fractions(GeneratorPreset::Small, vec![2], vec![0.2], 2, 7);
        let engine = hetrta_engine::Engine::new(1);
        let mut results = Vec::new();
        engine
            .run_job_subset(&spec, &[0, 1], |r| results.push(r))
            .expect("subset runs");
        for result in &results {
            let over_wire = WireJobResult::from(result);
            let (kind, payload) = DistMsg::JobDone(Box::new(over_wire.clone())).encode();
            let DistMsg::JobDone(back) = DistMsg::decode(kind, &payload).expect("decodes") else {
                panic!("wrong kind back")
            };
            // Outcomes cross the wire bitwise, so the reconstructed
            // result aggregates identically.
            assert_eq!(back.metrics, result.metrics);
            assert_eq!(back.identity, result.identity);
        }
    }

    #[test]
    fn malformed_messages_error_typed() {
        let cases: Vec<(u8, &[u8])> = vec![
            (0x77, b"anything"),
            (KIND_HELLO, b"worker"),
            (KIND_HELLO, b"worker x"),
            (KIND_ASSIGN, b"indices 1,2"),
            (KIND_ASSIGN, b"indices 1,frob\npreset small\n"),
            (KIND_ASSIGN, b"shards 1,2\npreset small\n"),
            (KIND_JOB_DONE, b"job 1 2"),
            (KIND_JOB_DONE, b"job 1 2 dead 1 5 skipped"),
            (KIND_JOB_DONE, b"nope 1 2"),
            (
                KIND_JOB_DONE,
                b"job 1 2 00000000000000000000000000000001 1 5 outcomes 2\nhet junk",
            ),
            (
                KIND_JOB_DONE,
                b"job 1 2 00000000000000000000000000000001 2 5 skipped",
            ),
            (
                KIND_JOB_DONE,
                b"job 1 2 00000000000000000000000000000001 1 5 skipped\ntrailing",
            ),
            (KIND_HEARTBEAT, b"jobs-done many"),
            (KIND_SHARD_DONE, b"done 5"),
            (KIND_HELLO, &[0xFF, 0xFE]),
        ];
        for (kind, payload) in cases {
            assert!(
                matches!(DistMsg::decode(kind, payload), Err(WireError::Malformed(_))),
                "decoded unexpectedly: kind {kind:#04x} payload {payload:?}"
            );
        }
    }
}
