//! # hetrta-dist — multi-process sharded sweep backend with worker
//! # fault tolerance
//!
//! One coordinator, N worker processes, one bitwise-deterministic
//! aggregate. The coordinator ([`run_distributed`]) deterministically
//! shards a [`SweepSpec`](hetrta_engine::SweepSpec)'s job expansion
//! across the fleet ([`shard::shard_indices`]), workers run their
//! indices through the ordinary engine
//! ([`Engine::run_job_subset`](hetrta_engine::Engine::run_job_subset))
//! and stream results back over the workspace's checksummed frame
//! layer ([`protocol`]), and the coordinator merges them through the
//! engine's expansion-ordered [`Aggregator`](hetrta_engine::Aggregator)
//! — so `--workers 8` produces *bitwise* the aggregate of a
//! single-process run.
//!
//! Robustness is the coordinator's job: per-worker heartbeats with a
//! configurable timeout, crash/disconnect detection, exponential
//! back-off respawn, and idempotent re-dispatch of a dead worker's
//! unfinished shard (a done-bitmask drops duplicates). Workers pointed
//! at one `--cache-dir` share a disk-cache namespace, so a cell warmed
//! by any fleet member never recomputes anywhere.
//!
//! The crate is dependency-free beyond the workspace: sockets are
//! `std::net`, processes are `std::process`, and everything is
//! instrumented through `hetrta-obs` (per-worker lanes, `dist.*`
//! counters for jobs, re-dispatches, respawns, and bytes tx/rx).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coordinator;
pub mod protocol;
pub mod shard;
pub mod worker;

pub use coordinator::{
    run_distributed, DistConfig, DistOutcome, DistProgress, Launch, WorkerLauncher,
};
pub use protocol::{DistMsg, WireJobResult};
pub use shard::{parse_shard, shard_indices};
pub use worker::{run_worker, WorkerConfig};

use hetrta_api::wire::WireError;
use hetrta_engine::EngineError;

/// What can go wrong in a distributed sweep.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// The fleet configuration is unusable.
    Config(String),
    /// Socket or process trouble.
    Io(String),
    /// A frame-layer defect (corruption, version skew, malformed
    /// payload).
    Wire(WireError),
    /// The spec failed validation, or a job failed on a worker.
    Engine(EngineError),
    /// A shard cannot complete: its worker died, the respawn budget is
    /// spent, and no live worker remains to take the orphaned jobs.
    WorkersLost(String),
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Config(msg) => write!(f, "dist config: {msg}"),
            DistError::Io(msg) => write!(f, "dist i/o: {msg}"),
            DistError::Wire(e) => write!(f, "dist wire: {e}"),
            DistError::Engine(e) => write!(f, "dist engine: {e}"),
            DistError::WorkersLost(msg) => write!(f, "workers lost: {msg}"),
        }
    }
}

impl std::error::Error for DistError {}

impl From<WireError> for DistError {
    fn from(e: WireError) -> Self {
        DistError::Wire(e)
    }
}

impl From<EngineError> for DistError {
    fn from(e: EngineError) -> Self {
        DistError::Engine(e)
    }
}
