//! The coordinator: shards a sweep across worker processes, merges
//! their streamed results deterministically, and survives worker loss.
//!
//! ## Determinism
//!
//! The coordinator never reorders floating-point work. It feeds every
//! [`JobDone`](crate::protocol::DistMsg::JobDone) into the engine's
//! [`Aggregator`], which stores results in expansion-order slots and
//! replays them in expansion order at finalize — so the distributed
//! aggregate is **bitwise identical** to a single-process run of the
//! same spec, for any worker count, any arrival order, and any number
//! of mid-sweep worker deaths (the parity and fault integration tests
//! pin this).
//!
//! ## Fault model
//!
//! Workers are expendable; the coordinator is not. Each worker
//! heartbeats on a fixed cadence; a worker that disconnects, or goes
//! silent past [`DistConfig::heartbeat_timeout`] while it still owes
//! jobs, is declared dead. Its child process (if spawned) is killed,
//! and its *unfinished* indices are re-dispatched: to a respawned
//! replacement (exponential back-off, at most
//! [`DistConfig::max_respawns`] times per slot), or — when respawning
//! is impossible — to the least-loaded surviving worker. Re-dispatch is
//! idempotent: a done-bitmask drops any duplicate result that raced the
//! death, so each expansion slot is aggregated exactly once.

use std::collections::BTreeSet;
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hetrta_api::wire::{self, FrameFaults, WireError};
use hetrta_engine::{
    AggregateUpdate, Aggregator, Engine, FaultPlan, JournalConfig, SweepAggregate, SweepJournal,
    SweepSpec,
};
use hetrta_obs::{span, Recorder};

use crate::protocol::{DistMsg, FRAME_OVERHEAD};
use crate::shard::shard_indices;
use crate::DistError;

/// How the coordinator obtains worker processes.
#[derive(Debug, Clone)]
pub enum Launch {
    /// Spawn `workers` local child processes with this launcher; dead
    /// workers are respawned from it too.
    Spawn(WorkerLauncher),
    /// Listen on this address and wait for `workers` externally started
    /// workers (`hetrta dist worker --connect <addr> --worker <i>`) to
    /// attach. No respawning: a dead worker's shard moves to survivors.
    Attach {
        /// Address to listen on (`host:port`).
        addr: String,
    },
}

/// Command line that starts one worker process. The coordinator appends
/// the standard flags (`--connect`, `--worker`, `--threads`,
/// `--heartbeat-ms` and, when configured, `--cache-dir`) after `args`.
#[derive(Debug, Clone)]
pub struct WorkerLauncher {
    /// Program to execute.
    pub program: PathBuf,
    /// Arguments before the standard flags (e.g. `["dist", "worker"]`
    /// when `program` is the `hetrta` binary itself).
    pub args: Vec<String>,
}

impl WorkerLauncher {
    fn spawn(&self, config: &DistConfig, addr: &str, worker: usize) -> Result<Child, DistError> {
        let mut cmd = Command::new(&self.program);
        cmd.args(&self.args)
            .arg("--connect")
            .arg(addr)
            .arg("--worker")
            .arg(worker.to_string())
            .arg("--threads")
            .arg(config.worker_threads.to_string())
            .arg("--heartbeat-ms")
            .arg(config.heartbeat_every.as_millis().to_string())
            .stdin(Stdio::null())
            // Workers inherit stderr (diagnostics) but not stdout: the
            // coordinator's own output stream must stay clean.
            .stdout(Stdio::null());
        if let Some(dir) = &config.cache_dir {
            cmd.arg("--cache-dir").arg(dir);
        }
        if let Some(plan) = &config.fault {
            cmd.arg("--chaos").arg(format!("{:#x}", plan.seed()));
        }
        cmd.spawn()
            .map_err(|e| DistError::Io(format!("spawn worker {}: {e}", self.program.display())))
    }
}

/// Configuration of one distributed sweep.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Fleet size.
    pub workers: usize,
    /// Engine threads per worker (0 = all cores; the usual fleet choice
    /// is `cores / workers`).
    pub worker_threads: usize,
    /// Disk-cache directory shared by the whole fleet (and by
    /// single-process runs of the same spec — warm cells never
    /// recompute anywhere).
    pub cache_dir: Option<PathBuf>,
    /// How workers come to exist.
    pub launch: Launch,
    /// Heartbeat cadence passed to spawned workers.
    pub heartbeat_every: Duration,
    /// Silence (no frame of any kind) after which a worker owing jobs
    /// is declared dead.
    pub heartbeat_timeout: Duration,
    /// Respawn budget per fleet slot ([`Launch::Spawn`] only).
    pub max_respawns: usize,
    /// Base respawn back-off; attempt `n` for a slot waits
    /// `backoff × 2ⁿ`.
    pub respawn_backoff: Duration,
    /// Emit a [`DistProgress::Partial`] every this many completed jobs.
    pub partial_every: Option<usize>,
    /// Fault-injection hook: SIGKILL worker `.0`'s child after the
    /// coordinator has accepted `.1` of its jobs. Test-only; `None` in
    /// production.
    pub chaos_kill_after: Option<(usize, u64)>,
    /// Durable sweep journal: when set, every accepted job is recorded
    /// (write-ahead, before aggregation) and an interrupted run resumes
    /// from the journal instead of re-executing finished jobs.
    pub journal: Option<JournalConfig>,
    /// Seeded fault plan: drives wire-frame corruption and stalled
    /// reads on the coordinator side, a generalized kill-worker-at-job-K
    /// schedule (when [`DistConfig::chaos_kill_after`] is unset), and —
    /// via a forwarded `--chaos` flag — disk/wire/heartbeat faults
    /// inside spawned workers. Same seed, same fault sequence.
    pub fault: Option<Arc<FaultPlan>>,
}

impl DistConfig {
    /// A local fleet of `workers` processes spawned from `launcher`.
    #[must_use]
    pub fn local(workers: usize, launcher: WorkerLauncher) -> Self {
        DistConfig {
            workers,
            worker_threads: 0,
            cache_dir: None,
            launch: Launch::Spawn(launcher),
            heartbeat_every: crate::WorkerConfig::DEFAULT_HEARTBEAT,
            heartbeat_timeout: crate::WorkerConfig::DEFAULT_HEARTBEAT * 10,
            max_respawns: 2,
            respawn_backoff: Duration::from_millis(50),
            partial_every: None,
            chaos_kill_after: None,
            journal: None,
            fault: None,
        }
    }
}

/// Progress callbacks a distributed sweep emits, mirroring the shapes
/// of the engine's session events so daemon and CLI consumers reuse
/// their streaming paths.
#[derive(Debug, Clone)]
pub enum DistProgress {
    /// One job was accepted into the aggregate.
    Job {
        /// The job's expansion index.
        index: usize,
        /// The cell it contributes to.
        cell: usize,
        /// Fleet slot that ran it.
        worker: usize,
        /// Whether the worker served it from cache.
        cache_hit: bool,
        /// Wall-clock execution time on the worker.
        wall_time: Duration,
    },
    /// A partial aggregate snapshot (cadence set by
    /// [`DistConfig::partial_every`]).
    Partial {
        /// Jobs aggregated so far.
        completed: usize,
        /// Total jobs of the sweep.
        total: usize,
        /// Keyframe snapshot of the aggregate so far.
        update: AggregateUpdate,
    },
    /// A worker was declared dead and its unfinished jobs re-dispatched.
    WorkerDown {
        /// The dead worker's fleet slot.
        worker: usize,
        /// Unfinished jobs that were re-dispatched.
        redispatched: usize,
        /// Why the coordinator gave up on it.
        reason: String,
    },
}

/// What a distributed sweep produced.
#[derive(Debug, Clone)]
pub struct DistOutcome {
    /// The deterministic final aggregate (partial when `cancelled`).
    pub aggregate: SweepAggregate,
    /// Jobs aggregated.
    pub completed: usize,
    /// Total jobs of the spec's expansion.
    pub total: usize,
    /// Whether the sweep was cancelled before completion.
    pub cancelled: bool,
    /// Jobs aggregated per fleet slot (fleet-balance evidence).
    pub worker_jobs: Vec<u64>,
    /// Worker-death events handled.
    pub worker_deaths: u64,
    /// Unfinished jobs re-dispatched across all deaths.
    pub redispatched_jobs: u64,
    /// Worker processes respawned.
    pub respawns: u64,
    /// Duplicate results dropped by the done-bitmask.
    pub duplicates: u64,
    /// Frame bytes sent to workers.
    pub bytes_tx: u64,
    /// Frame bytes received from workers.
    pub bytes_rx: u64,
}

/// What reader/accept threads report to the control loop.
enum Event {
    /// A worker's connection is up (hello read); the stream is the
    /// write half the coordinator keeps.
    Connected { worker: usize, writer: TcpStream },
    /// One message from a connected worker.
    Msg { worker: usize, msg: DistMsg },
    /// A worker's connection died (hangup, defect, or I/O error).
    Gone { worker: usize, reason: String },
}

struct WorkerSlot {
    writer: Option<TcpStream>,
    child: Option<Child>,
    /// Outstanding expansion indices this slot owes.
    assigned: BTreeSet<usize>,
    last_seen: Instant,
    connected_once: bool,
    respawns: usize,
    jobs: u64,
}

/// Runs `spec` across a worker fleet and merges the results.
///
/// `cancel`, when set, stops the sweep at the next control-loop tick
/// (spawned children are killed; the outcome carries the partial
/// aggregate with `cancelled = true`). `progress` receives
/// [`DistProgress`] callbacks on the calling thread.
///
/// # Errors
///
/// - [`DistError::Engine`] when the spec is invalid (validated up front
///   with the same rules as a local run) or a job failed;
/// - [`DistError::WorkersLost`] when a shard cannot complete: its
///   worker died, the respawn budget is spent, and no live worker
///   remains to take the orphans;
/// - [`DistError::Io`] / [`DistError::Wire`] on socket trouble.
pub fn run_distributed(
    spec: &SweepSpec,
    config: &DistConfig,
    recorder: &dyn Recorder,
    cancel: Option<&AtomicBool>,
    mut progress: impl FnMut(DistProgress),
) -> Result<DistOutcome, DistError> {
    let _span = span!(recorder, "dist.sweep", workers = config.workers);
    if config.workers == 0 {
        return Err(DistError::Config("a fleet needs at least 1 worker".into()));
    }
    // Validate exactly like a local run would (spec rules + registry
    // compatibility) before any process is spawned: an empty subset
    // runs the full validation path and no jobs.
    Engine::new(1).run_job_subset(spec, &[], |_| {})?;

    let (cells, jobs) = spec.expand();
    let total = jobs.len();
    drop(jobs); // workers re-expand; the coordinator only needs the count
    let mut aggregator = Aggregator::new(cells, total, spec.cell_shape());
    let mut done = vec![false; total];

    // Open the durable journal (if configured) before any process is
    // spawned: replayed jobs are marked done up front so the shards
    // dispatched below only ever contain the remainder.
    let journal = match &config.journal {
        Some(cfg) => {
            let (journal, replay) = SweepJournal::open(cfg, spec, total)?;
            for result in replay.results {
                done[result.index] = true;
                aggregator.accept(result);
            }
            Some(journal)
        }
        None => None,
    };
    let replayed = done.iter().filter(|d| **d).count();

    let listener = match &config.launch {
        Launch::Spawn(_) => TcpListener::bind("127.0.0.1:0"),
        Launch::Attach { addr } => TcpListener::bind(addr),
    }
    .map_err(|e| DistError::Io(format!("bind coordinator listener: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| DistError::Io(format!("coordinator local addr: {e}")))?
        .to_string();

    let bytes_rx = Arc::new(AtomicU64::new(0));
    let accept_done = Arc::new(AtomicBool::new(false));
    let (tx, rx) = std::sync::mpsc::channel::<Event>();
    let accept_thread = {
        let tx = tx.clone();
        let bytes_rx = Arc::clone(&bytes_rx);
        let accept_done = Arc::clone(&accept_done);
        let fault = config.fault.clone();
        let listener = listener
            .try_clone()
            .map_err(|e| DistError::Io(format!("clone listener: {e}")))?;
        std::thread::spawn(move || accept_loop(&listener, &tx, &bytes_rx, &accept_done, fault))
    };
    drop(tx); // reader threads hold their own clones

    let mut slots: Vec<WorkerSlot> = (0..config.workers)
        .map(|w| WorkerSlot {
            writer: None,
            child: None,
            assigned: shard_indices(total, w, config.workers)
                .into_iter()
                .filter(|&index| !done[index])
                .collect(),
            last_seen: Instant::now(),
            connected_once: false,
            respawns: 0,
            jobs: 0,
        })
        .collect();
    for (w, slot) in slots.iter_mut().enumerate() {
        recorder.name_lane(
            u32::try_from(w).unwrap_or(u32::MAX).saturating_add(1),
            &format!("dist worker {w}"),
        );
        // A fully-replayed sweep needs no fleet at all.
        if replayed < total {
            if let Launch::Spawn(launcher) = &config.launch {
                slot.child = Some(launcher.spawn(config, &addr, w)?);
                slot.last_seen = Instant::now();
            }
        }
    }

    let mut stats = Stats::default();
    // The explicit kill-at-job-K hook wins; otherwise a fault plan
    // draws a deterministic (worker, K) from its own stream.
    let mut chaos = config.chaos_kill_after.or_else(|| {
        config.fault.as_deref().map(|plan| {
            let bits = plan.draw("dist.kill_worker");
            ((bits as usize) % config.workers, 1 + (bits >> 16) % 4)
        })
    });
    let mut seq = 0u64;
    let mut since_partial = 0usize;
    let mut completed = replayed;
    let mut cancelled = false;
    let tick = config.heartbeat_timeout.min(Duration::from_millis(100));

    while completed < total {
        if cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
            cancelled = true;
            break;
        }
        match rx.recv_timeout(tick) {
            Ok(Event::Connected { worker, writer }) => {
                let Some(slot) = slots.get_mut(worker) else {
                    continue; // unknown slot: drop the connection
                };
                slot.last_seen = Instant::now();
                slot.connected_once = true;
                slot.writer = Some(writer);
                let assign = DistMsg::Assign {
                    indices: slot.assigned.iter().copied().collect(),
                    spec: Box::new(spec.clone()),
                };
                if let Err(e) = send(slot, &assign, &mut stats, frame_faults(config)) {
                    handle_death(
                        spec,
                        config,
                        &addr,
                        &mut slots,
                        worker,
                        &format!("assign failed: {e}"),
                        &mut stats,
                        recorder,
                        &mut progress,
                    )?;
                }
            }
            Ok(Event::Msg { worker, msg }) => {
                let Some(slot) = slots.get_mut(worker) else {
                    continue;
                };
                slot.last_seen = Instant::now();
                if let DistMsg::JobDone(result) = msg {
                    let index = result.index;
                    if index >= total || done[index] {
                        stats.duplicates += 1;
                        recorder.record_counter("dist.duplicate", 1);
                        continue;
                    }
                    done[index] = true;
                    slot.assigned.remove(&index);
                    slot.jobs += 1;
                    completed += 1;
                    since_partial += 1;
                    recorder.record_counter("dist.jobs", 1);
                    progress(DistProgress::Job {
                        index,
                        cell: result.cell,
                        worker,
                        cache_hit: result.cache_hit,
                        wall_time: result.wall_time,
                    });
                    let result = result.into_result(worker);
                    // Write-ahead: the journal records the job before the
                    // aggregate absorbs it, so a crash between the two
                    // replays (dedups) rather than loses it.
                    let keyframe_due = journal.as_ref().is_some_and(|j| j.record_done(&result));
                    aggregator.accept(result);
                    if keyframe_due && completed < total {
                        if let Some(j) = &journal {
                            j.record_keyframe(completed, aggregator.partial());
                        }
                    }
                    if config
                        .partial_every
                        .is_some_and(|every| since_partial >= every)
                    {
                        since_partial = 0;
                        progress(DistProgress::Partial {
                            completed,
                            total,
                            update: AggregateUpdate::Keyframe {
                                seq,
                                aggregate: aggregator.partial(),
                            },
                        });
                        seq += 1;
                    }
                    if chaos.is_some_and(|(w, after)| w == worker && slots[worker].jobs >= after) {
                        chaos = None;
                        // SIGKILL, not a polite shutdown: the fault
                        // tests assert recovery from the worst case.
                        if let Some(child) = &mut slots[worker].child {
                            let _ = child.kill();
                        }
                    }
                }
                // Heartbeat/ShardDone only refresh last_seen (above);
                // completion is tracked per job, not per shard.
            }
            Ok(Event::Gone { worker, reason }) => {
                handle_death(
                    spec,
                    config,
                    &addr,
                    &mut slots,
                    worker,
                    &reason,
                    &mut stats,
                    recorder,
                    &mut progress,
                )?;
            }
            Err(RecvTimeoutError::Timeout) => {
                let now = Instant::now();
                let stale: Vec<usize> = slots
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| {
                        !s.assigned.is_empty()
                            && now.duration_since(s.last_seen) > config.heartbeat_timeout
                            // Attach-mode workers are started by hand;
                            // wait for them indefinitely until first
                            // contact.
                            && (s.connected_once || matches!(config.launch, Launch::Spawn(_)))
                    })
                    .map(|(w, _)| w)
                    .collect();
                for worker in stale {
                    handle_death(
                        spec,
                        config,
                        &addr,
                        &mut slots,
                        worker,
                        "heartbeat timeout",
                        &mut stats,
                        recorder,
                        &mut progress,
                    )?;
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                return Err(DistError::Io("coordinator event channel closed".into()));
            }
        }
    }

    // Tear the fleet down: a polite shutdown first, then reap children.
    for slot in &mut slots {
        let told = if let Some(writer) = &mut slot.writer {
            let ok = DistMsg::Shutdown.write_to(writer).is_ok();
            let _ = writer.flush();
            ok
        } else {
            false
        };
        slot.writer = None;
        if let Some(child) = &mut slot.child {
            // A child that never heard the shutdown (not yet connected,
            // or a dead socket) would block `wait()` forever.
            if cancelled || !told {
                let _ = child.kill();
            }
            let _ = child.wait();
        }
    }
    // Unblock the accept thread (it checks the flag after each accept).
    accept_done.store(true, Ordering::Relaxed);
    let _ = TcpStream::connect(&addr);
    let _ = accept_thread.join();

    // Seal the journal's active segment so every record written so far
    // sits in a durable, atomically renamed file — whether the sweep
    // completed or was cancelled mid-flight.
    if let Some(j) = &journal {
        j.seal();
    }

    recorder.record_counter("dist.bytes_tx", stats.bytes_tx);
    recorder.record_counter("dist.bytes_rx", bytes_rx.load(Ordering::Relaxed));
    let aggregate = if cancelled {
        aggregator.partial()
    } else {
        aggregator.finalize()?
    };
    Ok(DistOutcome {
        aggregate,
        completed,
        total,
        cancelled,
        worker_jobs: slots.iter().map(|s| s.jobs).collect(),
        worker_deaths: stats.deaths,
        redispatched_jobs: stats.redispatched,
        respawns: stats.respawns,
        duplicates: stats.duplicates,
        bytes_tx: stats.bytes_tx,
        bytes_rx: bytes_rx.load(Ordering::Relaxed),
    })
}

#[derive(Default)]
struct Stats {
    bytes_tx: u64,
    deaths: u64,
    redispatched: u64,
    respawns: u64,
    duplicates: u64,
}

fn send(
    slot: &mut WorkerSlot,
    msg: &DistMsg,
    stats: &mut Stats,
    faults: Option<&dyn FrameFaults>,
) -> Result<(), WireError> {
    let Some(writer) = &mut slot.writer else {
        return Err(WireError::Io("worker has no connection".into()));
    };
    let (kind, payload) = msg.encode();
    stats.bytes_tx += (payload.len() + FRAME_OVERHEAD) as u64;
    wire::write_frame_with(writer, kind, &payload, faults)
}

/// The coordinator-side frame-fault seam: present only when a fault
/// plan is configured.
fn frame_faults(config: &DistConfig) -> Option<&dyn FrameFaults> {
    config.fault.as_deref().map(|p| p as &dyn FrameFaults)
}

/// Declares `worker` dead and re-homes its unfinished indices: a
/// respawned replacement when the launcher and budget allow, else the
/// least-loaded surviving worker.
#[allow(clippy::too_many_arguments)] // one cohesive death path, called thrice
fn handle_death(
    spec: &SweepSpec,
    config: &DistConfig,
    addr: &str,
    slots: &mut [WorkerSlot],
    worker: usize,
    reason: &str,
    stats: &mut Stats,
    recorder: &dyn Recorder,
    progress: &mut impl FnMut(DistProgress),
) -> Result<(), DistError> {
    let slot = &mut slots[worker];
    slot.writer = None;
    if let Some(child) = &mut slot.child {
        let _ = child.kill();
        let _ = child.wait();
    }
    slot.child = None;
    let orphans = slot.assigned.len();
    if orphans == 0 {
        // Nothing outstanding (e.g. hangup after its shard finished):
        // not a fault, nothing to re-dispatch.
        return Ok(());
    }
    stats.deaths += 1;
    stats.redispatched += orphans as u64;
    recorder.record_counter("dist.worker_death", 1);
    recorder.record_counter("dist.redispatch", orphans as u64);
    progress(DistProgress::WorkerDown {
        worker,
        redispatched: orphans,
        reason: reason.to_string(),
    });

    if let Launch::Spawn(launcher) = &config.launch {
        if slot.respawns < config.max_respawns {
            let backoff = config.respawn_backoff * 2u32.saturating_pow(slot.respawns as u32);
            std::thread::sleep(backoff);
            slot.respawns += 1;
            stats.respawns += 1;
            recorder.record_counter("dist.respawn", 1);
            slot.child = Some(launcher.spawn(config, addr, worker)?);
            slot.last_seen = Instant::now();
            slot.connected_once = false;
            // The orphans stay on this slot; the replacement receives
            // them in the Assign sent on its hello.
            return Ok(());
        }
    }

    // No replacement possible: hand the orphans to the least-loaded
    // survivor (fewest outstanding jobs).
    let orphaned: Vec<usize> = std::mem::take(&mut slots[worker].assigned)
        .into_iter()
        .collect();
    let heir = slots
        .iter()
        .enumerate()
        .filter(|(w, s)| *w != worker && s.writer.is_some())
        .min_by_key(|(_, s)| s.assigned.len())
        .map(|(w, _)| w);
    let Some(heir) = heir else {
        return Err(DistError::WorkersLost(format!(
            "worker {worker} died ({reason}) with {orphans} jobs outstanding, \
             its respawn budget is spent, and no live worker remains"
        )));
    };
    slots[heir].assigned.extend(orphaned.iter().copied());
    let assign = DistMsg::Assign {
        indices: orphaned,
        spec: Box::new(spec.clone()),
    };
    if let Err(e) = send(&mut slots[heir], &assign, stats, frame_faults(config)) {
        // The heir is dying too; recurse so *its* death path (which now
        // owns the orphans) tries the next candidate.
        let reason = format!("assign of re-dispatched jobs failed: {e}");
        return handle_death(
            spec, config, addr, slots, heir, &reason, stats, recorder, progress,
        );
    }
    Ok(())
}

fn accept_loop(
    listener: &TcpListener,
    tx: &Sender<Event>,
    bytes_rx: &Arc<AtomicU64>,
    done: &Arc<AtomicBool>,
    fault: Option<Arc<FaultPlan>>,
) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            return;
        };
        if done.load(Ordering::Relaxed) {
            return;
        }
        let tx = tx.clone();
        let bytes_rx = Arc::clone(bytes_rx);
        let fault = fault.clone();
        std::thread::spawn(move || reader_loop(stream, &tx, &bytes_rx, fault));
    }
}

/// Per-connection reader: expects a hello, then pumps messages into the
/// control loop until the stream dies.
fn reader_loop(
    stream: TcpStream,
    tx: &Sender<Event>,
    bytes_rx: &Arc<AtomicU64>,
    fault: Option<Arc<FaultPlan>>,
) {
    let faults = fault.as_deref().map(|p| p as &dyn FrameFaults);
    let mut reader = match stream.try_clone() {
        Ok(reader) => reader,
        Err(_) => return,
    };
    let worker = match read_counted(&mut reader, bytes_rx, faults) {
        Ok(DistMsg::Hello { worker }) => worker,
        _ => return, // not a worker (e.g. the shutdown wake-up connect)
    };
    if tx
        .send(Event::Connected {
            worker,
            writer: stream,
        })
        .is_err()
    {
        return;
    }
    loop {
        match read_counted(&mut reader, bytes_rx, faults) {
            Ok(msg) => {
                if tx.send(Event::Msg { worker, msg }).is_err() {
                    return;
                }
            }
            Err(e) => {
                let reason = match e {
                    WireError::Eof => "connection closed".to_string(),
                    other => other.to_string(),
                };
                let _ = tx.send(Event::Gone { worker, reason });
                return;
            }
        }
    }
}

fn read_counted(
    reader: &mut TcpStream,
    bytes_rx: &Arc<AtomicU64>,
    faults: Option<&dyn FrameFaults>,
) -> Result<DistMsg, WireError> {
    let (kind, payload) = wire::read_frame_with(reader, faults)?;
    bytes_rx.fetch_add((payload.len() + FRAME_OVERHEAD) as u64, Ordering::Relaxed);
    DistMsg::decode(kind, &payload)
}
