//! Integration tests for the obs core: histogram quantiles against a
//! sorted-vector reference (property-based), span nesting across
//! threads, and golden validation of the Chrome trace export.

use hetrta_obs::json::JsonValue;
use hetrta_obs::{
    hist::{bucket_bounds, bucket_index},
    span, LogHistogram, MetricsRegistry, Recorder, TraceRecorder,
};
use proptest::prelude::*;

/// The exact `q`-quantile of `values` (the reference the log-bucketed
/// histogram is allowed to approximate by at most one bucket width).
fn reference_quantile(values: &[u64], q: f64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let target = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[target - 1]
}

proptest! {
    #[test]
    fn histogram_quantiles_track_a_sorted_reference(
        values in proptest::collection::vec(0u64..2_000_000_000, 1..300),
        percent in 0u32..=100,
    ) {
        let hist = LogHistogram::new();
        for &value in &values {
            hist.record(value);
        }
        let q = f64::from(percent) / 100.0;
        let got = hist.snapshot().quantile(q).expect("non-empty");
        let reference = reference_quantile(&values, q);
        // The histogram answers with the upper bound of the bucket the
        // reference rank falls in: never below the true quantile, never
        // above its bucket's high edge.
        let (_, high) = bucket_bounds(bucket_index(reference));
        prop_assert!(
            got >= reference && got <= high,
            "q={q}: got {got}, reference {reference} in bucket up to {high}"
        );
    }

    #[test]
    fn histogram_count_sum_min_max_are_exact(
        values in proptest::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let hist = LogHistogram::new();
        for &value in &values {
            hist.record(value);
        }
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        prop_assert_eq!(snap.min, *values.iter().min().unwrap());
        prop_assert_eq!(snap.max, *values.iter().max().unwrap());
    }
}

#[test]
fn span_stacks_nest_independently_across_threads() {
    let recorder = TraceRecorder::new();
    std::thread::scope(|scope| {
        for worker in 0..4u32 {
            let recorder = &recorder;
            scope.spawn(move || {
                hetrta_obs::set_thread_lane(worker + 1);
                for job in 0..3u32 {
                    let _job = span!(recorder, "job", worker = worker, job = job);
                    let _inner = span!(recorder, "analysis", key = "het");
                }
            });
        }
    });
    let spans = recorder.spans();
    assert_eq!(spans.len(), 4 * 3 * 2);
    for lane in 1..=4u32 {
        let jobs = spans
            .iter()
            .filter(|s| s.lane == lane && s.name == "job")
            .count();
        assert_eq!(jobs, 3, "lane {lane}");
    }
    // Depth never leaks between threads: every job span is a root,
    // every analysis span sits exactly one level deeper and inside its
    // enclosing job's interval.
    for span in &spans {
        match span.name {
            "job" => assert_eq!(span.depth, 0),
            "analysis" => {
                assert_eq!(span.depth, 1);
                assert!(
                    spans.iter().any(|job| job.name == "job"
                        && job.lane == span.lane
                        && job.start <= span.start
                        && span.end <= job.end),
                    "analysis span outside any job on its lane"
                );
            }
            other => panic!("unexpected span {other}"),
        }
    }
}

/// Golden validation of the Chrome trace export: the document must be
/// valid JSON whose events all carry well-formed `ph`/`ts`/`dur` fields
/// and whose structure matches what was recorded.
#[test]
fn chrome_export_golden_structure() {
    let recorder = TraceRecorder::new();
    recorder.name_lane(0, "session");
    recorder.name_lane(1, "worker 0");
    hetrta_obs::set_thread_lane(0);
    {
        let _sweep = span!(&recorder, "sweep", jobs = 2);
        for index in 0..2u32 {
            let _job = span!(&recorder, "job", index = index);
        }
    }
    recorder.record_counter("queue_depth", 5);
    recorder.record_counter("queue_depth", 0);

    let doc = JsonValue::parse(&recorder.to_chrome_json()).expect("valid JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(JsonValue::as_str),
        Some("ms")
    );
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents");

    let mut metadata = 0;
    let mut complete = 0;
    let mut counters = 0;
    for event in events {
        let ph = event.get("ph").and_then(JsonValue::as_str).expect("ph");
        assert!(event.get("pid").and_then(JsonValue::as_f64).is_some());
        match ph {
            "M" => {
                metadata += 1;
                assert_eq!(
                    event.get("name").and_then(JsonValue::as_str),
                    Some("thread_name")
                );
            }
            "X" => {
                complete += 1;
                let ts = event.get("ts").and_then(JsonValue::as_f64).expect("ts");
                let dur = event.get("dur").and_then(JsonValue::as_f64).expect("dur");
                assert!(ts >= 0.0, "ts = {ts}");
                assert!(dur >= 0.0, "dur = {dur}");
                assert!(event.get("tid").and_then(JsonValue::as_f64).is_some());
                let name = event.get("name").and_then(JsonValue::as_str).unwrap();
                assert!(["sweep", "job"].contains(&name), "{name}");
            }
            "C" => {
                counters += 1;
                assert!(event
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(JsonValue::as_f64)
                    .is_some());
            }
            other => panic!("unexpected ph {other}"),
        }
    }
    assert_eq!(metadata, 2);
    assert_eq!(complete, 3, "one sweep + two jobs");
    assert_eq!(counters, 2);

    // Nesting survives export: both job spans sit inside the sweep span.
    let x_events: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
        .collect();
    let span_of = |e: &&JsonValue| {
        let ts = e.get("ts").and_then(JsonValue::as_f64).unwrap();
        let dur = e.get("dur").and_then(JsonValue::as_f64).unwrap();
        (ts, ts + dur)
    };
    let sweep = x_events
        .iter()
        .find(|e| e.get("name").and_then(JsonValue::as_str) == Some("sweep"))
        .map(span_of)
        .unwrap();
    for job in x_events
        .iter()
        .filter(|e| e.get("name").and_then(JsonValue::as_str) == Some("job"))
    {
        let (start, end) = span_of(job);
        assert!(sweep.0 <= start && end <= sweep.1, "job outside sweep");
        assert_eq!(
            job.get("args")
                .and_then(|a| a.get("depth"))
                .and_then(JsonValue::as_f64),
            Some(1.0)
        );
    }
}

#[test]
fn metrics_snapshot_renders_registered_families() {
    let metrics = MetricsRegistry::new();
    metrics.counter("cache.result.hits").add(12);
    metrics.gauge("pool.queue_depth").set(4);
    metrics
        .histogram("analysis.het.latency_ns")
        .record_duration(std::time::Duration::from_micros(42));
    let snap = metrics.snapshot();
    assert_eq!(snap.counter("cache.result.hits"), Some(12));
    assert_eq!(snap.gauge("pool.queue_depth"), Some(4));
    let table = snap.render_table();
    for needle in ["cache.result.hits", "pool.queue_depth", "p99="] {
        assert!(table.contains(needle), "missing {needle} in:\n{table}");
    }
    assert_eq!(snap.render_csv().lines().count(), 4, "header + 3 metrics");
}
