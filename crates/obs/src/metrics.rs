//! The lock-sharded metrics registry: named counters, gauges, and
//! latency histograms, snapshotted into a table or CSV.
//!
//! Registration (name → handle) takes one shard lock; the returned
//! handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-backed and
//! update lock-free, so hot paths register once and record forever.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{HistogramSnapshot, LogHistogram};

/// A monotonic counter handle. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A counter not registered anywhere (for components that count
    /// before — or without — being wired to a [`MetricsRegistry`]).
    #[must_use]
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-value gauge handle. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// A gauge not registered anywhere.
    #[must_use]
    pub fn detached() -> Self {
        Gauge::default()
    }

    /// Stores `value`.
    pub fn set(&self, value: u64) {
        self.cell.store(value, Ordering::Relaxed);
    }

    /// The last stored value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A latency-histogram handle over a shared [`LogHistogram`].
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<LogHistogram>,
}

impl Histogram {
    /// A histogram not registered anywhere.
    #[must_use]
    pub fn detached() -> Self {
        Histogram {
            inner: Arc::new(LogHistogram::new()),
        }
    }

    /// Records one value (the engine's convention: nanoseconds).
    pub fn record(&self, value: u64) {
        self.inner.record(value);
    }

    /// Records a duration as nanoseconds.
    pub fn record_duration(&self, elapsed: std::time::Duration) {
        self.inner.record_duration(elapsed);
    }

    /// A point-in-time copy for quantile extraction.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.inner.snapshot()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::detached()
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Registry shard count; names hash to shards so concurrent
/// registration from many workers rarely contends.
const SHARDS: usize = 16;

/// A lock-sharded registry of named metrics.
///
/// The same name always yields the same underlying metric: a second
/// `counter("x")` call returns a handle on the first call's cell. Asking
/// for a registered name **as a different kind** is a programming error
/// the registry tolerates: it returns a fresh detached handle (recorded
/// values go nowhere) rather than panicking on an observability path.
#[derive(Debug)]
pub struct MetricsRegistry {
    shards: Vec<Mutex<HashMap<String, Metric>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, name: &str) -> &Mutex<HashMap<String, Metric>> {
        // FNV-1a over the name selects the shard.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(h as usize) % SHARDS]
    }

    /// The counter registered under `name` (registering it on first use).
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let mut shard = self.shard(name).lock().expect("metrics shard");
        match shard
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Counter::detached()))
        {
            Metric::Counter(c) => c.clone(),
            _ => Counter::detached(),
        }
    }

    /// The gauge registered under `name` (registering it on first use).
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut shard = self.shard(name).lock().expect("metrics shard");
        match shard
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Gauge::detached()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => Gauge::detached(),
        }
    }

    /// The histogram registered under `name` (registering it on first
    /// use).
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut shard = self.shard(name).lock().expect("metrics shard");
        match shard
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Histogram::detached()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => Histogram::detached(),
        }
    }

    /// A name-ordered point-in-time copy of every registered metric.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut entries = BTreeMap::new();
        for shard in &self.shards {
            for (name, metric) in shard.lock().expect("metrics shard").iter() {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                entries.insert(name.clone(), value);
            }
        }
        MetricsSnapshot { entries }
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

/// One snapshotted metric value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A monotonic counter's current value.
    Counter(u64),
    /// A gauge's last stored value.
    Gauge(u64),
    /// A histogram's full bucket copy.
    Histogram(HistogramSnapshot),
}

/// A name-ordered point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Metric name → snapshotted value, name-ordered.
    pub entries: BTreeMap<String, MetricValue>,
}

/// Renders a nanosecond quantity with a human unit.
fn humanize_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

impl MetricsSnapshot {
    /// The value of counter `name`, if registered as one.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.entries.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value of gauge `name`, if registered as one.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        match self.entries.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The snapshot of histogram `name`, if registered as one.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.entries.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Histograms whose name matches `prefix`, name-ordered.
    #[must_use]
    pub fn histograms_with_prefix(&self, prefix: &str) -> Vec<(&str, &HistogramSnapshot)> {
        self.entries
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .filter_map(|(name, value)| match value {
                MetricValue::Histogram(h) => Some((name.as_str(), h)),
                _ => None,
            })
            .collect()
    }

    /// A human-readable metrics table. Histogram names ending in `_ns`
    /// render their quantiles with duration units.
    #[must_use]
    pub fn render_table(&self) -> String {
        let width = self
            .entries
            .keys()
            .map(String::len)
            .max()
            .unwrap_or(0)
            .max(6);
        let mut out = String::new();
        let _ = writeln!(out, "{:<width$}  value", "metric");
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{name:<width$}  {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{name:<width$}  {v} (gauge)");
                }
                MetricValue::Histogram(h) => {
                    let ns = name.ends_with("_ns");
                    let show = |q: Option<u64>| {
                        q.map_or_else(
                            || "-".to_owned(),
                            |v| if ns { humanize_ns(v) } else { v.to_string() },
                        )
                    };
                    let _ = writeln!(
                        out,
                        "{name:<width$}  count={} p50={} p90={} p99={} max={}",
                        h.count,
                        show(h.p50()),
                        show(h.p90()),
                        show(h.p99()),
                        show((h.count > 0).then_some(h.max)),
                    );
                }
            }
        }
        out
    }

    /// A machine-readable CSV rendering: one line per metric with
    /// `name,kind,count,value,p50,p90,p99,min,max` columns (empty where
    /// a column does not apply).
    #[must_use]
    pub fn render_csv(&self) -> String {
        let mut out = String::from("name,kind,count,value,p50,p90,p99,min,max\n");
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{name},counter,,{v},,,,,");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{name},gauge,,{v},,,,,");
                }
                MetricValue::Histogram(h) => {
                    let q = |v: Option<u64>| v.map(|v| v.to_string()).unwrap_or_default();
                    let _ = writeln!(
                        out,
                        "{name},histogram,{},,{},{},{},{},{}",
                        h.count,
                        q(h.p50()),
                        q(h.p90()),
                        q(h.p99()),
                        h.min,
                        h.max,
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_their_cell() {
        let registry = MetricsRegistry::new();
        registry.counter("jobs").add(2);
        registry.counter("jobs").incr();
        assert_eq!(registry.counter("jobs").get(), 3);
        registry.gauge("depth").set(9);
        assert_eq!(registry.gauge("depth").get(), 9);
        registry.histogram("lat_ns").record(100);
        assert_eq!(registry.histogram("lat_ns").snapshot().count, 1);
    }

    #[test]
    fn kind_mismatch_yields_a_detached_handle() {
        let registry = MetricsRegistry::new();
        registry.counter("x").add(5);
        let not_a_gauge = registry.gauge("x");
        not_a_gauge.set(99);
        assert_eq!(registry.snapshot().counter("x"), Some(5), "counter intact");
    }

    #[test]
    fn snapshot_orders_and_renders() {
        let registry = MetricsRegistry::new();
        registry.counter("b.count").add(4);
        registry.gauge("a.depth").set(2);
        registry.histogram("c.latency_ns").record(1500);
        let snap = registry.snapshot();
        let names: Vec<&String> = snap.entries.keys().collect();
        assert_eq!(names, ["a.depth", "b.count", "c.latency_ns"]);
        let table = snap.render_table();
        assert!(table.contains("b.count"), "{table}");
        assert!(table.contains("(gauge)"), "{table}");
        assert!(table.contains("µs"), "ns histograms humanize: {table}");
        let csv = snap.render_csv();
        assert!(csv.starts_with("name,kind,"), "{csv}");
        assert!(csv.contains("b.count,counter,,4,"), "{csv}");
        assert!(csv.contains("c.latency_ns,histogram,1,"), "{csv}");
    }

    #[test]
    fn prefix_lookup_finds_histograms() {
        let registry = MetricsRegistry::new();
        registry.histogram("analysis.het.latency_ns").record(10);
        registry.histogram("analysis.hom.latency_ns").record(20);
        registry.counter("analysis.total").incr();
        let snap = registry.snapshot();
        let found = snap.histograms_with_prefix("analysis.");
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].0, "analysis.het.latency_ns");
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let registry = Arc::new(MetricsRegistry::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let registry = Arc::clone(&registry);
                scope.spawn(move || {
                    let counter = registry.counter("n");
                    let hist = registry.histogram("h");
                    for value in 0..1000u64 {
                        counter.incr();
                        hist.record(value);
                    }
                });
            }
        });
        let snap = registry.snapshot();
        assert_eq!(snap.counter("n"), Some(4000));
        assert_eq!(snap.histogram("h").unwrap().count, 4000);
    }
}
