//! # hetrta-obs — structured tracing spans, an engine-wide metrics
//! # registry, and Chrome-trace export
//!
//! Dependency-free observability primitives for the hetrta sweep engine
//! (and anything else in the workspace), built for two regimes:
//!
//! * **disabled** (the default): every instrumentation point costs one
//!   atomic-flag load ([`Recorder::enabled`]) and nothing else — no
//!   allocation, no formatting, no clock reads;
//! * **enabled**: thread-local **span stacks** capture enter/exit
//!   timestamps with per-thread nesting depth ([`span!`]), and a
//!   [`TraceRecorder`] accumulates them for export as Chrome
//!   trace-event JSON (loadable in Perfetto or `chrome://tracing`) or
//!   structured stderr log lines (`HETRTA_LOG`).
//!
//! Orthogonal to spans, a lock-sharded [`MetricsRegistry`] hands out
//! cheap atomic handles — monotonic [`Counter`]s, [`Gauge`]s, and
//! log-bucketed latency [`Histogram`]s with p50/p90/p99 extraction —
//! and snapshots them into a text table or CSV ([`MetricsSnapshot`]).
//!
//! ## Spans
//!
//! ```
//! use hetrta_obs::{span, Recorder, TraceRecorder};
//!
//! let recorder = TraceRecorder::new();
//! {
//!     let _sweep = span!(&recorder, "sweep", jobs = 4);
//!     let _job = span!(&recorder, "job", index = 0); // nested: depth 1
//! }
//! let spans = recorder.spans();
//! assert_eq!(spans.len(), 2);
//! let json = recorder.to_chrome_json(); // open in Perfetto
//! assert!(json.contains("\"traceEvents\""));
//! ```
//!
//! ## Metrics
//!
//! ```
//! use hetrta_obs::MetricsRegistry;
//! use std::time::Duration;
//!
//! let metrics = MetricsRegistry::new();
//! metrics.counter("cache.result.hits").add(3);
//! let latency = metrics.histogram("analysis.het.latency_ns");
//! latency.record_duration(Duration::from_micros(250));
//! let snap = metrics.snapshot();
//! assert_eq!(snap.counter("cache.result.hits"), Some(3));
//! println!("{}", snap.render_table());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chrome;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod span;

pub use hist::{HistogramSnapshot, LogHistogram};
pub use metrics::{Counter, Gauge, Histogram, MetricValue, MetricsRegistry, MetricsSnapshot};
pub use recorder::{CounterSample, NoopRecorder, Recorder, SpanRecord, TraceRecorder, NOOP};
pub use span::{set_thread_lane, start_span, thread_lane, SpanGuard};
