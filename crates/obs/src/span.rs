//! Thread-local span stacks: RAII guards that time a scope and record
//! it on drop, tracking per-thread nesting depth and a display lane.
//!
//! Use through the [`span!`](crate::span!) macro; [`start_span`] is the
//! non-macro entry point. When the recorder is disabled the guard is an
//! empty shell: no clock read, no allocation, nothing recorded.

use std::cell::Cell;
use std::time::Instant;

use crate::recorder::{Recorder, SpanRecord};

thread_local! {
    /// Nesting depth of the current thread's open spans.
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    /// Display lane of the current thread (engine convention: 0 =
    /// session/orchestrator, 1 + k = worker k).
    static LANE: Cell<u32> = const { Cell::new(0) };
}

/// Assigns the current thread's display lane; spans opened afterwards
/// carry it. Idempotent and cheap (one `Cell` store).
pub fn set_thread_lane(lane: u32) {
    LANE.with(|l| l.set(lane));
}

/// The current thread's display lane (0 until assigned).
#[must_use]
pub fn thread_lane() -> u32 {
    LANE.with(Cell::get)
}

/// An open span; records itself on drop. Construct through
/// [`span!`](crate::span!) or [`start_span`].
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; drop ends it"]
pub struct SpanGuard<'a>(Option<ActiveSpan<'a>>);

#[derive(Debug)]
struct ActiveSpan<'a> {
    recorder: &'a dyn Recorder,
    name: &'static str,
    detail: Option<String>,
    depth: u32,
    start: Instant,
}

/// Opens a span on `recorder`. When the recorder is disabled this does
/// no work at all and the returned guard is inert.
pub fn start_span<'a>(
    recorder: &'a dyn Recorder,
    name: &'static str,
    detail: Option<String>,
) -> SpanGuard<'a> {
    if !recorder.enabled() {
        return SpanGuard(None);
    }
    let depth = DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    SpanGuard(Some(ActiveSpan {
        recorder,
        name,
        detail,
        depth,
        start: Instant::now(),
    }))
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else { return };
        let end = Instant::now();
        DEPTH.with(|d| d.set(active.depth));
        active.recorder.record_span(SpanRecord {
            name: active.name,
            detail: active.detail,
            lane: thread_lane(),
            depth: active.depth,
            start: active.start,
            end,
        });
    }
}

/// Opens a [`SpanGuard`] on a recorder, optionally with `key = value`
/// details that are formatted **only when the recorder is enabled**.
///
/// ```
/// use hetrta_obs::{span, TraceRecorder};
///
/// let recorder = TraceRecorder::new();
/// {
///     let _outer = span!(&recorder, "sweep");
///     let _inner = span!(&recorder, "job", index = 3, cell = 1);
/// }
/// let spans = recorder.spans();
/// assert_eq!(spans[1].detail.as_deref(), Some("index=3 cell=1"));
/// assert_eq!(spans[1].depth, 1);
/// ```
#[macro_export]
macro_rules! span {
    ($rec:expr, $name:expr $(,)?) => {
        $crate::start_span($rec, $name, ::core::option::Option::None)
    };
    ($rec:expr, $name:expr, $($k:ident = $v:expr),+ $(,)?) => {{
        let rec: &dyn $crate::Recorder = $rec;
        let detail = if $crate::Recorder::enabled(rec) {
            let mut rendered = ::std::string::String::new();
            $(
                if !rendered.is_empty() {
                    rendered.push(' ');
                }
                let _ = ::std::fmt::Write::write_fmt(
                    &mut rendered,
                    ::core::format_args!(::core::concat!(::core::stringify!($k), "={}"), $v),
                );
            )+
            ::core::option::Option::Some(rendered)
        } else {
            ::core::option::Option::None
        };
        $crate::start_span(rec, $name, detail)
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{TraceRecorder, NOOP};

    #[test]
    fn disabled_recorder_records_nothing() {
        let guard = start_span(&NOOP, "quiet", None);
        drop(guard);
        // Depth untouched by inert guards.
        let rec = TraceRecorder::new();
        let _outer = crate::span!(&rec, "outer");
        drop(crate::span!(&NOOP, "inert"));
        drop(crate::span!(&rec, "inner"));
        let spans = rec.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].depth, 1, "inert guard must not bump depth");
    }

    #[test]
    fn nesting_depth_restores_after_drop() {
        let rec = TraceRecorder::new();
        {
            let _a = crate::span!(&rec, "a");
            {
                let _b = crate::span!(&rec, "b", step = 1);
            }
            {
                let _c = crate::span!(&rec, "c");
            }
        }
        let spans = rec.spans();
        assert_eq!(spans.len(), 3);
        let depth_of = |name: &str| spans.iter().find(|s| s.name == name).unwrap().depth;
        assert_eq!(depth_of("a"), 0);
        assert_eq!(depth_of("b"), 1);
        assert_eq!(depth_of("c"), 1, "sibling reuses the restored depth");
    }

    #[test]
    fn lanes_are_per_thread() {
        let rec = TraceRecorder::new();
        set_thread_lane(0);
        std::thread::scope(|scope| {
            for worker in 0..3u32 {
                let rec = &rec;
                scope.spawn(move || {
                    set_thread_lane(worker + 1);
                    let _outer = crate::span!(rec, "job", worker = worker);
                    let _inner = crate::span!(rec, "analysis");
                });
            }
        });
        let spans = rec.spans();
        assert_eq!(spans.len(), 6);
        for lane in 1..=3u32 {
            let mine: Vec<_> = spans.iter().filter(|s| s.lane == lane).collect();
            assert_eq!(mine.len(), 2, "each worker thread has its own lane");
            // Nesting is tracked per thread, not globally.
            let job = mine.iter().find(|s| s.name == "job").unwrap();
            let analysis = mine.iter().find(|s| s.name == "analysis").unwrap();
            assert_eq!(job.depth, 0);
            assert_eq!(analysis.depth, 1);
            assert!(analysis.start >= job.start && analysis.end <= job.end);
        }
        assert_eq!(thread_lane(), 0, "spawning threads leaves ours alone");
    }
}
