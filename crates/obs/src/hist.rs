//! Log-bucketed latency histograms with bounded relative error.
//!
//! A [`LogHistogram`] covers the full `u64` range with ~500 buckets:
//! values below 8 get exact unit buckets, and every power-of-two octave
//! above is split into 8 sub-buckets, so any recorded value lands in a
//! bucket whose width is at most 1/8 of its magnitude (≤ 12.5% relative
//! quantile error). Recording is wait-free (one atomic add per bucket
//! plus running count/sum/min/max); quantiles are extracted from a
//! consistent-enough [`HistogramSnapshot`] by a cumulative walk.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets.
pub const SUB_BITS: u32 = 3;

/// Sub-buckets per octave.
const SUB: u64 = 1 << SUB_BITS;

/// Total bucket count: `SUB` exact unit buckets below `SUB`, then
/// `(64 - SUB_BITS)` octaves of `SUB` sub-buckets each.
pub const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB as usize;

/// The bucket index a value lands in.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros(); // ≥ SUB_BITS
    let shift = msb - SUB_BITS;
    let sub = (value >> shift) & (SUB - 1);
    ((shift as usize) + 1) * SUB as usize + sub as usize
}

/// The inclusive `[low, high]` value range of bucket `index`.
///
/// # Panics
///
/// When `index >= BUCKETS`.
#[must_use]
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket {index} out of range");
    if index < SUB as usize {
        return (index as u64, index as u64);
    }
    let shift = (index / SUB as usize - 1) as u32;
    let sub = (index % SUB as usize) as u64;
    let low = (SUB + sub) << shift;
    let width = 1u64 << shift;
    (low, low + (width - 1))
}

/// A concurrent log-bucketed histogram over `u64` values (the engine
/// records latencies as nanoseconds).
#[derive(Debug)]
pub struct LogHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl LogHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LogHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, elapsed: std::time::Duration) {
        self.record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Values recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy for quantile extraction. Concurrent writers
    /// may land between the field reads; each field is individually
    /// consistent, which is all quantile reporting needs.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

/// A point-in-time copy of a [`LogHistogram`], with quantile extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values (wrapping on overflow).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Per-bucket occupancy (see [`bucket_bounds`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// holding the `ceil(q·count)`-th smallest value, clamped to the
    /// observed `[min, max]`; `None` when empty. The log-bucket layout
    /// bounds the relative error at `1 / 2^SUB_BITS` (12.5%).
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (index, &occupancy) in self.buckets.iter().enumerate() {
            cumulative += occupancy;
            if cumulative >= target {
                let (_, high) = bucket_bounds(index);
                return Some(high.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Median (see [`HistogramSnapshot::quantile`]).
    #[must_use]
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 90th percentile.
    #[must_use]
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.90)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Arithmetic mean of recorded values (`None` when empty).
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_ordered() {
        // Every bucket's range starts right after the previous one ends.
        let mut expected_low = 0u64;
        for index in 0..BUCKETS {
            let (low, high) = bucket_bounds(index);
            assert_eq!(low, expected_low, "bucket {index} leaves a gap");
            assert!(high >= low);
            if high == u64::MAX {
                assert_eq!(index, BUCKETS - 1, "only the last bucket may saturate");
                return;
            }
            expected_low = high + 1;
        }
        panic!("the last bucket must reach u64::MAX");
    }

    #[test]
    fn index_and_bounds_agree_at_edges() {
        for value in [0u64, 1, 7, 8, 9, 15, 16, 255, 256, 1 << 20, u64::MAX] {
            let index = bucket_index(value);
            let (low, high) = bucket_bounds(index);
            assert!(
                (low..=high).contains(&value),
                "{value} mapped to bucket {index} = [{low}, {high}]"
            );
        }
    }

    #[test]
    fn relative_bucket_width_is_bounded() {
        for index in SUB as usize..BUCKETS {
            let (low, high) = bucket_bounds(index);
            let width = high - low + 1;
            assert!(
                width as f64 <= low as f64 / SUB as f64 + 1.0,
                "bucket {index} [{low}, {high}] too wide"
            );
        }
    }

    #[test]
    fn quantiles_of_a_known_distribution() {
        let hist = LogHistogram::new();
        for value in 1..=100u64 {
            hist.record(value);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 100);
        assert_eq!(snap.mean(), Some(50.5));
        // Bucketed quantiles sit within one bucket width of the truth.
        let p50 = snap.p50().unwrap();
        assert!((50..=55).contains(&p50), "p50 = {p50}");
        let p99 = snap.p99().unwrap();
        assert!((99..=103).contains(&p99), "p99 = {p99}");
        assert_eq!(snap.quantile(0.0), Some(1));
        assert_eq!(snap.quantile(1.0), Some(100), "p100 clamps to the max");
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let snap = LogHistogram::new().snapshot();
        assert_eq!(snap.quantile(0.5), None);
        assert_eq!(snap.mean(), None);
        assert_eq!(snap.min, 0);
    }

    #[test]
    fn durations_record_as_nanos() {
        let hist = LogHistogram::new();
        hist.record_duration(std::time::Duration::from_micros(3));
        let snap = hist.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum, 3_000);
    }
}
