//! The [`Recorder`] seam: where instrumented code hands off spans.
//!
//! Instrumentation sites hold a `&dyn Recorder` (usually through an
//! `Arc`) and guard every non-trivial step — timestamping, formatting
//! span details, pushing records — behind [`Recorder::enabled`]. The
//! [`NoopRecorder`] answers `false` and turns the whole apparatus into
//! a single predictable branch; the [`TraceRecorder`] answers `true`
//! and accumulates everything for export.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// One completed span: a named interval on a lane, with its per-thread
/// nesting depth and an optional `key=value` detail string.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Static span name (the Chrome trace event name).
    pub name: &'static str,
    /// Rendered `key=value` pairs from the [`span!`](crate::span!) site,
    /// if any.
    pub detail: Option<String>,
    /// Display lane (Chrome `tid`); by the engine's convention lane 0 is
    /// the session/orchestrator thread and lane `1 + k` is worker `k`.
    pub lane: u32,
    /// Nesting depth on this thread when the span opened (0 = root).
    pub depth: u32,
    /// When the span opened.
    pub start: Instant,
    /// When the span closed.
    pub end: Instant,
}

/// One sampled counter value (a Chrome `"C"` event), e.g. the injector
/// queue depth at a refill.
#[derive(Debug, Clone)]
pub struct CounterSample {
    /// Static counter name.
    pub name: &'static str,
    /// Sampled value.
    pub value: u64,
    /// When it was sampled.
    pub at: Instant,
}

/// Sink for spans and counter samples.
///
/// The contract that keeps disabled instrumentation near-free: callers
/// must consult [`Recorder::enabled`] before doing *any* work on a
/// span's behalf (clock reads, formatting). The [`span!`](crate::span!)
/// macro and [`SpanGuard`](crate::SpanGuard) uphold this automatically.
///
/// ```
/// use hetrta_obs::{Recorder, SpanRecord};
///
/// /// A recorder that only counts spans.
/// #[derive(Debug, Default)]
/// struct CountingRecorder(std::sync::atomic::AtomicU64);
///
/// impl Recorder for CountingRecorder {
///     fn enabled(&self) -> bool {
///         true
///     }
///     fn record_span(&self, _span: SpanRecord) {
///         self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
///     }
/// }
/// ```
pub trait Recorder: Send + Sync + std::fmt::Debug {
    /// Whether spans are being collected. When `false`, instrumentation
    /// sites skip all work (no timestamps, no detail formatting).
    fn enabled(&self) -> bool;

    /// Accepts one completed span.
    fn record_span(&self, span: SpanRecord);

    /// Accepts one sampled counter value (rendered as a Chrome `"C"`
    /// counter track). No-op by default.
    fn record_counter(&self, name: &'static str, value: u64) {
        let _ = (name, value);
    }

    /// Names a display lane (rendered as Chrome thread-name metadata).
    /// No-op by default.
    fn name_lane(&self, lane: u32, name: &str) {
        let _ = (lane, name);
    }
}

/// The always-off recorder: [`Recorder::enabled`] is `false` and every
/// sink method is a no-op. This is the engine's default.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

/// A shared no-op instance for call sites that need a `&'static dyn`
/// recorder (e.g. tests exercising instrumented internals).
pub static NOOP: NoopRecorder = NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record_span(&self, _span: SpanRecord) {}
}

/// Number of span shards; writers shard by lane so concurrent workers
/// rarely contend on the same mutex.
const SPAN_SHARDS: usize = 16;

/// An in-memory recorder that collects every span and counter sample
/// for export — as Chrome trace-event JSON
/// ([`TraceRecorder::to_chrome_json`]) or, when stderr logging is on,
/// as structured log lines emitted at span close.
///
/// Timestamps are kept as [`Instant`]s and converted to microseconds
/// relative to the recorder's construction time (`epoch`) at export.
#[derive(Debug)]
pub struct TraceRecorder {
    epoch: Instant,
    shards: Vec<Mutex<Vec<SpanRecord>>>,
    counters: Mutex<Vec<CounterSample>>,
    lanes: Mutex<BTreeMap<u32, String>>,
    stderr_log: bool,
}

impl TraceRecorder {
    /// A recorder collecting from now on, without stderr logging.
    #[must_use]
    pub fn new() -> Self {
        TraceRecorder {
            epoch: Instant::now(),
            shards: (0..SPAN_SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            counters: Mutex::new(Vec::new()),
            lanes: Mutex::new(BTreeMap::new()),
            stderr_log: false,
        }
    }

    /// Enables (or disables) a structured stderr log line per closed
    /// span — the `HETRTA_LOG` surface.
    #[must_use]
    pub fn with_stderr_log(mut self, enabled: bool) -> Self {
        self.stderr_log = enabled;
        self
    }

    /// The instant all exported timestamps are relative to.
    #[must_use]
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Every recorded span, sorted by start time.
    #[must_use]
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut all: Vec<SpanRecord> = self
            .shards
            .iter()
            .flat_map(|s| s.lock().expect("span shard").clone())
            .collect();
        all.sort_by_key(|s| s.start);
        all
    }

    /// Every recorded counter sample, in record order.
    #[must_use]
    pub fn counter_samples(&self) -> Vec<CounterSample> {
        self.counters.lock().expect("counter samples").clone()
    }

    /// The registered lane names (lane → name).
    #[must_use]
    pub fn lane_names(&self) -> BTreeMap<u32, String> {
        self.lanes.lock().expect("lane names").clone()
    }

    /// Renders everything recorded so far as a Chrome trace-event JSON
    /// document (the `{"traceEvents": [...]}` object format), loadable
    /// in Perfetto or `chrome://tracing`.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        crate::chrome::render(self)
    }

    /// Writes [`TraceRecorder::to_chrome_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_chrome_trace(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json())
    }

    fn log_span(&self, span: &SpanRecord) {
        let at_ms = span
            .start
            .saturating_duration_since(self.epoch)
            .as_secs_f64()
            * 1e3;
        let dur_ms = span.end.saturating_duration_since(span.start).as_secs_f64() * 1e3;
        let indent = "  ".repeat(span.depth as usize);
        let detail = span.detail.as_deref().unwrap_or("");
        eprintln!(
            "[hetrta] {at_ms:>12.3}ms lane={lane} {indent}{name} {detail} ({dur_ms:.3}ms)",
            lane = span.lane,
            name = span.name,
        );
    }
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new()
    }
}

impl Recorder for TraceRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record_span(&self, span: SpanRecord) {
        if self.stderr_log {
            self.log_span(&span);
        }
        self.shards[span.lane as usize % SPAN_SHARDS]
            .lock()
            .expect("span shard")
            .push(span);
    }

    fn record_counter(&self, name: &'static str, value: u64) {
        self.counters
            .lock()
            .expect("counter samples")
            .push(CounterSample {
                name,
                value,
                at: Instant::now(),
            });
    }

    fn name_lane(&self, lane: u32, name: &str) {
        self.lanes
            .lock()
            .expect("lane names")
            .insert(lane, name.to_owned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_silent() {
        assert!(!NOOP.enabled());
        NOOP.record_counter("x", 1);
        NOOP.name_lane(0, "session");
    }

    #[test]
    fn trace_recorder_collects_spans_counters_and_lanes() {
        let rec = TraceRecorder::new();
        assert!(rec.enabled());
        let start = Instant::now();
        rec.record_span(SpanRecord {
            name: "job",
            detail: Some("index=1".into()),
            lane: 2,
            depth: 0,
            start,
            end: Instant::now(),
        });
        rec.record_counter("queue_depth", 7);
        rec.name_lane(2, "worker 1");
        assert_eq!(rec.spans().len(), 1);
        assert_eq!(rec.counter_samples().len(), 1);
        assert_eq!(
            rec.lane_names().get(&2).map(String::as_str),
            Some("worker 1")
        );
    }

    #[test]
    fn spans_come_back_sorted_by_start() {
        let rec = TraceRecorder::new();
        let early = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let late = Instant::now();
        for (lane, start) in [(5u32, late), (1, early)] {
            rec.record_span(SpanRecord {
                name: "s",
                detail: None,
                lane,
                depth: 0,
                start,
                end: start,
            });
        }
        let spans = rec.spans();
        assert_eq!(spans[0].lane, 1, "earlier span first");
        assert_eq!(spans[1].lane, 5);
    }
}
