//! A minimal JSON reader, enough to validate exported traces.
//!
//! The workspace builds offline, so trace-validation tests (and the CI
//! gate's local equivalent) cannot pull a JSON crate; this module
//! implements the standard grammar — objects, arrays, strings with
//! escapes, numbers, booleans, null — as a small recursive-descent
//! parser. It is a *reader* for machine-produced documents, not a
//! general-purpose library: numbers are `f64` and duplicate object keys
//! keep the last value.

use std::collections::BTreeMap;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as `f64`.
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (duplicate keys keep the last value).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// A human-readable message with the byte offset of the defect.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing garbage at byte {}", parser.pos));
        }
        Ok(value)
    }

    /// Member `key` of an object (`None` for other kinds).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.get(key),
            _ => None,
        }
    }

    /// The elements of an array (`None` for other kinds).
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// A number's value (`None` for other kinds).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// A string's content (`None` for other kinds).
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected `{word}` at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {start}"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {start}"))?;
                            // Lone surrogates render as U+FFFD; the
                            // workspace's own exports never emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {start}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') = self.peek() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_grammar() {
        let doc = JsonValue::parse(r#"{"a": [1, -2.5, 1e3], "s": "x\"\né", "t": true, "n": null}"#)
            .unwrap();
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(1000.0)
        );
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x\"\né"));
        assert_eq!(doc.get("t"), Some(&JsonValue::Bool(true)));
        assert_eq!(doc.get("n"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{} extra").is_err());
        assert!(JsonValue::parse(r#"{"a" 1}"#).is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        assert!(JsonValue::parse("01a").is_err());
    }

    #[test]
    fn accessors_are_kind_checked() {
        let doc = JsonValue::parse("[1]").unwrap();
        assert!(doc.get("x").is_none());
        assert!(doc.as_str().is_none());
        assert_eq!(doc.as_array().unwrap().len(), 1);
    }
}
