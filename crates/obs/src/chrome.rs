//! Chrome trace-event JSON export.
//!
//! Renders a [`TraceRecorder`]'s spans, counter samples, and lane names
//! as the Trace Event Format's object form
//! (`{"traceEvents": [...], "displayTimeUnit": "ms"}`), loadable in
//! Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`:
//!
//! * every span becomes a `"ph": "X"` *complete* event with `ts`/`dur`
//!   in microseconds relative to the recorder's epoch, `pid` 1, and the
//!   span's lane as `tid` — so the session thread and each worker get
//!   their own timeline row, with nesting rendered by interval
//!   containment;
//! * lane names become `"ph": "M"` `thread_name` metadata events;
//! * counter samples become `"ph": "C"` counter-track events.

use std::fmt::Write as _;
use std::time::Instant;

use crate::recorder::TraceRecorder;

/// Escapes a string for embedding in a JSON string literal.
fn escape_into(out: &mut String, text: &str) {
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Microseconds from `epoch` to `at`, with sub-microsecond precision.
fn micros_since(epoch: Instant, at: Instant) -> f64 {
    at.saturating_duration_since(epoch).as_secs_f64() * 1e6
}

/// Renders `recorder`'s contents as a Chrome trace-event JSON document.
#[must_use]
pub(crate) fn render(recorder: &TraceRecorder) -> String {
    let epoch = recorder.epoch();
    let spans = recorder.spans();
    let counters = recorder.counter_samples();
    let lanes = recorder.lane_names();

    let mut out = String::with_capacity(128 + spans.len() * 160);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
    };

    for (lane, name) in &lanes {
        sep(&mut out);
        out.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
        let _ = write!(out, "{lane},\"args\":{{\"name\":\"");
        escape_into(&mut out, name);
        out.push_str("\"}}");
    }

    for span in &spans {
        sep(&mut out);
        out.push_str("{\"name\":\"");
        escape_into(&mut out, span.name);
        let _ = write!(
            out,
            "\",\"cat\":\"hetrta\",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{dur:.3},\"pid\":1,\"tid\":{tid}",
            ts = micros_since(epoch, span.start),
            dur = micros_since(span.start, span.end),
            tid = span.lane,
        );
        let _ = write!(out, ",\"args\":{{\"depth\":{}", span.depth);
        if let Some(detail) = &span.detail {
            out.push_str(",\"detail\":\"");
            escape_into(&mut out, detail);
            out.push('"');
        }
        out.push_str("}}");
    }

    for sample in &counters {
        sep(&mut out);
        out.push_str("{\"name\":\"");
        escape_into(&mut out, sample.name);
        let _ = write!(
            out,
            "\",\"ph\":\"C\",\"ts\":{ts:.3},\"pid\":1,\"args\":{{\"value\":{value}}}}}",
            ts = micros_since(epoch, sample.at),
            value = sample.value,
        );
    }

    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;
    use crate::recorder::Recorder;

    #[test]
    fn export_is_valid_json_with_well_formed_events() {
        let rec = TraceRecorder::new();
        rec.name_lane(0, "session");
        rec.name_lane(1, "worker \"0\"");
        let start = Instant::now();
        rec.record_span(crate::recorder::SpanRecord {
            name: "job",
            detail: Some("index=1 cell=0".into()),
            lane: 1,
            depth: 0,
            start,
            end: start + std::time::Duration::from_micros(250),
        });
        rec.record_counter("queue_depth", 3);

        let text = rec.to_chrome_json();
        let doc = JsonValue::parse(&text).expect("export parses as JSON");
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .expect("traceEvents array");
        assert_eq!(events.len(), 4, "2 lanes + 1 span + 1 counter");
        for event in events {
            let ph = event.get("ph").and_then(JsonValue::as_str).expect("ph");
            assert!(["M", "X", "C"].contains(&ph), "unexpected ph {ph}");
            if ph == "X" {
                let ts = event.get("ts").and_then(JsonValue::as_f64).expect("ts");
                let dur = event.get("dur").and_then(JsonValue::as_f64).expect("dur");
                assert!(ts >= 0.0 && dur >= 0.0);
                assert!((dur - 250.0).abs() < 1.0, "dur = {dur}µs");
            }
        }
        // Escaped lane name survives the round trip.
        let meta = events
            .iter()
            .find(|e| {
                e.get("ph").and_then(JsonValue::as_str) == Some("M")
                    && e.get("tid").and_then(JsonValue::as_f64) == Some(1.0)
            })
            .expect("worker lane metadata");
        assert_eq!(
            meta.get("args")
                .and_then(|a| a.get("name"))
                .and_then(JsonValue::as_str),
            Some("worker \"0\"")
        );
    }

    #[test]
    fn empty_recorder_exports_an_empty_event_list() {
        let rec = TraceRecorder::new();
        let doc = JsonValue::parse(&rec.to_chrome_json()).unwrap();
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .unwrap();
        assert!(events.is_empty());
        assert_eq!(
            doc.get("displayTimeUnit").and_then(JsonValue::as_str),
            Some("ms")
        );
    }
}
