//! Property tests of the frame layer against defective bytes: any
//! truncation or single-bit corruption of any frame must decode to a
//! typed [`WireError`] (or, for the one unchecksummed header byte, a
//! changed kind) — never a panic, never a forged payload.

use std::io::Cursor;

use hetrta_api::wire::{decode_frame, encode_frame, read_frame, WireError};
use proptest::prelude::*;

/// Byte offset of the frame-kind byte: after the 4-byte magic and the
/// 2-byte version, before the 4-byte length. The only byte of a frame
/// no checksum covers (the payload checksum starts at the payload).
const KIND_OFFSET: usize = 6;

proptest! {
    #[test]
    fn truncated_frames_decode_to_typed_errors(
        payload in proptest::collection::vec(0u8..=255, 0..300),
        kind in 0u8..=255,
        cut_seed in 0usize..10_000,
    ) {
        let frame = encode_frame(kind, &payload);
        let cut = cut_seed % frame.len(); // strictly shorter than the frame
        let prefix = &frame[..cut];

        prop_assert!(
            decode_frame(prefix).is_err(),
            "a truncated buffer can never decode"
        );
        match read_frame(&mut Cursor::new(prefix)) {
            Err(WireError::Eof) => prop_assert_eq!(
                cut, 0,
                "Eof is reserved for clean frame boundaries"
            ),
            Err(_) => {}
            Ok(_) => prop_assert!(false, "a truncated stream can never decode"),
        }
    }

    #[test]
    fn bitflipped_frames_never_panic_and_never_forge_a_payload(
        payload in proptest::collection::vec(0u8..=255, 0..300),
        kind in 0u8..=255,
        bit_seed in 0usize..1_000_000,
    ) {
        let frame = encode_frame(kind, &payload);
        let bit = bit_seed % (frame.len() * 8);
        let mut corrupted = frame.clone();
        corrupted[bit / 8] ^= 1 << (bit % 8);

        // Magic, version, length, payload and checksum flips all trip
        // a typed error; only the kind byte can change silently — and
        // then the payload still arrives intact.
        if let Ok((got_kind, got_payload)) = decode_frame(&corrupted) {
            prop_assert_eq!(bit / 8, KIND_OFFSET);
            prop_assert_ne!(got_kind, kind);
            prop_assert_eq!(got_payload, &payload[..]);
        }
        // The streaming reader shares the contract, minus the exact-length
        // check a buffer affords (a shrunken length field leaves trailing
        // bytes unread instead of erroring).
        if let Ok((_, got_payload)) = read_frame(&mut Cursor::new(&corrupted)) {
            prop_assert_eq!(got_payload, payload);
        }
    }

    #[test]
    fn random_garbage_never_panics_the_frame_layer(
        garbage in proptest::collection::vec(0u8..=255, 0..200),
    ) {
        // Without the magic prefix nothing decodes; with it, the checksum
        // stands guard. Either way: a typed error, not a panic. (The
        // 2^-64 checksum-collision case would need the garbage to embed a
        // valid frame verbatim, which random bytes do not.)
        let _ = decode_frame(&garbage);
        let _ = read_frame(&mut Cursor::new(&garbage));
    }
}
