//! Errors of the analysis API.

/// Failures when resolving or running an analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiError {
    /// The registry has no analysis under this key.
    UnknownAnalysis {
        /// The unresolved key.
        key: String,
        /// Every key the registry does know, in registration order.
        known: Vec<String>,
    },
    /// The analysis was handed an input kind it cannot consume.
    InputMismatch {
        /// The analysis that refused.
        analysis: String,
        /// The input kind it expects.
        expected: &'static str,
        /// The input kind it received.
        got: &'static str,
    },
    /// The analysis itself failed.
    Failed {
        /// The failing analysis.
        analysis: String,
        /// Human-readable failure description.
        message: String,
    },
}

impl ApiError {
    /// Convenience constructor for [`ApiError::InputMismatch`].
    #[must_use]
    pub fn input_mismatch(analysis: &str, expected: &'static str, got: &'static str) -> Self {
        ApiError::InputMismatch {
            analysis: analysis.to_owned(),
            expected,
            got,
        }
    }

    /// Convenience constructor for [`ApiError::Failed`].
    #[must_use]
    pub fn failed(analysis: &str, message: impl Into<String>) -> Self {
        ApiError::Failed {
            analysis: analysis.to_owned(),
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::UnknownAnalysis { key, known } => {
                write!(
                    f,
                    "unknown analysis kind `{key}` (valid keys: {})",
                    known.join(", ")
                )
            }
            ApiError::InputMismatch {
                analysis,
                expected,
                got,
            } => write!(f, "analysis `{analysis}` expects a {expected}, got a {got}"),
            ApiError::Failed { analysis, message } => {
                write!(f, "analysis `{analysis}` failed: {message}")
            }
        }
    }
}

impl std::error::Error for ApiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_key_lists_valid_keys() {
        let e = ApiError::UnknownAnalysis {
            key: "frob".into(),
            known: vec!["het".into(), "hom".into()],
        };
        let text = e.to_string();
        assert!(text.contains("unknown analysis kind `frob`"));
        assert!(text.contains("het, hom"));
    }

    #[test]
    fn mismatch_and_failure_render() {
        let e = ApiError::input_mismatch("acceptance", "task set", "task");
        assert!(e.to_string().contains("expects a task set"));
        let e = ApiError::failed("het", "boom");
        assert_eq!(e.to_string(), "analysis `het` failed: boom");
    }
}
