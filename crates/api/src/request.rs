//! Typed analysis inputs and parameters.

use hetrta_cond::CondExpr;
use hetrta_dag::HeteroDagTask;

use crate::ApiError;

/// The subject of an analysis run.
///
/// Every [`Analysis`](crate::Analysis) implementation documents which input
/// kind it consumes; handing it another kind yields
/// [`ApiError::InputMismatch`] instead of a panic, so registries can be
/// driven by untrusted key/input combinations (CLI flags, job queues).
#[derive(Debug, Clone)]
pub enum AnalysisInput {
    /// One heterogeneous DAG task.
    Task(HeteroDagTask),
    /// A task set in priority order (deadline-monotonic for GFP).
    TaskSet(Vec<HeteroDagTask>),
    /// A conditional expression (the model of reference \[12\]).
    Cond(CondExpr),
}

impl AnalysisInput {
    /// Human-readable input kind (used by mismatch errors).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            AnalysisInput::Task(_) => "task",
            AnalysisInput::TaskSet(_) => "task set",
            AnalysisInput::Cond(_) => "conditional expression",
        }
    }

    /// The task, or an [`ApiError::InputMismatch`] naming `analysis`.
    ///
    /// # Errors
    ///
    /// [`ApiError::InputMismatch`] when the input is not a task.
    pub fn as_task(&self, analysis: &str) -> Result<&HeteroDagTask, ApiError> {
        match self {
            AnalysisInput::Task(t) => Ok(t),
            other => Err(ApiError::input_mismatch(analysis, "task", other.kind())),
        }
    }

    /// The task set, or an [`ApiError::InputMismatch`] naming `analysis`.
    ///
    /// # Errors
    ///
    /// [`ApiError::InputMismatch`] when the input is not a task set.
    pub fn as_task_set(&self, analysis: &str) -> Result<&[HeteroDagTask], ApiError> {
        match self {
            AnalysisInput::TaskSet(s) => Ok(s),
            other => Err(ApiError::input_mismatch(analysis, "task set", other.kind())),
        }
    }

    /// The conditional expression, or an [`ApiError::InputMismatch`].
    ///
    /// # Errors
    ///
    /// [`ApiError::InputMismatch`] when the input is not an expression.
    pub fn as_cond(&self, analysis: &str) -> Result<&CondExpr, ApiError> {
        match self {
            AnalysisInput::Cond(e) => Ok(e),
            other => Err(ApiError::input_mismatch(
                analysis,
                "conditional expression",
                other.kind(),
            )),
        }
    }
}

/// Parameters shared by every analysis kind.
///
/// Each [`Analysis`](crate::Analysis) reads the subset it cares about and
/// declares that subset through
/// [`Analysis::cache_params`](crate::Analysis::cache_params), so memo keys
/// stay insensitive to irrelevant knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisParams {
    /// Host core count `m`.
    pub m: u64,
    /// Node-exploration budget of the bounded exact solver (`None` =
    /// solver default). Read by `exact`.
    pub exact_node_budget: Option<u64>,
    /// Enumeration cap for conditional realizations. Read by `cond`.
    pub realization_cap: usize,
    /// Also simulate the transformed task `τ'` (the Figure 6 comparison).
    /// Read by `sim`.
    pub sim_transformed: bool,
    /// Random tie-break seeds for the worst-case schedule exploration
    /// (`0` = skip the exploration). Read by `suspend`.
    pub explore_seeds: u64,
    /// Number of seeded simulation samples the `sampled` analysis draws
    /// (its fixed sample budget; at least 1 is always drawn).
    pub sample_budget: usize,
    /// Base seed of the `sampled` analysis; per-sample seeds are derived
    /// deterministically from it, so the same seed + budget reproduce the
    /// mean/CI bitwise on any thread or worker count.
    pub sample_seed: u64,
}

impl AnalysisParams {
    /// Parameters for `m` host cores with every other knob at its default
    /// (no exact budget override, 4096-realization cap, original-task
    /// simulation only, no worst-case exploration, 64 simulation samples
    /// from seed 0).
    #[must_use]
    pub fn new(m: u64) -> Self {
        AnalysisParams {
            m,
            exact_node_budget: None,
            realization_cap: 4096,
            sim_transformed: false,
            explore_seeds: 0,
            sample_budget: 64,
            sample_seed: 0,
        }
    }
}

/// One analysis request: an input plus the parameters to analyze it under.
#[derive(Debug, Clone)]
pub struct AnalysisRequest {
    /// What to analyze.
    pub input: AnalysisInput,
    /// How to analyze it.
    pub params: AnalysisParams,
}

impl AnalysisRequest {
    /// A per-task request with default parameters.
    #[must_use]
    pub fn task(task: HeteroDagTask, m: u64) -> Self {
        AnalysisRequest {
            input: AnalysisInput::Task(task),
            params: AnalysisParams::new(m),
        }
    }

    /// A task-set request with default parameters.
    #[must_use]
    pub fn task_set(set: Vec<HeteroDagTask>, m: u64) -> Self {
        AnalysisRequest {
            input: AnalysisInput::TaskSet(set),
            params: AnalysisParams::new(m),
        }
    }

    /// A conditional-expression request with default parameters.
    #[must_use]
    pub fn cond(expr: CondExpr, m: u64) -> Self {
        AnalysisRequest {
            input: AnalysisInput::Cond(expr),
            params: AnalysisParams::new(m),
        }
    }
}
