//! Builtin [`Analysis`] adapters over the workspace's entry points.
//!
//! Each adapter is a thin, pure wrapper: it consumes a typed
//! [`AnalysisRequest`], calls the existing crate entry point, and reduces
//! the result to a tagged [`AnalysisOutcome`]. Floating-point operations
//! mirror the pre-registry serial loops operation-for-operation so
//! engine-routed sweeps reproduce them bitwise (pinned by the
//! `engine_parity` integration tests of `hetrta-bench`).

use std::cell::RefCell;
use std::sync::Arc;

use hetrta_core::federated::{federated_partition, AnalysisKind};
use hetrta_core::{r_het, r_hom_parts};
use hetrta_exact::bounds::root_bound;
use hetrta_exact::list_schedule_cp_first;
use hetrta_exact::{solve_with, SolverConfig, SolverWorkspace, MAX_NODES_SUPPORTED};
use hetrta_sched::model::{AnalysisModel, DeviceModel};
use hetrta_sched::{gedf_test, gfp_test};
use hetrta_sim::policy::{BreadthFirst, RandomTieBreak};
use hetrta_sim::{explore_worst_case, simulate_makespan, Platform, SimWorkspace};
use hetrta_suspend::BaselineComparison;

thread_local! {
    // Per-thread reusable workspaces: each worker of a batch engine's pool
    // owns one of each, so steady-state sweeps re-run the simulator and the
    // exact solver without per-job heap churn. Analyses stay pure — the
    // workspaces hold scratch buffers, never results.
    static SIM_WORKSPACE: RefCell<SimWorkspace> = RefCell::new(SimWorkspace::new());
    static SOLVER_WORKSPACE: RefCell<SolverWorkspace> = RefCell::new(SolverWorkspace::new());
}

use crate::registry::{InputKind, ParamDigest};
use crate::{
    AcceptanceOutcome, Analysis, AnalysisContext, AnalysisOutcome, AnalysisParams, AnalysisRequest,
    AnytimeOutcome, ApiError, CondOutcome, ExactOutcome, HetOutcome, SampledOutcome, SimOutcome,
    SuspendOutcome,
};

/// The nine builtin analyses, in their canonical registration order.
pub(crate) fn builtin_analyses() -> Vec<Arc<dyn Analysis>> {
    vec![
        Arc::new(HetAnalysis),
        Arc::new(HomAnalysis),
        Arc::new(SimAnalysis),
        Arc::new(ExactAnalysis),
        Arc::new(CondAnalysis),
        Arc::new(SuspendAnalysis),
        Arc::new(AcceptanceAnalysis),
        Arc::new(SampledSimAnalysis),
        Arc::new(AnytimeExactAnalysis),
    ]
}

fn digest_m(params: &AnalysisParams) -> u64 {
    let mut h = ParamDigest::new();
    h.push(params.m);
    h.finish()
}

/// `"het"` — Algorithm 1 transformation + Theorem 1 response-time bound.
#[derive(Debug, Clone, Copy, Default)]
pub struct HetAnalysis;

impl Analysis for HetAnalysis {
    fn key(&self) -> &str {
        "het"
    }

    fn describe(&self) -> &str {
        "heterogeneous RTA: Algorithm 1 transformation + Theorem 1 (R_het, scenario)"
    }

    fn run(
        &self,
        request: &AnalysisRequest,
        ctx: &dyn AnalysisContext,
    ) -> Result<AnalysisOutcome, ApiError> {
        let task = request.input.as_task(self.key())?;
        let m = request.params.m;
        let fail = |message: String| ApiError::failed("het", message);
        let transformed = ctx
            .transform(task)
            .map_err(|e| fail(format!("transformation failed: {e}")))?;
        let het = r_het(&transformed, m).map_err(|e| fail(format!("R_het failed: {e}")))?;
        let derived = ctx
            .derived(task)
            .map_err(|e| fail(format!("derived data failed: {e}")))?;
        let r_hom_original = r_hom_parts(derived.length(), derived.volume, m)
            .map_err(|e| fail(format!("R_hom failed: {e}")))?;
        let r_hom_transformed = het.r_hom_transformed();
        let deadline = task.deadline().to_rational();
        let r_het_value = het.value();
        // improvement_percent mirrors AnalysisReport::improvement_percent
        // operation-for-operation so engine and serial sweeps agree bitwise.
        let het_f = r_het_value.to_f64();
        let improvement = if het_f == 0.0 {
            0.0
        } else {
            100.0 * (r_hom_original.to_f64() - het_f) / het_f
        };
        Ok(AnalysisOutcome::Het(HetOutcome {
            r_het: het_f,
            r_hom_original: r_hom_original.to_f64(),
            r_hom_transformed: r_hom_transformed.to_f64(),
            scenario: het.scenario(),
            improvement_percent: improvement,
            schedulable_het: r_het_value <= deadline,
            schedulable_hom: r_hom_original <= deadline,
        }))
    }

    fn cache_params(&self, params: &AnalysisParams) -> u64 {
        digest_m(params)
    }
}

/// `"hom"` — Eq. 1 on the original DAG.
#[derive(Debug, Clone, Copy, Default)]
pub struct HomAnalysis;

impl Analysis for HomAnalysis {
    fn key(&self) -> &str {
        "hom"
    }

    fn describe(&self) -> &str {
        "homogeneous RTA baseline: Eq. 1 (R_hom) on the original DAG"
    }

    fn run(
        &self,
        request: &AnalysisRequest,
        ctx: &dyn AnalysisContext,
    ) -> Result<AnalysisOutcome, ApiError> {
        let task = request.input.as_task(self.key())?;
        let fail = |message: String| ApiError::failed("hom", message);
        let derived = ctx
            .derived(task)
            .map_err(|e| fail(format!("derived data failed: {e}")))?;
        let r = r_hom_parts(derived.length(), derived.volume, request.params.m)
            .map_err(|e| fail(format!("R_hom failed: {e}")))?;
        Ok(AnalysisOutcome::Hom { r_hom: r.to_f64() })
    }

    fn cache_params(&self, params: &AnalysisParams) -> u64 {
        digest_m(params)
    }

    fn cost_hint(&self) -> u8 {
        0
    }
}

/// `"sim"` — breadth-first simulation (optionally of `τ'` too).
#[derive(Debug, Clone, Copy, Default)]
pub struct SimAnalysis;

impl Analysis for SimAnalysis {
    fn key(&self) -> &str {
        "sim"
    }

    fn describe(&self) -> &str {
        "work-conserving breadth-first simulation (optionally of the transformed task too)"
    }

    fn run(
        &self,
        request: &AnalysisRequest,
        ctx: &dyn AnalysisContext,
    ) -> Result<AnalysisOutcome, ApiError> {
        let task = request.input.as_task(self.key())?;
        let platform = Platform::with_accelerator(request.params.m as usize);
        let fail = |message: String| ApiError::failed("sim", message);
        SIM_WORKSPACE.with(|ws| {
            let ws = &mut *ws.borrow_mut();
            let original = simulate_makespan(
                ws,
                task.dag(),
                Some(task.offloaded()),
                platform,
                &mut BreadthFirst::new(),
            )
            .map_err(|e| fail(format!("simulation failed: {e}")))?;
            let transformed_makespan = if request.params.sim_transformed {
                let t = ctx
                    .transform(task)
                    .map_err(|e| fail(format!("transformation failed: {e}")))?;
                let result = simulate_makespan(
                    ws,
                    t.transformed(),
                    Some(task.offloaded()),
                    platform,
                    &mut BreadthFirst::new(),
                )
                .map_err(|e| fail(format!("simulation failed: {e}")))?;
                Some(result.get())
            } else {
                None
            };
            Ok(AnalysisOutcome::Sim(SimOutcome {
                makespan: original.get(),
                transformed_makespan,
            }))
        })
    }

    fn cache_params(&self, params: &AnalysisParams) -> u64 {
        let mut h = ParamDigest::new();
        h.push(params.m);
        h.push(u64::from(params.sim_transformed));
        h.finish()
    }

    fn cost_hint(&self) -> u8 {
        3
    }
}

/// `"exact"` — bounded exact minimum-makespan solve.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactAnalysis;

impl Analysis for ExactAnalysis {
    fn key(&self) -> &str {
        "exact"
    }

    fn describe(&self) -> &str {
        "bounded exact minimum-makespan solve (branch-and-bound ILP substitute)"
    }

    fn run(
        &self,
        request: &AnalysisRequest,
        _ctx: &dyn AnalysisContext,
    ) -> Result<AnalysisOutcome, ApiError> {
        let task = request.input.as_task(self.key())?;
        if task.dag().node_count() > MAX_NODES_SUPPORTED {
            return Ok(AnalysisOutcome::Exact(None));
        }
        let mut config = SolverConfig::default();
        if let Some(budget) = request.params.exact_node_budget {
            config.max_nodes = budget;
        }
        let solved = SOLVER_WORKSPACE.with(|ws| {
            solve_with(
                &mut ws.borrow_mut(),
                task.dag(),
                Some(task.offloaded()),
                request.params.m,
                &config,
            )
        });
        match solved {
            Ok(sol) => Ok(AnalysisOutcome::Exact(Some(ExactOutcome {
                makespan: sol.makespan().get(),
                optimal: sol.is_optimal(),
            }))),
            // A budget/size refusal is data ("unsolved"), not a failure.
            Err(_) => Ok(AnalysisOutcome::Exact(None)),
        }
    }

    fn cache_params(&self, params: &AnalysisParams) -> u64 {
        let mut h = ParamDigest::new();
        h.push(params.m);
        match params.exact_node_budget {
            None => h.push(0),
            Some(budget) => {
                h.push(1);
                h.push(budget);
            }
        }
        h.finish()
    }

    fn cost_hint(&self) -> u8 {
        4
    }
}

/// `"cond"` — conditional-DAG bounds (flatten-all, DP, enumeration).
#[derive(Debug, Clone, Copy, Default)]
pub struct CondAnalysis;

impl Analysis for CondAnalysis {
    fn key(&self) -> &str {
        "cond"
    }

    fn describe(&self) -> &str {
        "conditional-DAG bounds: flatten-all vs cond-aware DP vs exact enumeration"
    }

    fn input_kind(&self) -> InputKind {
        InputKind::Cond
    }

    fn run(
        &self,
        request: &AnalysisRequest,
        _ctx: &dyn AnalysisContext,
    ) -> Result<AnalysisOutcome, ApiError> {
        let expr = request.input.as_cond(self.key())?;
        let m = request.params.m;
        let fail = |message: String| ApiError::failed("cond", message);
        let flattened = hetrta_cond::r_parallel_flattening(expr, m)
            .map_err(|e| fail(format!("flatten-all bound failed: {e}")))?;
        let cond_aware = hetrta_cond::r_cond(expr, m)
            .map_err(|e| fail(format!("cond-aware bound failed: {e}")))?;
        // Any enumeration refusal (cap, size) is a skipped sample, exactly
        // like the serial ablation's `let Ok(..) else continue`.
        let exact = hetrta_cond::r_cond_exact(expr, m, request.params.realization_cap)
            .ok()
            .map(|v| v.to_f64());
        Ok(AnalysisOutcome::Cond(CondOutcome {
            flattened: flattened.to_f64(),
            cond_aware: cond_aware.to_f64(),
            exact,
            realizations: expr.realization_count(),
        }))
    }

    fn cache_params(&self, params: &AnalysisParams) -> u64 {
        let mut h = ParamDigest::new();
        h.push(params.m);
        h.push(params.realization_cap as u64);
        h.finish()
    }

    fn cost_hint(&self) -> u8 {
        2
    }
}

/// `"suspend"` — self-suspending baselines (+ optional worst-case search).
#[derive(Debug, Clone, Copy, Default)]
pub struct SuspendAnalysis;

impl Analysis for SuspendAnalysis {
    fn key(&self) -> &str {
        "suspend"
    }

    fn describe(&self) -> &str {
        "self-suspending baselines (oblivious, barrier, naive) vs Theorem 1"
    }

    fn run(
        &self,
        request: &AnalysisRequest,
        _ctx: &dyn AnalysisContext,
    ) -> Result<AnalysisOutcome, ApiError> {
        let task = request.input.as_task(self.key())?;
        let m = request.params.m;
        let c = BaselineComparison::compute(task, m)
            .map_err(|e| ApiError::failed("suspend", format!("baseline comparison failed: {e}")))?;
        let (worst_observed, naive_violated) = if request.params.explore_seeds > 0 {
            let worst = explore_worst_case(
                task.dag(),
                Some(task.offloaded()),
                Platform::with_accelerator(m as usize),
                request.params.explore_seeds,
            )
            .map_err(|e| {
                ApiError::failed("suspend", format!("worst-case exploration failed: {e}"))
            })?
            .makespan();
            (
                Some(worst.get()),
                Some(worst.to_rational() > c.naive_unsound),
            )
        } else {
            (None, None)
        };
        Ok(AnalysisOutcome::Suspend(SuspendOutcome {
            oblivious: c.oblivious.to_f64(),
            phase_barrier: c.phase_barrier.to_f64(),
            r_het_tight: c.r_het_tight.to_f64(),
            naive_unsound: c.naive_unsound.to_f64(),
            worst_observed,
            naive_violated,
        }))
    }

    fn cache_params(&self, params: &AnalysisParams) -> u64 {
        let mut h = ParamDigest::new();
        h.push(params.m);
        h.push(params.explore_seeds);
        h.finish()
    }

    fn cost_hint(&self) -> u8 {
        3
    }
}

/// `"acceptance"` — the six task-set schedulability tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct AcceptanceAnalysis;

impl Analysis for AcceptanceAnalysis {
    fn key(&self) -> &str {
        "acceptance"
    }

    fn describe(&self) -> &str {
        "task-set acceptance: GFP/GEDF/federated × homogeneous/heterogeneous"
    }

    fn input_kind(&self) -> InputKind {
        InputKind::TaskSet
    }

    fn run(
        &self,
        request: &AnalysisRequest,
        _ctx: &dyn AnalysisContext,
    ) -> Result<AnalysisOutcome, ApiError> {
        let set = request.input.as_task_set(self.key())?;
        let cores = request.params.m;
        let het = AnalysisModel::Heterogeneous(DeviceModel::DedicatedPerTask);
        let mut accepted = [false; 6];
        let outcome: Result<(), String> = (|| {
            accepted[0] = gfp_test(set, cores, AnalysisModel::Homogeneous)
                .map_err(|e| e.to_string())?
                .is_schedulable();
            accepted[1] = gfp_test(set, cores, het)
                .map_err(|e| e.to_string())?
                .is_schedulable();
            accepted[2] = gedf_test(set, cores, AnalysisModel::Homogeneous)
                .map_err(|e| e.to_string())?
                .is_schedulable();
            accepted[3] = gedf_test(set, cores, het)
                .map_err(|e| e.to_string())?
                .is_schedulable();
            accepted[4] = federated_partition(set, cores, AnalysisKind::Homogeneous)
                .map_err(|e| e.to_string())?
                .is_schedulable();
            accepted[5] = federated_partition(set, cores, AnalysisKind::Heterogeneous)
                .map_err(|e| e.to_string())?
                .is_schedulable();
            Ok(())
        })();
        outcome
            .map_err(|e| ApiError::failed("acceptance", format!("acceptance tests failed: {e}")))?;
        Ok(AnalysisOutcome::Acceptance(AcceptanceOutcome { accepted }))
    }

    fn cache_params(&self, params: &AnalysisParams) -> u64 {
        digest_m(params)
    }

    fn cost_hint(&self) -> u8 {
        2
    }
}

/// Per-sample seed of the `sampled` analysis: a fixed odd multiplier
/// (the 64-bit golden-ratio constant) decorrelates consecutive sample
/// indices while keeping the derivation pure, so any worker can recompute
/// sample `i` of base seed `s` without coordination.
#[must_use]
fn sample_seed(base: u64, index: usize) -> u64 {
    base ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// `"sampled"` — seeded sampled makespan simulation (mean + 95% CI).
#[derive(Debug, Clone, Copy, Default)]
pub struct SampledSimAnalysis;

impl Analysis for SampledSimAnalysis {
    fn key(&self) -> &str {
        "sampled"
    }

    fn describe(&self) -> &str {
        "sampled makespan simulation: k seeded random-tie-break runs, mean + 95% CI"
    }

    fn run(
        &self,
        request: &AnalysisRequest,
        _ctx: &dyn AnalysisContext,
    ) -> Result<AnalysisOutcome, ApiError> {
        let task = request.input.as_task(self.key())?;
        let platform = Platform::with_accelerator(request.params.m as usize);
        let k = request.params.sample_budget.max(1);
        let base = request.params.sample_seed;
        let fail = |message: String| ApiError::failed("sampled", message);
        SIM_WORKSPACE.with(|ws| {
            let ws = &mut *ws.borrow_mut();
            // Sequential accumulation in sample order: the mean and CI are
            // a pure function of (seed, budget), bitwise-reproducible on
            // any thread or worker count.
            let (mut sum, mut sum_sq) = (0.0f64, 0.0f64);
            let (mut min, mut max) = (u64::MAX, 0u64);
            for i in 0..k {
                let mut policy = RandomTieBreak::new(sample_seed(base, i));
                let makespan = simulate_makespan(
                    ws,
                    task.dag(),
                    Some(task.offloaded()),
                    platform,
                    &mut policy,
                )
                .map_err(|e| fail(format!("simulation failed: {e}")))?
                .get();
                let x = makespan as f64;
                sum += x;
                sum_sq += x * x;
                min = min.min(makespan);
                max = max.max(makespan);
            }
            let count = k as f64;
            let mean = sum / count;
            let ci_half = if k > 1 {
                // Unbiased sample variance; the subtraction can go
                // slightly negative in floating point when all samples
                // are equal, hence the clamp.
                let var = (sum_sq - sum * sum / count).max(0.0) / (count - 1.0);
                1.96 * (var / count).sqrt()
            } else {
                0.0
            };
            Ok(AnalysisOutcome::Sampled(SampledOutcome {
                mean,
                ci_half,
                min,
                max,
                count: k as u64,
            }))
        })
    }

    fn cache_params(&self, params: &AnalysisParams) -> u64 {
        let mut h = ParamDigest::new();
        h.push(params.m);
        h.push(params.sample_budget as u64);
        h.push(params.sample_seed);
        h.finish()
    }

    fn cost_hint(&self) -> u8 {
        4
    }
}

/// `"anytime"` — anytime exact bounds: the full solver inside its size
/// cap, an `O(V + E)` lower bound + list-schedule upper bound beyond it.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnytimeExactAnalysis;

impl Analysis for AnytimeExactAnalysis {
    fn key(&self) -> &str {
        "anytime"
    }

    fn describe(&self) -> &str {
        "anytime exact bounds: best lower/upper makespan bound at budget exhaustion, any size"
    }

    fn run(
        &self,
        request: &AnalysisRequest,
        _ctx: &dyn AnalysisContext,
    ) -> Result<AnalysisOutcome, ApiError> {
        let task = request.input.as_task(self.key())?;
        let m = request.params.m;
        let dag = task.dag();
        let fail = |message: String| ApiError::failed("anytime", message);
        if dag.node_count() <= MAX_NODES_SUPPORTED {
            let mut config = SolverConfig::default();
            if let Some(budget) = request.params.exact_node_budget {
                config.max_nodes = budget;
            }
            let sol = SOLVER_WORKSPACE
                .with(|ws| {
                    solve_with(
                        &mut ws.borrow_mut(),
                        dag,
                        Some(task.offloaded()),
                        m,
                        &config,
                    )
                })
                .map_err(|e| fail(format!("solver failed: {e}")))?;
            return Ok(AnalysisOutcome::Anytime(AnytimeOutcome {
                lower: sol.lower_bound().get(),
                upper: sol.makespan().get(),
                optimal: sol.is_optimal(),
            }));
        }
        // Past the solver's cap: never refuse. Root bound below, CP-first
        // list schedule above — both linear-ish in the graph size, so the
        // bracket stays available at n = 10⁵–10⁶. The list schedule runs
        // first: it rejects m = 0 with a typed error where the bound
        // would panic.
        let (upper, _) = list_schedule_cp_first(dag, Some(task.offloaded()), m)
            .map_err(|e| fail(format!("list schedule failed: {e}")))?;
        let lower = root_bound(dag, Some(task.offloaded()), m);
        Ok(AnalysisOutcome::Anytime(AnytimeOutcome {
            lower: lower.get(),
            upper: upper.get(),
            optimal: lower == upper,
        }))
    }

    fn cache_params(&self, params: &AnalysisParams) -> u64 {
        let mut h = ParamDigest::new();
        h.push(params.m);
        match params.exact_node_budget {
            None => h.push(0),
            Some(budget) => {
                h.push(1);
                h.push(budget);
            }
        }
        h.finish()
    }

    fn cost_hint(&self) -> u8 {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnalysisInput, DirectContext};
    use hetrta_dag::{DagBuilder, HeteroDagTask, Ticks};

    fn figure1_task() -> HeteroDagTask {
        let mut b = DagBuilder::new();
        let v1 = b.node("v1", Ticks::new(1));
        let v2 = b.node("v2", Ticks::new(4));
        let v3 = b.node("v3", Ticks::new(6));
        let v4 = b.node("v4", Ticks::new(2));
        let v5 = b.node("v5", Ticks::new(1));
        let voff = b.node("v_off", Ticks::new(4));
        b.edges([
            (v1, v2),
            (v1, v3),
            (v1, v4),
            (v4, voff),
            (v2, v5),
            (v3, v5),
            (voff, v5),
        ])
        .unwrap();
        HeteroDagTask::new(b.build().unwrap(), voff, Ticks::new(50), Ticks::new(50)).unwrap()
    }

    #[test]
    fn het_matches_the_analysis_report() {
        let request = AnalysisRequest::task(figure1_task(), 2);
        let AnalysisOutcome::Het(h) = HetAnalysis.run(&request, &DirectContext).unwrap() else {
            panic!("het outcome")
        };
        assert_eq!(h.r_het, 12.0);
        assert_eq!(h.r_hom_original, 13.0);
        assert_eq!(h.r_hom_transformed, 14.0);
        assert!(h.schedulable_het && h.schedulable_hom);
        let report = hetrta_core::HeterogeneousAnalysis::run(&figure1_task(), 2).unwrap();
        assert_eq!(h.improvement_percent, report.improvement_percent());
    }

    #[test]
    fn sim_and_exact_agree_on_figure1() {
        let mut request = AnalysisRequest::task(figure1_task(), 2);
        request.params.sim_transformed = true;
        let AnalysisOutcome::Sim(s) = SimAnalysis.run(&request, &DirectContext).unwrap() else {
            panic!("sim outcome")
        };
        assert_eq!(s.makespan, 12);
        assert!(s.transformed_makespan.is_some());
        let AnalysisOutcome::Exact(Some(e)) = ExactAnalysis.run(&request, &DirectContext).unwrap()
        else {
            panic!("exact outcome")
        };
        assert_eq!(e.makespan, 8);
        assert!(e.optimal);
    }

    #[test]
    fn suspend_reports_figure1_bounds() {
        let mut request = AnalysisRequest::task(figure1_task(), 2);
        request.params.explore_seeds = 8;
        let AnalysisOutcome::Suspend(s) = SuspendAnalysis.run(&request, &DirectContext).unwrap()
        else {
            panic!("suspend outcome")
        };
        // Figure 1 numbers: oblivious 13, naive 11, R_het~ 12.
        assert_eq!(s.oblivious, 13.0);
        assert_eq!(s.naive_unsound, 11.0);
        assert_eq!(s.r_het_tight, 12.0);
        let worst = s.worst_observed.expect("exploration ran");
        assert_eq!(
            s.naive_violated,
            Some(worst as f64 > s.naive_unsound),
            "violation bit consistent with the observed worst case"
        );
    }

    #[test]
    fn input_mismatch_is_a_typed_error() {
        let request = AnalysisRequest::task_set(vec![figure1_task()], 2);
        let err = HetAnalysis.run(&request, &DirectContext).unwrap_err();
        assert!(matches!(err, ApiError::InputMismatch { .. }));
        assert!(err.to_string().contains("expects a task"));
    }

    #[test]
    fn cache_params_track_only_relevant_knobs() {
        let mut a = AnalysisParams::new(2);
        let mut b = AnalysisParams::new(2);
        b.exact_node_budget = Some(10);
        // The budget matters to exact, not to het.
        assert_eq!(HetAnalysis.cache_params(&a), HetAnalysis.cache_params(&b));
        assert_ne!(
            ExactAnalysis.cache_params(&a),
            ExactAnalysis.cache_params(&b)
        );
        a.m = 4;
        assert_ne!(HetAnalysis.cache_params(&a), HetAnalysis.cache_params(&b));
        let mut c = AnalysisParams::new(2);
        c.sim_transformed = true;
        assert_ne!(
            SimAnalysis.cache_params(&AnalysisParams::new(2)),
            SimAnalysis.cache_params(&c)
        );
    }

    #[test]
    fn sampled_is_seed_deterministic_and_brackets_the_sim() {
        let mut request = AnalysisRequest::task(figure1_task(), 2);
        request.params.sample_budget = 16;
        request.params.sample_seed = 0xDAC_2018;
        let AnalysisOutcome::Sampled(a) = SampledSimAnalysis.run(&request, &DirectContext).unwrap()
        else {
            panic!("sampled outcome")
        };
        assert_eq!(a.count, 16);
        assert!(a.min <= a.max);
        assert!(a.mean >= a.min as f64 && a.mean <= a.max as f64);
        assert!(a.ci_half >= 0.0);
        // Bitwise reproducible from (seed, budget) alone.
        let AnalysisOutcome::Sampled(b) = SampledSimAnalysis.run(&request, &DirectContext).unwrap()
        else {
            panic!("sampled outcome")
        };
        assert_eq!(a, b);
        // A different seed is allowed to differ; a different budget must
        // change the count.
        request.params.sample_budget = 4;
        let AnalysisOutcome::Sampled(c) = SampledSimAnalysis.run(&request, &DirectContext).unwrap()
        else {
            panic!("sampled outcome")
        };
        assert_eq!(c.count, 4);
    }

    #[test]
    fn anytime_is_optimal_on_figure1_and_never_refuses_large_graphs() {
        let request = AnalysisRequest::task(figure1_task(), 2);
        let AnalysisOutcome::Anytime(a) =
            AnytimeExactAnalysis.run(&request, &DirectContext).unwrap()
        else {
            panic!("anytime outcome")
        };
        // Matches the exact solver on the small instance.
        assert_eq!(a.upper, 8);
        assert_eq!(a.lower, 8);
        assert!(a.optimal);

        // A graph past the solver cap still yields a bracket.
        let mut b = DagBuilder::new();
        let nodes: Vec<_> = (0..(MAX_NODES_SUPPORTED + 10))
            .map(|i| b.node(format!("v{i}"), Ticks::new(1 + (i as u64 % 3))))
            .collect();
        for pair in nodes.windows(2) {
            b.edge(pair[0], pair[1]).unwrap();
        }
        let task = HeteroDagTask::new(
            b.build().unwrap(),
            nodes[5],
            Ticks::new(100_000),
            Ticks::new(100_000),
        )
        .unwrap();
        let request = AnalysisRequest::task(task, 2);
        let AnalysisOutcome::Anytime(big) =
            AnytimeExactAnalysis.run(&request, &DirectContext).unwrap()
        else {
            panic!("anytime outcome")
        };
        assert!(big.lower <= big.upper);
        assert!(big.lower > 0);
    }

    #[test]
    fn anytime_degraded_budget_still_brackets() {
        let mut request = AnalysisRequest::task(figure1_task(), 2);
        // One search node: the solver cannot prove optimality, but the
        // anytime contract still yields lower ≤ optimum ≤ upper.
        request.params.exact_node_budget = Some(1);
        let AnalysisOutcome::Anytime(a) =
            AnytimeExactAnalysis.run(&request, &DirectContext).unwrap()
        else {
            panic!("anytime outcome")
        };
        assert!(a.lower <= 8 && 8 <= a.upper);
    }

    #[test]
    fn acceptance_runs_on_a_singleton_set() {
        let request = AnalysisRequest {
            input: AnalysisInput::TaskSet(vec![figure1_task()]),
            params: AnalysisParams::new(2),
        };
        let AnalysisOutcome::Acceptance(a) =
            AcceptanceAnalysis.run(&request, &DirectContext).unwrap()
        else {
            panic!("acceptance outcome")
        };
        // A single light task is accepted by every test.
        assert_eq!(a.accepted, [true; 6]);
    }
}
