//! # hetrta-api — the unified analysis API
//!
//! Every analysis this workspace can run — the Algorithm 1 + Theorem 1
//! heterogeneous RTA, the Eq. 1 homogeneous baseline, the breadth-first
//! simulator, the bounded exact solver, the conditional-DAG bounds, the
//! self-suspending baselines, and the six-test task-set acceptance — sits
//! behind one seam:
//!
//! * [`Analysis`] — the trait: stable string key, description, and a pure
//!   `request → outcome` function;
//! * [`AnalysisRequest`] — a typed input ([`AnalysisInput`]: task, task
//!   set, or conditional expression) plus shared [`AnalysisParams`];
//! * [`AnalysisOutcome`] — a tagged metrics value that sweep aggregators
//!   reduce generically;
//! * [`AnalysisRegistry`] — resolves analyses by key (`"het"`, `"hom"`,
//!   `"sim"`, `"exact"`, `"cond"`, `"suspend"`, `"acceptance"`), with
//!   helpful unknown-key errors and room for custom registrations.
//!
//! The batch engine (`hetrta-engine`) schedules and memoizes registry
//! analyses; the CLI resolves `--analyses` flags against the registry; and
//! new workloads plug in by implementing [`Analysis`] — see the trait docs
//! for a complete custom-analysis example.
//!
//! ## Example
//!
//! ```
//! use hetrta_api::{AnalysisOutcome, AnalysisRegistry, AnalysisRequest, DirectContext};
//! use hetrta_dag::{DagBuilder, HeteroDagTask, Ticks};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = DagBuilder::new();
//! let pre = b.node("pre", Ticks::new(2));
//! let gpu = b.node("gpu", Ticks::new(20));
//! let cpu = b.node("cpu", Ticks::new(18));
//! let post = b.node("post", Ticks::new(2));
//! b.edges([(pre, gpu), (pre, cpu), (gpu, post), (cpu, post)])?;
//! let task = HeteroDagTask::new(b.build()?, gpu, Ticks::new(60), Ticks::new(40))?;
//!
//! let registry = AnalysisRegistry::builtin();
//! let request = AnalysisRequest::task(task, 2);
//! let AnalysisOutcome::Het(het) = registry.run("het", &request, &DirectContext)? else {
//!     unreachable!("`het` produces a heterogeneous outcome");
//! };
//! assert!(het.r_het <= het.r_hom_original);
//!
//! // Unknown keys fail with a message listing every valid key.
//! let err = registry.run("frob", &request, &DirectContext).unwrap_err();
//! assert!(err.to_string().contains("valid keys"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adapters;
mod derived;
mod error;
mod outcome;
mod registry;
mod request;
pub mod wire;

pub use adapters::{
    AcceptanceAnalysis, AnytimeExactAnalysis, CondAnalysis, ExactAnalysis, HetAnalysis,
    HomAnalysis, SampledSimAnalysis, SimAnalysis, SuspendAnalysis,
};
pub use derived::DerivedData;
pub use error::ApiError;
pub use outcome::{
    AcceptanceOutcome, AnalysisOutcome, AnytimeOutcome, CondOutcome, ExactOutcome, HetOutcome,
    SampledOutcome, SimOutcome, SuspendOutcome,
};
pub use registry::{
    Analysis, AnalysisContext, AnalysisRegistry, DirectContext, InputKind, ParamDigest,
};
pub use request::{AnalysisInput, AnalysisParams, AnalysisRequest};
pub use wire::{WireError, MAX_FRAME_LEN, WIRE_VERSION};
