//! Per-input derived quantities, shared across analyses and grid cells.
//!
//! Several analyses of one task need the same `m`-independent facts about
//! its graph: the critical path (`len(G)`, head/tail distances) and the
//! volume. [`DerivedData`] bundles them so an [`AnalysisContext`] backed
//! by a content-addressed cache (the batch engine) computes them **once
//! per distinct DAG** and shares them across every core count and analysis
//! kind of a sweep, while the plain `DirectContext` computes them on the
//! spot.
//!
//! The bundle deliberately does *not* include the all-pairs reachability
//! closure: its `O(V²/64)` rows would dominate the cache at n = 10⁵–10⁶,
//! and Algorithm 1 now derives the two per-node sets it needs directly
//! (see [`hetrta_dag::algo::node_reach_sets`]).
//!
//! [`AnalysisContext`]: crate::AnalysisContext

use hetrta_dag::algo::CriticalPath;
use hetrta_dag::{Dag, Ticks};

/// `m`-independent derived quantities of one task graph.
#[derive(Debug, Clone)]
pub struct DerivedData {
    /// The critical path of the graph (`len(G)`, per-node head/tail).
    pub critical_path: CriticalPath,
    /// `vol(G)`, the sum of all node WCETs.
    pub volume: Ticks,
}

impl DerivedData {
    /// Computes every derived quantity of `dag`.
    ///
    /// # Errors
    ///
    /// A human-readable message when the graph is cyclic.
    pub fn compute(dag: &Dag) -> Result<Self, String> {
        Ok(DerivedData {
            critical_path: CriticalPath::try_of(dag).map_err(|e| e.to_string())?,
            volume: dag.volume(),
        })
    }

    /// `len(G)`, the critical-path length.
    #[must_use]
    pub fn length(&self) -> Ticks {
        self.critical_path.length()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetrta_dag::{DagBuilder, Ticks};

    #[test]
    fn compute_bundles_the_quantities() {
        let mut b = DagBuilder::new();
        let a = b.node("a", Ticks::new(2));
        let z = b.node("z", Ticks::new(3));
        b.edge(a, z).unwrap();
        let dag = b.build().unwrap();
        let d = DerivedData::compute(&dag).unwrap();
        assert_eq!(d.length(), Ticks::new(5));
        assert_eq!(d.volume, Ticks::new(5));
    }

    #[test]
    fn cycles_are_reported_as_strings() {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::ONE);
        let b = dag.add_node(Ticks::ONE);
        dag.add_edge(a, b).unwrap();
        dag.add_edge(b, a).unwrap();
        assert!(DerivedData::compute(&dag).is_err());
    }
}
