//! Per-input derived quantities, shared across analyses and grid cells.
//!
//! Several analyses of one task need the same `m`-independent facts about
//! its graph: the critical path (`len(G)`, head/tail distances), the
//! reachability closure (Algorithm 1's `Pred`/`Succ` sets) and the volume.
//! [`DerivedData`] bundles them so an [`AnalysisContext`] backed by a
//! content-addressed cache (the batch engine) computes them **once per
//! distinct DAG** and shares them across every core count and analysis
//! kind of a sweep, while the plain `DirectContext` computes them on the
//! spot.
//!
//! [`AnalysisContext`]: crate::AnalysisContext

use hetrta_dag::algo::{CriticalPath, Reachability};
use hetrta_dag::{Dag, Ticks};

/// `m`-independent derived quantities of one task graph.
#[derive(Debug, Clone)]
pub struct DerivedData {
    /// The critical path of the graph (`len(G)`, per-node head/tail).
    pub critical_path: CriticalPath,
    /// The all-pairs reachability closure (`Pred(v)` / `Succ(v)`).
    pub reachability: Reachability,
    /// `vol(G)`, the sum of all node WCETs.
    pub volume: Ticks,
}

impl DerivedData {
    /// Computes every derived quantity of `dag`.
    ///
    /// # Errors
    ///
    /// A human-readable message when the graph is cyclic.
    pub fn compute(dag: &Dag) -> Result<Self, String> {
        Ok(DerivedData {
            critical_path: CriticalPath::try_of(dag).map_err(|e| e.to_string())?,
            reachability: Reachability::of(dag).map_err(|e| e.to_string())?,
            volume: dag.volume(),
        })
    }

    /// `len(G)`, the critical-path length.
    #[must_use]
    pub fn length(&self) -> Ticks {
        self.critical_path.length()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetrta_dag::{DagBuilder, Ticks};

    #[test]
    fn compute_bundles_the_three_quantities() {
        let mut b = DagBuilder::new();
        let a = b.node("a", Ticks::new(2));
        let z = b.node("z", Ticks::new(3));
        b.edge(a, z).unwrap();
        let dag = b.build().unwrap();
        let d = DerivedData::compute(&dag).unwrap();
        assert_eq!(d.length(), Ticks::new(5));
        assert_eq!(d.volume, Ticks::new(5));
        assert!(d.reachability.is_ordered_before(a, z));
    }

    #[test]
    fn cycles_are_reported_as_strings() {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::ONE);
        let b = dag.add_node(Ticks::ONE);
        dag.add_edge(a, b).unwrap();
        dag.add_edge(b, a).unwrap();
        assert!(DerivedData::compute(&dag).is_err());
    }
}
