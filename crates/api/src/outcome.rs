//! Tagged analysis outcomes, reducible by sweep aggregators.

use hetrta_core::Scenario;

/// Everything the heterogeneous analysis (Algorithm 1 + Theorem 1) of one
/// task produces, reduced to the values sweeps aggregate. Field-for-field
/// this mirrors the accessors of [`hetrta_core::AnalysisReport`]; parity is
/// covered by the engine's `engine_parity` integration tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HetOutcome {
    /// `R_het(τ')` (Theorem 1).
    pub r_het: f64,
    /// `R_hom(τ)` (Eq. 1 on the original DAG).
    pub r_hom_original: f64,
    /// `R_hom(τ')` (Eq. 1 on the transformed DAG).
    pub r_hom_transformed: f64,
    /// Which Theorem 1 scenario applied.
    pub scenario: Scenario,
    /// `100·(R_hom − R_het)/R_het` (the Figure 9 metric).
    pub improvement_percent: f64,
    /// `R_het(τ') ≤ D`.
    pub schedulable_het: bool,
    /// `R_hom(τ) ≤ D`.
    pub schedulable_hom: bool,
}

/// Outcome of the breadth-first simulation of one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOutcome {
    /// Makespan of the original task `τ`.
    pub makespan: u64,
    /// Makespan of the transformed task `τ'`, when
    /// [`AnalysisParams::sim_transformed`](crate::AnalysisParams::sim_transformed)
    /// was set (the Figure 6 comparison).
    pub transformed_makespan: Option<u64>,
}

/// Outcome of the bounded exact solver on one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactOutcome {
    /// Minimum makespan found.
    pub makespan: u64,
    /// Whether the solver proved optimality within its budget.
    pub optimal: bool,
}

/// Bounds of one conditional expression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CondOutcome {
    /// Flatten-all baseline `R` (every branch treated as parallel work).
    pub flattened: f64,
    /// Conditional-aware DP bound.
    pub cond_aware: f64,
    /// Exact per-realization enumeration, `None` when the enumeration was
    /// refused (too many realizations for the cap) — sweeps skip these
    /// samples, exactly like the serial ablation loop.
    pub exact: Option<f64>,
    /// Distinct realizations of the expression.
    pub realizations: u64,
}

/// Self-suspending baseline bounds of one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuspendOutcome {
    /// Suspension-oblivious bound.
    pub oblivious: f64,
    /// Phase-barrier bound.
    pub phase_barrier: f64,
    /// `min(R_het, R_hom(τ'))` — the paper's sound bound.
    pub r_het_tight: f64,
    /// The **unsound** naive discount of the paper's §3.2.
    pub naive_unsound: f64,
    /// Worst observed makespan over the explored schedules, when
    /// [`AnalysisParams::explore_seeds`](crate::AnalysisParams::explore_seeds)
    /// is nonzero.
    pub worst_observed: Option<u64>,
    /// Whether the observed worst case exceeded the naive discount (the
    /// Figure 1(c) phenomenon measured in the wild). `None` when the
    /// exploration was skipped.
    pub naive_violated: Option<bool>,
}

/// Statistics of the reservoir-sampled makespan simulation of one task.
///
/// The sample budget and base seed fully determine every field (per-sample
/// seeds are derived deterministically and summed in sample order), so the
/// same request reproduces this outcome **bitwise** on any thread or
/// worker count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledOutcome {
    /// Mean simulated makespan over the sample budget.
    pub mean: f64,
    /// Half-width of the normal-approximation 95% confidence interval
    /// (`1.96·s/√k`; `0` when only one sample was drawn).
    pub ci_half: f64,
    /// Smallest sampled makespan.
    pub min: u64,
    /// Largest sampled makespan.
    pub max: u64,
    /// Number of samples actually drawn.
    pub count: u64,
}

/// Anytime bounds of the exact minimum makespan of one task.
///
/// Unlike `exact`, this never refuses: past the solver's node-count cap it
/// degrades to an `O(V + E)` lower bound plus a list-schedule upper bound,
/// so `lower ≤ optimum ≤ upper` holds at **any** graph size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnytimeOutcome {
    /// Best proven lower bound on the minimum makespan.
    pub lower: u64,
    /// Best feasible-schedule makespan found (an upper bound).
    pub upper: u64,
    /// Whether the bounds are proven tight (`lower == upper` via an
    /// exhausted search).
    pub optimal: bool,
}

/// Accept bit per schedulability test, in
/// [`hetrta_sched::acceptance::TestKind::ALL`] order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcceptanceOutcome {
    /// GFP-hom, GFP-het, GEDF-hom, GEDF-het, FED-hom, FED-het.
    pub accepted: [bool; 6],
}

/// What one analysis run produced, tagged by the analysis kind.
///
/// The tag ([`AnalysisOutcome::key`]) matches the registry key of the
/// analysis that produced the value, so aggregators can reduce a stream of
/// outcomes generically — group by tag, then mean/max/count per tag.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisOutcome {
    /// `"het"` — Algorithm 1 + Theorem 1.
    Het(HetOutcome),
    /// `"hom"` — Eq. 1 on the original DAG.
    Hom {
        /// `R_hom(τ)`.
        r_hom: f64,
    },
    /// `"sim"` — work-conserving breadth-first simulation.
    Sim(SimOutcome),
    /// `"exact"` — bounded exact solve; `None` means the instance was not
    /// solvable within the budget/size limits (data, not a failure).
    Exact(Option<ExactOutcome>),
    /// `"cond"` — conditional-DAG bounds.
    Cond(CondOutcome),
    /// `"suspend"` — self-suspending baselines.
    Suspend(SuspendOutcome),
    /// `"acceptance"` — the six task-set schedulability tests.
    Acceptance(AcceptanceOutcome),
    /// `"sampled"` — seeded sampled makespan simulation (mean + CI).
    Sampled(SampledOutcome),
    /// `"anytime"` — anytime exact bounds (never refuses on size).
    Anytime(AnytimeOutcome),
}

impl AnalysisOutcome {
    /// The registry key of the analysis kind that produced this outcome.
    #[must_use]
    pub fn key(&self) -> &'static str {
        match self {
            AnalysisOutcome::Het(_) => "het",
            AnalysisOutcome::Hom { .. } => "hom",
            AnalysisOutcome::Sim(_) => "sim",
            AnalysisOutcome::Exact(_) => "exact",
            AnalysisOutcome::Cond(_) => "cond",
            AnalysisOutcome::Suspend(_) => "suspend",
            AnalysisOutcome::Acceptance(_) => "acceptance",
            AnalysisOutcome::Sampled(_) => "sampled",
            AnalysisOutcome::Anytime(_) => "anytime",
        }
    }

    /// Encodes the outcome as one line of space-separated fields: the
    /// registry key tag followed by the variant's values. Floats are
    /// written as their IEEE-754 bit patterns, so
    /// [`AnalysisOutcome::decode`] round-trips **bitwise** — the contract
    /// disk-persistent result caches rely on.
    #[must_use]
    pub fn encode(&self) -> String {
        fn f(x: f64) -> String {
            format!("{:016x}", x.to_bits())
        }
        fn opt_u(x: Option<u64>) -> String {
            x.map_or_else(|| "-".to_owned(), |v| v.to_string())
        }
        match self {
            AnalysisOutcome::Het(h) => format!(
                "het {} {} {} {} {} {} {}",
                f(h.r_het),
                f(h.r_hom_original),
                f(h.r_hom_transformed),
                match h.scenario {
                    Scenario::OffNotOnCriticalPath => "s1",
                    Scenario::OffOnCriticalPathDominant => "s2.1",
                    Scenario::OffOnCriticalPathDominated => "s2.2",
                },
                f(h.improvement_percent),
                u8::from(h.schedulable_het),
                u8::from(h.schedulable_hom),
            ),
            AnalysisOutcome::Hom { r_hom } => format!("hom {}", f(*r_hom)),
            AnalysisOutcome::Sim(s) => {
                format!("sim {} {}", s.makespan, opt_u(s.transformed_makespan))
            }
            AnalysisOutcome::Exact(e) => match e {
                None => "exact -".to_owned(),
                Some(x) => format!("exact {} {}", x.makespan, u8::from(x.optimal)),
            },
            AnalysisOutcome::Cond(c) => format!(
                "cond {} {} {} {}",
                f(c.flattened),
                f(c.cond_aware),
                c.exact.map_or_else(|| "-".to_owned(), f),
                c.realizations,
            ),
            AnalysisOutcome::Suspend(s) => format!(
                "suspend {} {} {} {} {} {}",
                f(s.oblivious),
                f(s.phase_barrier),
                f(s.r_het_tight),
                f(s.naive_unsound),
                opt_u(s.worst_observed),
                match s.naive_violated {
                    None => "-",
                    Some(true) => "1",
                    Some(false) => "0",
                },
            ),
            AnalysisOutcome::Acceptance(a) => {
                let bits: String = a
                    .accepted
                    .iter()
                    .map(|&b| if b { '1' } else { '0' })
                    .collect();
                format!("acceptance {bits}")
            }
            AnalysisOutcome::Sampled(s) => format!(
                "sampled {} {} {} {} {}",
                f(s.mean),
                f(s.ci_half),
                s.min,
                s.max,
                s.count,
            ),
            AnalysisOutcome::Anytime(a) => {
                format!("anytime {} {} {}", a.lower, a.upper, u8::from(a.optimal))
            }
        }
    }

    /// Decodes one [`AnalysisOutcome::encode`] line. Returns `None` for
    /// anything malformed — an unknown tag, a missing or unparseable
    /// field, trailing garbage — so callers reading untrusted bytes (a
    /// disk cache written by an older build, a truncated file) degrade to
    /// a cache miss instead of panicking.
    #[must_use]
    pub fn decode(line: &str) -> Option<AnalysisOutcome> {
        let mut fields = line.split(' ');
        let tag = fields.next()?;
        fn f(s: &str) -> Option<f64> {
            if s.len() != 16 {
                return None;
            }
            u64::from_str_radix(s, 16).ok().map(f64::from_bits)
        }
        fn opt_u(s: &str) -> Option<Option<u64>> {
            if s == "-" {
                Some(None)
            } else {
                s.parse().ok().map(Some)
            }
        }
        fn bit(s: &str) -> Option<bool> {
            match s {
                "0" => Some(false),
                "1" => Some(true),
                _ => None,
            }
        }
        let mut next = || fields.next();
        let outcome = match tag {
            "het" => AnalysisOutcome::Het(HetOutcome {
                r_het: f(next()?)?,
                r_hom_original: f(next()?)?,
                r_hom_transformed: f(next()?)?,
                scenario: match next()? {
                    "s1" => Scenario::OffNotOnCriticalPath,
                    "s2.1" => Scenario::OffOnCriticalPathDominant,
                    "s2.2" => Scenario::OffOnCriticalPathDominated,
                    _ => return None,
                },
                improvement_percent: f(next()?)?,
                schedulable_het: bit(next()?)?,
                schedulable_hom: bit(next()?)?,
            }),
            "hom" => AnalysisOutcome::Hom { r_hom: f(next()?)? },
            "sim" => AnalysisOutcome::Sim(SimOutcome {
                makespan: next()?.parse().ok()?,
                transformed_makespan: opt_u(next()?)?,
            }),
            "exact" => match next()? {
                "-" => AnalysisOutcome::Exact(None),
                makespan => AnalysisOutcome::Exact(Some(ExactOutcome {
                    makespan: makespan.parse().ok()?,
                    optimal: bit(next()?)?,
                })),
            },
            "cond" => AnalysisOutcome::Cond(CondOutcome {
                flattened: f(next()?)?,
                cond_aware: f(next()?)?,
                exact: match next()? {
                    "-" => None,
                    bits => Some(f(bits)?),
                },
                realizations: next()?.parse().ok()?,
            }),
            "suspend" => AnalysisOutcome::Suspend(SuspendOutcome {
                oblivious: f(next()?)?,
                phase_barrier: f(next()?)?,
                r_het_tight: f(next()?)?,
                naive_unsound: f(next()?)?,
                worst_observed: opt_u(next()?)?,
                naive_violated: match next()? {
                    "-" => None,
                    bits => Some(bit(bits)?),
                },
            }),
            "acceptance" => {
                let bits = next()?;
                if bits.len() != 6 {
                    return None;
                }
                let mut accepted = [false; 6];
                for (slot, c) in accepted.iter_mut().zip(bits.chars()) {
                    *slot = match c {
                        '0' => false,
                        '1' => true,
                        _ => return None,
                    };
                }
                AnalysisOutcome::Acceptance(AcceptanceOutcome { accepted })
            }
            "sampled" => AnalysisOutcome::Sampled(SampledOutcome {
                mean: f(next()?)?,
                ci_half: f(next()?)?,
                min: next()?.parse().ok()?,
                max: next()?.parse().ok()?,
                count: next()?.parse().ok()?,
            }),
            "anytime" => AnalysisOutcome::Anytime(AnytimeOutcome {
                lower: next()?.parse().ok()?,
                upper: next()?.parse().ok()?,
                optimal: bit(next()?)?,
            }),
            _ => return None,
        };
        // Trailing fields mean the line is from a different (newer)
        // encoding — refuse rather than silently dropping data.
        if fields.next().is_some() {
            return None;
        }
        Some(outcome)
    }

    /// Encodes this outcome as one checksummed wire frame
    /// ([`crate::wire::KIND_OUTCOME`]), suitable for a socket or a file.
    #[must_use]
    pub fn encode_frame(&self) -> Vec<u8> {
        crate::wire::encode_frame(crate::wire::KIND_OUTCOME, self.encode().as_bytes())
    }

    /// Decodes one [`AnalysisOutcome::encode_frame`] frame. Corruption,
    /// truncation, a version bump, a wrong frame kind, or an unparseable
    /// payload all map to a typed [`crate::wire::WireError`].
    ///
    /// # Errors
    ///
    /// Every defect maps to its [`crate::wire::WireError`] variant;
    /// nothing panics.
    pub fn decode_frame(buf: &[u8]) -> Result<AnalysisOutcome, crate::wire::WireError> {
        use crate::wire::{WireError, KIND_OUTCOME};
        let (kind, payload) = crate::wire::decode_frame(buf)?;
        if kind != KIND_OUTCOME {
            return Err(WireError::Malformed(format!(
                "frame kind {kind:#04x} is not an analysis outcome"
            )));
        }
        let text = std::str::from_utf8(payload)
            .map_err(|_| WireError::Malformed("outcome payload is not utf-8".into()))?;
        AnalysisOutcome::decode(text)
            .ok_or_else(|| WireError::Malformed(format!("unparseable outcome line: {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<AnalysisOutcome> {
        vec![
            AnalysisOutcome::Het(HetOutcome {
                r_het: 10.25,
                r_hom_original: 12.0,
                r_hom_transformed: std::f64::consts::PI * 1e3,
                scenario: Scenario::OffOnCriticalPathDominant,
                improvement_percent: -3.5,
                schedulable_het: true,
                schedulable_hom: false,
            }),
            AnalysisOutcome::Hom { r_hom: 0.1 + 0.2 },
            AnalysisOutcome::Sim(SimOutcome {
                makespan: 42,
                transformed_makespan: None,
            }),
            AnalysisOutcome::Sim(SimOutcome {
                makespan: 42,
                transformed_makespan: Some(40),
            }),
            AnalysisOutcome::Exact(None),
            AnalysisOutcome::Exact(Some(ExactOutcome {
                makespan: 7,
                optimal: true,
            })),
            AnalysisOutcome::Cond(CondOutcome {
                flattened: 30.0,
                cond_aware: 20.5,
                exact: Some(10.125),
                realizations: 16,
            }),
            AnalysisOutcome::Cond(CondOutcome {
                flattened: 30.0,
                cond_aware: 20.5,
                exact: None,
                realizations: 1 << 40,
            }),
            AnalysisOutcome::Suspend(SuspendOutcome {
                oblivious: 13.0,
                phase_barrier: 12.5,
                r_het_tight: 12.0,
                naive_unsound: 11.0,
                worst_observed: Some(12),
                naive_violated: Some(true),
            }),
            AnalysisOutcome::Suspend(SuspendOutcome {
                oblivious: 13.0,
                phase_barrier: 12.5,
                r_het_tight: 12.0,
                naive_unsound: 11.0,
                worst_observed: None,
                naive_violated: None,
            }),
            AnalysisOutcome::Acceptance(AcceptanceOutcome {
                accepted: [true, false, true, true, false, false],
            }),
            AnalysisOutcome::Sampled(SampledOutcome {
                mean: 41.75,
                ci_half: 1.5,
                min: 38,
                max: 45,
                count: 64,
            }),
            AnalysisOutcome::Anytime(AnytimeOutcome {
                lower: 7,
                upper: 8,
                optimal: false,
            }),
            AnalysisOutcome::Anytime(AnytimeOutcome {
                lower: 8,
                upper: 8,
                optimal: true,
            }),
        ]
    }

    #[test]
    fn encode_decode_roundtrips_bitwise() {
        for outcome in samples() {
            let line = outcome.encode();
            let back = AnalysisOutcome::decode(&line)
                .unwrap_or_else(|| panic!("decode failed for {line:?}"));
            assert_eq!(back, outcome, "round-trip diverged for {line:?}");
            // PartialEq on f64 is already bitwise here (no NaNs), and the
            // encoding itself is the bit pattern; re-encoding is stable.
            assert_eq!(back.encode(), line);
        }
    }

    #[test]
    fn malformed_lines_decode_to_none() {
        for line in [
            "",
            "frob 1 2 3",
            "hom",
            "hom xyz",
            "hom 4029000000000000 trailing",
            "het 4029000000000000",
            "sim 1x -",
            "exact 5",
            "exact 5 2",
            "acceptance 10101",
            "acceptance 1010102",
            "suspend 4029000000000000",
            "cond 4029000000000000 4029000000000000 - notanumber",
            "sampled 4029000000000000",
            "sampled 4029000000000000 4029000000000000 1 2 3 extra",
            "sampled 4029000000000000 4029000000000000 x 2 3",
            "anytime 7",
            "anytime 7 8 2",
        ] {
            assert!(
                AnalysisOutcome::decode(line).is_none(),
                "`{line}` unexpectedly decoded"
            );
        }
    }

    #[test]
    fn float_fields_must_be_full_width() {
        // Short hex would silently decode a different bit pattern.
        assert!(AnalysisOutcome::decode("hom 4029").is_none());
    }

    #[test]
    fn frame_roundtrips_every_sample() {
        for outcome in samples() {
            let frame = outcome.encode_frame();
            assert_eq!(AnalysisOutcome::decode_frame(&frame).unwrap(), outcome);
        }
    }

    #[test]
    fn corrupt_and_version_bumped_frames_error_typed() {
        use crate::wire::WireError;
        let frame = samples().remove(0).encode_frame();

        // Flip one payload byte: checksum catches it.
        let mut corrupt = frame.clone();
        corrupt[14] ^= 0x20;
        assert_eq!(
            AnalysisOutcome::decode_frame(&corrupt),
            Err(WireError::Checksum)
        );

        // Bump the version field: typed mismatch, not garbage.
        let mut bumped = frame.clone();
        bumped[5] = bumped[5].wrapping_add(1);
        assert!(matches!(
            AnalysisOutcome::decode_frame(&bumped),
            Err(WireError::Version { .. })
        ));

        // Truncate mid-payload.
        assert_eq!(
            AnalysisOutcome::decode_frame(&frame[..frame.len() - 4]),
            Err(WireError::Truncated)
        );

        // A valid frame of the wrong kind is refused.
        let alien = crate::wire::encode_frame(0x7F, b"hom 4029000000000000");
        assert!(matches!(
            AnalysisOutcome::decode_frame(&alien),
            Err(WireError::Malformed(_))
        ));

        // A valid frame whose payload is not an outcome line is refused.
        let junk = crate::wire::encode_frame(crate::wire::KIND_OUTCOME, b"not an outcome");
        assert!(matches!(
            AnalysisOutcome::decode_frame(&junk),
            Err(WireError::Malformed(_))
        ));
    }
}
