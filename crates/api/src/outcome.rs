//! Tagged analysis outcomes, reducible by sweep aggregators.

use hetrta_core::Scenario;

/// Everything the heterogeneous analysis (Algorithm 1 + Theorem 1) of one
/// task produces, reduced to the values sweeps aggregate. Field-for-field
/// this mirrors the accessors of [`hetrta_core::AnalysisReport`]; parity is
/// covered by the engine's `engine_parity` integration tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HetOutcome {
    /// `R_het(τ')` (Theorem 1).
    pub r_het: f64,
    /// `R_hom(τ)` (Eq. 1 on the original DAG).
    pub r_hom_original: f64,
    /// `R_hom(τ')` (Eq. 1 on the transformed DAG).
    pub r_hom_transformed: f64,
    /// Which Theorem 1 scenario applied.
    pub scenario: Scenario,
    /// `100·(R_hom − R_het)/R_het` (the Figure 9 metric).
    pub improvement_percent: f64,
    /// `R_het(τ') ≤ D`.
    pub schedulable_het: bool,
    /// `R_hom(τ) ≤ D`.
    pub schedulable_hom: bool,
}

/// Outcome of the breadth-first simulation of one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOutcome {
    /// Makespan of the original task `τ`.
    pub makespan: u64,
    /// Makespan of the transformed task `τ'`, when
    /// [`AnalysisParams::sim_transformed`](crate::AnalysisParams::sim_transformed)
    /// was set (the Figure 6 comparison).
    pub transformed_makespan: Option<u64>,
}

/// Outcome of the bounded exact solver on one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactOutcome {
    /// Minimum makespan found.
    pub makespan: u64,
    /// Whether the solver proved optimality within its budget.
    pub optimal: bool,
}

/// Bounds of one conditional expression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CondOutcome {
    /// Flatten-all baseline `R` (every branch treated as parallel work).
    pub flattened: f64,
    /// Conditional-aware DP bound.
    pub cond_aware: f64,
    /// Exact per-realization enumeration, `None` when the enumeration was
    /// refused (too many realizations for the cap) — sweeps skip these
    /// samples, exactly like the serial ablation loop.
    pub exact: Option<f64>,
    /// Distinct realizations of the expression.
    pub realizations: u64,
}

/// Self-suspending baseline bounds of one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuspendOutcome {
    /// Suspension-oblivious bound.
    pub oblivious: f64,
    /// Phase-barrier bound.
    pub phase_barrier: f64,
    /// `min(R_het, R_hom(τ'))` — the paper's sound bound.
    pub r_het_tight: f64,
    /// The **unsound** naive discount of the paper's §3.2.
    pub naive_unsound: f64,
    /// Worst observed makespan over the explored schedules, when
    /// [`AnalysisParams::explore_seeds`](crate::AnalysisParams::explore_seeds)
    /// is nonzero.
    pub worst_observed: Option<u64>,
    /// Whether the observed worst case exceeded the naive discount (the
    /// Figure 1(c) phenomenon measured in the wild). `None` when the
    /// exploration was skipped.
    pub naive_violated: Option<bool>,
}

/// Accept bit per schedulability test, in
/// [`hetrta_sched::acceptance::TestKind::ALL`] order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcceptanceOutcome {
    /// GFP-hom, GFP-het, GEDF-hom, GEDF-het, FED-hom, FED-het.
    pub accepted: [bool; 6],
}

/// What one analysis run produced, tagged by the analysis kind.
///
/// The tag ([`AnalysisOutcome::key`]) matches the registry key of the
/// analysis that produced the value, so aggregators can reduce a stream of
/// outcomes generically — group by tag, then mean/max/count per tag.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisOutcome {
    /// `"het"` — Algorithm 1 + Theorem 1.
    Het(HetOutcome),
    /// `"hom"` — Eq. 1 on the original DAG.
    Hom {
        /// `R_hom(τ)`.
        r_hom: f64,
    },
    /// `"sim"` — work-conserving breadth-first simulation.
    Sim(SimOutcome),
    /// `"exact"` — bounded exact solve; `None` means the instance was not
    /// solvable within the budget/size limits (data, not a failure).
    Exact(Option<ExactOutcome>),
    /// `"cond"` — conditional-DAG bounds.
    Cond(CondOutcome),
    /// `"suspend"` — self-suspending baselines.
    Suspend(SuspendOutcome),
    /// `"acceptance"` — the six task-set schedulability tests.
    Acceptance(AcceptanceOutcome),
}

impl AnalysisOutcome {
    /// The registry key of the analysis kind that produced this outcome.
    #[must_use]
    pub fn key(&self) -> &'static str {
        match self {
            AnalysisOutcome::Het(_) => "het",
            AnalysisOutcome::Hom { .. } => "hom",
            AnalysisOutcome::Sim(_) => "sim",
            AnalysisOutcome::Exact(_) => "exact",
            AnalysisOutcome::Cond(_) => "cond",
            AnalysisOutcome::Suspend(_) => "suspend",
            AnalysisOutcome::Acceptance(_) => "acceptance",
        }
    }
}
