//! Length-delimited binary frames with magic, version and checksum — the
//! wire layer under every serialized outcome, aggregate update, and the
//! `hetrta serve` protocol.
//!
//! A frame is:
//!
//! ```text
//! "HRTA"  version:u16be  kind:u8  len:u32be  payload[len]  fnv64(payload):u64be
//! ```
//!
//! in the style of the disk cache's `magic \n payload \n checksum` entry
//! files, binary and length-delimited so frames can be streamed over a
//! socket. The robustness contract mirrors the disk cache's: corrupt,
//! truncated, version-bumped or oversized frames decode to a **typed
//! [`WireError`]** — never a panic, never silent garbage — so a peer
//! speaking a newer (or broken) dialect degrades to a clean protocol
//! error.

use std::io::{Read, Write};

/// The four magic bytes opening every frame.
pub const WIRE_MAGIC: [u8; 4] = *b"HRTA";

/// Wire format version; bumping it orphans (never misreads) frames
/// written by older builds.
pub const WIRE_VERSION: u16 = 1;

/// Upper bound on a frame's payload length. A garbage length field must
/// not make a reader allocate gigabytes before the checksum can reject
/// the frame.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// Frame kind tag of an encoded [`AnalysisOutcome`](crate::AnalysisOutcome).
pub const KIND_OUTCOME: u8 = 0x10;

/// Bytes before the payload: magic (4) + version (2) + kind (1) + len (4).
const HEADER_LEN: usize = 11;

/// Bytes after the payload: the FNV-1a checksum.
const TRAILER_LEN: usize = 8;

/// FNV-1a over the payload bytes — the same per-frame corruption check
/// the disk cache applies per entry.
#[must_use]
pub fn fnv64(payload: &[u8]) -> u64 {
    let mut state: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in payload {
        state ^= u64::from(byte);
        state = state.wrapping_mul(0x0000_0100_0000_01b3);
    }
    state
}

/// Why a frame (or its payload) failed to decode. Every defect an
/// untrusted byte stream can exhibit maps to exactly one variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended cleanly at a frame boundary (a peer hung up).
    Eof,
    /// The first four bytes are not [`WIRE_MAGIC`].
    BadMagic,
    /// The frame was written by a different format version.
    Version {
        /// Version found in the frame.
        got: u16,
        /// Version this build speaks.
        want: u16,
    },
    /// The declared payload length exceeds [`MAX_FRAME_LEN`].
    Oversize {
        /// Declared length.
        len: u32,
    },
    /// The stream ended mid-frame.
    Truncated,
    /// The payload bytes do not match the frame's checksum.
    Checksum,
    /// The frame is intact but its payload does not parse.
    Malformed(String),
    /// An I/O error underneath the frame layer.
    Io(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Eof => write!(f, "stream closed"),
            WireError::BadMagic => write!(f, "bad frame magic (not a hetrta wire stream)"),
            WireError::Version { got, want } => {
                write!(
                    f,
                    "wire version mismatch: frame v{got}, this build speaks v{want}"
                )
            }
            WireError::Oversize { len } => {
                write!(
                    f,
                    "frame length {len} exceeds the {MAX_FRAME_LEN}-byte bound"
                )
            }
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::Checksum => write!(f, "frame checksum mismatch (corrupt payload)"),
            WireError::Malformed(msg) => write!(f, "malformed payload: {msg}"),
            WireError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes one frame into a buffer.
#[must_use]
pub fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&WIRE_MAGIC);
    out.extend_from_slice(&WIRE_VERSION.to_be_bytes());
    out.push(kind);
    out.extend_from_slice(
        &u32::try_from(payload.len())
            .unwrap_or(u32::MAX)
            .to_be_bytes(),
    );
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv64(payload).to_be_bytes());
    out
}

/// Validates a header and returns `(kind, payload_len)`.
fn decode_header(header: &[u8; HEADER_LEN]) -> Result<(u8, usize), WireError> {
    if header[..4] != WIRE_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = u16::from_be_bytes([header[4], header[5]]);
    if version != WIRE_VERSION {
        return Err(WireError::Version {
            got: version,
            want: WIRE_VERSION,
        });
    }
    let kind = header[6];
    let len = u32::from_be_bytes([header[7], header[8], header[9], header[10]]);
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversize { len });
    }
    Ok((kind, len as usize))
}

/// Decodes one complete frame from a buffer, returning its kind and a
/// view of the verified payload. The buffer must hold exactly one frame;
/// trailing bytes are refused (a buffer is not a stream).
///
/// # Errors
///
/// Every defect maps to its [`WireError`] variant; nothing panics.
pub fn decode_frame(buf: &[u8]) -> Result<(u8, &[u8]), WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    let mut header = [0u8; HEADER_LEN];
    header.copy_from_slice(&buf[..HEADER_LEN]);
    let (kind, len) = decode_header(&header)?;
    let total = HEADER_LEN + len + TRAILER_LEN;
    if buf.len() < total {
        return Err(WireError::Truncated);
    }
    if buf.len() > total {
        return Err(WireError::Malformed(format!(
            "{} trailing bytes after the frame",
            buf.len() - total
        )));
    }
    let payload = &buf[HEADER_LEN..HEADER_LEN + len];
    let mut checksum = [0u8; TRAILER_LEN];
    checksum.copy_from_slice(&buf[HEADER_LEN + len..total]);
    if u64::from_be_bytes(checksum) != fnv64(payload) {
        return Err(WireError::Checksum);
    }
    Ok((kind, payload))
}

/// Injection seam for deterministic wire-fault testing.
///
/// The frame layer stays fault-free by default: [`write_frame`] and
/// [`read_frame`] never consult a plan. Codecs that opt in (the dist
/// coordinator/worker link under `--chaos`) thread a plan through
/// [`write_frame_with`] / [`read_frame_with`], and the receiving side
/// must degrade to a typed [`WireError`] — the same contract untrusted
/// bytes already get. Implemented by `hetrta-fault`'s `FaultPlan`.
pub trait FrameFaults: Send + Sync {
    /// May mutate one encoded outgoing frame in place (truncation, a
    /// bitflip corrupting payload or checksum). Returns `true` when a
    /// fault was injected.
    fn corrupt_frame(&self, frame: &mut Vec<u8>) -> bool;

    /// An artificial delay to impose before reading the next frame (a
    /// stalled peer), or `None` to read immediately.
    fn read_stall(&self) -> Option<std::time::Duration>;
}

/// Writes one frame to a stream.
///
/// # Errors
///
/// [`WireError::Io`] when the underlying write fails.
pub fn write_frame<W: Write>(writer: &mut W, kind: u8, payload: &[u8]) -> Result<(), WireError> {
    write_frame_with(writer, kind, payload, None)
}

/// [`write_frame`] with an optional fault-injection plan applied to the
/// encoded bytes (the wire analogue of a lossy link).
///
/// # Errors
///
/// [`WireError::Io`] when the underlying write fails.
pub fn write_frame_with<W: Write>(
    writer: &mut W,
    kind: u8,
    payload: &[u8],
    faults: Option<&dyn FrameFaults>,
) -> Result<(), WireError> {
    let mut frame = encode_frame(kind, payload);
    if let Some(faults) = faults {
        faults.corrupt_frame(&mut frame);
    }
    writer
        .write_all(&frame)
        .and_then(|()| writer.flush())
        .map_err(|e| WireError::Io(e.to_string()))
}

/// Reads one frame from a stream, returning its kind and verified
/// payload.
///
/// A clean end-of-stream *at a frame boundary* is [`WireError::Eof`]
/// (the peer hung up between frames); an end-of-stream *inside* a frame
/// is [`WireError::Truncated`].
///
/// # Errors
///
/// Every defect maps to its [`WireError`] variant; nothing panics.
pub fn read_frame<R: Read>(reader: &mut R) -> Result<(u8, Vec<u8>), WireError> {
    read_frame_with(reader, None)
}

/// [`read_frame`] with an optional fault-injection plan consulted before
/// the read (a stalled-peer delay). Corruption is injected on the *write*
/// side ([`write_frame_with`]) so the reader exercises its real decode
/// path against the defective bytes.
///
/// # Errors
///
/// Every defect maps to its [`WireError`] variant; nothing panics.
pub fn read_frame_with<R: Read>(
    reader: &mut R,
    faults: Option<&dyn FrameFaults>,
) -> Result<(u8, Vec<u8>), WireError> {
    if let Some(stall) = faults.and_then(FrameFaults::read_stall) {
        std::thread::sleep(stall);
    }
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < header.len() {
        match reader.read(&mut header[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 {
                    WireError::Eof
                } else {
                    WireError::Truncated
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e.to_string())),
        }
    }
    let (kind, len) = decode_header(&header)?;
    let mut rest = vec![0u8; len + TRAILER_LEN];
    reader.read_exact(&mut rest).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e.to_string())
        }
    })?;
    let payload = &rest[..len];
    let mut checksum = [0u8; TRAILER_LEN];
    checksum.copy_from_slice(&rest[len..]);
    if u64::from_be_bytes(checksum) != fnv64(payload) {
        return Err(WireError::Checksum);
    }
    rest.truncate(len);
    Ok((kind, rest))
}

// ---------------------------------------------------------------------------
// Shared payload helpers
// ---------------------------------------------------------------------------
//
// Every textual payload in the workspace — the engine's spec/event/update
// codecs, the serve request/reply protocol, the dist coordinator frames —
// parses with the same few primitives: typed `Malformed` construction,
// number parsing that names the field, f64s as sixteen-hex-digit bit
// patterns (so floats survive the wire bitwise), and a whitespace token
// cursor that rejects both truncated and over-long lines.

/// Builds a [`WireError::Malformed`] — the one-liner every payload codec
/// reaches for.
pub fn malformed(msg: impl Into<String>) -> WireError {
    WireError::Malformed(msg.into())
}

/// Parses a number, mapping failure to a [`WireError::Malformed`] that
/// names the field (`what`).
///
/// # Errors
///
/// [`WireError::Malformed`] when `s` does not parse as `T`.
pub fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, WireError> {
    s.parse()
        .map_err(|_| malformed(format!("unparseable {what} `{s}`")))
}

/// Interprets a frame payload as UTF-8 text, naming the frame (`what`) on
/// failure.
///
/// # Errors
///
/// [`WireError::Malformed`] when the payload is not valid UTF-8.
pub fn text_payload(payload: &[u8], what: &str) -> Result<String, WireError> {
    String::from_utf8(payload.to_vec())
        .map_err(|_| malformed(format!("{what} payload is not utf-8")))
}

/// Renders an `f64` as its sixteen-hex-digit bit pattern — the bitwise
/// float encoding every textual codec in the workspace uses.
#[must_use]
pub fn fbits(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Parses one [`fbits`] pattern back to the identical `f64`.
///
/// # Errors
///
/// [`WireError::Malformed`] unless `s` is exactly 16 hex digits.
pub fn parse_fbits(s: &str) -> Result<f64, WireError> {
    if s.len() != 16 {
        return Err(malformed(format!("float bits `{s}` are not 16 hex digits")));
    }
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| malformed(format!("unparseable float bits `{s}`")))
}

/// [`fbits`] for optional floats: `None` travels as `-`.
#[must_use]
pub fn opt_fbits(x: Option<f64>) -> String {
    x.map_or_else(|| "-".into(), fbits)
}

/// Parses one [`opt_fbits`] field.
///
/// # Errors
///
/// [`WireError::Malformed`] unless `s` is `-` or 16 hex digits.
pub fn parse_opt_fbits(s: &str) -> Result<Option<f64>, WireError> {
    if s == "-" {
        Ok(None)
    } else {
        parse_fbits(s).map(Some)
    }
}

/// Space-separated token cursor with typed errors for missing fields —
/// `what` names the line being parsed in every error message.
#[derive(Debug)]
pub struct Tokens<'a> {
    iter: std::str::SplitWhitespace<'a>,
    what: &'static str,
}

impl<'a> Tokens<'a> {
    /// A cursor over the whitespace-separated tokens of `line`.
    #[must_use]
    pub fn new(line: &'a str, what: &'static str) -> Self {
        Tokens {
            iter: line.split_whitespace(),
            what,
        }
    }

    /// The next token.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] when the line ran out of fields.
    #[allow(clippy::should_implement_trait)] // fallible by design: Result, not Option
    pub fn next(&mut self) -> Result<&'a str, WireError> {
        self.iter
            .next()
            .ok_or_else(|| malformed(format!("truncated {} line", self.what)))
    }

    /// Consumes the cursor, refusing trailing fields — a line with more
    /// tokens than its schema is as defective as a truncated one.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] naming the first trailing field.
    pub fn finish(mut self) -> Result<(), WireError> {
        match self.iter.next() {
            None => Ok(()),
            Some(extra) => Err(malformed(format!(
                "trailing field `{extra}` on {} line",
                self.what
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_helpers_roundtrip_and_reject() {
        for x in [0.0, -0.0, 1.5, f64::MIN_POSITIVE, f64::NAN, 0.1 + 0.2] {
            let bits = fbits(x);
            assert_eq!(parse_fbits(&bits).unwrap().to_bits(), x.to_bits());
            assert_eq!(
                parse_opt_fbits(&opt_fbits(Some(x)))
                    .unwrap()
                    .map(f64::to_bits),
                Some(x.to_bits())
            );
        }
        assert_eq!(parse_opt_fbits(&opt_fbits(None)).unwrap(), None);
        for bad in ["", "zz", "0123", &"f".repeat(17)] {
            assert!(matches!(parse_fbits(bad), Err(WireError::Malformed(_))));
        }
        assert_eq!(parse_num::<u32>("17", "count").unwrap(), 17);
        assert!(matches!(
            parse_num::<u32>("many", "count"),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            text_payload(&[0xFF, 0xFE], "blob"),
            Err(WireError::Malformed(_))
        ));

        let mut tokens = Tokens::new("alpha 7", "test");
        assert_eq!(tokens.next().unwrap(), "alpha");
        assert_eq!(tokens.next().unwrap(), "7");
        assert!(matches!(tokens.next(), Err(WireError::Malformed(_))));
        assert!(Tokens::new("a", "t")
            .finish()
            .unwrap_err()
            .to_string()
            .contains("trailing"));
        let mut exact = Tokens::new("one", "t");
        exact.next().unwrap();
        exact.finish().unwrap();
    }

    #[test]
    fn buffer_roundtrip() {
        let frame = encode_frame(0x42, b"hello frames");
        let (kind, payload) = decode_frame(&frame).unwrap();
        assert_eq!(kind, 0x42);
        assert_eq!(payload, b"hello frames");
        // Empty payloads are legal frames.
        let empty = encode_frame(0x01, b"");
        assert_eq!(decode_frame(&empty).unwrap(), (0x01, &b""[..]));
    }

    #[test]
    fn stream_roundtrip_and_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 0x07, b"first").unwrap();
        write_frame(&mut buf, 0x08, b"second").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), (0x07, b"first".to_vec()));
        assert_eq!(read_frame(&mut cursor).unwrap(), (0x08, b"second".to_vec()));
        assert_eq!(read_frame(&mut cursor), Err(WireError::Eof));
    }

    #[test]
    fn every_defect_is_typed() {
        let good = encode_frame(0x11, b"payload bytes");

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert_eq!(decode_frame(&bad_magic), Err(WireError::BadMagic));

        let mut bumped = good.clone();
        bumped[5] = 99;
        assert_eq!(
            decode_frame(&bumped),
            Err(WireError::Version {
                got: 99,
                want: WIRE_VERSION
            })
        );

        let mut corrupt = good.clone();
        let flip = HEADER_LEN + 2;
        corrupt[flip] ^= 0xFF;
        assert_eq!(decode_frame(&corrupt), Err(WireError::Checksum));

        assert_eq!(decode_frame(&good[..5]), Err(WireError::Truncated));
        assert_eq!(
            decode_frame(&good[..good.len() - 3]),
            Err(WireError::Truncated)
        );

        let mut trailing = good.clone();
        trailing.push(0);
        assert!(matches!(
            decode_frame(&trailing),
            Err(WireError::Malformed(_))
        ));

        let mut oversize = good;
        oversize[7..11].copy_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(
            decode_frame(&oversize),
            Err(WireError::Oversize { len: u32::MAX })
        );
    }

    #[test]
    fn stream_defects_are_typed_too() {
        let good = encode_frame(0x22, b"stream payload");
        // Truncation mid-header and mid-payload.
        for cut in [3, HEADER_LEN + 4] {
            let mut cursor = std::io::Cursor::new(good[..cut].to_vec());
            assert_eq!(read_frame(&mut cursor), Err(WireError::Truncated));
        }
        // Corruption.
        let mut corrupt = good.clone();
        corrupt[HEADER_LEN] ^= 0x01;
        let mut cursor = std::io::Cursor::new(corrupt);
        assert_eq!(read_frame(&mut cursor), Err(WireError::Checksum));
        // Version bump.
        let mut bumped = good;
        bumped[4] = 0xAB;
        let mut cursor = std::io::Cursor::new(bumped);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::Version { .. })
        ));
    }

    #[test]
    fn errors_render_human_readably() {
        for (err, needle) in [
            (WireError::BadMagic, "magic"),
            (WireError::Version { got: 2, want: 1 }, "v2"),
            (WireError::Checksum, "checksum"),
            (WireError::Truncated, "truncated"),
            (WireError::Eof, "closed"),
            (WireError::Oversize { len: 1 }, "bound"),
            (WireError::Malformed("x".into()), "x"),
            (WireError::Io("broken pipe".into()), "broken pipe"),
        ] {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
