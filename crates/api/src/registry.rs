//! The `Analysis` trait and the key-addressed registry.

use std::fmt;
use std::sync::Arc;

use hetrta_core::TransformedTask;
use hetrta_dag::HeteroDagTask;

use crate::{AnalysisOutcome, AnalysisParams, AnalysisRequest, ApiError};

/// The input kind an [`Analysis`] consumes — declared up front so batch
/// engines can reject a mismatched grid/key combination before any work
/// runs, instead of failing every job at execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputKind {
    /// One heterogeneous DAG task ([`AnalysisInput::Task`](crate::AnalysisInput)).
    Task,
    /// A task set ([`AnalysisInput::TaskSet`](crate::AnalysisInput)).
    TaskSet,
    /// A conditional expression ([`AnalysisInput::Cond`](crate::AnalysisInput)).
    Cond,
}

impl InputKind {
    /// Human-readable name (matches [`AnalysisInput::kind`](crate::AnalysisInput::kind)).
    #[must_use]
    pub fn describe(self) -> &'static str {
        match self {
            InputKind::Task => "task",
            InputKind::TaskSet => "task set",
            InputKind::Cond => "conditional expression",
        }
    }
}

/// Shared services an [`Analysis`] may use while running.
///
/// The context is the seam between the pure analysis code and its
/// execution environment: the default [`DirectContext`] computes
/// everything on the spot, while the batch engine supplies a context
/// backed by its content-addressed memo caches so the Algorithm 1
/// transformation and the [`DerivedData`] of a task (critical path,
/// volume) are computed once per distinct DAG and
/// shared across every core count and analysis kind that touches it.
pub trait AnalysisContext {
    /// The Algorithm 1 transformation of `task` (possibly memoized).
    ///
    /// # Errors
    ///
    /// A human-readable message when the transformation fails.
    fn transform(&self, task: &HeteroDagTask) -> Result<TransformedTask, String>;

    /// The `m`-independent derived quantities of the task's graph
    /// (possibly memoized per content hash). The default computes them
    /// directly, so existing custom contexts keep working unchanged.
    ///
    /// # Errors
    ///
    /// A human-readable message when the graph is cyclic.
    fn derived(&self, task: &HeteroDagTask) -> Result<Arc<crate::DerivedData>, String> {
        crate::DerivedData::compute(task.dag()).map(Arc::new)
    }
}

/// The memo-free context: every service is computed directly.
#[derive(Debug, Clone, Copy, Default)]
pub struct DirectContext;

impl AnalysisContext for DirectContext {
    fn transform(&self, task: &HeteroDagTask) -> Result<TransformedTask, String> {
        hetrta_core::transform(task).map_err(|e| e.to_string())
    }
}

/// One pluggable analysis: a stable key, a description, and a pure
/// `request → outcome` function.
///
/// Implementations must be pure in the sense that the outcome is a
/// function of the request alone — that is what makes registry-driven
/// engines free to memoize, reorder, and parallelize them.
///
/// # Plugging in a custom analysis
///
/// ```
/// use std::sync::Arc;
/// use hetrta_api::{
///     Analysis, AnalysisContext, AnalysisOutcome, AnalysisRegistry,
///     AnalysisRequest, ApiError, DirectContext,
/// };
///
/// /// Counts the nodes of the task graph ("how big is this program?").
/// #[derive(Debug)]
/// struct NodeCount;
///
/// impl Analysis for NodeCount {
///     fn key(&self) -> &str {
///         "nodes"
///     }
///     fn describe(&self) -> &str {
///         "node count of the task graph"
///     }
///     fn run(
///         &self,
///         request: &AnalysisRequest,
///         _ctx: &dyn AnalysisContext,
///     ) -> Result<AnalysisOutcome, ApiError> {
///         let task = request.input.as_task(self.key())?;
///         Ok(AnalysisOutcome::Hom {
///             r_hom: task.dag().node_count() as f64,
///         })
///     }
/// }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut registry = AnalysisRegistry::builtin();
/// registry.register(Arc::new(NodeCount));
/// assert!(registry.keys().contains(&"nodes"));
///
/// # use hetrta_dag::{DagBuilder, HeteroDagTask, Ticks};
/// # let mut b = DagBuilder::new();
/// # let pre = b.node("pre", Ticks::new(2));
/// # let gpu = b.node("gpu", Ticks::new(9));
/// # b.edges([(pre, gpu)])?;
/// # let task = HeteroDagTask::new(b.build()?, gpu, Ticks::new(40), Ticks::new(40))?;
/// let outcome = registry.run("nodes", &AnalysisRequest::task(task, 2), &DirectContext)?;
/// assert_eq!(outcome, AnalysisOutcome::Hom { r_hom: 2.0 });
/// # Ok(())
/// # }
/// ```
pub trait Analysis: Send + Sync + fmt::Debug {
    /// Stable registry key (e.g. `"het"`). Lowercase, no whitespace.
    fn key(&self) -> &str;

    /// One-line human-readable description (help screens, docs).
    fn describe(&self) -> &str;

    /// The input kind this analysis consumes (most take a single task).
    fn input_kind(&self) -> InputKind {
        InputKind::Task
    }

    /// Runs the analysis.
    ///
    /// # Errors
    ///
    /// [`ApiError::InputMismatch`] for the wrong input kind, or
    /// [`ApiError::Failed`] when the analysis itself fails.
    fn run(
        &self,
        request: &AnalysisRequest,
        ctx: &dyn AnalysisContext,
    ) -> Result<AnalysisOutcome, ApiError>;

    /// Digest of the parameter subset this analysis actually reads, used
    /// as the parameter part of memo keys. The default digests every
    /// field; implementations narrow it so e.g. changing the exact-solver
    /// budget does not invalidate memoized `het` results.
    fn cache_params(&self, params: &AnalysisParams) -> u64 {
        let mut h = ParamDigest::new();
        h.push(params.m);
        match params.exact_node_budget {
            None => h.push(0),
            Some(budget) => {
                h.push(1);
                h.push(budget);
            }
        }
        h.push(params.realization_cap as u64);
        h.push(u64::from(params.sim_transformed));
        h.push(params.explore_seeds);
        h.push(params.sample_budget as u64);
        h.push(params.sample_seed);
        h.finish()
    }

    /// Static relative cost rank (higher = heavier), used only as a
    /// **cold-start fallback**: schedulers that order work by expense —
    /// the batch engine injects heavy kinds first so a single expensive
    /// job does not tail a sweep — prefer *measured* per-key wall-clock
    /// EWMAs learned from finished jobs (the engine's `CostModel`) and
    /// consult this rank solely for keys they have never timed. The
    /// learned estimates are also exported to the engine's metrics
    /// registry as `cost.ewma_us.{key}` gauges, so the effective cost
    /// ordering is observable after any run.
    fn cost_hint(&self) -> u8 {
        1
    }
}

/// FNV-1a digest for [`Analysis::cache_params`]. Input order is
/// significant — the digest of `push(a); push(b)` differs from
/// `push(b); push(a)` — and adapters rely on that to disambiguate
/// encodings (e.g. absent-vs-present optional parameters).
#[derive(Debug, Clone)]
pub struct ParamDigest {
    state: u64,
}

impl ParamDigest {
    /// Creates a digest with the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        ParamDigest {
            state: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Feeds one word.
    pub fn push(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.state ^= u64::from(byte);
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The accumulated digest.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for ParamDigest {
    fn default() -> Self {
        Self::new()
    }
}

/// A key-addressed collection of [`Analysis`] implementations.
///
/// Keys resolve in registration order; registering a key twice replaces
/// the earlier entry (latest wins), so applications can override builtin
/// analyses.
#[derive(Clone)]
pub struct AnalysisRegistry {
    entries: Vec<Arc<dyn Analysis>>,
}

impl fmt::Debug for AnalysisRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnalysisRegistry")
            .field("keys", &self.keys())
            .finish()
    }
}

impl AnalysisRegistry {
    /// An empty registry.
    #[must_use]
    pub fn empty() -> Self {
        AnalysisRegistry {
            entries: Vec::new(),
        }
    }

    /// The nine builtin analyses of this workspace: `het`, `hom`, `sim`,
    /// `exact`, `cond`, `suspend`, `acceptance`, `sampled`, `anytime`.
    #[must_use]
    pub fn builtin() -> Self {
        let mut registry = AnalysisRegistry::empty();
        for analysis in crate::adapters::builtin_analyses() {
            registry.register(analysis);
        }
        registry
    }

    /// Registers `analysis` under its [`Analysis::key`]; an existing entry
    /// with the same key is replaced.
    pub fn register(&mut self, analysis: Arc<dyn Analysis>) {
        if let Some(slot) = self.entries.iter_mut().find(|e| e.key() == analysis.key()) {
            *slot = analysis;
        } else {
            self.entries.push(analysis);
        }
    }

    /// Resolves `key`.
    ///
    /// # Errors
    ///
    /// [`ApiError::UnknownAnalysis`] listing every valid key.
    pub fn get(&self, key: &str) -> Result<&dyn Analysis, ApiError> {
        self.entries
            .iter()
            .find(|e| e.key() == key)
            .map(Arc::as_ref)
            .ok_or_else(|| ApiError::UnknownAnalysis {
                key: key.to_owned(),
                known: self.keys().iter().map(|&k| k.to_owned()).collect(),
            })
    }

    /// `true` if `key` resolves.
    #[must_use]
    pub fn contains(&self, key: &str) -> bool {
        self.entries.iter().any(|e| e.key() == key)
    }

    /// Every registered key, in registration order.
    #[must_use]
    pub fn keys(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.key()).collect()
    }

    /// `(key, description)` pairs, in registration order (help screens).
    #[must_use]
    pub fn descriptions(&self) -> Vec<(&str, &str)> {
        self.entries
            .iter()
            .map(|e| (e.key(), e.describe()))
            .collect()
    }

    /// Resolves `key` and runs it on `request`.
    ///
    /// # Errors
    ///
    /// [`ApiError::UnknownAnalysis`], or whatever the analysis returns.
    pub fn run(
        &self,
        key: &str,
        request: &AnalysisRequest,
        ctx: &dyn AnalysisContext,
    ) -> Result<AnalysisOutcome, ApiError> {
        self.get(key)?.run(request, ctx)
    }
}

impl Default for AnalysisRegistry {
    /// The builtin registry.
    fn default() -> Self {
        AnalysisRegistry::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_has_the_nine_keys_in_stable_order() {
        let registry = AnalysisRegistry::builtin();
        assert_eq!(
            registry.keys(),
            vec![
                "het",
                "hom",
                "sim",
                "exact",
                "cond",
                "suspend",
                "acceptance",
                "sampled",
                "anytime"
            ]
        );
        for (key, description) in registry.descriptions() {
            assert!(!description.is_empty(), "{key} lacks a description");
        }
    }

    #[test]
    fn unknown_key_error_lists_every_valid_key() {
        let registry = AnalysisRegistry::builtin();
        let err = registry.get("frobnicate").unwrap_err();
        let text = err.to_string();
        for key in registry.keys() {
            assert!(text.contains(key), "`{key}` missing from: {text}");
        }
    }

    #[test]
    fn registration_replaces_same_key() {
        #[derive(Debug)]
        struct Stub(&'static str);
        impl Analysis for Stub {
            fn key(&self) -> &str {
                "stub"
            }
            fn describe(&self) -> &str {
                self.0
            }
            fn run(
                &self,
                _request: &AnalysisRequest,
                _ctx: &dyn AnalysisContext,
            ) -> Result<AnalysisOutcome, ApiError> {
                Err(ApiError::failed("stub", "unimplemented"))
            }
        }

        let mut registry = AnalysisRegistry::empty();
        registry.register(Arc::new(Stub("first")));
        registry.register(Arc::new(Stub("second")));
        assert_eq!(registry.keys(), vec!["stub"]);
        assert_eq!(registry.get("stub").unwrap().describe(), "second");
    }
}
