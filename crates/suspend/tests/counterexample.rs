//! The paper's Figure 1(c) counterexample, executable.
//!
//! §3.2 of the paper: naively subtracting the offloaded work from the
//! self-interference factor of Eq. 1 gives 11 on the Figure 1 task, yet a
//! legal work-conserving schedule takes 12. These tests pin that down
//! against the simulator, and also validate the sound baselines against
//! worst-case schedule exploration on random tasks.

use hetrta_dag::{DagBuilder, HeteroDagTask, NodeId, Rational, Ticks};
use hetrta_gen::offload::{make_hetero_task, CoffSizing, OffloadSelection};
use hetrta_gen::{generate_nfj, NfjParams};
use hetrta_sim::{explore_worst_case, Platform};
use hetrta_suspend::{
    jitter_rta, naive_discount, oblivious_rta, phase_barrier, suspension_oblivious,
    BaselineComparison, FlatSuspendingTask,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn figure1_task() -> (HeteroDagTask, NodeId) {
    let mut b = DagBuilder::new();
    let v1 = b.node("v1", Ticks::new(1));
    let v2 = b.node("v2", Ticks::new(4));
    let v3 = b.node("v3", Ticks::new(6));
    let v4 = b.node("v4", Ticks::new(2));
    let v5 = b.node("v5", Ticks::new(1));
    let voff = b.node("v_off", Ticks::new(4));
    b.edges([
        (v1, v2),
        (v1, v3),
        (v1, v4),
        (v4, voff),
        (v2, v5),
        (v3, v5),
        (voff, v5),
    ])
    .unwrap();
    let task =
        HeteroDagTask::new(b.build().unwrap(), voff, Ticks::new(50), Ticks::new(50)).unwrap();
    (task, voff)
}

#[test]
fn figure_1c_breaks_the_naive_discount() {
    let (task, voff) = figure1_task();
    let naive = naive_discount(&task, 2).unwrap();
    assert_eq!(naive, Rational::from_integer(11)); // the paper's "reduced" 11

    // …but a legal work-conserving schedule of τ reaches makespan 12.
    let worst =
        explore_worst_case(task.dag(), Some(voff), Platform::with_accelerator(2), 500).unwrap();
    assert_eq!(worst.makespan(), Ticks::new(12));
    assert!(
        worst.makespan().to_rational() > naive,
        "the naive bound must be violated by the witness schedule"
    );
}

#[test]
fn sound_baselines_survive_worst_case_exploration_on_figure1() {
    let (task, voff) = figure1_task();
    let worst =
        explore_worst_case(task.dag(), Some(voff), Platform::with_accelerator(2), 500).unwrap();
    let makespan = worst.makespan().to_rational();
    assert!(makespan <= suspension_oblivious(&task, 2).unwrap());
    // The phase barrier bounds a *different* (barrier) deployment; on this
    // task it happens to dominate the free-running worst case too.
    assert!(makespan <= phase_barrier(&task, 2).unwrap());
}

#[test]
fn sound_baselines_hold_on_random_tasks() {
    // Random small tasks: worst-case exploration never exceeds the sound
    // baselines of the ORIGINAL task; the naive bound is violated on a
    // measurable fraction (witness that the counterexample generalizes).
    let mut naive_violations = 0usize;
    let mut checked = 0usize;
    for seed in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let Ok(dag) = generate_nfj(&NfjParams::small_tasks(), &mut rng) else {
            continue;
        };
        let Ok(task) = make_hetero_task(
            dag,
            OffloadSelection::AnyInterior,
            CoffSizing::VolumeFraction(0.3),
            &mut rng,
        ) else {
            continue;
        };
        for m in [2usize, 4] {
            let worst = explore_worst_case(
                task.dag(),
                Some(task.offloaded()),
                Platform::with_accelerator(m),
                40,
            )
            .unwrap();
            let makespan = worst.makespan().to_rational();
            let oblivious = suspension_oblivious(&task, m as u64).unwrap();
            assert!(
                makespan <= oblivious,
                "seed {seed}, m {m}: worst {makespan} > oblivious {oblivious}"
            );
            if makespan > naive_discount(&task, m as u64).unwrap() {
                naive_violations += 1;
            }
            checked += 1;
        }
    }
    assert!(checked >= 80, "too few tasks generated ({checked})");
    assert!(
        naive_violations > 0,
        "expected at least one naive-bound violation across {checked} random tasks"
    );
}

#[test]
fn uniprocessor_baselines_flattened_from_dags_are_consistent() {
    // Flatten random DAG tasks and check the classical uniprocessor
    // analyses keep their known ordering (jitter ≤ oblivious) and bound
    // the single-job makespan on one core.
    let mut rng = StdRng::seed_from_u64(99);
    let mut tasks = Vec::new();
    let mut flat = Vec::new();
    for f in [0.15, 0.3] {
        let dag = generate_nfj(&NfjParams::small_tasks(), &mut rng).unwrap();
        let t = make_hetero_task(
            dag,
            OffloadSelection::AnyInterior,
            CoffSizing::VolumeFraction(f),
            &mut rng,
        )
        .unwrap();
        // Space the periods out so the set has a chance on one core.
        let vol = t.volume().get();
        let spaced = HeteroDagTask::new(
            t.dag().clone(),
            t.offloaded(),
            Ticks::new(vol * 4),
            Ticks::new(vol * 4),
        )
        .unwrap();
        flat.push(FlatSuspendingTask::of(&spaced).unwrap());
        tasks.push(spaced);
    }
    let ob = oblivious_rta(&flat).unwrap();
    let ji = jitter_rta(&flat).unwrap();
    for (o, j) in ob.iter().zip(&ji) {
        if let (Some(ro), Some(rj)) = (o.response_bound, j.response_bound) {
            assert!(rj <= ro);
        }
    }
    // Single job on one core + device: makespan ≤ the task's own base term.
    for (task, f) in tasks.iter().zip(&flat) {
        let worst = explore_worst_case(
            task.dag(),
            Some(task.offloaded()),
            Platform::with_accelerator(1),
            20,
        )
        .unwrap();
        assert!(worst.makespan() <= f.execution() + f.suspension);
    }
}

#[test]
fn comparison_report_is_internally_consistent_on_random_tasks() {
    for seed in 200..230u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let Ok(dag) = generate_nfj(&NfjParams::small_tasks(), &mut rng) else {
            continue;
        };
        let Ok(task) = make_hetero_task(
            dag,
            OffloadSelection::AnyInterior,
            CoffSizing::VolumeFraction(0.25),
            &mut rng,
        ) else {
            continue;
        };
        for m in [2u64, 8] {
            let c = BaselineComparison::compute(&task, m).unwrap();
            assert!(c.r_het_tight <= c.r_het);
            assert!(c.best_sound() <= c.oblivious);
            assert!(c.best_sound() <= c.phase_barrier);
            assert!(c.best_sound() <= c.r_het_tight);
            assert!(!c.naive_unsound.is_negative());
        }
    }
}
