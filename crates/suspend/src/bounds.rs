//! Single-task baseline bounds from the self-suspending literature.
//!
//! The paper's §6 notes that heterogeneous real-time tasks were
//! traditionally modeled as self-suspending tasks, and that "many previous
//! works concerning the analysis of self-suspending tasks are flawed"
//! (Chen et al.'s review, the paper's reference \[8\]). This module
//! implements the *sound* classical baselines for a single DAG task on `m`
//! cores, plus — deliberately, clearly marked — the **unsound** naive
//! discount of the paper's §3.2, so the Figure 1(c) counterexample is
//! executable.
//!
//! For a task `τ` with offloaded node `v_off` (`C_off`), the bounds are:
//!
//! | bound | formula | status |
//! |-------|---------|--------|
//! | [`suspension_oblivious`] | Eq. 1 on `G` (suspension as computation) | sound; = the paper's `R_hom` baseline |
//! | [`phase_barrier`] | `R_hom(pred) + max(C_off, R_hom(par)) + R_hom(succ)` | sound for the barrier deployment |
//! | [`naive_discount`] | `len(G) + (vol(G) − len(G) − C_off)/m` | **unsound** (Figure 1(c)) |
//!
//! The phase-barrier bound analyzes the classical *deployment*: run
//! everything before `v_off`, hit a barrier, run the suspension in
//! parallel with the independent work, hit a barrier, run the rest. It is
//! coarser than the paper's Theorem 1 because both barriers are full
//! (Theorem 1's transformation only synchronizes *before* the offload
//! region and lets `succ`-side work start as its own predecessors allow).

use hetrta_core::r_hom_dag;
use hetrta_dag::algo::CriticalPath;
use hetrta_dag::{HeteroDagTask, Rational};

use crate::model::PhaseDecomposition;
use crate::SuspendError;

/// Suspension-oblivious bound: the device time is treated as host
/// computation, i.e. Eq. 1 applied to the full DAG — identical to the
/// paper's homogeneous baseline `R_hom(τ)`.
///
/// Sound for any work-conserving host schedule because adding `v_off` to
/// the host workload only over-approximates.
///
/// # Errors
///
/// [`SuspendError::ZeroCores`] if `m == 0`; [`SuspendError::Dag`] on a
/// cyclic graph.
///
/// # Examples
///
/// ```
/// use hetrta_dag::{DagBuilder, HeteroDagTask, Rational, Ticks};
/// use hetrta_suspend::suspension_oblivious;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DagBuilder::new();
/// let a = b.node("a", Ticks::new(2));
/// let k = b.node("k", Ticks::new(6));
/// let z = b.node("z", Ticks::new(2));
/// b.edges([(a, k), (k, z)])?;
/// let task = HeteroDagTask::new(b.build()?, k, Ticks::new(40), Ticks::new(40))?;
/// assert_eq!(suspension_oblivious(&task, 4)?, Rational::from_integer(10));
/// # Ok(())
/// # }
/// ```
pub fn suspension_oblivious(task: &HeteroDagTask, m: u64) -> Result<Rational, SuspendError> {
    Ok(r_hom_dag(task.dag(), m)?)
}

/// Phase-barrier bound: the classical three-phase self-suspending
/// decomposition on `m` cores,
/// `R_hom(pred) + max(C_off, R_hom(par)) + R_hom(succ)`.
///
/// Sound for the barrier-structured deployment (full synchronization
/// before and after the offload region). Note it does **not** bound the
/// paper's less constrained `τ'`: removing precedence constraints can
/// lengthen greedy schedules (Graham's timing anomalies), which is exactly
/// why `τ'` needs its own analysis (Theorem 1).
///
/// # Errors
///
/// [`SuspendError::ZeroCores`] if `m == 0`; [`SuspendError::Dag`] on a
/// cyclic graph.
pub fn phase_barrier(task: &HeteroDagTask, m: u64) -> Result<Rational, SuspendError> {
    if m == 0 {
        return Err(SuspendError::ZeroCores);
    }
    let phases = PhaseDecomposition::of(task)?;
    let pred = r_hom_dag(phases.pred(), m)?;
    let par = r_hom_dag(phases.par(), m)?;
    let succ = r_hom_dag(phases.succ(), m)?;
    Ok(pred + phases.c_off().to_rational().max(par) + succ)
}

/// The naive discount of the paper's §3.2: subtract `C_off` from the
/// self-interference term of Eq. 1 without any synchronization,
/// `len(G) + (vol(G) − len(G) − C_off)/m`.
///
/// **This bound is unsound** — the paper's Figure 1(c) shows a
/// work-conserving schedule of the original task τ whose makespan (12)
/// exceeds it (11). It is provided so the counterexample is executable
/// (see `tests/counterexample.rs`) and as the strawman the DAG
/// transformation exists to fix. Never use it for verification.
///
/// When `C_off` exceeds the total self-interference `vol − len` the
/// formula would go below the critical-path length; the value is clamped
/// at `len(G)` (the paper never evaluates it there).
///
/// # Errors
///
/// [`SuspendError::ZeroCores`] if `m == 0`; [`SuspendError::Dag`] on a
/// cyclic graph.
pub fn naive_discount(task: &HeteroDagTask, m: u64) -> Result<Rational, SuspendError> {
    if m == 0 {
        return Err(SuspendError::ZeroCores);
    }
    let len = CriticalPath::try_of(task.dag())?.length().to_rational();
    let vol = task.volume().to_rational();
    let c_off = task.c_off().to_rational();
    let slack = (vol - len - c_off).max(Rational::ZERO);
    Ok(len + slack / Rational::from_integer(m as i128))
}

/// Side-by-side comparison of every baseline with the paper's bounds for
/// one task and core count.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineComparison {
    /// Host cores the bounds were computed for.
    pub cores: u64,
    /// [`suspension_oblivious`] (= `R_hom(τ)`).
    pub oblivious: Rational,
    /// [`phase_barrier`].
    pub phase_barrier: Rational,
    /// [`naive_discount`] — **unsound**, for illustration only.
    pub naive_unsound: Rational,
    /// The paper's Theorem 1 on the transformed task.
    pub r_het: Rational,
    /// `min(R_het, R_hom(G'))` (tightness cap; see `hetrta-core::rta`).
    pub r_het_tight: Rational,
}

impl BaselineComparison {
    /// Computes all bounds for `task` on `m` cores.
    ///
    /// # Errors
    ///
    /// [`SuspendError::ZeroCores`] if `m == 0`; [`SuspendError::Dag`] on
    /// structural errors.
    pub fn compute(task: &HeteroDagTask, m: u64) -> Result<Self, SuspendError> {
        let transformed = hetrta_core::transform(task)?;
        let het = hetrta_core::r_het(&transformed, m)?;
        Ok(BaselineComparison {
            cores: m,
            oblivious: suspension_oblivious(task, m)?,
            phase_barrier: phase_barrier(task, m)?,
            naive_unsound: naive_discount(task, m)?,
            r_het: het.value(),
            r_het_tight: het.tight_value(),
        })
    }

    /// The tightest *sound* bound in the comparison.
    #[must_use]
    pub fn best_sound(&self) -> Rational {
        self.oblivious.min(self.phase_barrier).min(self.r_het_tight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetrta_dag::{DagBuilder, Ticks};

    /// Figure 1(a) of the paper (reconstructed WCETs).
    fn figure1_task() -> HeteroDagTask {
        let mut b = DagBuilder::new();
        let v1 = b.node("v1", Ticks::new(1));
        let v2 = b.node("v2", Ticks::new(4));
        let v3 = b.node("v3", Ticks::new(6));
        let v4 = b.node("v4", Ticks::new(2));
        let v5 = b.node("v5", Ticks::new(1));
        let voff = b.node("v_off", Ticks::new(4));
        b.edges([
            (v1, v2),
            (v1, v3),
            (v1, v4),
            (v4, voff),
            (v2, v5),
            (v3, v5),
            (voff, v5),
        ])
        .unwrap();
        HeteroDagTask::new(b.build().unwrap(), voff, Ticks::new(50), Ticks::new(50)).unwrap()
    }

    #[test]
    fn oblivious_matches_r_hom_13() {
        assert_eq!(
            suspension_oblivious(&figure1_task(), 2).unwrap(),
            Rational::from_integer(13)
        );
    }

    #[test]
    fn naive_discount_gives_the_papers_11() {
        assert_eq!(
            naive_discount(&figure1_task(), 2).unwrap(),
            Rational::from_integer(11)
        );
    }

    #[test]
    fn phase_barrier_on_figure1() {
        // pred {v1,v4}: chain, len 3 → R_hom = 3.
        // par {v2,v3}: R_hom on m=2 = 6 + 4/2 = 8 > C_off 4.
        // succ {v5}: 1. Total 3 + 8 + 1 = 12.
        assert_eq!(
            phase_barrier(&figure1_task(), 2).unwrap(),
            Rational::from_integer(12)
        );
    }

    #[test]
    fn theorem1_is_at_least_as_tight_as_every_sound_baseline_here() {
        let c = BaselineComparison::compute(&figure1_task(), 2).unwrap();
        assert!(c.r_het_tight <= c.oblivious);
        assert!(c.r_het_tight <= c.phase_barrier);
        assert_eq!(c.best_sound(), c.r_het_tight);
    }

    #[test]
    fn naive_is_below_sound_bounds_that_is_the_problem() {
        let c = BaselineComparison::compute(&figure1_task(), 2).unwrap();
        // It *looks* tighter than everything — because it is wrong.
        assert!(c.naive_unsound < c.r_het_tight);
        assert!(c.naive_unsound < c.oblivious);
    }

    #[test]
    fn clamp_prevents_below_critical_path() {
        // Chain a → k → z with C_off larger than the interference slack.
        let mut b = DagBuilder::new();
        let a = b.node("a", Ticks::new(1));
        let k = b.node("k", Ticks::new(10));
        let z = b.node("z", Ticks::new(1));
        b.edges([(a, k), (k, z)]).unwrap();
        let t = HeteroDagTask::new(b.build().unwrap(), k, Ticks::new(50), Ticks::new(50)).unwrap();
        // vol = len = 12: slack is zero even before subtracting C_off.
        assert_eq!(naive_discount(&t, 2).unwrap(), Rational::from_integer(12));
    }

    #[test]
    fn zero_cores_rejected_everywhere() {
        let t = figure1_task();
        assert_eq!(
            suspension_oblivious(&t, 0).unwrap_err(),
            SuspendError::ZeroCores
        );
        assert_eq!(phase_barrier(&t, 0).unwrap_err(), SuspendError::ZeroCores);
        assert_eq!(naive_discount(&t, 0).unwrap_err(), SuspendError::ZeroCores);
        assert!(BaselineComparison::compute(&t, 0).is_err());
    }

    #[test]
    fn many_cores_collapse_interference() {
        let t = figure1_task();
        // With many cores the oblivious bound approaches len(G) = 8 and
        // phase barrier approaches 3 + max(4, R_hom(par) → 6) + 1 = 10.
        assert_eq!(suspension_oblivious(&t, 1000).unwrap().floor(), 8);
        let pb = phase_barrier(&t, 1000).unwrap();
        assert_eq!(pb.floor(), 10);
        assert!(pb < Rational::new(1001, 100), "limit is 10 + ε: {pb}");
    }
}
