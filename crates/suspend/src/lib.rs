//! # hetrta-suspend — self-suspending baselines for heterogeneous DAG tasks
//!
//! The related-work lens of the paper's §6: before DAG-aware heterogeneous
//! response-time analyses, tasks that offload work to an accelerator were
//! modeled as **self-suspending** tasks (Chen et al.'s review, the paper's
//! reference \[8\]). This crate implements those classical models and
//! bounds so the paper's contribution can be compared against the
//! tradition it replaces:
//!
//! * [`PhaseDecomposition`] / [`FlatSuspendingTask`] — the self-suspending
//!   views of a heterogeneous DAG task ([`model`]);
//! * [`suspension_oblivious`], [`phase_barrier`] — sound single-task
//!   baselines on `m` cores, and [`naive_discount`] — the **unsound**
//!   shortcut of the paper's §3.2, kept executable as the motivating
//!   counterexample ([`bounds`]);
//! * [`oblivious_rta`], [`jitter_rta`] — the two classical *sound*
//!   uniprocessor task-set analyses ([`uniprocessor`]).
//!
//! ## Example
//!
//! ```
//! use hetrta_dag::{DagBuilder, HeteroDagTask, Ticks};
//! use hetrta_suspend::BaselineComparison;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = DagBuilder::new();
//! let pre = b.node("pre", Ticks::new(2));
//! let gpu = b.node("gpu", Ticks::new(9));
//! let cpu = b.node("cpu", Ticks::new(6));
//! let post = b.node("post", Ticks::new(1));
//! b.edges([(pre, gpu), (pre, cpu), (gpu, post), (cpu, post)])?;
//! let task = HeteroDagTask::new(b.build()?, gpu, Ticks::new(40), Ticks::new(40))?;
//!
//! let c = BaselineComparison::compute(&task, 2)?;
//! assert!(c.r_het_tight <= c.oblivious);     // Theorem 1 beats oblivious
//! assert!(c.best_sound() <= c.phase_barrier); // and the barrier baseline
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bounds;
mod error;
pub mod model;
pub mod uniprocessor;

pub use bounds::{naive_discount, phase_barrier, suspension_oblivious, BaselineComparison};
pub use error::SuspendError;
pub use model::{FlatSuspendingTask, PhaseDecomposition};
pub use uniprocessor::{jitter_rta, oblivious_rta, UniVerdict};
