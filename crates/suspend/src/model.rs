//! Self-suspending views of a heterogeneous DAG task.
//!
//! Before DAG-aware heterogeneous analyses, real-time tasks that offload
//! work were modeled as *self-suspending* tasks (see the review the paper
//! cites as \[8\], Chen et al. 2017): the processor-side computation
//! suspends while the device runs. This module derives the two classical
//! views from a [`HeteroDagTask`]:
//!
//! * [`PhaseDecomposition`] — the DAG split into the three phases induced
//!   by `v_off`: everything that must precede it, everything parallel to
//!   it, everything that must follow it (multiprocessor view);
//! * [`FlatSuspendingTask`] — the fully sequentialized
//!   `(C¹, S, C²)` *dynamic self-suspending* model used by the
//!   uniprocessor literature.

use hetrta_dag::algo::Reachability;
use hetrta_dag::{Dag, HeteroDagTask, Ticks};

use crate::SuspendError;

/// The DAG split around `v_off`: `pred → (par ∥ v_off) → succ`.
///
/// `pred` is the sub-DAG induced by `Pred(v_off)`, `par` by the nodes
/// parallel to `v_off` (the same node set as the paper's `G_par`), and
/// `succ` by `Succ(v_off)`. Together with `v_off` they partition the
/// task's nodes.
///
/// # Examples
///
/// ```
/// use hetrta_dag::{DagBuilder, HeteroDagTask, Ticks};
/// use hetrta_suspend::PhaseDecomposition;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DagBuilder::new();
/// let pre = b.node("pre", Ticks::new(2));
/// let gpu = b.node("gpu", Ticks::new(8));
/// let cpu = b.node("cpu", Ticks::new(5));
/// let post = b.node("post", Ticks::new(1));
/// b.edges([(pre, gpu), (pre, cpu), (gpu, post), (cpu, post)])?;
/// let task = HeteroDagTask::new(b.build()?, gpu, Ticks::new(30), Ticks::new(30))?;
///
/// let phases = PhaseDecomposition::of(&task)?;
/// assert_eq!(phases.pred().volume(), Ticks::new(2));
/// assert_eq!(phases.par().volume(), Ticks::new(5));
/// assert_eq!(phases.succ().volume(), Ticks::new(1));
/// assert_eq!(phases.c_off(), Ticks::new(8));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PhaseDecomposition {
    pred: Dag,
    par: Dag,
    succ: Dag,
    c_off: Ticks,
}

impl PhaseDecomposition {
    /// Splits `task` around its offloaded node.
    ///
    /// # Errors
    ///
    /// [`SuspendError::Dag`] if the graph is cyclic.
    pub fn of(task: &HeteroDagTask) -> Result<Self, SuspendError> {
        let dag = task.dag();
        let off = task.offloaded();
        let reach = Reachability::of(dag)?;
        Ok(PhaseDecomposition {
            pred: dag.induced_subgraph(reach.ancestors(off)).0,
            par: dag.induced_subgraph(&reach.parallel(off)).0,
            succ: dag.induced_subgraph(reach.descendants(off)).0,
            c_off: dag.wcet(off),
        })
    }

    /// The sub-DAG of nodes that must complete before `v_off` starts.
    #[must_use]
    pub fn pred(&self) -> &Dag {
        &self.pred
    }

    /// The sub-DAG of nodes parallel to `v_off` (the paper's `G_par`
    /// node set).
    #[must_use]
    pub fn par(&self) -> &Dag {
        &self.par
    }

    /// The sub-DAG of nodes that cannot start before `v_off` completes.
    #[must_use]
    pub fn succ(&self) -> &Dag {
        &self.succ
    }

    /// `C_off` — the suspension length in the self-suspending view.
    #[must_use]
    pub fn c_off(&self) -> Ticks {
        self.c_off
    }

    /// Sanity: the three phases plus `v_off` account for the whole task.
    #[must_use]
    pub fn accounts_for(&self, task: &HeteroDagTask) -> bool {
        self.pred.volume() + self.par.volume() + self.succ.volume() + self.c_off == task.volume()
    }
}

/// The fully sequentialized self-suspending view `(C¹, S, C²)`:
/// execute `C¹`, suspend for up to `S`, execute `C²`.
///
/// `C¹` collects the host work that can start before the suspension ends
/// (predecessors of `v_off` **and** the parallel nodes — on a uniprocessor
/// any of it can be scheduled while the device runs, but the classical
/// model serializes it); `C²` is the work strictly after `v_off`. This is
/// the *dynamic* self-suspending model: the suspension may occur anywhere
/// within the job, with total length at most `S`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FlatSuspendingTask {
    /// Host execution before the suspension may end (`vol(pred) + vol(par)`).
    pub c1: Ticks,
    /// Maximum suspension length (`C_off`).
    pub suspension: Ticks,
    /// Host execution after the suspension (`vol(succ)`).
    pub c2: Ticks,
    /// Minimum inter-arrival time.
    pub period: Ticks,
    /// Constrained relative deadline.
    pub deadline: Ticks,
}

impl FlatSuspendingTask {
    /// Flattens `task` into the classical `(C¹, S, C²)` shape.
    ///
    /// # Errors
    ///
    /// [`SuspendError::Dag`] if the graph is cyclic.
    pub fn of(task: &HeteroDagTask) -> Result<Self, SuspendError> {
        let phases = PhaseDecomposition::of(task)?;
        Ok(FlatSuspendingTask {
            c1: phases.pred().volume() + phases.par().volume(),
            suspension: phases.c_off(),
            c2: phases.succ().volume(),
            period: task.period(),
            deadline: task.deadline(),
        })
    }

    /// Total host execution `C = C¹ + C²`.
    #[must_use]
    pub fn execution(&self) -> Ticks {
        self.c1 + self.c2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetrta_dag::DagBuilder;

    /// Figure 1(a) of the paper (reconstructed WCETs).
    fn figure1_task() -> HeteroDagTask {
        let mut b = DagBuilder::new();
        let v1 = b.node("v1", Ticks::new(1));
        let v2 = b.node("v2", Ticks::new(4));
        let v3 = b.node("v3", Ticks::new(6));
        let v4 = b.node("v4", Ticks::new(2));
        let v5 = b.node("v5", Ticks::new(1));
        let voff = b.node("v_off", Ticks::new(4));
        b.edges([
            (v1, v2),
            (v1, v3),
            (v1, v4),
            (v4, voff),
            (v2, v5),
            (v3, v5),
            (voff, v5),
        ])
        .unwrap();
        HeteroDagTask::new(b.build().unwrap(), voff, Ticks::new(50), Ticks::new(50)).unwrap()
    }

    #[test]
    fn figure1_phases() {
        let task = figure1_task();
        let p = PhaseDecomposition::of(&task).unwrap();
        // Pred(v_off) = {v1, v4}: vol 3. Par = {v2, v3}: vol 10. Succ = {v5}: 1.
        assert_eq!(p.pred().volume(), Ticks::new(3));
        assert_eq!(p.par().volume(), Ticks::new(10));
        assert_eq!(p.succ().volume(), Ticks::new(1));
        assert_eq!(p.c_off(), Ticks::new(4));
        assert!(p.accounts_for(&task));
    }

    #[test]
    fn phases_preserve_internal_edges() {
        let task = figure1_task();
        let p = PhaseDecomposition::of(&task).unwrap();
        // v1 → v4 is the only pred-internal edge.
        assert_eq!(p.pred().edge_count(), 1);
        // v2 and v3 are parallel: no internal edge.
        assert_eq!(p.par().edge_count(), 0);
    }

    #[test]
    fn flattening_matches_phase_volumes() {
        let task = figure1_task();
        let flat = FlatSuspendingTask::of(&task).unwrap();
        assert_eq!(flat.c1, Ticks::new(13));
        assert_eq!(flat.suspension, Ticks::new(4));
        assert_eq!(flat.c2, Ticks::new(1));
        assert_eq!(flat.execution(), Ticks::new(14));
        assert_eq!(flat.execution() + flat.suspension, task.volume());
    }

    #[test]
    fn chain_task_has_empty_par() {
        let mut b = DagBuilder::new();
        let a = b.node("a", Ticks::new(2));
        let k = b.node("k", Ticks::new(5));
        let z = b.node("z", Ticks::new(3));
        b.edges([(a, k), (k, z)]).unwrap();
        let task =
            HeteroDagTask::new(b.build().unwrap(), k, Ticks::new(20), Ticks::new(20)).unwrap();
        let p = PhaseDecomposition::of(&task).unwrap();
        assert!(p.par().is_empty());
        assert_eq!(p.pred().volume(), Ticks::new(2));
        assert_eq!(p.succ().volume(), Ticks::new(3));
        assert!(p.accounts_for(&task));
    }

    #[test]
    fn par_matches_papers_g_par() {
        let task = figure1_task();
        let p = PhaseDecomposition::of(&task).unwrap();
        let t = hetrta_core::transform(&task).unwrap();
        assert_eq!(p.par().volume(), t.vol_g_par());
        assert_eq!(p.par().node_count(), t.g_par().node_count());
    }
}
