//! Errors of the self-suspending baseline analyses.

use core::fmt;

use hetrta_core::AnalysisError;
use hetrta_dag::DagError;

/// Errors produced by the self-suspending baselines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SuspendError {
    /// The host core count `m` must be at least 1.
    ZeroCores,
    /// The task's DAG violates a structural assumption (wrapped cause).
    Dag(DagError),
    /// A response-time iteration diverged past the deadline (task-set
    /// analyses report this per task, not as an error; this variant flags
    /// parameter mistakes such as a zero period).
    InvalidTask(String),
}

impl fmt::Display for SuspendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuspendError::ZeroCores => write!(f, "host must have at least one core"),
            SuspendError::Dag(e) => write!(f, "task structure error: {e}"),
            SuspendError::InvalidTask(msg) => write!(f, "invalid task: {msg}"),
        }
    }
}

impl std::error::Error for SuspendError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SuspendError::Dag(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DagError> for SuspendError {
    fn from(e: DagError) -> Self {
        SuspendError::Dag(e)
    }
}

impl From<AnalysisError> for SuspendError {
    fn from(e: AnalysisError) -> Self {
        match e {
            AnalysisError::ZeroCores => SuspendError::ZeroCores,
            AnalysisError::Dag(d) => SuspendError::Dag(d),
            _ => SuspendError::InvalidTask(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            SuspendError::ZeroCores.to_string(),
            "host must have at least one core"
        );
        assert!(SuspendError::InvalidTask("p".into())
            .to_string()
            .contains('p'));
        assert!(SuspendError::from(DagError::Empty)
            .to_string()
            .contains("structure"));
    }

    #[test]
    fn conversion_from_analysis_error() {
        assert_eq!(
            SuspendError::from(AnalysisError::ZeroCores),
            SuspendError::ZeroCores
        );
    }
}
