//! Classical uniprocessor RTA for sets of self-suspending tasks.
//!
//! This is the related-work setting the paper's §6 describes: "most of the
//! published work consider that tasks are scheduled on a uniprocessor
//! platform and utilizes a device to accelerate part of the execution."
//! Following the two analyses that Chen et al.'s review (the paper's
//! reference \[8\]) confirms sound for *dynamic* self-suspending tasks under
//! fixed-priority preemptive scheduling:
//!
//! * [`oblivious_rta`] — **suspension-oblivious**: suspensions are modeled
//!   as execution, both for the task under analysis and for interfering
//!   tasks: `R_i = C_i + S_i + Σ_{j<i} ⌈R_i/T_j⌉ (C_j + S_j)`.
//! * [`jitter_rta`] — **suspension-as-jitter**: interfering tasks keep
//!   their real execution time but get a release jitter of
//!   `J_j = R_j − C_j`:
//!   `R_i = C_i + S_i + Σ_{j<i} ⌈(R_i + J_j)/T_j⌉ C_j`.
//!
//! A heterogeneous DAG task on one host core *is* a dynamic self-suspending
//! task (host execution ≤ `C¹ + C²`, total suspension ≤ `C_off`), so these
//! bounds apply to [`FlatSuspendingTask`] views directly — giving the
//! historical baseline that the DAG-aware multiprocessor analyses of
//! `hetrta-core`/`hetrta-sched` supersede.

use hetrta_dag::Ticks;

use crate::model::FlatSuspendingTask;
use crate::SuspendError;

/// Iteration cap; exceeding it reports the task unschedulable.
const MAX_ITERATIONS: usize = 100_000;

/// Per-task verdict of a uniprocessor RTA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniVerdict {
    /// Index of the task in the input slice (priority order).
    pub task: usize,
    /// Converged response-time bound, `None` if it exceeded the deadline.
    pub response_bound: Option<Ticks>,
    /// The task's relative deadline.
    pub deadline: Ticks,
}

impl UniVerdict {
    /// `true` if the bound exists and meets the deadline.
    #[must_use]
    pub fn is_schedulable(&self) -> bool {
        matches!(self.response_bound, Some(r) if r <= self.deadline)
    }
}

fn validate(tasks: &[FlatSuspendingTask]) -> Result<(), SuspendError> {
    for (i, t) in tasks.iter().enumerate() {
        if t.period.is_zero() {
            return Err(SuspendError::InvalidTask(format!(
                "task {i} has a zero period"
            )));
        }
        if t.deadline > t.period {
            return Err(SuspendError::InvalidTask(format!(
                "task {i} has deadline {} > period {}",
                t.deadline, t.period
            )));
        }
    }
    Ok(())
}

/// Generic TDA fixed point: `R = base + Σ_j ⌈(R + jitter_j)/T_j⌉ · cost_j`
/// over the higher-priority prefix.
fn tda(
    base: Ticks,
    deadline: Ticks,
    hp: &[(Ticks, Ticks, Ticks)], // (period, cost, jitter)
) -> Option<Ticks> {
    let mut r = base;
    if r > deadline {
        return None;
    }
    for _ in 0..MAX_ITERATIONS {
        let mut next = base;
        for &(t, c, j) in hp {
            let jobs = (r + j).div_ceil(t.get());
            next += Ticks::new(jobs.get() * c.get());
        }
        if next > deadline {
            return None;
        }
        if next == r {
            return Some(r);
        }
        r = next;
    }
    None
}

/// Suspension-oblivious RTA (tasks in priority order, index 0 highest).
///
/// # Errors
///
/// [`SuspendError::InvalidTask`] for zero periods or deadlines exceeding
/// periods.
///
/// # Examples
///
/// ```
/// use hetrta_dag::Ticks;
/// use hetrta_suspend::{oblivious_rta, FlatSuspendingTask};
///
/// let t = |c1, s, c2, p| FlatSuspendingTask {
///     c1: Ticks::new(c1), suspension: Ticks::new(s), c2: Ticks::new(c2),
///     period: Ticks::new(p), deadline: Ticks::new(p),
/// };
/// let verdicts = oblivious_rta(&[t(2, 1, 1, 10), t(3, 2, 1, 20)])?;
/// // τ0: 2+1+1 = 4. τ1: 3+2+1 + ⌈R/10⌉·4 → 6 + 4 = 10.
/// assert_eq!(verdicts[0].response_bound, Some(Ticks::new(4)));
/// assert_eq!(verdicts[1].response_bound, Some(Ticks::new(10)));
/// # Ok::<(), hetrta_suspend::SuspendError>(())
/// ```
pub fn oblivious_rta(tasks: &[FlatSuspendingTask]) -> Result<Vec<UniVerdict>, SuspendError> {
    validate(tasks)?;
    let mut out = Vec::with_capacity(tasks.len());
    for (i, task) in tasks.iter().enumerate() {
        let base = task.execution() + task.suspension;
        let hp: Vec<_> = tasks[..i]
            .iter()
            .map(|h| (h.period, h.execution() + h.suspension, Ticks::ZERO))
            .collect();
        let bound = tda(base, task.deadline, &hp);
        out.push(UniVerdict {
            task: i,
            response_bound: bound,
            deadline: task.deadline,
        });
    }
    Ok(out)
}

/// Suspension-as-jitter RTA (tasks in priority order, index 0 highest).
///
/// Interfering tasks contribute only their execution time, with release
/// jitter `J_j = R_j − C_j` (their own bound minus their execution — the
/// classical sound choice; an unschedulable higher-priority task falls
/// back to `J_j = D_j − C_j` saturated at zero).
///
/// # Errors
///
/// See [`oblivious_rta`].
pub fn jitter_rta(tasks: &[FlatSuspendingTask]) -> Result<Vec<UniVerdict>, SuspendError> {
    validate(tasks)?;
    let mut out: Vec<UniVerdict> = Vec::with_capacity(tasks.len());
    for (i, task) in tasks.iter().enumerate() {
        let base = task.execution() + task.suspension;
        let hp: Vec<_> = tasks[..i]
            .iter()
            .enumerate()
            .map(|(j, h)| {
                let rj = out[j].response_bound.unwrap_or(h.deadline);
                (h.period, h.execution(), rj.saturating_sub(h.execution()))
            })
            .collect();
        let bound = tda(base, task.deadline, &hp);
        out.push(UniVerdict {
            task: i,
            response_bound: bound,
            deadline: task.deadline,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(c1: u64, s: u64, c2: u64, p: u64) -> FlatSuspendingTask {
        FlatSuspendingTask {
            c1: Ticks::new(c1),
            suspension: Ticks::new(s),
            c2: Ticks::new(c2),
            period: Ticks::new(p),
            deadline: Ticks::new(p),
        }
    }

    #[test]
    fn top_priority_is_isolated() {
        let v = oblivious_rta(&[t(3, 2, 1, 20)]).unwrap();
        assert_eq!(v[0].response_bound, Some(Ticks::new(6)));
        let v = jitter_rta(&[t(3, 2, 1, 20)]).unwrap();
        assert_eq!(v[0].response_bound, Some(Ticks::new(6)));
    }

    #[test]
    fn jitter_no_worse_than_oblivious() {
        // Jitter analysis discounts hp suspensions from the interference.
        let sets: &[&[FlatSuspendingTask]] = &[
            &[t(2, 3, 1, 12), t(4, 2, 2, 30)],
            &[t(1, 5, 1, 10), t(2, 1, 2, 25), t(3, 3, 1, 60)],
        ];
        for set in sets {
            let ob = oblivious_rta(set).unwrap();
            let ji = jitter_rta(set).unwrap();
            for (o, j) in ob.iter().zip(&ji) {
                match (o.response_bound, j.response_bound) {
                    (Some(ro), Some(rj)) => assert!(rj <= ro, "jitter {rj} > oblivious {ro}"),
                    (None, Some(_)) => {} // jitter accepts more: fine
                    (Some(_), None) => panic!("jitter rejected what oblivious accepted"),
                    (None, None) => {}
                }
            }
        }
    }

    #[test]
    fn jitter_interference_is_visible() {
        // hp task with big suspension: oblivious charges 8/period, jitter
        // charges only 3 but with jitter 5.
        let set = [t(2, 6, 1, 15), t(5, 0, 0, 40)];
        let ob = oblivious_rta(&set).unwrap();
        let ji = jitter_rta(&set).unwrap();
        // oblivious: 5 + ⌈R/15⌉·9 → 14. jitter: 5 + ⌈(R+6)/15⌉·3 → 8.
        assert_eq!(ob[1].response_bound, Some(Ticks::new(14)));
        assert_eq!(ji[1].response_bound, Some(Ticks::new(8)));
    }

    #[test]
    fn overload_is_rejected() {
        let v = oblivious_rta(&[t(5, 4, 0, 10), t(4, 0, 0, 12)]).unwrap();
        assert!(v[0].is_schedulable());
        assert!(!v[1].is_schedulable());
        assert_eq!(v[1].response_bound, None);
    }

    #[test]
    fn unschedulable_hp_still_interferes_via_deadline_jitter() {
        let v = jitter_rta(&[t(9, 4, 0, 12), t(1, 0, 0, 50)]).unwrap();
        assert!(!v[0].is_schedulable());
        // lp analyzed with J_0 = D_0 − C_0 = 3.
        assert!(v[1].response_bound.is_some());
    }

    #[test]
    fn invalid_tasks_rejected() {
        assert!(oblivious_rta(&[t(1, 0, 0, 0)]).is_err());
        let mut bad = t(1, 0, 0, 10);
        bad.deadline = Ticks::new(12);
        assert!(jitter_rta(&[bad]).is_err());
    }

    #[test]
    fn empty_set_is_empty() {
        assert!(oblivious_rta(&[]).unwrap().is_empty());
        assert!(jitter_rta(&[]).unwrap().is_empty());
    }
}
