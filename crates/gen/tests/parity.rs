//! Builder-first generation parity: every generator must produce a DAG
//! **bitwise identical** to the one the legacy edge-by-edge mutation path
//! produced — same node ids, same WCETs and labels, and the same
//! adjacency *order* in both the successor and predecessor CSR segments
//! (downstream float reductions replay adjacency order, so order is part
//! of the contract, not an implementation detail).
//!
//! The reference implementations below are verbatim copies of the
//! pre-refactor generators, kept alive through the `legacy-mutation`
//! feature of `hetrta-dag` (incremental `Dag::add_node`/`add_edge`, the
//! clone-and-`remove_edge` transitive reduction, and mutation-based dummy
//! terminal normalization).

use hetrta_dag::algo::Reachability;
use hetrta_dag::{Dag, NodeId, Ticks};
use hetrta_gen::layered::{generate_layered, LayeredParams};
use hetrta_gen::openmp::{Program, Stmt};
use hetrta_gen::{generate_nfj, NfjParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Asserts complete structural identity, adjacency order included.
fn assert_same_dag(new: &Dag, legacy: &Dag, what: &str) {
    assert_eq!(new.node_count(), legacy.node_count(), "{what}: node count");
    assert_eq!(new.edge_count(), legacy.edge_count(), "{what}: edge count");
    for v in new.node_ids() {
        assert_eq!(new.wcet(v), legacy.wcet(v), "{what}: wcet of {v}");
        assert_eq!(new.label(v), legacy.label(v), "{what}: label of {v}");
        assert_eq!(
            new.successors(v),
            legacy.successors(v),
            "{what}: successor segment of {v}"
        );
        assert_eq!(
            new.predecessors(v),
            legacy.predecessors(v),
            "{what}: predecessor segment of {v}"
        );
    }
}

/// The pre-refactor transitive reduction: clone, then `remove_edge` every
/// redundant edge.
fn legacy_transitive_reduction(dag: &Dag) -> Dag {
    let reach = Reachability::of(dag).expect("acyclic");
    let mut reduced = dag.clone();
    let edges: Vec<(NodeId, NodeId)> = dag.edges().collect();
    for (u, w) in edges {
        let redundant = dag
            .successors(u)
            .iter()
            .any(|&s| s != w && reach.is_ordered_before(s, w));
        if redundant {
            reduced.remove_edge(u, w).expect("edge exists");
        }
    }
    reduced
}

/// The pre-refactor dummy-terminal normalization: freeze first, then
/// mutate the frozen graph.
fn legacy_add_dummy_terminals(dag: &mut Dag) {
    let sources = dag.sources();
    if sources.len() > 1 {
        let src = dag.add_labeled_node("src", Ticks::ZERO);
        for s in sources {
            dag.add_edge(src, s).expect("fresh source edges are unique");
        }
    }
    let sinks = dag.sinks();
    if sinks.len() > 1 {
        let sink = dag.add_labeled_node("sink", Ticks::ZERO);
        for s in sinks {
            dag.add_edge(s, sink).expect("fresh sink edges are unique");
        }
    }
}

// ---------------------------------------------------------------- NFJ --

/// Verbatim copy of the pre-refactor NFJ sampler (mutating a `Dag`).
fn legacy_nfj_expand<R: Rng + ?Sized>(
    dag: &mut Dag,
    depth: usize,
    params: &NfjParams,
    rng: &mut R,
    c_range: (u64, u64),
) -> (NodeId, NodeId) {
    let wcet = |rng: &mut R| Ticks::new(rng.gen_range(c_range.0..=c_range.1));
    if depth < params.max_depth() && rng.gen_bool(params.p_par()) {
        let fork = dag.add_labeled_node(format!("fork@{depth}"), wcet(rng));
        let join = dag.add_labeled_node(format!("join@{depth}"), wcet(rng));
        let branches = rng.gen_range(2..=params.n_par());
        for _ in 0..branches {
            let (entry, exit) = legacy_nfj_expand(dag, depth + 1, params, rng, c_range);
            dag.add_edge(fork, entry).expect("fresh branch entry");
            dag.add_edge(exit, join).expect("fresh branch exit");
        }
        (fork, join)
    } else {
        let t = dag.add_labeled_node(format!("t@{depth}"), wcet(rng));
        (t, t)
    }
}

/// The pre-refactor `generate_nfj` rejection loop.
fn legacy_generate_nfj<R: Rng + ?Sized>(
    params: &NfjParams,
    rng: &mut R,
    c_range: (u64, u64),
) -> Option<Dag> {
    for _ in 0..1_000 {
        let mut dag = Dag::new();
        legacy_nfj_expand(&mut dag, 0, params, rng, c_range);
        let n = dag.node_count();
        if n >= params.n_min() && n <= params.n_max() {
            return Some(dag);
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn nfj_builder_path_matches_legacy_mutation_path(
        seed: u64,
        n_par in 2usize..8,
        depth in 1usize..5,
        p_pct in 0u32..101,
        n_min in 1usize..8,
    ) {
        // Wide accepted range, but a nontrivial lower bound so the
        // rejection loop (and its shared RNG stream) is exercised too.
        let params = NfjParams::new(n_par, depth, n_min, 100_000)
            .with_p_par(f64::from(p_pct) / 100.0)
            .with_wcet_range(1, 50)
            .with_max_attempts(1_000);
        let new = generate_nfj(&params, &mut StdRng::seed_from_u64(seed));
        let legacy = legacy_generate_nfj(&params, &mut StdRng::seed_from_u64(seed), (1, 50));
        match (new, legacy) {
            (Ok(new), Some(legacy)) => assert_same_dag(&new, &legacy, "nfj"),
            (Err(_), None) => {}
            (new, legacy) => panic!("acceptance diverged: {new:?} vs {legacy:?}"),
        }
    }
}

// ------------------------------------------------------------ layered --

/// Verbatim copy of the pre-refactor layered generator.
fn legacy_generate_layered<R: Rng + ?Sized>(params: &LayeredParams, rng: &mut R) -> Dag {
    let mut dag = Dag::new();
    let mut layers: Vec<Vec<NodeId>> = Vec::with_capacity(params.layers);
    for l in 0..params.layers {
        let width = rng.gen_range(params.width_min..=params.width_max);
        let layer: Vec<NodeId> = (0..width)
            .map(|i| {
                dag.add_labeled_node(
                    format!("l{l}_{i}"),
                    Ticks::new(rng.gen_range(params.c_min..=params.c_max)),
                )
            })
            .collect();
        layers.push(layer);
    }
    for w in layers.windows(2) {
        let (upper, lower) = (&w[0], &w[1]);
        for &b in lower {
            let anchor = upper[rng.gen_range(0..upper.len())];
            let _ = dag.add_edge(anchor, b);
            for &a in upper {
                if a != anchor && rng.gen_bool(params.p_edge) {
                    let _ = dag.add_edge(a, b);
                }
            }
        }
    }
    let reduced = legacy_transitive_reduction(&dag);
    // Pre-refactor normalization: re-encode through incremental mutation,
    // then mutate dummy terminals onto the frozen graph.
    let mut norm = Dag::new();
    for v in reduced.node_ids() {
        norm.add_labeled_node(reduced.label(v).to_owned(), reduced.wcet(v));
    }
    for (f, t) in reduced.edges() {
        norm.add_edge(f, t).expect("reduced edges are valid");
    }
    legacy_add_dummy_terminals(&mut norm);
    norm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn layered_builder_path_matches_legacy_mutation_path(
        seed: u64,
        layers in 1usize..6,
        width_min in 1usize..4,
        extra_width in 0usize..4,
        p_pct in 0u32..101,
    ) {
        let params = LayeredParams {
            layers,
            width_min,
            width_max: width_min + extra_width,
            p_edge: f64::from(p_pct) / 100.0,
            c_min: 1,
            c_max: 100,
        };
        let new = generate_layered(&params, &mut StdRng::seed_from_u64(seed))
            .expect("valid params");
        let legacy = legacy_generate_layered(&params, &mut StdRng::seed_from_u64(seed));
        assert_same_dag(&new, &legacy, "layered");
    }
}

// ------------------------------------------------------------- OpenMP --

/// Verbatim copy of the pre-refactor OpenMP lowering (mutating a `Dag`).
struct LegacyLowering {
    dag: Dag,
    offloaded: Option<NodeId>,
    sync_counter: usize,
}

impl LegacyLowering {
    fn region(&mut self, program: &Program, entry: NodeId) -> NodeId {
        let mut current = entry;
        let mut open: Vec<NodeId> = Vec::new();
        for stmt in program.stmts() {
            match stmt {
                Stmt::Work(label, wcet) => {
                    let v = self.dag.add_labeled_node(label.clone(), Ticks::new(*wcet));
                    self.dag.add_edge(current, v).expect("fresh work edge");
                    current = v;
                }
                Stmt::Spawn(sub) => {
                    let exit = self.region(sub, current);
                    open.push(exit);
                }
                Stmt::Offload(label, wcet) => {
                    assert!(self.offloaded.is_none(), "parity inputs have ≤ 1 offload");
                    let v = self.dag.add_labeled_node(label.clone(), Ticks::new(*wcet));
                    self.dag.add_edge(current, v).expect("fresh offload edge");
                    self.offloaded = Some(v);
                    open.push(v);
                }
                Stmt::Taskwait => {
                    current = self.join(current, &mut open);
                }
            }
        }
        self.join(current, &mut open)
    }

    fn join(&mut self, current: NodeId, open: &mut Vec<NodeId>) -> NodeId {
        if open.is_empty() {
            return current;
        }
        let j = self
            .dag
            .add_labeled_node(format!("taskwait{}", self.sync_counter), Ticks::ZERO);
        self.sync_counter += 1;
        for exit in open.drain(..) {
            if !self.dag.has_edge(exit, j) {
                self.dag.add_edge(exit, j).expect("deduped join edge");
            }
        }
        if !self.dag.has_edge(current, j) {
            self.dag.add_edge(current, j).expect("deduped join edge");
        }
        j
    }
}

fn legacy_lower(program: &Program) -> (Dag, Option<NodeId>) {
    let mut lowering = LegacyLowering {
        dag: Dag::new(),
        offloaded: None,
        sync_counter: 0,
    };
    let source = lowering.dag.add_labeled_node("entry", Ticks::ZERO);
    lowering.region(program, source);
    (
        legacy_transitive_reduction(&lowering.dag),
        lowering.offloaded,
    )
}

/// A random structured program: works, nested spawns (some empty — the
/// case that makes the join dedup matter), taskwaits, at most one
/// offload.
fn random_program<R: Rng + ?Sized>(rng: &mut R, depth: usize, offload_budget: &mut u32) -> Program {
    let len = rng.gen_range(1..=5);
    let mut stmts = Vec::with_capacity(len);
    for i in 0..len {
        let roll = rng.gen_range(0u32..10);
        match roll {
            0..=3 => stmts.push(Stmt::work(format!("w{depth}_{i}"), rng.gen_range(1..=20))),
            4..=6 if depth > 0 => {
                // Empty spawns (~1 in 4) exercise the duplicate-join path.
                let sub = if rng.gen_bool(0.25) {
                    Program::new(Vec::new())
                } else {
                    random_program(rng, depth - 1, offload_budget)
                };
                stmts.push(Stmt::spawn(sub));
            }
            7 if *offload_budget > 0 => {
                *offload_budget -= 1;
                stmts.push(Stmt::offload(
                    format!("off{depth}_{i}"),
                    rng.gen_range(1..=30),
                ));
            }
            _ => stmts.push(Stmt::Taskwait),
        }
    }
    Program::new(stmts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn openmp_builder_path_matches_legacy_mutation_path(seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut offload_budget = 1u32;
        let program = random_program(&mut rng, 3, &mut offload_budget);
        let (legacy_dag, legacy_off) = legacy_lower(&program);
        let lowered = program.lower().expect("structured programs lower");
        assert_same_dag(&lowered.dag, &legacy_dag, "openmp");
        prop_assert_eq!(lowered.offloaded, legacy_off);
    }
}
