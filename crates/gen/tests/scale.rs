//! Large-graph tier smoke tests: every generator must construct a
//! ten-thousand-node DAG in `O(|V| + |E|)` — concretely, in well under a
//! second in release builds (the builder-first pipeline's whole point).
//!
//! `#[ignore]`-gated like the other long-running suites; run with
//! `cargo test -p hetrta-gen --release -- --ignored`.

use std::time::{Duration, Instant};

use hetrta_dag::validate_task_model;
use hetrta_gen::layered::{generate_layered, LayeredParams};
use hetrta_gen::openmp::{Program, Stmt};
use hetrta_gen::{generate_nfj, NfjParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Sub-second in release; debug builds only check that construction
/// terminates in reasonable time at all.
fn assert_fast(what: &str, elapsed: Duration) {
    if cfg!(debug_assertions) {
        assert!(elapsed < Duration::from_secs(30), "{what}: {elapsed:?}");
    } else {
        assert!(
            elapsed < Duration::from_secs(1),
            "{what} took {elapsed:?} — the large-graph tier must construct sub-second"
        );
    }
}

#[test]
#[ignore = "large-graph tier; run with --ignored (release)"]
fn nfj_10k_constructs_subsecond() {
    let params = NfjParams::large_graphs(10_000);
    let mut rng = StdRng::seed_from_u64(0xBE9C_0010);
    let started = Instant::now();
    let dag = generate_nfj(&params, &mut rng).expect("large-graph sample accepted");
    let elapsed = started.elapsed();
    assert!(
        (2_500..=10_000).contains(&dag.node_count()),
        "n = {}",
        dag.node_count()
    );
    // Nested fork-join: every non-terminal contributes 2 edges per branch.
    assert!(dag.edge_count() >= dag.node_count() - 1);
    validate_task_model(&dag).expect("task model holds at 10k nodes");
    assert_fast("nfj 10k", elapsed);
}

#[test]
#[ignore = "large-graph tier; run with --ignored (release)"]
fn layered_10k_constructs_subsecond() {
    let params = LayeredParams::large_graphs(10_000);
    let mut rng = StdRng::seed_from_u64(0xBE9C_0020);
    let started = Instant::now();
    let dag = generate_layered(&params, &mut rng).expect("valid params");
    let elapsed = started.elapsed();
    assert!(
        (8_000..=12_100).contains(&dag.node_count()),
        "n = {}",
        dag.node_count()
    );
    assert!(dag.edge_count() >= dag.node_count() - 2, "connected layers");
    validate_task_model(&dag).expect("task model holds at 10k nodes");
    assert_fast("layered 10k", elapsed);
}

#[test]
#[ignore = "large-graph tier; run with --ignored (release)"]
fn nfj_100k_constructs_subsecond() {
    let params = NfjParams::large_graphs(100_000);
    let mut rng = StdRng::seed_from_u64(0xBE9C_0011);
    let started = Instant::now();
    let dag = generate_nfj(&params, &mut rng).expect("large-graph sample accepted");
    let elapsed = started.elapsed();
    assert!(
        (25_000..=100_000).contains(&dag.node_count()),
        "n = {}",
        dag.node_count()
    );
    validate_task_model(&dag).expect("task model holds at 100k nodes");
    assert_fast("nfj 100k", elapsed);
}

#[test]
#[ignore = "large-graph tier; run with --ignored (release)"]
fn layered_100k_constructs_subsecond() {
    // The tier the closure-free reduction opens: the old bitset-closure
    // path would spend O(V·E/64) time and O(V²/64) ≈ 1.2 GiB here.
    let params = LayeredParams::large_graphs(100_000);
    let mut rng = StdRng::seed_from_u64(0xBE9C_0021);
    let started = Instant::now();
    let dag = generate_layered(&params, &mut rng).expect("valid params");
    let elapsed = started.elapsed();
    assert!(
        (80_000..=121_000).contains(&dag.node_count()),
        "n = {}",
        dag.node_count()
    );
    assert!(dag.edge_count() >= dag.node_count() - 2, "connected layers");
    validate_task_model(&dag).expect("task model holds at 100k nodes");
    assert_fast("layered 100k", elapsed);
}

#[test]
#[ignore = "large-graph tier; run with --ignored (release)"]
fn openmp_10k_statement_program_lowers_subsecond() {
    // ~3,333 iterations of work+spawn+taskwait ≈ 10k statements; the
    // lowering adds a join node per taskwait.
    let mut stmts = Vec::new();
    for i in 0..3_333 {
        stmts.push(Stmt::work(format!("w{i}"), 1 + (i as u64 % 20)));
        stmts.push(Stmt::spawn(Program::new(vec![Stmt::work(
            format!("t{i}"),
            1 + (i as u64 % 13),
        )])));
        stmts.push(Stmt::Taskwait);
    }
    let program = Program::new(stmts);
    let started = Instant::now();
    let lowered = program.lower().expect("structured program lowers");
    let elapsed = started.elapsed();
    assert!(
        lowered.dag.node_count() > 9_000,
        "n = {}",
        lowered.dag.node_count()
    );
    validate_task_model(&lowered.dag).expect("task model holds");
    assert_fast("openmp 10k", elapsed);
}
