//! Offloaded-node selection and `C_off` sizing.
//!
//! The paper (§5.1): "Once a DAG is generated, we randomly select `v_off`
//! among all the nodes. `C_off` is assigned with the interval
//! `[1, C_off^MAX]`, where `C_off^MAX` represents a percentage (up to 60%)
//! of DAG's volume." The evaluation then reports results *per target value
//! of* `C_off/vol(τ)`, which [`CoffSizing::VolumeFraction`] hits exactly.

use hetrta_dag::{Dag, HeteroDagTask, NodeId, Ticks};
use rand::Rng;

use crate::GenError;

/// How the offloaded node `v_off` is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum OffloadSelection {
    /// Uniformly among all nodes except the unique source and sink
    /// (the default used by the experiment harness; see DESIGN.md §3).
    AnyInterior,
    /// Uniformly among *all* nodes, the paper's literal wording.
    Any,
    /// A specific node.
    Node(NodeId),
}

/// How `C_off` (the WCET of `v_off` on the accelerator) is determined.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum CoffSizing {
    /// Keep the WCET the generator assigned to the node.
    Generated,
    /// Set `C_off` so that `C_off / vol(G) ≈ fraction` (`vol` *includes*
    /// `C_off`): `C_off = max(1, round(f/(1−f) · vol_host))`.
    ///
    /// This realizes the x-axis of Figs. 6–9 ("percentage of `C_off` over
    /// `vol(τ)`").
    VolumeFraction(f64),
    /// Draw `C_off` uniformly from `[1, round(fraction · vol_host/(1−fraction))]` —
    /// the paper's literal `[1, C_off^MAX]` interval.
    UniformUpToFraction(f64),
}

/// Selects an offloaded node, resizes its WCET according to `sizing`, and
/// wraps everything into a [`HeteroDagTask`].
///
/// The task's period and deadline are both set to `vol(G)` after resizing —
/// a neutral choice: the response-time experiments of the paper compare
/// bounds and makespans, never absolute deadlines. Use
/// [`HeteroDagTask::new`] directly for explicit timing parameters.
///
/// # Errors
///
/// - [`GenError::InvalidParams`] if a fraction is outside `(0, 1)`, a
///   specific node is unknown, or `AnyInterior` is requested on a DAG with
///   fewer than three nodes;
/// - [`GenError::Structure`] if the resulting task violates the model.
///
/// # Examples
///
/// ```
/// use hetrta_gen::offload::{make_hetero_task, CoffSizing, OffloadSelection};
/// use hetrta_gen::{generate_nfj, NfjParams};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), hetrta_gen::GenError> {
/// let mut rng = StdRng::seed_from_u64(5);
/// let dag = generate_nfj(&NfjParams::small_tasks(), &mut rng)?;
/// let task = make_hetero_task(dag, OffloadSelection::AnyInterior,
///                             CoffSizing::Generated, &mut rng)?;
/// assert!(task.c_off() >= hetrta_gen::Ticks::ONE);
/// # Ok(())
/// # }
/// ```
pub fn make_hetero_task<R: Rng + ?Sized>(
    mut dag: Dag,
    selection: OffloadSelection,
    sizing: CoffSizing,
    rng: &mut R,
) -> Result<HeteroDagTask, GenError> {
    let v_off = select_node(&dag, selection, rng)?;
    let c_off = size_c_off(&dag, v_off, sizing, rng)?;
    dag.set_wcet(v_off, c_off)?;
    dag.set_label(v_off, "v_off")?;
    let vol = dag.volume();
    HeteroDagTask::new(dag, v_off, vol, vol).map_err(GenError::Structure)
}

fn select_node<R: Rng + ?Sized>(
    dag: &Dag,
    selection: OffloadSelection,
    rng: &mut R,
) -> Result<NodeId, GenError> {
    match selection {
        OffloadSelection::Node(v) => {
            if dag.contains_node(v) {
                Ok(v)
            } else {
                Err(GenError::InvalidParams(format!(
                    "offload node {v} not in graph"
                )))
            }
        }
        OffloadSelection::Any => {
            let n = dag.node_count();
            if n == 0 {
                return Err(GenError::InvalidParams(
                    "cannot offload in an empty graph".into(),
                ));
            }
            Ok(NodeId::from_index(rng.gen_range(0..n)))
        }
        OffloadSelection::AnyInterior => {
            let source = dag.source();
            let sink = dag.sink();
            let candidates: Vec<NodeId> = dag
                .node_ids()
                .filter(|&v| Some(v) != source && Some(v) != sink)
                .collect();
            if candidates.is_empty() {
                return Err(GenError::InvalidParams(
                    "no interior node available for offloading".into(),
                ));
            }
            Ok(candidates[rng.gen_range(0..candidates.len())])
        }
    }
}

fn size_c_off<R: Rng + ?Sized>(
    dag: &Dag,
    v_off: NodeId,
    sizing: CoffSizing,
    rng: &mut R,
) -> Result<Ticks, GenError> {
    let host_vol = (dag.volume() - dag.wcet(v_off)).get();
    let target = |fraction: f64| -> Result<u64, GenError> {
        if !(fraction > 0.0 && fraction < 1.0) {
            return Err(GenError::InvalidParams(format!(
                "offload fraction {fraction} not in (0, 1)"
            )));
        }
        let c = (fraction / (1.0 - fraction) * host_vol as f64).round() as u64;
        Ok(c.max(1))
    };
    match sizing {
        CoffSizing::Generated => Ok(dag.wcet(v_off)),
        CoffSizing::VolumeFraction(f) => Ok(Ticks::new(target(f)?)),
        CoffSizing::UniformUpToFraction(f) => {
            let max = target(f)?;
            Ok(Ticks::new(rng.gen_range(1..=max)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_nfj, NfjParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_dag(seed: u64) -> Dag {
        generate_nfj(&NfjParams::small_tasks(), &mut StdRng::seed_from_u64(seed)).unwrap()
    }

    #[test]
    fn volume_fraction_hits_target() {
        let mut rng = StdRng::seed_from_u64(1);
        for f in [0.05, 0.25, 0.5, 0.7] {
            let dag = sample_dag(10);
            let task = make_hetero_task(
                dag,
                OffloadSelection::Any,
                CoffSizing::VolumeFraction(f),
                &mut rng,
            )
            .unwrap();
            let got = task.offload_fraction().to_f64();
            assert!((got - f).abs() < 0.05, "target {f}, got {got}");
        }
    }

    #[test]
    fn uniform_sizing_within_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let dag = sample_dag(11);
        let host_vol = dag.volume().get(); // before resize; upper bound grows slightly
        let task = make_hetero_task(
            dag,
            OffloadSelection::Any,
            CoffSizing::UniformUpToFraction(0.6),
            &mut rng,
        )
        .unwrap();
        let c = task.c_off().get();
        assert!(c >= 1);
        // C_off ≤ 0.6/(1-0.6) · host_vol = 1.5 · host_vol
        assert!(c <= (1.5 * host_vol as f64) as u64 + 1);
    }

    #[test]
    fn generated_sizing_keeps_wcet() {
        let mut rng = StdRng::seed_from_u64(3);
        let dag = sample_dag(12);
        let before: Vec<Ticks> = dag.node_ids().map(|v| dag.wcet(v)).collect();
        let task =
            make_hetero_task(dag, OffloadSelection::Any, CoffSizing::Generated, &mut rng).unwrap();
        assert_eq!(task.c_off(), before[task.offloaded().index()]);
    }

    #[test]
    fn interior_selection_avoids_terminals() {
        let mut rng = StdRng::seed_from_u64(4);
        for seed in 0..20 {
            let dag = sample_dag(seed);
            if dag.node_count() < 3 {
                continue;
            }
            let src = dag.source();
            let sink = dag.sink();
            let task = make_hetero_task(
                dag,
                OffloadSelection::AnyInterior,
                CoffSizing::Generated,
                &mut rng,
            )
            .unwrap();
            assert_ne!(Some(task.offloaded()), src);
            assert_ne!(Some(task.offloaded()), sink);
        }
    }

    #[test]
    fn interior_selection_fails_on_tiny_graph() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut b = hetrta_dag::DagBuilder::new();
        let v1 = b.unlabeled_node(Ticks::ONE);
        let v2 = b.unlabeled_node(Ticks::ONE);
        b.edge(v1, v2).unwrap();
        let dag = b.build().unwrap();
        assert!(matches!(
            make_hetero_task(
                dag,
                OffloadSelection::AnyInterior,
                CoffSizing::Generated,
                &mut rng
            ),
            Err(GenError::InvalidParams(_))
        ));
    }

    #[test]
    fn specific_node_selection() {
        let mut rng = StdRng::seed_from_u64(6);
        let dag = sample_dag(13);
        let v = NodeId::from_index(dag.node_count() / 2);
        let task = make_hetero_task(
            dag,
            OffloadSelection::Node(v),
            CoffSizing::Generated,
            &mut rng,
        )
        .unwrap();
        assert_eq!(task.offloaded(), v);
        assert_eq!(task.dag().label(v), "v_off");
    }

    #[test]
    fn unknown_specific_node_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        let dag = sample_dag(14);
        let bogus = NodeId::from_index(10_000);
        assert!(matches!(
            make_hetero_task(
                dag,
                OffloadSelection::Node(bogus),
                CoffSizing::Generated,
                &mut rng
            ),
            Err(GenError::InvalidParams(_))
        ));
    }

    #[test]
    fn bad_fractions_rejected() {
        let mut rng = StdRng::seed_from_u64(8);
        for f in [0.0, 1.0, -0.3, 1.5, f64::NAN] {
            let dag = sample_dag(15);
            assert!(
                matches!(
                    make_hetero_task(
                        dag,
                        OffloadSelection::Any,
                        CoffSizing::VolumeFraction(f),
                        &mut rng
                    ),
                    Err(GenError::InvalidParams(_))
                ),
                "fraction {f} should be rejected"
            );
        }
    }

    #[test]
    fn period_and_deadline_default_to_volume() {
        let mut rng = StdRng::seed_from_u64(9);
        let dag = sample_dag(16);
        let task =
            make_hetero_task(dag, OffloadSelection::Any, CoffSizing::Generated, &mut rng).unwrap();
        assert_eq!(task.period(), task.volume());
        assert_eq!(task.deadline(), task.volume());
    }
}
