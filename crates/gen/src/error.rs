//! Generator errors.

use core::fmt;

use hetrta_dag::DagError;

/// Errors produced by the random task generators.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GenError {
    /// A parameter combination is invalid (message explains which).
    InvalidParams(String),
    /// Rejection sampling failed to hit the requested node-count range
    /// within the attempt budget.
    AttemptsExhausted {
        /// Number of DAGs generated and rejected.
        attempts: usize,
    },
    /// The generated structure violated the task model — indicates a bug in
    /// a generator and is surfaced rather than silently retried.
    Structure(DagError),
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::InvalidParams(msg) => write!(f, "invalid generator parameters: {msg}"),
            GenError::AttemptsExhausted { attempts } => {
                write!(f, "node-count range not reached after {attempts} attempts")
            }
            GenError::Structure(e) => write!(f, "generated graph violates the task model: {e}"),
        }
    }
}

impl std::error::Error for GenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GenError::Structure(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DagError> for GenError {
    fn from(e: DagError) -> Self {
        GenError::Structure(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            GenError::InvalidParams("p_par out of range".into()).to_string(),
            "invalid generator parameters: p_par out of range"
        );
        assert_eq!(
            GenError::AttemptsExhausted { attempts: 42 }.to_string(),
            "node-count range not reached after 42 attempts"
        );
    }

    #[test]
    fn source_chains_dag_error() {
        use std::error::Error;
        let e = GenError::from(DagError::Empty);
        assert!(e.source().is_some());
    }
}
