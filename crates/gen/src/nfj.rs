//! Nested fork-join DAG generation (the paper's generator, §5.1).

use hetrta_dag::{Dag, DagBuilder, NodeId, Ticks};
use rand::Rng;

use crate::GenError;

/// Parameters of the nested fork-join generator.
///
/// Terminology follows the paper:
///
/// * `p_par` — probability that a node expands into a parallel sub-DAG
///   (the complement `1 − p_par` yields a terminal node);
/// * `n_par` — maximum number of branches of any parallel sub-DAG
///   (each sub-DAG draws its branch count uniformly from `[2, n_par]`);
/// * `max_depth` — maximum recursion depth; it "also determines the longest
///   possible path of the DAG", which is `2·max_depth + 1` nodes (every
///   level adds a fork and a join around its branches);
/// * `n_min ..= n_max` — accepted node-count range, enforced by rejection
///   sampling;
/// * `c_min ..= c_max` — uniform WCET range of every node (paper: `[1, 100]`).
///
/// Construct via [`NfjParams::new`] or the paper presets, then customize
/// with the `with_*` methods:
///
/// ```
/// use hetrta_gen::NfjParams;
///
/// let p = NfjParams::large_tasks().with_node_range(250, 400);
/// assert_eq!(p.n_min(), 250);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NfjParams {
    p_par: f64,
    n_par: usize,
    max_depth: usize,
    n_min: usize,
    n_max: usize,
    c_min: u64,
    c_max: u64,
    max_attempts: usize,
}

impl NfjParams {
    /// Creates parameters with the paper's defaults for everything not
    /// explicitly given: `p_par = 0.5`, WCETs in `[1, 100]`, 100 000
    /// rejection attempts.
    #[must_use]
    pub fn new(n_par: usize, max_depth: usize, n_min: usize, n_max: usize) -> Self {
        NfjParams {
            p_par: 0.5,
            n_par,
            max_depth,
            n_min,
            n_max,
            c_min: 1,
            c_max: 100,
            max_attempts: 100_000,
        }
    }

    /// The paper's *small tasks*: `n ≤ 100`, `n_par = 6`, `max_depth = 3`
    /// (longest possible path: 7 nodes). Used for the ILP-comparison
    /// experiment (Fig. 7).
    #[must_use]
    pub fn small_tasks() -> Self {
        NfjParams::new(6, 3, 3, 100)
    }

    /// The paper's *large tasks*: `n ∈ [100, 400]`, `n_par = 8`,
    /// `max_depth = 5` (longest possible path: 11 nodes). Used for
    /// Figs. 6, 8 and 9.
    #[must_use]
    pub fn large_tasks() -> Self {
        NfjParams::new(8, 5, 100, 400)
    }

    /// The *large-graph* tier (beyond the paper's sizes): nested
    /// fork-join graphs of up to `n_max` nodes, accepted from
    /// `n_max / 4` upward.
    ///
    /// The recursion depth is derived from the target size (the NFJ
    /// process grows geometrically with depth, roughly ×5 per level at
    /// `n_par = 8`), and the expansion probability is raised to `0.85` so
    /// degenerate single-node samples are rare. Builder-first
    /// construction freezes each accepted sample in `O(|V| + |E|)`, which
    /// is what makes this tier practical: `hetrta engine sweep
    /// --n-max 10000` sweeps ten-thousand-node DAGs.
    ///
    /// # Examples
    ///
    /// ```
    /// use hetrta_gen::NfjParams;
    ///
    /// let p = NfjParams::large_graphs(10_000);
    /// assert_eq!(p.n_min(), 2_500);
    /// assert_eq!(p.n_max(), 10_000);
    /// ```
    #[must_use]
    pub fn large_graphs(n_max: usize) -> Self {
        // depth ≈ log₅(0.75·n_max): lands the typical sample size inside
        // the [n_max/4, n_max] acceptance window (tuned empirically).
        let target = (0.75 * n_max.max(4) as f64).ln() / 5f64.ln();
        let depth = (target.round() as usize).max(3);
        NfjParams::new(8, depth, (n_max / 4).max(1), n_max)
            .with_p_par(0.85)
            .with_max_attempts(1_000)
    }

    /// Sets the probability of parallel expansion.
    #[must_use]
    pub fn with_p_par(mut self, p_par: f64) -> Self {
        self.p_par = p_par;
        self
    }

    /// Sets the accepted node-count range.
    #[must_use]
    pub fn with_node_range(mut self, n_min: usize, n_max: usize) -> Self {
        self.n_min = n_min;
        self.n_max = n_max;
        self
    }

    /// Sets the WCET range `[c_min, c_max]`.
    #[must_use]
    pub fn with_wcet_range(mut self, c_min: u64, c_max: u64) -> Self {
        self.c_min = c_min;
        self.c_max = c_max;
        self
    }

    /// Sets the rejection-sampling attempt budget.
    #[must_use]
    pub fn with_max_attempts(mut self, attempts: usize) -> Self {
        self.max_attempts = attempts;
        self
    }

    /// Probability of parallel expansion.
    #[must_use]
    pub fn p_par(&self) -> f64 {
        self.p_par
    }

    /// Maximum branches per parallel sub-DAG.
    #[must_use]
    pub fn n_par(&self) -> usize {
        self.n_par
    }

    /// Maximum recursion depth.
    #[must_use]
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Minimum accepted node count.
    #[must_use]
    pub fn n_min(&self) -> usize {
        self.n_min
    }

    /// Maximum accepted node count.
    #[must_use]
    pub fn n_max(&self) -> usize {
        self.n_max
    }

    /// Minimum per-node WCET (ticks).
    #[must_use]
    pub fn c_min(&self) -> u64 {
        self.c_min
    }

    /// Maximum per-node WCET (ticks).
    #[must_use]
    pub fn c_max(&self) -> u64 {
        self.c_max
    }

    /// Rejection-sampling attempt budget.
    #[must_use]
    pub fn max_attempts(&self) -> usize {
        self.max_attempts
    }

    /// Longest possible path (in nodes) any generated DAG can have:
    /// `2·max_depth + 1`.
    #[must_use]
    pub fn longest_possible_path(&self) -> usize {
        2 * self.max_depth + 1
    }

    fn validate(&self) -> Result<(), GenError> {
        if !(0.0..=1.0).contains(&self.p_par) {
            return Err(GenError::InvalidParams(format!(
                "p_par = {} not in [0, 1]",
                self.p_par
            )));
        }
        if self.n_par < 2 {
            return Err(GenError::InvalidParams(format!(
                "n_par = {} must be ≥ 2",
                self.n_par
            )));
        }
        if self.n_min == 0 || self.n_min > self.n_max {
            return Err(GenError::InvalidParams(format!(
                "node range [{}, {}] is empty or zero",
                self.n_min, self.n_max
            )));
        }
        if self.c_min == 0 || self.c_min > self.c_max {
            return Err(GenError::InvalidParams(format!(
                "WCET range [{}, {}] is empty or contains zero",
                self.c_min, self.c_max
            )));
        }
        if self.max_attempts == 0 {
            return Err(GenError::InvalidParams("max_attempts must be ≥ 1".into()));
        }
        Ok(())
    }
}

/// Generates one random nested fork-join DAG according to `params`.
///
/// The recursive expansion starts from a single node. A node at depth
/// `d < max_depth` becomes, with probability `p_par`, a parallel sub-DAG:
/// a fork node, `b ∈ [2, n_par]` recursively expanded branches and a join
/// node. Otherwise it becomes a terminal node. Every materialized node draws
/// its WCET uniformly from `[c_min, c_max]`.
///
/// By construction the result is acyclic, has exactly one source and one
/// sink, and contains no transitive edges — it satisfies the paper's task
/// model without post-processing.
///
/// # Errors
///
/// - [`GenError::InvalidParams`] for inconsistent parameters;
/// - [`GenError::AttemptsExhausted`] if no sample hits `[n_min, n_max]`
///   within the attempt budget.
///
/// # Examples
///
/// ```
/// use hetrta_gen::{generate_nfj, NfjParams};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let dag = generate_nfj(&NfjParams::small_tasks(), &mut rng)?;
/// assert!(dag.node_count() >= 3 && dag.node_count() <= 100);
/// # Ok::<(), hetrta_gen::GenError>(())
/// ```
pub fn generate_nfj<R: Rng + ?Sized>(params: &NfjParams, rng: &mut R) -> Result<Dag, GenError> {
    params.validate()?;
    for attempt in 1..=params.max_attempts {
        // Accumulate the sample in the builder's nested adjacency and
        // only freeze to CSR when the rejection sampler accepts it — one
        // O(|V| + |E|) pass per accepted graph, none per rejected one.
        let mut b = DagBuilder::new();
        expand(&mut b, 0, params, rng);
        let n = b.node_count();
        if n >= params.n_min && n <= params.n_max {
            // Valid by construction (acyclic, single terminals, no
            // transitive edges), so the unvalidated freeze suffices.
            let dag = b.freeze();
            debug_assert!(hetrta_dag::validate_task_model(&dag).is_ok());
            return Ok(dag);
        }
        if attempt == params.max_attempts {
            return Err(GenError::AttemptsExhausted { attempts: attempt });
        }
    }
    unreachable!("loop returns or errors on the last attempt")
}

/// Expands one abstract node at `depth`; returns its (entry, exit) node ids.
fn expand<R: Rng + ?Sized>(
    b: &mut DagBuilder,
    depth: usize,
    params: &NfjParams,
    rng: &mut R,
) -> (NodeId, NodeId) {
    let wcet = |rng: &mut R| Ticks::new(rng.gen_range(params.c_min..=params.c_max));
    if depth < params.max_depth && rng.gen_bool(params.p_par) {
        let fork = b.node(format!("fork@{depth}"), wcet(rng));
        let join = b.node(format!("join@{depth}"), wcet(rng));
        let branches = rng.gen_range(2..=params.n_par);
        for _ in 0..branches {
            let (entry, exit) = expand(b, depth + 1, params, rng);
            b.edge(fork, entry).expect("fresh branch entry");
            b.edge(exit, join).expect("fresh branch exit");
        }
        (fork, join)
    } else {
        let t = b.node(format!("t@{depth}"), wcet(rng));
        (t, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetrta_dag::algo::{transitive, CriticalPath};
    use hetrta_dag::validate_task_model;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn presets_match_paper() {
        let small = NfjParams::small_tasks();
        assert_eq!(small.n_par(), 6);
        assert_eq!(small.max_depth(), 3);
        assert_eq!(small.longest_possible_path(), 7);
        let large = NfjParams::large_tasks();
        assert_eq!(large.n_par(), 8);
        assert_eq!(large.max_depth(), 5);
        assert_eq!(large.longest_possible_path(), 11);
        assert_eq!(large.p_par(), 0.5);
    }

    #[test]
    fn generated_dags_satisfy_task_model() {
        let mut rng = StdRng::seed_from_u64(42);
        let params = NfjParams::small_tasks();
        for _ in 0..50 {
            let dag = generate_nfj(&params, &mut rng).unwrap();
            validate_task_model(&dag).expect("model holds");
            assert!(transitive::is_transitively_reduced(&dag).unwrap());
        }
    }

    #[test]
    fn node_counts_respect_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let params = NfjParams::large_tasks().with_node_range(100, 250);
        for _ in 0..10 {
            let dag = generate_nfj(&params, &mut rng).unwrap();
            assert!(
                (100..=250).contains(&dag.node_count()),
                "n = {}",
                dag.node_count()
            );
        }
    }

    #[test]
    fn longest_path_bounded_by_depth() {
        let mut rng = StdRng::seed_from_u64(3);
        let params = NfjParams::small_tasks().with_wcet_range(1, 1);
        for _ in 0..30 {
            let dag = generate_nfj(&params, &mut rng).unwrap();
            // WCETs all 1, so len(G) equals the hop count of the longest path.
            let len = CriticalPath::of(&dag).length().get() as usize;
            assert!(len <= params.longest_possible_path());
        }
    }

    #[test]
    fn wcets_in_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let params = NfjParams::small_tasks().with_wcet_range(5, 9);
        let dag = generate_nfj(&params, &mut rng).unwrap();
        for v in dag.node_ids() {
            let c = dag.wcet(v).get();
            assert!((5..=9).contains(&c));
        }
    }

    #[test]
    fn p_par_zero_yields_single_node() {
        let mut rng = StdRng::seed_from_u64(1);
        let params = NfjParams::new(4, 3, 1, 1).with_p_par(0.0);
        let dag = generate_nfj(&params, &mut rng).unwrap();
        assert_eq!(dag.node_count(), 1);
    }

    #[test]
    fn p_par_one_always_expands_to_full_depth() {
        let mut rng = StdRng::seed_from_u64(1);
        // With p_par = 1 every node expands until max_depth, so the DAG has
        // at least 2·max_depth + 1 nodes on its longest chain.
        let params = NfjParams::new(2, 2, 1, 1000)
            .with_p_par(1.0)
            .with_wcet_range(1, 1);
        let dag = generate_nfj(&params, &mut rng).unwrap();
        let len = CriticalPath::of(&dag).length().get() as usize;
        assert_eq!(len, params.longest_possible_path());
    }

    #[test]
    fn unreachable_range_exhausts_attempts() {
        let mut rng = StdRng::seed_from_u64(1);
        // Node counts of the NFJ process are odd at p_par=0 (exactly 1);
        // requiring n = 2 can never succeed.
        let params = NfjParams::new(4, 2, 2, 2)
            .with_p_par(0.0)
            .with_max_attempts(10);
        assert_eq!(
            generate_nfj(&params, &mut rng).unwrap_err(),
            GenError::AttemptsExhausted { attempts: 10 }
        );
    }

    #[test]
    fn invalid_params_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let bad_p = NfjParams::small_tasks().with_p_par(1.5);
        assert!(matches!(
            generate_nfj(&bad_p, &mut rng),
            Err(GenError::InvalidParams(_))
        ));
        let bad_range = NfjParams::small_tasks().with_node_range(10, 5);
        assert!(matches!(
            generate_nfj(&bad_range, &mut rng),
            Err(GenError::InvalidParams(_))
        ));
        let bad_wcet = NfjParams::small_tasks().with_wcet_range(0, 10);
        assert!(matches!(
            generate_nfj(&bad_wcet, &mut rng),
            Err(GenError::InvalidParams(_))
        ));
        let bad_npar = NfjParams::new(1, 3, 1, 10);
        assert!(matches!(
            generate_nfj(&bad_npar, &mut rng),
            Err(GenError::InvalidParams(_))
        ));
    }

    #[test]
    fn determinism_per_seed() {
        let params = NfjParams::small_tasks();
        let d1 = generate_nfj(&params, &mut StdRng::seed_from_u64(99)).unwrap();
        let d2 = generate_nfj(&params, &mut StdRng::seed_from_u64(99)).unwrap();
        assert_eq!(d1.node_count(), d2.node_count());
        assert_eq!(d1.edge_count(), d2.edge_count());
        assert_eq!(d1.volume(), d2.volume());
    }
}
