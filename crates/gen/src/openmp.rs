//! OpenMP-style task programs → DAG lowering.
//!
//! The paper's system model "resembles the OpenMP parallel programming
//! model" (§2): `#pragma omp task` spawns deferred work, `#pragma omp
//! taskwait` joins it, and `#pragma omp target` offloads a region to the
//! accelerator — the citation \[22\] (Vargas et al., ASP-DAC 2016) describes
//! deriving the task DAG from such programs. This module implements that
//! front end for a structured subset:
//!
//! * [`Stmt::Work`] — sequential work executed by the encountering thread;
//! * [`Stmt::Spawn`] — an `omp task` region (recursively a [`Program`]),
//!   running concurrently with the spawner until joined;
//! * [`Stmt::Offload`] — an `omp target` region executing on the
//!   accelerator (at most one per program, per the paper's model);
//! * [`Stmt::Taskwait`] — joins every task spawned so far in this region.
//!
//! Lowering produces a task-model-conformant DAG (single source/sink, no
//! transitive edges — redundant precedence introduced by joins is removed
//! with a transitive reduction) plus the offloaded node, ready for
//! [`HeteroDagTask`](hetrta_dag::HeteroDagTask) and the analysis.
//!
//! # Example
//!
//! ```
//! use hetrta_gen::openmp::{Program, Stmt};
//! use hetrta_dag::Ticks;
//!
//! // work(2); #pragma omp target {gpu(20)};
//! // #pragma omp task {cpu(9)}; work(3); #pragma omp taskwait; work(1);
//! let program = Program::new(vec![
//!     Stmt::work("prep", 2),
//!     Stmt::offload("gpu_kernel", 20),
//!     Stmt::spawn(Program::new(vec![Stmt::work("cpu_branch", 9)])),
//!     Stmt::work("local", 3),
//!     Stmt::Taskwait,
//!     Stmt::work("post", 1),
//! ]);
//! let lowered = program.lower()?;
//! assert_eq!(lowered.dag.volume(), Ticks::new(35));
//! assert!(lowered.offloaded.is_some());
//! # Ok::<(), hetrta_gen::GenError>(())
//! ```

use hetrta_dag::algo::transitive;
use hetrta_dag::{Dag, DagBuilder, NodeId, Ticks};

use crate::GenError;

/// One statement of a structured OpenMP-like tasking program.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// Sequential work by the encountering thread: `(label, wcet)`.
    Work(String, u64),
    /// `#pragma omp task { … }`: the nested program runs concurrently with
    /// the remainder of the current region until a [`Stmt::Taskwait`] (or
    /// the region end) joins it.
    Spawn(Program),
    /// `#pragma omp target { … }`: asynchronous offload to the accelerator
    /// (joined like a task). At most one per whole program.
    Offload(String, u64),
    /// `#pragma omp taskwait`: wait for all tasks spawned so far in this
    /// region.
    Taskwait,
}

impl Stmt {
    /// Convenience constructor for [`Stmt::Work`].
    #[must_use]
    pub fn work(label: impl Into<String>, wcet: u64) -> Self {
        Stmt::Work(label.into(), wcet)
    }

    /// Convenience constructor for [`Stmt::Spawn`].
    #[must_use]
    pub fn spawn(program: Program) -> Self {
        Stmt::Spawn(program)
    }

    /// Convenience constructor for [`Stmt::Offload`].
    #[must_use]
    pub fn offload(label: impl Into<String>, wcet: u64) -> Self {
        Stmt::Offload(label.into(), wcet)
    }
}

/// A structured sequence of statements (one task region).
#[derive(Debug, Clone, Default)]
pub struct Program(Vec<Stmt>);

/// The result of lowering a [`Program`].
#[derive(Debug, Clone)]
pub struct LoweredProgram {
    /// The derived DAG (validated against the task model).
    pub dag: Dag,
    /// The node of the `Offload` statement, if the program had one.
    pub offloaded: Option<NodeId>,
}

impl Program {
    /// Creates a program from its statements.
    #[must_use]
    pub fn new(stmts: Vec<Stmt>) -> Self {
        Program(stmts)
    }

    /// The statements.
    #[must_use]
    pub fn stmts(&self) -> &[Stmt] {
        &self.0
    }

    /// Lowers the program to a DAG per the OpenMP tasking semantics
    /// described in the module docs.
    ///
    /// # Errors
    ///
    /// - [`GenError::InvalidParams`] if the program is empty or contains
    ///   more than one `Offload` (the paper's model has a single `v_off`);
    /// - [`GenError::Structure`] if lowering produced an invalid graph
    ///   (internal bug, surfaced rather than hidden).
    pub fn lower(&self) -> Result<LoweredProgram, GenError> {
        if self.0.is_empty() {
            return Err(GenError::InvalidParams("empty program".into()));
        }
        let mut builder = Lowering {
            b: DagBuilder::new(),
            offloaded: None,
            sync_counter: 0,
        };
        let source = builder.b.node("entry", Ticks::ZERO);
        // region() joins every spawned task into its returned exit node, so
        // the graph ends in a single sink.
        builder.region(self, source)?;
        // Freeze the accumulated structure once (O(|V| + |E|)), then
        // remove the redundant precedence introduced by join fan-ins.
        let reduced = transitive::transitive_reduction(&builder.b.freeze())?;
        hetrta_dag::validate_task_model(&reduced)?;
        Ok(LoweredProgram {
            dag: reduced,
            offloaded: builder.offloaded,
        })
    }
}

struct Lowering {
    b: DagBuilder,
    offloaded: Option<NodeId>,
    sync_counter: usize,
}

impl Lowering {
    /// Lowers one region starting after `entry`; returns the node that
    /// represents the region's completion (all statements + spawned tasks
    /// joined).
    fn region(&mut self, program: &Program, entry: NodeId) -> Result<NodeId, GenError> {
        let mut current = entry; // encountering-thread chain
        let mut open: Vec<NodeId> = Vec::new(); // un-joined task/offload exits
        for stmt in &program.0 {
            match stmt {
                Stmt::Work(label, wcet) => {
                    let v = self.b.node(label.clone(), Ticks::new(*wcet));
                    self.b.edge(current, v)?;
                    current = v;
                }
                Stmt::Spawn(sub) => {
                    let exit = self.region(sub, current)?;
                    open.push(exit);
                }
                Stmt::Offload(label, wcet) => {
                    if self.offloaded.is_some() {
                        return Err(GenError::InvalidParams(
                            "the task model supports a single offloaded region".into(),
                        ));
                    }
                    let v = self.b.node(label.clone(), Ticks::new(*wcet));
                    self.b.edge(current, v)?;
                    self.offloaded = Some(v);
                    open.push(v);
                }
                Stmt::Taskwait => {
                    current = self.join(current, &mut open)?;
                }
            }
        }
        self.join(current, &mut open)
    }

    /// Joins `current` with all `open` exits into a fresh zero-WCET node
    /// (or returns `current` unchanged when nothing is open).
    fn join(&mut self, current: NodeId, open: &mut Vec<NodeId>) -> Result<NodeId, GenError> {
        if open.is_empty() {
            return Ok(current);
        }
        let j = self
            .b
            .node(format!("taskwait{}", self.sync_counter), Ticks::ZERO);
        self.sync_counter += 1;
        for exit in open.drain(..) {
            // `open` can hold the same exit twice (a spawn of an empty
            // region returns its entry), and `current` may equal an open
            // exit — dedup against the accumulated adjacency.
            if !self.b.has_edge(exit, j) {
                self.b.edge(exit, j)?;
            }
        }
        if !self.b.has_edge(current, j) {
            self.b.edge(current, j)?;
        }
        Ok(j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetrta_dag::algo::{CriticalPath, Reachability};
    use hetrta_dag::HeteroDagTask;

    fn paper_style_program() -> Program {
        Program::new(vec![
            Stmt::work("prep", 2),
            Stmt::offload("gpu", 20),
            Stmt::spawn(Program::new(vec![Stmt::work("cpu_a", 9)])),
            Stmt::spawn(Program::new(vec![Stmt::work("cpu_b", 7)])),
            Stmt::work("local", 3),
            Stmt::Taskwait,
            Stmt::work("post", 1),
        ])
    }

    #[test]
    fn lowering_produces_valid_model() {
        let lowered = paper_style_program().lower().unwrap();
        hetrta_dag::validate_task_model(&lowered.dag).unwrap();
        assert!(lowered.offloaded.is_some());
        assert_eq!(lowered.dag.volume(), Ticks::new(42));
    }

    #[test]
    fn spawned_tasks_run_parallel_to_spawner() {
        let lowered = paper_style_program().lower().unwrap();
        let dag = &lowered.dag;
        let find = |label: &str| dag.node_ids().find(|&v| dag.label(v) == label).unwrap();
        let reach = Reachability::of(dag).unwrap();
        // cpu_a ∥ local, cpu_a ∥ gpu, cpu_a ∥ cpu_b
        assert!(reach.are_parallel(find("cpu_a"), find("local")));
        assert!(reach.are_parallel(find("cpu_a"), find("gpu")));
        assert!(reach.are_parallel(find("cpu_a"), find("cpu_b")));
        // but everything precedes post
        for label in ["cpu_a", "cpu_b", "gpu", "local", "prep"] {
            assert!(
                reach.is_ordered_before(find(label), find("post")),
                "{label} must precede post"
            );
        }
    }

    #[test]
    fn taskwait_orders_subsequent_work() {
        // spawn; taskwait; spawn — the second spawn must come after the
        // first task completes.
        let p = Program::new(vec![
            Stmt::spawn(Program::new(vec![Stmt::work("t1", 5)])),
            Stmt::Taskwait,
            Stmt::spawn(Program::new(vec![Stmt::work("t2", 5)])),
            Stmt::work("w", 1),
        ]);
        let lowered = p.lower().unwrap();
        let dag = &lowered.dag;
        let find = |label: &str| dag.node_ids().find(|&v| dag.label(v) == label).unwrap();
        let reach = Reachability::of(dag).unwrap();
        assert!(reach.is_ordered_before(find("t1"), find("t2")));
        assert!(reach.are_parallel(find("t2"), find("w")));
    }

    #[test]
    fn critical_path_reflects_longest_branch() {
        let lowered = paper_style_program().lower().unwrap();
        // chain: prep(2) → gpu(20) → join → post(1) = 23
        assert_eq!(CriticalPath::of(&lowered.dag).length(), Ticks::new(23));
    }

    #[test]
    fn nested_spawns() {
        let p = Program::new(vec![
            Stmt::work("a", 1),
            Stmt::spawn(Program::new(vec![
                Stmt::work("b", 2),
                Stmt::spawn(Program::new(vec![Stmt::work("c", 3)])),
                Stmt::work("d", 4),
            ])),
            Stmt::work("e", 5),
        ]);
        let lowered = p.lower().unwrap();
        let dag = &lowered.dag;
        hetrta_dag::validate_task_model(dag).unwrap();
        let find = |label: &str| dag.node_ids().find(|&v| dag.label(v) == label).unwrap();
        let reach = Reachability::of(dag).unwrap();
        // c runs parallel to d (spawned inside), both after b
        assert!(reach.are_parallel(find("c"), find("d")));
        assert!(reach.is_ordered_before(find("b"), find("c")));
        // e parallel to the whole inner task
        assert!(reach.are_parallel(find("e"), find("c")));
    }

    #[test]
    fn two_offloads_rejected() {
        let p = Program::new(vec![Stmt::offload("g1", 5), Stmt::offload("g2", 5)]);
        assert!(matches!(p.lower(), Err(GenError::InvalidParams(_))));
    }

    #[test]
    fn empty_program_rejected() {
        assert!(matches!(
            Program::default().lower(),
            Err(GenError::InvalidParams(_))
        ));
    }

    #[test]
    fn lowered_program_becomes_analyzable_task() {
        let lowered = paper_style_program().lower().unwrap();
        let vol = lowered.dag.volume();
        let task = HeteroDagTask::new(lowered.dag, lowered.offloaded.unwrap(), vol, vol).unwrap();
        assert_eq!(task.c_off(), Ticks::new(20));
    }

    #[test]
    fn work_only_program_is_a_chain() {
        let p = Program::new(vec![
            Stmt::work("a", 1),
            Stmt::work("b", 2),
            Stmt::work("c", 3),
        ]);
        let lowered = p.lower().unwrap();
        assert_eq!(CriticalPath::of(&lowered.dag).length(), Ticks::new(6));
        assert_eq!(lowered.dag.volume(), Ticks::new(6));
        assert!(lowered.offloaded.is_none());
    }
}
