//! Batch generation for experiment sweeps.
//!
//! Every figure of the paper's evaluation sweeps the offload fraction
//! `C_off / vol(τ)` and, per sweep point, averages over a batch of randomly
//! generated DAGs (100 in the paper). This module packages that pattern.

use hetrta_dag::HeteroDagTask;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::offload::{make_hetero_task, CoffSizing, OffloadSelection};
use crate::{generate_nfj, GenError, NfjParams};

/// A reproducible batch specification: generator parameters, batch size and
/// a base seed.
///
/// Batches are deterministic: task `i` of the batch for fraction `f` is
/// produced from seed `base_seed ⊕ hash(i, f)`, so re-running an experiment
/// (or running sweep points in parallel) yields identical tasks.
#[derive(Debug, Clone)]
pub struct BatchSpec {
    /// Generator parameters for the DAG structure.
    pub params: NfjParams,
    /// Tasks per sweep point (paper: 100).
    pub tasks_per_point: usize,
    /// Base RNG seed.
    pub base_seed: u64,
    /// How the offloaded node is selected.
    pub selection: OffloadSelection,
}

impl BatchSpec {
    /// Creates a batch specification with `AnyInterior` selection.
    #[must_use]
    pub fn new(params: NfjParams, tasks_per_point: usize, base_seed: u64) -> Self {
        BatchSpec {
            params,
            tasks_per_point,
            base_seed,
            selection: OffloadSelection::AnyInterior,
        }
    }

    /// Generates the batch of heterogeneous tasks for one sweep point.
    ///
    /// `fraction` is the target `C_off / vol(τ)` and must lie in `(0, 1)`.
    ///
    /// # Errors
    ///
    /// Propagates generator errors ([`GenError`]).
    pub fn tasks_at_fraction(&self, fraction: f64) -> Result<Vec<HeteroDagTask>, GenError> {
        (0..self.tasks_per_point)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(self.seed_for(i, fraction));
                let dag = generate_nfj(&self.params, &mut rng)?;
                make_hetero_task(
                    dag,
                    self.selection,
                    CoffSizing::VolumeFraction(fraction),
                    &mut rng,
                )
            })
            .collect()
    }

    /// Generates one task of the batch (used by parallel runners).
    ///
    /// # Errors
    ///
    /// Propagates generator errors ([`GenError`]).
    pub fn task(&self, index: usize, fraction: f64) -> Result<HeteroDagTask, GenError> {
        let mut rng = StdRng::seed_from_u64(self.seed_for(index, fraction));
        let dag = generate_nfj(&self.params, &mut rng)?;
        make_hetero_task(
            dag,
            self.selection,
            CoffSizing::VolumeFraction(fraction),
            &mut rng,
        )
    }

    fn seed_for(&self, index: usize, fraction: f64) -> u64 {
        // FNV-1a over (index, fraction bits) for decorrelated, reproducible
        // per-task seeds.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.base_seed;
        for byte in (index as u64)
            .to_le_bytes()
            .into_iter()
            .chain(fraction.to_bits().to_le_bytes())
        {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// The offload-fraction sweep used by Figs. 6 and 9 (≈1% … 70%).
#[must_use]
pub fn fraction_sweep_wide() -> Vec<f64> {
    vec![
        0.01, 0.02, 0.04, 0.06, 0.08, 0.11, 0.14, 0.18, 0.22, 0.28, 0.34, 0.42, 0.50, 0.60, 0.70,
    ]
}

/// The offload-fraction sweep used by Figs. 7 and 8 (0.12% … 50%).
#[must_use]
pub fn fraction_sweep_fine() -> Vec<f64> {
    vec![
        0.0012, 0.005, 0.01, 0.02, 0.035, 0.05, 0.08, 0.11, 0.15, 0.20, 0.25, 0.32, 0.40, 0.50,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> BatchSpec {
        BatchSpec::new(NfjParams::small_tasks(), 5, 1234)
    }

    #[test]
    fn batch_has_requested_size() {
        let tasks = spec().tasks_at_fraction(0.2).unwrap();
        assert_eq!(tasks.len(), 5);
    }

    #[test]
    fn batches_are_reproducible() {
        let a = spec().tasks_at_fraction(0.2).unwrap();
        let b = spec().tasks_at_fraction(0.2).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.volume(), y.volume());
            assert_eq!(x.offloaded(), y.offloaded());
            assert_eq!(x.c_off(), y.c_off());
        }
    }

    #[test]
    fn single_task_matches_batch_entry() {
        let batch = spec().tasks_at_fraction(0.3).unwrap();
        let solo = spec().task(2, 0.3).unwrap();
        assert_eq!(batch[2].volume(), solo.volume());
        assert_eq!(batch[2].offloaded(), solo.offloaded());
    }

    #[test]
    fn different_fractions_decorrelate_structure() {
        // Not a strict requirement, but the hash should at least vary seeds.
        let s = spec();
        assert_ne!(s.seed_for(0, 0.1), s.seed_for(0, 0.2));
        assert_ne!(s.seed_for(0, 0.1), s.seed_for(1, 0.1));
        assert_ne!(
            BatchSpec::new(NfjParams::small_tasks(), 5, 1).seed_for(0, 0.1),
            BatchSpec::new(NfjParams::small_tasks(), 5, 2).seed_for(0, 0.1)
        );
    }

    #[test]
    fn fractions_hit_targets() {
        let tasks = spec().tasks_at_fraction(0.4).unwrap();
        for t in tasks {
            let f = t.offload_fraction().to_f64();
            assert!((f - 0.4).abs() < 0.05, "got {f}");
        }
    }

    #[test]
    fn sweeps_are_sorted_and_in_range() {
        for sweep in [fraction_sweep_wide(), fraction_sweep_fine()] {
            assert!(sweep.windows(2).all(|w| w[0] < w[1]));
            assert!(sweep.iter().all(|&f| f > 0.0 && f < 1.0));
        }
    }
}
