//! Layered random DAG generator (robustness workload beyond the paper).
//!
//! The paper evaluates only nested fork-join DAGs; this generator produces
//! *non*-series-parallel structures (random bipartite wiring between
//! consecutive layers, then transitive reduction and dummy-terminal
//! normalization) to exercise the analysis on a broader graph family in
//! tests and ablation benches.

use hetrta_dag::algo::transitive;
use hetrta_dag::{Dag, DagBuilder, NodeId, Ticks};
use rand::Rng;

/// One hundred nodes per layer: the width the large-graph tier keeps
/// fixed while scaling the number of layers.
const LARGE_TIER_WIDTH: usize = 100;

use crate::GenError;

/// Parameters of the layered generator.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LayeredParams {
    /// Number of layers (≥ 1).
    pub layers: usize,
    /// Minimum nodes per layer (≥ 1).
    pub width_min: usize,
    /// Maximum nodes per layer.
    pub width_max: usize,
    /// Probability of each possible edge between consecutive layers
    /// (each node is additionally guaranteed one predecessor in the
    /// previous layer so the graph stays connected).
    pub p_edge: f64,
    /// Minimum WCET.
    pub c_min: u64,
    /// Maximum WCET.
    pub c_max: u64,
}

impl Default for LayeredParams {
    fn default() -> Self {
        LayeredParams {
            layers: 5,
            width_min: 2,
            width_max: 6,
            p_edge: 0.3,
            c_min: 1,
            c_max: 100,
        }
    }
}

impl LayeredParams {
    /// The *large-graph* tier: roughly `n_nodes` nodes in layers of
    /// ~[`80, 120`] width with sparse (5%) extra wiring — the layered
    /// counterpart of [`NfjParams::large_graphs`](crate::NfjParams::large_graphs).
    /// At `n_nodes = 10_000` this yields ≈100 layers and ≈60k edges.
    #[must_use]
    pub fn large_graphs(n_nodes: usize) -> Self {
        LayeredParams {
            layers: (n_nodes / LARGE_TIER_WIDTH).max(1),
            width_min: LARGE_TIER_WIDTH - 20,
            width_max: LARGE_TIER_WIDTH + 20,
            p_edge: 0.05,
            c_min: 1,
            c_max: 100,
        }
    }

    fn validate(&self) -> Result<(), GenError> {
        if self.layers == 0 {
            return Err(GenError::InvalidParams("layers must be ≥ 1".into()));
        }
        if self.width_min == 0 || self.width_min > self.width_max {
            return Err(GenError::InvalidParams(format!(
                "width range [{}, {}] is empty or zero",
                self.width_min, self.width_max
            )));
        }
        if !(0.0..=1.0).contains(&self.p_edge) {
            return Err(GenError::InvalidParams(format!(
                "p_edge = {} not in [0,1]",
                self.p_edge
            )));
        }
        if self.c_min == 0 || self.c_min > self.c_max {
            return Err(GenError::InvalidParams(format!(
                "WCET range [{}, {}] is empty or contains zero",
                self.c_min, self.c_max
            )));
        }
        Ok(())
    }
}

/// Generates a layered random DAG satisfying the task model (acyclic,
/// single source/sink via dummy terminals where needed, transitively
/// reduced).
///
/// # Errors
///
/// Returns [`GenError::InvalidParams`] for inconsistent parameters; other
/// variants indicate internal bugs and are propagated from the validating
/// builder.
///
/// # Examples
///
/// ```
/// use hetrta_gen::layered::{generate_layered, LayeredParams};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(9);
/// let dag = generate_layered(&LayeredParams::default(), &mut rng)?;
/// hetrta_dag::validate_task_model(&dag)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn generate_layered<R: Rng + ?Sized>(
    params: &LayeredParams,
    rng: &mut R,
) -> Result<Dag, GenError> {
    params.validate()?;
    // Accumulate the random wiring in the builder's nested adjacency and
    // freeze once — edge-by-edge CSR insertion made this generator
    // quadratic at the large-graph tier's sizes.
    let mut accum = DagBuilder::new();
    let mut layers: Vec<Vec<NodeId>> = Vec::with_capacity(params.layers);
    for l in 0..params.layers {
        let width = rng.gen_range(params.width_min..=params.width_max);
        let layer: Vec<NodeId> = (0..width)
            .map(|i| {
                accum.node(
                    format!("l{l}_{i}"),
                    Ticks::new(rng.gen_range(params.c_min..=params.c_max)),
                )
            })
            .collect();
        layers.push(layer);
    }
    for w in layers.windows(2) {
        let (upper, lower) = (&w[0], &w[1]);
        for &b in lower {
            // guaranteed predecessor keeps every node reachable
            let anchor = upper[rng.gen_range(0..upper.len())];
            let _ = accum.edge(anchor, b);
            for &a in upper {
                if a != anchor && rng.gen_bool(params.p_edge) {
                    let _ = accum.edge(a, b);
                }
            }
        }
    }
    // Consecutive-layer wiring cannot create transitive edges *across*
    // layers, but a reduction keeps the invariant explicit and future-proof.
    let reduced = transitive::transitive_reduction(&accum.freeze())?;
    // Normalize terminals with the validating builder.
    let mut b = DagBuilder::new();
    let ids: Vec<NodeId> = reduced
        .node_ids()
        .map(|v| b.node(reduced.label(v).to_owned(), reduced.wcet(v)))
        .collect();
    for (f, t) in reduced.edges() {
        b.edge(ids[f.index()], ids[t.index()])?;
    }
    b.add_dummy_terminals();
    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetrta_dag::validate_task_model;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_layered_dags_are_valid() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..30 {
            let dag = generate_layered(&LayeredParams::default(), &mut rng).unwrap();
            validate_task_model(&dag).expect("task model holds");
        }
    }

    #[test]
    fn single_layer_graph_works() {
        let mut rng = StdRng::seed_from_u64(22);
        let params = LayeredParams {
            layers: 1,
            width_min: 3,
            width_max: 3,
            ..Default::default()
        };
        let dag = generate_layered(&params, &mut rng).unwrap();
        // 3 parallel nodes + dummy source + dummy sink
        assert_eq!(dag.node_count(), 5);
        validate_task_model(&dag).unwrap();
    }

    #[test]
    fn dense_wiring_still_reduced() {
        let mut rng = StdRng::seed_from_u64(23);
        let params = LayeredParams {
            p_edge: 1.0,
            ..Default::default()
        };
        let dag = generate_layered(&params, &mut rng).unwrap();
        assert!(transitive::is_transitively_reduced(&dag).unwrap());
    }

    #[test]
    fn invalid_params_rejected() {
        let mut rng = StdRng::seed_from_u64(24);
        let zero_layers = LayeredParams {
            layers: 0,
            ..Default::default()
        };
        assert!(matches!(
            generate_layered(&zero_layers, &mut rng),
            Err(GenError::InvalidParams(_))
        ));
        let bad_width = LayeredParams {
            width_min: 5,
            width_max: 2,
            ..Default::default()
        };
        assert!(matches!(
            generate_layered(&bad_width, &mut rng),
            Err(GenError::InvalidParams(_))
        ));
        let bad_p = LayeredParams {
            p_edge: 2.0,
            ..Default::default()
        };
        assert!(matches!(
            generate_layered(&bad_p, &mut rng),
            Err(GenError::InvalidParams(_))
        ));
    }

    #[test]
    fn determinism_per_seed() {
        let params = LayeredParams::default();
        let a = generate_layered(&params, &mut StdRng::seed_from_u64(5)).unwrap();
        let b = generate_layered(&params, &mut StdRng::seed_from_u64(5)).unwrap();
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.volume(), b.volume());
    }
}
