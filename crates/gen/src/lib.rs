//! # hetrta-gen — random DAG task generators
//!
//! Reproduces the experimental workload of *Serrano & Quiñones, DAC 2018*
//! (Section 5.1): random DAG tasks generated "by recursively expanding nodes
//! either to terminal nodes or parallel sub-DAGs, until a maximum recursion
//! depth `maxdepth` is reached", with
//!
//! * `p_par` — probability of expanding into a parallel sub-DAG,
//! * `n_par` — maximum number of branches of a parallel sub-DAG,
//! * `n ∈ [n_min, n_max]` — accepted node-count range (rejection sampling),
//! * node WCETs uniform in `[C_min, C_max] = [1, 100]`,
//! * a uniformly chosen offloaded node `v_off` whose `C_off` is sized
//!   relative to the DAG volume.
//!
//! The crate provides:
//!
//! * [`NfjParams`] / [`generate_nfj`] — the paper's nested fork-join
//!   generator, with the paper's presets
//!   ([`NfjParams::small_tasks`], [`NfjParams::large_tasks`]);
//! * [`offload`] — turning a plain DAG into a [`HeteroDagTask`]
//!   (offload-node selection and `C_off` sizing policies);
//! * [`layered`] — an alternative layered generator used for robustness
//!   testing beyond the paper's workload;
//! * [`series`] — batch helpers for the experiment sweeps.
//!
//! ## Example
//!
//! ```
//! use hetrta_gen::{generate_nfj, NfjParams};
//! use hetrta_gen::offload::{make_hetero_task, CoffSizing, OffloadSelection};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = StdRng::seed_from_u64(7);
//! let dag = generate_nfj(&NfjParams::small_tasks(), &mut rng)?;
//! let task = make_hetero_task(
//!     dag,
//!     OffloadSelection::AnyInterior,
//!     CoffSizing::VolumeFraction(0.25),
//!     &mut rng,
//! )?;
//! let frac = task.offload_fraction().to_f64();
//! assert!((frac - 0.25).abs() < 0.1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
pub mod layered;
mod nfj;
pub mod offload;
pub mod openmp;
pub mod series;

pub use error::GenError;
pub use hetrta_dag::{Dag, HeteroDagTask, NodeId, Ticks};
pub use nfj::{generate_nfj, NfjParams};
