//! Large-graph tier smoke test for the conditional generator's expansion
//! path: a ~10k-leaf expression must expand to a task-model DAG
//! sub-second in release (the expansion goes through `DagBuilder::build`,
//! so this exercises the builder-first freeze at scale).
//!
//! `#[ignore]`-gated; run with `cargo test -p hetrta-cond --release -- --ignored`.

use std::time::{Duration, Instant};

use hetrta_cond::CondExpr;
use hetrta_dag::Ticks;

#[test]
#[ignore = "large-graph tier; run with --ignored (release)"]
fn conditional_expansion_at_10k_leaves_is_subsecond() {
    // 100 parallel branches × a series of 100 leaves ≈ 10k leaves, plus
    // the fork/join/source/sink nodes the expansion inserts.
    let expr = CondExpr::Parallel(
        (0..100u64)
            .map(|b| {
                CondExpr::Series(
                    (0..100u64)
                        .map(|i| CondExpr::Leaf {
                            label: format!("v{b}_{i}"),
                            wcet: Ticks::new(1 + (b * 100 + i) % 50),
                        })
                        .collect(),
                )
            })
            .collect(),
    );
    expr.validate().expect("well-formed");
    assert_eq!(expr.leaf_count(), 10_000);

    let started = Instant::now();
    let realization = expr.expand(&[]).expect("no conditionals, no choices");
    let elapsed = started.elapsed();

    assert!(
        realization.dag.node_count() > 10_000,
        "n = {}",
        realization.dag.node_count()
    );
    hetrta_dag::validate_task_model(&realization.dag).expect("task model holds");
    if cfg!(debug_assertions) {
        assert!(elapsed < Duration::from_secs(30), "{elapsed:?}");
    } else {
        assert!(
            elapsed < Duration::from_secs(1),
            "10k-leaf expansion took {elapsed:?}"
        );
    }
}

#[test]
#[ignore = "large-graph tier; run with --ignored (release)"]
fn conditional_expansion_at_100k_leaves_is_subsecond() {
    // One more order of magnitude: 100 parallel branches × 1000 leaves.
    // Closure-free validation keeps the whole expand+build+validate path
    // O(V + E) — the old closure check alone would allocate ≈ 1.2 GiB.
    let expr = CondExpr::Parallel(
        (0..100u64)
            .map(|b| {
                CondExpr::Series(
                    (0..1_000u64)
                        .map(|i| CondExpr::Leaf {
                            label: format!("v{b}_{i}"),
                            wcet: Ticks::new(1 + (b * 1_000 + i) % 50),
                        })
                        .collect(),
                )
            })
            .collect(),
    );
    expr.validate().expect("well-formed");
    assert_eq!(expr.leaf_count(), 100_000);

    let started = Instant::now();
    let realization = expr.expand(&[]).expect("no conditionals, no choices");
    let elapsed = started.elapsed();

    assert!(
        realization.dag.node_count() > 100_000,
        "n = {}",
        realization.dag.node_count()
    );
    hetrta_dag::validate_task_model(&realization.dag).expect("task model holds");
    if cfg!(debug_assertions) {
        assert!(elapsed < Duration::from_secs(60), "{elapsed:?}");
    } else {
        assert!(
            elapsed < Duration::from_secs(1),
            "100k-leaf expansion took {elapsed:?}"
        );
    }
}
