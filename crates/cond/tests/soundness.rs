//! Simulation-based soundness of the conditional bounds: for random
//! conditional expressions, no realization's observed schedule under any
//! work-conserving policy exceeds the analytical bounds.

use hetrta_cond::{
    generate_cond, r_cond, r_cond_exact, r_parallel_flattening, CondExpr, CondGenParams,
    HetCondTask,
};
use hetrta_core::transform;
use hetrta_dag::{HeteroDagTask, Rational, Ticks};
use hetrta_sim::{explore_worst_case, Platform};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_expr(seed: u64) -> CondExpr {
    let mut rng = StdRng::seed_from_u64(seed);
    generate_cond(&CondGenParams::small(), &mut rng).expect("valid params")
}

#[test]
fn conditional_bounds_dominate_every_realization_schedule() {
    let mut realizations_checked = 0usize;
    for seed in 0..40u64 {
        let e = random_expr(seed);
        let Some(choices) = e.enumerate_choices(32) else {
            continue;
        };
        for m in [2usize, 4] {
            let dp = r_cond(&e, m as u64).unwrap();
            let exact = r_cond_exact(&e, m as u64, 32).unwrap();
            let flat = r_parallel_flattening(&e, m as u64).unwrap();
            assert!(exact <= dp);
            assert!(dp <= flat);
            for c in &choices {
                let r = e.expand(c).unwrap();
                let worst = explore_worst_case(&r.dag, None, Platform::host_only(m), 20).unwrap();
                let observed = worst.makespan().to_rational();
                assert!(
                    observed <= exact,
                    "seed {seed}, m {m}, choices {c:?}: {observed} > exact {exact}"
                );
                realizations_checked += 1;
            }
        }
    }
    assert!(
        realizations_checked >= 100,
        "only {realizations_checked} realizations checked"
    );
}

#[test]
fn heterogeneous_conditional_bounds_hold_under_simulation() {
    let mut offloading_checked = 0usize;
    for seed in 100..140u64 {
        let e = random_expr(seed);
        // Pick the first leaf label as the kernel; skip structures whose
        // realizations never contain it only if construction fails.
        let Ok(task) = HetCondTask::new(e, "v2", Ticks::new(100_000), Ticks::new(100_000)) else {
            continue;
        };
        let Ok(bounds) = task.analyze_realizations(2, 32) else {
            continue;
        };
        let r_max = task.r_het_cond(2, 32).unwrap();
        for rb in &bounds {
            let r = hetrta_cond::expr::CondExpr::expand(task.expr(), &rb.choices).unwrap();
            let observed = if rb.offloads {
                // Simulate the *transformed* deployment of the realization.
                let choices_r =
                    task_realization(&task, &rb.choices).expect("offloading realization");
                let t = transform(&choices_r).unwrap();
                explore_worst_case(
                    t.transformed(),
                    Some(t.offloaded()),
                    Platform::with_accelerator(2),
                    20,
                )
                .unwrap()
                .makespan()
                .to_rational()
            } else {
                explore_worst_case(&r.dag, None, Platform::host_only(2), 20)
                    .unwrap()
                    .makespan()
                    .to_rational()
            };
            assert!(
                observed <= rb.bound,
                "seed {seed}, choices {:?}: observed {observed} > bound {}",
                rb.choices,
                rb.bound
            );
            assert!(rb.bound <= r_max);
            if rb.offloads {
                offloading_checked += 1;
            }
        }
    }
    assert!(
        offloading_checked >= 10,
        "only {offloading_checked} offloading realizations"
    );
}

/// Rebuilds the offloading realization as a `HeteroDagTask`.
fn task_realization(task: &HetCondTask, choices: &[usize]) -> Option<HeteroDagTask> {
    let bounds = task.analyze_realizations(2, 64).ok()?;
    let _ = bounds;
    // Re-expand with the offload label applied.
    let r = hetrta_cond::expr::CondExpr::expand(task.expr(), choices).ok()?;
    let off = r
        .dag
        .node_ids()
        .find(|&v| r.dag.label(v) == task.offload_label())?;
    HeteroDagTask::new(r.dag, off, task.period(), task.deadline()).ok()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn dp_quantities_bound_realizations(seed: u64) {
        let e = random_expr(seed);
        if let Some(choices) = e.enumerate_choices(16) {
            for c in choices {
                let r = e.expand(&c).unwrap();
                prop_assert!(r.dag.volume() <= e.worst_case_workload());
                let len = hetrta_dag::algo::CriticalPath::of(&r.dag).length();
                prop_assert!(len <= e.worst_case_length());
            }
        }
    }

    #[test]
    fn r_cond_monotone_in_cores(seed: u64) {
        let e = random_expr(seed);
        let mut prev: Option<Rational> = None;
        for m in [1u64, 2, 4, 8, 16] {
            let r = r_cond(&e, m).unwrap();
            if let Some(p) = prev {
                prop_assert!(r <= p);
            }
            prop_assert!(r >= e.worst_case_length().to_rational());
            prop_assert!(r <= e.worst_case_workload().to_rational());
            prev = Some(r);
        }
    }
}
