//! Random conditional task expressions, mirroring the paper's §5.1
//! generator with an extra conditional-branch probability.
//!
//! Nodes are recursively expanded to terminal leaves, parallel sub-trees
//! (probability `p_par`) or conditional sub-trees (probability `p_cond`)
//! until `max_depth`; WCETs are uniform in `[c_min, c_max]` like the
//! paper's `U[1, 100]`.

use hetrta_dag::Ticks;
use rand::Rng;

use crate::expr::CondExpr;
use crate::CondError;

/// Parameters of the conditional generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CondGenParams {
    /// Probability that an expanded node becomes a parallel sub-tree.
    pub p_par: f64,
    /// Probability that an expanded node becomes a conditional sub-tree.
    pub p_cond: f64,
    /// Maximum children of a parallel / branches of a conditional.
    pub n_par: usize,
    /// Maximum recursion depth.
    pub max_depth: usize,
    /// WCET range `[c_min, c_max]` for leaves.
    pub c_min: u64,
    /// Upper WCET bound (inclusive).
    pub c_max: u64,
}

impl CondGenParams {
    /// The paper's small-task shape with a 25 % conditional share.
    #[must_use]
    pub fn small() -> Self {
        CondGenParams {
            p_par: 0.4,
            p_cond: 0.25,
            n_par: 4,
            max_depth: 3,
            c_min: 1,
            c_max: 100,
        }
    }
}

/// Generates a random conditional expression.
///
/// The result always has at least two leaves (the root is a series of a
/// leaf and an expansion, so sources/sinks are well-defined after
/// [`CondExpr::expand`]).
///
/// # Errors
///
/// [`CondError::EmptyComposite`] never occurs for valid parameters;
/// parameter errors are reported as `EmptyComposite("series")` when
/// `n_par < 2` makes composites impossible.
///
/// # Examples
///
/// ```
/// use hetrta_cond::{generate_cond, CondGenParams};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let e = generate_cond(&CondGenParams::small(), &mut rng)?;
/// e.validate()?;
/// assert!(e.leaf_count() >= 2);
/// # Ok::<(), hetrta_cond::CondError>(())
/// ```
pub fn generate_cond<R: Rng + ?Sized>(
    params: &CondGenParams,
    rng: &mut R,
) -> Result<CondExpr, CondError> {
    if params.n_par < 2 || params.c_min == 0 || params.c_min > params.c_max {
        return Err(CondError::EmptyComposite("series"));
    }
    let mut counter = 0usize;
    let body = expand(params, rng, 0, &mut counter);
    let expr = CondExpr::series(vec![leaf(params, rng, &mut counter), body]);
    expr.validate()?;
    Ok(expr)
}

fn leaf<R: Rng + ?Sized>(p: &CondGenParams, rng: &mut R, counter: &mut usize) -> CondExpr {
    *counter += 1;
    CondExpr::Leaf {
        label: format!("v{counter}"),
        wcet: Ticks::new(rng.gen_range(p.c_min..=p.c_max)),
    }
}

fn expand<R: Rng + ?Sized>(
    p: &CondGenParams,
    rng: &mut R,
    depth: usize,
    counter: &mut usize,
) -> CondExpr {
    if depth >= p.max_depth {
        return leaf(p, rng, counter);
    }
    let roll: f64 = rng.gen();
    if roll < p.p_par {
        let k = rng.gen_range(2..=p.n_par);
        CondExpr::Parallel((0..k).map(|_| branch(p, rng, depth + 1, counter)).collect())
    } else if roll < p.p_par + p.p_cond {
        let k = rng.gen_range(2..=p.n_par);
        CondExpr::Conditional((0..k).map(|_| branch(p, rng, depth + 1, counter)).collect())
    } else {
        leaf(p, rng, counter)
    }
}

/// A branch is a short series of expansions (1–2 elements).
fn branch<R: Rng + ?Sized>(
    p: &CondGenParams,
    rng: &mut R,
    depth: usize,
    counter: &mut usize,
) -> CondExpr {
    if rng.gen_bool(0.5) {
        expand(p, rng, depth, counter)
    } else {
        CondExpr::Series(vec![
            expand(p, rng, depth, counter),
            expand(p, rng, depth, counter),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_expressions_are_valid() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let e = generate_cond(&CondGenParams::small(), &mut rng).unwrap();
            e.validate().unwrap();
            assert!(e.leaf_count() >= 2);
            assert!(e.realization_count() >= 1);
            assert!(e.worst_case_length() <= e.worst_case_workload());
        }
    }

    #[test]
    fn generated_expressions_expand_to_valid_dags() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let e = generate_cond(&CondGenParams::small(), &mut rng).unwrap();
            if let Some(choices) = e.enumerate_choices(64) {
                for c in choices.iter().take(8) {
                    let r = e.expand(c).unwrap();
                    hetrta_dag::validate_task_model(&r.dag).unwrap();
                }
            }
        }
    }

    #[test]
    fn conditionals_do_appear() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut with_cond = 0;
        for _ in 0..100 {
            let e = generate_cond(&CondGenParams::small(), &mut rng).unwrap();
            if e.realization_count() > 1 {
                with_cond += 1;
            }
        }
        assert!(with_cond > 20, "only {with_cond}/100 had conditionals");
    }

    #[test]
    fn bad_params_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut p = CondGenParams::small();
        p.n_par = 1;
        assert!(generate_cond(&p, &mut rng).is_err());
        let mut p = CondGenParams::small();
        p.c_min = 0;
        assert!(generate_cond(&p, &mut rng).is_err());
    }
}
