//! Series-parallel **conditional** task expressions.
//!
//! The conditional DAG model (Melani et al., ECRTS 2015 — the paper's
//! reference \[12\]) extends the DAG task with *exclusive* branches: at a
//! conditional fork, exactly one successor sub-graph executes per job,
//! chosen at run time. Nested fork-join programs with `if`/`switch`
//! constructs are naturally series-parallel, so this crate models tasks as
//! expression trees:
//!
//! * [`CondExpr::leaf`] — a sequential job with a WCET;
//! * [`CondExpr::series`] — children execute one after another;
//! * [`CondExpr::parallel`] — children all execute, concurrently;
//! * [`CondExpr::conditional`] — **exactly one** child executes.
//!
//! A *realization* fixes every conditional choice, yielding a plain DAG
//! that `hetrta-dag`/`hetrta-core` can analyze and `hetrta-sim` can run.

use hetrta_dag::{Dag, DagBuilder, DagError, NodeId, Ticks};

use crate::CondError;

/// A series-parallel conditional task expression.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CondExpr {
    /// A sequential job.
    Leaf {
        /// Display label (propagated into expanded DAGs).
        label: String,
        /// Worst-case execution time.
        wcet: Ticks,
    },
    /// Children execute in order.
    Series(Vec<CondExpr>),
    /// Children all execute, concurrently (fork-join).
    Parallel(Vec<CondExpr>),
    /// Exactly one child executes per job (exclusive branches).
    Conditional(Vec<CondExpr>),
}

impl CondExpr {
    /// A leaf job.
    #[must_use]
    pub fn leaf(label: impl Into<String>, wcet: u64) -> Self {
        CondExpr::Leaf {
            label: label.into(),
            wcet: Ticks::new(wcet),
        }
    }

    /// Sequential composition.
    #[must_use]
    pub fn series(children: impl Into<Vec<CondExpr>>) -> Self {
        CondExpr::Series(children.into())
    }

    /// Fork-join composition.
    #[must_use]
    pub fn parallel(children: impl Into<Vec<CondExpr>>) -> Self {
        CondExpr::Parallel(children.into())
    }

    /// Exclusive-branch composition.
    #[must_use]
    pub fn conditional(branches: impl Into<Vec<CondExpr>>) -> Self {
        CondExpr::Conditional(branches.into())
    }

    /// Structural validation: no empty composite, no zero-branch
    /// conditional.
    ///
    /// # Errors
    ///
    /// [`CondError::EmptyComposite`] naming the offending composite kind.
    pub fn validate(&self) -> Result<(), CondError> {
        match self {
            CondExpr::Leaf { .. } => Ok(()),
            CondExpr::Series(cs) | CondExpr::Parallel(cs) | CondExpr::Conditional(cs) => {
                if cs.is_empty() {
                    return Err(CondError::EmptyComposite(self.kind_name()));
                }
                cs.iter().try_for_each(CondExpr::validate)
            }
        }
    }

    fn kind_name(&self) -> &'static str {
        match self {
            CondExpr::Leaf { .. } => "leaf",
            CondExpr::Series(_) => "series",
            CondExpr::Parallel(_) => "parallel",
            CondExpr::Conditional(_) => "conditional",
        }
    }

    /// Number of leaves (over all branches).
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        match self {
            CondExpr::Leaf { .. } => 1,
            CondExpr::Series(cs) | CondExpr::Parallel(cs) | CondExpr::Conditional(cs) => {
                cs.iter().map(CondExpr::leaf_count).sum()
            }
        }
    }

    /// Number of distinct realizations (products of conditional choices).
    /// Saturates at `u64::MAX`.
    #[must_use]
    pub fn realization_count(&self) -> u64 {
        match self {
            CondExpr::Leaf { .. } => 1,
            CondExpr::Series(cs) | CondExpr::Parallel(cs) => cs
                .iter()
                .fold(1u64, |acc, c| acc.saturating_mul(c.realization_count())),
            CondExpr::Conditional(cs) => cs
                .iter()
                .fold(0u64, |acc, c| acc.saturating_add(c.realization_count())),
        }
    }

    /// Worst-case workload `W*`: the maximum total execution over all
    /// realizations (DP: sum over series/parallel, max over branches).
    #[must_use]
    pub fn worst_case_workload(&self) -> Ticks {
        match self {
            CondExpr::Leaf { wcet, .. } => *wcet,
            CondExpr::Series(cs) | CondExpr::Parallel(cs) => cs
                .iter()
                .map(CondExpr::worst_case_workload)
                .fold(Ticks::ZERO, |a, b| a + b),
            CondExpr::Conditional(cs) => cs
                .iter()
                .map(CondExpr::worst_case_workload)
                .fold(Ticks::ZERO, Ticks::max),
        }
    }

    /// Worst-case critical-path length `len*`: the maximum over all
    /// realizations of the realization's critical path (DP: sum over
    /// series, max over parallel and branches).
    #[must_use]
    pub fn worst_case_length(&self) -> Ticks {
        match self {
            CondExpr::Leaf { wcet, .. } => *wcet,
            CondExpr::Series(cs) => cs
                .iter()
                .map(CondExpr::worst_case_length)
                .fold(Ticks::ZERO, |a, b| a + b),
            CondExpr::Parallel(cs) | CondExpr::Conditional(cs) => cs
                .iter()
                .map(CondExpr::worst_case_length)
                .fold(Ticks::ZERO, Ticks::max),
        }
    }

    /// Expands one realization to a plain DAG. `choices` supplies the
    /// branch index for each conditional, in depth-first pre-order; its
    /// entries are consumed left to right.
    ///
    /// The expansion adds zero-WCET fork/join nodes where a composite
    /// needs them, so the result always has a unique source and sink and
    /// no transitive edges — a valid task-model DAG.
    ///
    /// # Errors
    ///
    /// - [`CondError::ChoiceOutOfRange`] / [`CondError::MissingChoices`]
    ///   when `choices` does not match the structure;
    /// - [`CondError::Dag`] if graph construction fails (internal).
    pub fn expand(&self, choices: &[usize]) -> Result<Realization, CondError> {
        self.validate()?;
        let mut b = DagBuilder::new();
        let mut cursor = 0usize;
        let source = b.node("source", Ticks::ZERO);
        let sink = b.node("sink", Ticks::ZERO);
        let mut ctx = Expand {
            b,
            choices,
            cursor: &mut cursor,
            offload_label: None,
            offload: None,
        };
        let (first, last) = ctx.walk(self, source)?;
        ctx.b.edge(last, sink).map_err(CondError::Dag)?;
        let _ = first;
        if *ctx.cursor < choices.len() {
            return Err(CondError::MissingChoices {
                expected: *ctx.cursor,
                got: choices.len(),
            });
        }
        let offload = ctx.offload;
        let dag = ctx.b.build().map_err(CondError::Dag)?;
        Ok(Realization { dag, offload })
    }

    /// Enumerates every realization's choice vector, up to `cap` entries
    /// (`None` means the structure has more than `cap` realizations).
    #[must_use]
    pub fn enumerate_choices(&self, cap: usize) -> Option<Vec<Vec<usize>>> {
        let mut out = vec![Vec::new()];
        self.collect_choices(&mut out, cap)?;
        Some(out)
    }

    fn collect_choices(&self, acc: &mut Vec<Vec<usize>>, cap: usize) -> Option<()> {
        match self {
            CondExpr::Leaf { .. } => Some(()),
            CondExpr::Series(cs) | CondExpr::Parallel(cs) => {
                cs.iter().try_for_each(|c| c.collect_choices(acc, cap))
            }
            CondExpr::Conditional(cs) => {
                let prefixes = std::mem::take(acc);
                for prefix in prefixes {
                    for (i, branch) in cs.iter().enumerate() {
                        let mut sub = vec![{
                            let mut p = prefix.clone();
                            p.push(i);
                            p
                        }];
                        branch.collect_choices(&mut sub, cap)?;
                        acc.extend(sub);
                        if acc.len() > cap {
                            return None;
                        }
                    }
                }
                Some(())
            }
        }
    }
}

/// One expanded realization: a plain task-model DAG plus the offloaded
/// node when the realization contains the offloaded leaf (see
/// [`crate::HetCondTask`]).
#[derive(Debug, Clone)]
pub struct Realization {
    /// The expanded DAG (unique zero-WCET source/sink added).
    pub dag: Dag,
    /// The node corresponding to the offloaded leaf, if it executed.
    pub offload: Option<NodeId>,
}

struct Expand<'a> {
    b: DagBuilder,
    choices: &'a [usize],
    cursor: &'a mut usize,
    offload_label: Option<&'a str>,
    offload: Option<NodeId>,
}

impl Expand<'_> {
    /// Walks `expr`, wiring it after `entry`; returns (first, last) nodes
    /// of the constructed fragment (single entry/exit per fragment).
    fn walk(&mut self, expr: &CondExpr, entry: NodeId) -> Result<(NodeId, NodeId), CondError> {
        match expr {
            CondExpr::Leaf { label, wcet } => {
                let v = self.b.node(label.clone(), *wcet);
                self.b.edge(entry, v).map_err(CondError::Dag)?;
                if self.offload_label == Some(label.as_str()) && self.offload.is_none() {
                    self.offload = Some(v);
                }
                Ok((v, v))
            }
            CondExpr::Series(cs) => {
                let mut prev = entry;
                let mut first = None;
                for c in cs {
                    let (f, l) = self.walk(c, prev)?;
                    first.get_or_insert(f);
                    prev = l;
                }
                Ok((first.expect("validated non-empty"), prev))
            }
            CondExpr::Parallel(cs) => {
                let fork = self.b.node("fork", Ticks::ZERO);
                self.b.edge(entry, fork).map_err(CondError::Dag)?;
                let join = self.b.node("join", Ticks::ZERO);
                for c in cs {
                    let (_, l) = self.walk(c, fork)?;
                    self.b.edge(l, join).map_err(CondError::Dag)?;
                }
                Ok((fork, join))
            }
            CondExpr::Conditional(cs) => {
                let i = *self
                    .choices
                    .get(*self.cursor)
                    .ok_or(CondError::MissingChoices {
                        expected: *self.cursor + 1,
                        got: self.choices.len(),
                    })?;
                *self.cursor += 1;
                if i >= cs.len() {
                    return Err(CondError::ChoiceOutOfRange {
                        index: i,
                        branches: cs.len(),
                    });
                }
                self.walk(&cs[i], entry)
            }
        }
    }
}

/// Expands a realization with an offload label: leaves matching `label`
/// become the offloaded node of the realization.
pub(crate) fn expand_with_offload(
    expr: &CondExpr,
    choices: &[usize],
    label: &str,
) -> Result<Realization, CondError> {
    expr.validate()?;
    let mut b = DagBuilder::new();
    let mut cursor = 0usize;
    let source = b.node("source", Ticks::ZERO);
    let sink = b.node("sink", Ticks::ZERO);
    let mut ctx = Expand {
        b,
        choices,
        cursor: &mut cursor,
        offload_label: Some(label),
        offload: None,
    };
    let (_, last) = ctx.walk(expr, source)?;
    ctx.b.edge(last, sink).map_err(CondError::Dag)?;
    if *ctx.cursor != choices.len() {
        return Err(CondError::MissingChoices {
            expected: *ctx.cursor,
            got: choices.len(),
        });
    }
    let offload = ctx.offload;
    let dag = ctx.b.build().map_err(CondError::Dag)?;
    Ok(Realization { dag, offload })
}

impl From<DagError> for CondError {
    fn from(e: DagError) -> Self {
        CondError::Dag(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `a ; (b ∥ if(c1|c2)) ; d`
    fn sample() -> CondExpr {
        CondExpr::series(vec![
            CondExpr::leaf("a", 2),
            CondExpr::parallel(vec![
                CondExpr::leaf("b", 5),
                CondExpr::conditional(vec![CondExpr::leaf("c1", 3), CondExpr::leaf("c2", 9)]),
            ]),
            CondExpr::leaf("d", 1),
        ])
    }

    #[test]
    fn dp_quantities() {
        let e = sample();
        // W* = 2 + 5 + max(3, 9) + 1 = 17
        assert_eq!(e.worst_case_workload(), Ticks::new(17));
        // len* = 2 + max(5, max(3, 9)) + 1 = 12
        assert_eq!(e.worst_case_length(), Ticks::new(12));
        assert_eq!(e.leaf_count(), 5);
        assert_eq!(e.realization_count(), 2);
    }

    #[test]
    fn expansion_matches_choice() {
        let e = sample();
        let r1 = e.expand(&[0]).unwrap();
        let r2 = e.expand(&[1]).unwrap();
        // Realization volumes: 2+5+3+1 = 11 and 2+5+9+1 = 17.
        assert_eq!(r1.dag.volume(), Ticks::new(11));
        assert_eq!(r2.dag.volume(), Ticks::new(17));
        hetrta_dag::validate_task_model(&r1.dag).unwrap();
        hetrta_dag::validate_task_model(&r2.dag).unwrap();
    }

    #[test]
    fn dp_bounds_every_realization() {
        let e = sample();
        for choices in e.enumerate_choices(64).unwrap() {
            let r = e.expand(&choices).unwrap();
            assert!(r.dag.volume() <= e.worst_case_workload());
            let len = hetrta_dag::algo::CriticalPath::of(&r.dag).length();
            assert!(len <= e.worst_case_length());
        }
    }

    #[test]
    fn enumerate_counts_match() {
        let e = sample();
        assert_eq!(
            e.enumerate_choices(64).unwrap().len(),
            e.realization_count() as usize
        );
        // Nested conditionals multiply.
        let nested = CondExpr::parallel(vec![
            CondExpr::conditional(vec![CondExpr::leaf("x", 1), CondExpr::leaf("y", 2)]),
            CondExpr::conditional(vec![
                CondExpr::leaf("u", 1),
                CondExpr::conditional(vec![CondExpr::leaf("v", 2), CondExpr::leaf("w", 3)]),
            ]),
        ]);
        assert_eq!(nested.realization_count(), 6);
        assert_eq!(nested.enumerate_choices(64).unwrap().len(), 6);
        assert!(nested.enumerate_choices(3).is_none());
    }

    #[test]
    fn validation_rejects_empty_composites() {
        assert!(CondExpr::series(vec![]).validate().is_err());
        assert!(CondExpr::conditional(vec![]).validate().is_err());
        assert!(CondExpr::parallel(vec![CondExpr::Series(vec![])])
            .validate()
            .is_err());
        assert!(sample().validate().is_ok());
    }

    #[test]
    fn bad_choice_vectors_are_rejected() {
        let e = sample();
        assert!(matches!(
            e.expand(&[]),
            Err(CondError::MissingChoices { .. })
        ));
        assert!(matches!(
            e.expand(&[7]),
            Err(CondError::ChoiceOutOfRange { .. })
        ));
        assert!(matches!(
            e.expand(&[0, 0]),
            Err(CondError::MissingChoices { .. })
        ));
    }

    #[test]
    fn pure_dag_expression_has_one_realization() {
        let e = CondExpr::parallel(vec![CondExpr::leaf("x", 4), CondExpr::leaf("y", 6)]);
        assert_eq!(e.realization_count(), 1);
        let r = e.expand(&[]).unwrap();
        assert_eq!(r.dag.volume(), Ticks::new(10));
    }
}
