//! Response-time bounds for conditional DAG tasks.
//!
//! The conditional-aware bound of Melani et al. (ECRTS 2015, the paper's
//! reference \[12\]) generalizes Eq. 1 with the two DP quantities of
//! [`CondExpr`]:
//!
//! ```text
//! R_cond = len*(G) + (W*(G) − len*(G)) / m
//! ```
//!
//! where `len*` is the worst-case critical path and `W*` the worst-case
//! workload over all realizations. Soundness: for any realization `r`,
//! `R_r = (1 − 1/m)·len_r + vol_r/m` is monotone in both `len_r ≤ len*`
//! and `vol_r ≤ W*`.
//!
//! For comparison, [`r_parallel_flattening`] evaluates the *naive*
//! over-approximation that treats conditional branches as if they all
//! executed (conditional ⇒ parallel): also sound, but it inflates the
//! workload by the non-taken branches — the ablation showing why
//! conditional-aware analysis matters.

use hetrta_dag::{Rational, Ticks};

use crate::expr::CondExpr;
use crate::CondError;

/// The conditional-aware bound `len* + (W* − len*)/m`.
///
/// # Errors
///
/// [`CondError::ZeroCores`] if `m == 0`; validation errors from the
/// expression.
///
/// # Examples
///
/// ```
/// use hetrta_cond::{r_cond, CondExpr};
/// use hetrta_dag::Rational;
///
/// // a(2) ; (b(5) ∥ if { c1(3) | c2(9) }) ; d(1)
/// let e = CondExpr::series(vec![
///     CondExpr::leaf("a", 2),
///     CondExpr::parallel(vec![
///         CondExpr::leaf("b", 5),
///         CondExpr::conditional(vec![CondExpr::leaf("c1", 3), CondExpr::leaf("c2", 9)]),
///     ]),
///     CondExpr::leaf("d", 1),
/// ]);
/// // len* = 12, W* = 17 → 12 + 5/2 = 14.5 on two cores.
/// assert_eq!(r_cond(&e, 2)?, Rational::new(29, 2));
/// # Ok::<(), hetrta_cond::CondError>(())
/// ```
pub fn r_cond(expr: &CondExpr, m: u64) -> Result<Rational, CondError> {
    if m == 0 {
        return Err(CondError::ZeroCores);
    }
    expr.validate()?;
    let len = expr.worst_case_length().to_rational();
    let w = expr.worst_case_workload().to_rational();
    Ok(len + (w - len) / Rational::from_integer(m as i128))
}

/// The naive bound that flattens conditionals into parallels (all branches
/// charged): `len* + (W_flat − len*)/m` with `W_flat` summing every
/// branch.
///
/// Sound but pessimistic; provided as the ablation baseline.
///
/// # Errors
///
/// See [`r_cond`].
pub fn r_parallel_flattening(expr: &CondExpr, m: u64) -> Result<Rational, CondError> {
    if m == 0 {
        return Err(CondError::ZeroCores);
    }
    expr.validate()?;
    let len = expr.worst_case_length().to_rational();
    let w = flat_workload(expr).to_rational();
    Ok(len + (w - len) / Rational::from_integer(m as i128))
}

/// Total workload if every conditional branch executed.
fn flat_workload(expr: &CondExpr) -> Ticks {
    match expr {
        CondExpr::Leaf { wcet, .. } => *wcet,
        CondExpr::Series(cs) | CondExpr::Parallel(cs) | CondExpr::Conditional(cs) => {
            cs.iter().map(flat_workload).fold(Ticks::ZERO, |a, b| a + b)
        }
    }
}

/// The exact per-realization maximum of Eq. 1, `max_r R_hom(G_r)`, by
/// enumeration (up to `cap` realizations).
///
/// Tighter than [`r_cond`] when the workload-maximizing and
/// length-maximizing realizations differ; exponential in the number of
/// conditionals, hence the cap.
///
/// # Errors
///
/// - [`CondError::TooManyRealizations`] beyond `cap`;
/// - [`CondError::ZeroCores`] if `m == 0`.
pub fn r_cond_exact(expr: &CondExpr, m: u64, cap: usize) -> Result<Rational, CondError> {
    if m == 0 {
        return Err(CondError::ZeroCores);
    }
    expr.validate()?;
    let choices = expr
        .enumerate_choices(cap)
        .ok_or(CondError::TooManyRealizations {
            count: expr.realization_count(),
            cap,
        })?;
    let mut worst = Rational::ZERO;
    for c in &choices {
        let r = expr.expand(c)?;
        let bound = hetrta_core::r_hom_dag(&r.dag, m).map_err(|e| match e {
            hetrta_core::AnalysisError::ZeroCores => CondError::ZeroCores,
            hetrta_core::AnalysisError::Dag(d) => CondError::Dag(d),
            _ => CondError::ZeroCores,
        })?;
        worst = worst.max(bound);
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CondExpr {
        CondExpr::series(vec![
            CondExpr::leaf("a", 2),
            CondExpr::parallel(vec![
                CondExpr::leaf("b", 5),
                CondExpr::conditional(vec![CondExpr::leaf("c1", 3), CondExpr::leaf("c2", 9)]),
            ]),
            CondExpr::leaf("d", 1),
        ])
    }

    #[test]
    fn cond_bound_beats_flattening() {
        let e = sample();
        for m in [1u64, 2, 4, 8] {
            let aware = r_cond(&e, m).unwrap();
            let flat = r_parallel_flattening(&e, m).unwrap();
            assert!(aware <= flat, "m = {m}: {aware} > {flat}");
        }
        // Concretely on m = 2: aware 14.5 vs flat (12 + (20−12)/2) = 16.
        assert_eq!(
            r_parallel_flattening(&e, 2).unwrap(),
            Rational::from_integer(16)
        );
    }

    #[test]
    fn exact_enumeration_is_at_least_as_tight_as_dp() {
        let e = sample();
        for m in [1u64, 2, 4] {
            let exact = r_cond_exact(&e, m, 100).unwrap();
            let dp = r_cond(&e, m).unwrap();
            assert!(exact <= dp, "m = {m}: exact {exact} > DP {dp}");
        }
    }

    #[test]
    fn exact_dominates_every_realization_bound() {
        let e = sample();
        let exact = r_cond_exact(&e, 2, 100).unwrap();
        for c in e.enumerate_choices(100).unwrap() {
            let r = e.expand(&c).unwrap();
            let per = hetrta_core::r_hom_dag(&r.dag, 2).unwrap();
            assert!(per <= exact);
        }
    }

    #[test]
    fn single_realization_collapses_all_bounds() {
        // No conditional: DP, exact and flattening all agree with Eq. 1.
        let e = CondExpr::series(vec![
            CondExpr::leaf("a", 2),
            CondExpr::parallel(vec![CondExpr::leaf("x", 4), CondExpr::leaf("y", 6)]),
        ]);
        for m in [1u64, 2, 4] {
            let dp = r_cond(&e, m).unwrap();
            let exact = r_cond_exact(&e, m, 10).unwrap();
            let flat = r_parallel_flattening(&e, m).unwrap();
            assert_eq!(dp, exact);
            assert_eq!(dp, flat);
        }
    }

    #[test]
    fn zero_cores_rejected() {
        let e = sample();
        assert_eq!(r_cond(&e, 0).unwrap_err(), CondError::ZeroCores);
        assert_eq!(
            r_parallel_flattening(&e, 0).unwrap_err(),
            CondError::ZeroCores
        );
        assert_eq!(r_cond_exact(&e, 0, 10).unwrap_err(), CondError::ZeroCores);
    }

    #[test]
    fn realization_cap_is_enforced() {
        let mut branches = Vec::new();
        for i in 0..12 {
            branches.push(CondExpr::conditional(vec![
                CondExpr::leaf(format!("a{i}"), 1),
                CondExpr::leaf(format!("b{i}"), 2),
            ]));
        }
        let e = CondExpr::series(branches); // 2^12 realizations
        assert!(matches!(
            r_cond_exact(&e, 2, 100),
            Err(CondError::TooManyRealizations { .. })
        ));
        // The DP bound still works instantly.
        assert!(r_cond(&e, 2).is_ok());
    }
}
