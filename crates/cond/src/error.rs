//! Conditional-task errors.

use core::fmt;

use hetrta_dag::DagError;

/// Errors of the conditional DAG task model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CondError {
    /// A series/parallel/conditional composite has no children.
    EmptyComposite(&'static str),
    /// A choice vector selected a branch index that does not exist.
    ChoiceOutOfRange {
        /// The selected index.
        index: usize,
        /// Number of branches of the conditional.
        branches: usize,
    },
    /// A choice vector had the wrong length for the expression.
    MissingChoices {
        /// Choices the expression consumes.
        expected: usize,
        /// Choices supplied.
        got: usize,
    },
    /// The host core count `m` must be at least 1.
    ZeroCores,
    /// No leaf carries the requested offload label.
    UnknownOffloadLabel(String),
    /// Too many realizations to enumerate exactly.
    TooManyRealizations {
        /// Realizations in the expression (saturating).
        count: u64,
        /// The enumeration cap that was exceeded.
        cap: usize,
    },
    /// Graph construction failed (wrapped cause).
    Dag(DagError),
}

impl fmt::Display for CondError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CondError::EmptyComposite(kind) => write!(f, "empty {kind} composite"),
            CondError::ChoiceOutOfRange { index, branches } => {
                write!(
                    f,
                    "branch choice {index} out of range (conditional has {branches})"
                )
            }
            CondError::MissingChoices { expected, got } => {
                write!(
                    f,
                    "choice vector mismatch: expression consumes {expected}, got {got}"
                )
            }
            CondError::ZeroCores => write!(f, "host must have at least one core"),
            CondError::UnknownOffloadLabel(l) => write!(f, "no leaf labeled `{l}`"),
            CondError::TooManyRealizations { count, cap } => {
                write!(f, "{count} realizations exceed the enumeration cap {cap}")
            }
            CondError::Dag(e) => write!(f, "graph construction failed: {e}"),
        }
    }
}

impl std::error::Error for CondError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CondError::Dag(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            CondError::EmptyComposite("series").to_string(),
            "empty series composite"
        );
        assert!(CondError::ChoiceOutOfRange {
            index: 3,
            branches: 2
        }
        .to_string()
        .contains('3'));
        assert!(CondError::MissingChoices {
            expected: 2,
            got: 0
        }
        .to_string()
        .contains("got 0"));
        assert!(CondError::UnknownOffloadLabel("k".into())
            .to_string()
            .contains('k'));
        assert!(CondError::TooManyRealizations {
            count: 100,
            cap: 10
        }
        .to_string()
        .contains("cap 10"));
    }
}
