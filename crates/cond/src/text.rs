//! `.hcond` — a small text format for conditional task expressions.
//!
//! Grammar (whitespace and newlines are insignificant; `#` starts a
//! comment running to end of line):
//!
//! ```text
//! series := term (';' term)*
//! term   := leaf
//!         | 'par' '{' series ('|' series)* '}'
//!         | 'if'  '{' series ('|' series)* '}'
//! leaf   := IDENT '(' INTEGER ')'
//! ```
//!
//! Example:
//!
//! ```text
//! # adaptive perception stage
//! pre(4);
//! if { par { kernel(26) | edge(11) | flow(9) } | soft_fallback(30) };
//! fuse(3)
//! ```
//!
//! [`parse_expr`] produces a [`CondExpr`]; [`render_expr`] writes the
//! canonical form back (round-trip stable, asserted by property tests).

use core::fmt;

use hetrta_dag::Ticks;

use crate::expr::CondExpr;

/// A parse error with 1-based line and column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub column: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(u64),
    Semi,
    Pipe,
    LBrace,
    RBrace,
    LParen,
    RParen,
    Par,
    If,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(v) => write!(f, "integer `{v}`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Pipe => write!(f, "`|`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::Par => write!(f, "`par`"),
            Tok::If => write!(f, "`if`"),
        }
    }
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
    col: usize,
}

impl Lexer<'_> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            column: self.col,
            message: message.into(),
        }
    }

    fn tokens(mut self) -> Result<Vec<(Tok, usize, usize)>, ParseError> {
        let bytes = self.src.as_bytes();
        let mut out = Vec::new();
        while self.pos < bytes.len() {
            let c = bytes[self.pos] as char;
            let (line, col) = (self.line, self.col);
            match c {
                ' ' | '\t' | '\r' => self.bump(1),
                '\n' => {
                    self.pos += 1;
                    self.line += 1;
                    self.col = 1;
                }
                '#' => {
                    while self.pos < bytes.len() && bytes[self.pos] != b'\n' {
                        self.bump(1);
                    }
                }
                ';' => {
                    out.push((Tok::Semi, line, col));
                    self.bump(1);
                }
                '|' => {
                    out.push((Tok::Pipe, line, col));
                    self.bump(1);
                }
                '{' => {
                    out.push((Tok::LBrace, line, col));
                    self.bump(1);
                }
                '}' => {
                    out.push((Tok::RBrace, line, col));
                    self.bump(1);
                }
                '(' => {
                    out.push((Tok::LParen, line, col));
                    self.bump(1);
                }
                ')' => {
                    out.push((Tok::RParen, line, col));
                    self.bump(1);
                }
                c if c.is_ascii_digit() => {
                    let start = self.pos;
                    while self.pos < bytes.len() && bytes[self.pos].is_ascii_digit() {
                        self.bump(1);
                    }
                    let text = &self.src[start..self.pos];
                    let v = text
                        .parse::<u64>()
                        .map_err(|_| self.error(format!("integer `{text}` out of range")))?;
                    out.push((Tok::Int(v), line, col));
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let start = self.pos;
                    while self.pos < bytes.len()
                        && (bytes[self.pos].is_ascii_alphanumeric()
                            || bytes[self.pos] == b'_'
                            || bytes[self.pos] == b'-')
                    {
                        self.bump(1);
                    }
                    let word = &self.src[start..self.pos];
                    let tok = match word {
                        "par" => Tok::Par,
                        "if" => Tok::If,
                        _ => Tok::Ident(word.to_owned()),
                    };
                    out.push((tok, line, col));
                }
                other => return Err(self.error(format!("unexpected character `{other}`"))),
            }
        }
        Ok(out)
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
        self.col += n;
    }
}

struct Parser {
    toks: Vec<(Tok, usize, usize)>,
    pos: usize,
}

impl Parser {
    fn error_at(&self, message: impl Into<String>) -> ParseError {
        let (line, column) = self.toks.get(self.pos).map_or_else(
            || self.toks.last().map_or((1, 1), |t| (t.1, t.2)),
            |t| (t.1, t.2),
        );
        ParseError {
            line,
            column,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.0)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.0.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if t == *want => Ok(()),
            Some(t) => {
                self.pos -= 1;
                Err(self.error_at(format!("expected {want}, found {t}")))
            }
            None => Err(self.error_at(format!("expected {want}, found end of input"))),
        }
    }

    /// series := term (';' term)*
    fn series(&mut self) -> Result<CondExpr, ParseError> {
        let mut terms = vec![self.term()?];
        while self.peek() == Some(&Tok::Semi) {
            self.next();
            terms.push(self.term()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("non-empty")
        } else {
            CondExpr::Series(terms)
        })
    }

    /// term := leaf | ('par' | 'if') '{' series ('|' series)* '}'
    fn term(&mut self) -> Result<CondExpr, ParseError> {
        match self.next() {
            Some(Tok::Par) => Ok(CondExpr::Parallel(self.branches()?)),
            Some(Tok::If) => Ok(CondExpr::Conditional(self.branches()?)),
            Some(Tok::Ident(name)) => {
                self.expect(&Tok::LParen)?;
                let wcet = match self.next() {
                    Some(Tok::Int(v)) => v,
                    Some(t) => {
                        self.pos -= 1;
                        return Err(self.error_at(format!("expected a WCET integer, found {t}")));
                    }
                    None => return Err(self.error_at("expected a WCET integer")),
                };
                self.expect(&Tok::RParen)?;
                Ok(CondExpr::Leaf {
                    label: name,
                    wcet: Ticks::new(wcet),
                })
            }
            Some(t) => {
                self.pos -= 1;
                Err(self.error_at(format!("expected a leaf, `par` or `if`, found {t}")))
            }
            None => Err(self.error_at("expected a leaf, `par` or `if`, found end of input")),
        }
    }

    fn branches(&mut self) -> Result<Vec<CondExpr>, ParseError> {
        self.expect(&Tok::LBrace)?;
        let mut out = vec![self.series()?];
        while self.peek() == Some(&Tok::Pipe) {
            self.next();
            out.push(self.series()?);
        }
        self.expect(&Tok::RBrace)?;
        Ok(out)
    }
}

/// Parses an `.hcond` expression.
///
/// # Errors
///
/// [`ParseError`] with 1-based line/column on malformed input (including
/// trailing garbage).
///
/// # Examples
///
/// ```
/// use hetrta_cond::text::parse_expr;
///
/// let e = parse_expr("a(2); if { b(3) | c(9) }; d(1)")?;
/// assert_eq!(e.realization_count(), 2);
/// assert_eq!(e.worst_case_workload().get(), 12); // 2 + max(3, 9) + 1
/// # Ok::<(), hetrta_cond::text::ParseError>(())
/// ```
pub fn parse_expr(src: &str) -> Result<CondExpr, ParseError> {
    let toks = Lexer {
        src,
        pos: 0,
        line: 1,
        col: 1,
    }
    .tokens()?;
    if toks.is_empty() {
        return Err(ParseError {
            line: 1,
            column: 1,
            message: "empty input".into(),
        });
    }
    let mut p = Parser { toks, pos: 0 };
    let expr = p.series()?;
    if p.pos < p.toks.len() {
        let t = &p.toks[p.pos];
        return Err(ParseError {
            line: t.1,
            column: t.2,
            message: format!("trailing input starting at {}", t.0),
        });
    }
    Ok(expr)
}

/// Renders an expression in canonical single-line `.hcond` form
/// (re-parseable; see the round-trip property tests).
#[must_use]
pub fn render_expr(expr: &CondExpr) -> String {
    let mut s = String::new();
    write_expr(expr, &mut s);
    s
}

fn write_expr(expr: &CondExpr, out: &mut String) {
    match expr {
        CondExpr::Leaf { label, wcet } => {
            out.push_str(label);
            out.push('(');
            out.push_str(&wcet.get().to_string());
            out.push(')');
        }
        CondExpr::Series(cs) => {
            for (i, c) in cs.iter().enumerate() {
                if i > 0 {
                    out.push_str("; ");
                }
                write_expr(c, out);
            }
        }
        CondExpr::Parallel(cs) | CondExpr::Conditional(cs) => {
            out.push_str(if matches!(expr, CondExpr::Parallel(_)) {
                "par { "
            } else {
                "if { "
            });
            for (i, c) in cs.iter().enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                write_expr(c, out);
            }
            out.push_str(" }");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_cond, CondGenParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parses_the_module_example() {
        let src = "# adaptive perception stage\n\
                   pre(4);\n\
                   if { par { kernel(26) | edge(11) | flow(9) } | soft_fallback(30) };\n\
                   fuse(3)";
        let e = parse_expr(src).unwrap();
        assert_eq!(e.realization_count(), 2);
        assert_eq!(e.worst_case_workload().get(), 53);
        assert_eq!(e.worst_case_length().get(), 37);
    }

    #[test]
    fn round_trip_is_stable_on_random_expressions() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let e = generate_cond(&CondGenParams::small(), &mut rng).unwrap();
            let text = render_expr(&e);
            let back = parse_expr(&text).unwrap();
            assert_eq!(back, e, "round-trip failed for: {text}");
            // Render of the reparse is identical (canonical form).
            assert_eq!(render_expr(&back), text);
        }
    }

    #[test]
    fn single_leaf_and_nesting() {
        assert_eq!(parse_expr("x(7)").unwrap(), CondExpr::leaf("x", 7));
        let e = parse_expr("par { if { a(1) | b(2) } | c(3) }").unwrap();
        assert_eq!(e.realization_count(), 2);
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse_expr("a(2);\nb(?)").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("unexpected character"));

        let err = parse_expr("a(2); if { b(1)").unwrap_err();
        assert!(err.message.contains("expected"), "{err}");

        let err = parse_expr("").unwrap_err();
        assert_eq!(err.message, "empty input");

        let err = parse_expr("a(2) b(3)").unwrap_err();
        assert!(err.message.contains("trailing input"), "{err}");

        let err = parse_expr("a(99999999999999999999)").unwrap_err();
        assert!(err.message.contains("out of range"));

        let err = parse_expr("par { }").unwrap_err();
        assert!(err.message.contains("expected a leaf"), "{err}");
    }

    #[test]
    fn keywords_are_reserved() {
        // `par(3)` parses `par` as a keyword, not a leaf name.
        assert!(parse_expr("par(3)").is_err());
        // But identifiers may contain them as substrings.
        assert!(parse_expr("parser(3)").is_ok());
        assert!(parse_expr("if_fast(3)").is_ok());
    }

    #[test]
    fn comments_and_whitespace_are_ignored() {
        let e = parse_expr("  a(1) ;# c\n\t b(2)  ").unwrap();
        assert_eq!(
            e,
            CondExpr::series(vec![CondExpr::leaf("a", 1), CondExpr::leaf("b", 2)])
        );
    }
}
