//! # hetrta-cond — conditional DAG tasks
//!
//! The conditional task model of *Melani et al., "Response-Time Analysis
//! of Conditional DAG Tasks in Multiprocessor Systems", ECRTS 2015* — the
//! paper's reference \[12\] and the second pillar of its related work —
//! combined with the heterogeneous offloading of the reproduced paper:
//!
//! * [`CondExpr`] — series-parallel expressions with **exclusive**
//!   conditional branches; DP for worst-case workload `W*` and worst-case
//!   critical path `len*`; expansion of any *realization* to a plain
//!   task-model DAG ([`expr`]);
//! * [`r_cond`] — the conditional-aware bound `len* + (W* − len*)/m`;
//!   [`r_cond_exact`] — per-realization maximum by enumeration;
//!   [`r_parallel_flattening`] — the naive all-branches baseline ([`rta`]);
//! * [`HetCondTask`] — a conditional task with an offloadable kernel:
//!   Theorem 1 on offloading realizations, Eq. 1 on host-only ones
//!   ([`het`]);
//! * [`generate_cond`] — random conditional expressions in the style of
//!   the paper's §5.1 generator ([`gen`]).
//!
//! ## Example
//!
//! ```
//! use hetrta_cond::{CondExpr, HetCondTask};
//! use hetrta_dag::Ticks;
//!
//! // pre ; if { (kernel ∥ filter) | fallback } ; post
//! let expr = CondExpr::series(vec![
//!     CondExpr::leaf("pre", 2),
//!     CondExpr::conditional(vec![
//!         CondExpr::parallel(vec![CondExpr::leaf("kernel", 12), CondExpr::leaf("filter", 5)]),
//!         CondExpr::leaf("fallback", 20),
//!     ]),
//!     CondExpr::leaf("post", 1),
//! ]);
//! let task = HetCondTask::new(expr, "kernel", Ticks::new(60), Ticks::new(40))?;
//! assert!(task.is_schedulable(2, 100)?);
//! # Ok::<(), hetrta_cond::CondError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
pub mod expr;
pub mod gen;
pub mod het;
pub mod rta;
pub mod text;

pub use error::CondError;
pub use expr::{CondExpr, Realization};
pub use gen::{generate_cond, CondGenParams};
pub use het::{HetCondTask, RealizationBound};
pub use rta::{r_cond, r_cond_exact, r_parallel_flattening};
pub use text::{parse_expr, render_expr};
