//! Heterogeneous conditional tasks: Theorem 1 across realizations.
//!
//! Combines the two extensions of the paper's model: a task with
//! **conditional branches** (reference \[12\]) *and* an **offloaded**
//! kernel. The offloaded leaf is named by label; realizations whose chosen
//! branches contain that leaf offload it (Algorithm 1 + Theorem 1 apply),
//! the others execute purely on the host (Eq. 1 applies). The task's bound
//! is the maximum over realizations — exact for enumerable structures,
//! with the conditional-aware DP bound [`r_cond`] as the
//! always-available conservative fallback (it charges `C_off` as host
//! work, i.e. ignores the heterogeneity benefit but never the risk).

use hetrta_core::{r_het, r_hom_dag, transform};
use hetrta_dag::{HeteroDagTask, Rational, Ticks};

use crate::expr::{expand_with_offload, CondExpr};
use crate::rta::r_cond;
use crate::CondError;

/// A conditional task with one offloadable kernel, `τ = <E, label, T, D>`.
#[derive(Debug, Clone)]
pub struct HetCondTask {
    expr: CondExpr,
    offload_label: String,
    period: Ticks,
    deadline: Ticks,
}

/// Per-realization analysis record.
#[derive(Debug, Clone)]
pub struct RealizationBound {
    /// The conditional choices of this realization.
    pub choices: Vec<usize>,
    /// `true` if the realization executes (and offloads) the kernel.
    pub offloads: bool,
    /// The sound response-time bound of the realization: Theorem 1
    /// (tight) when it offloads, Eq. 1 otherwise.
    pub bound: Rational,
}

impl HetCondTask {
    /// Creates the task, checking the offload label exists.
    ///
    /// # Errors
    ///
    /// - [`CondError::UnknownOffloadLabel`] if no leaf carries `label`;
    /// - validation errors from the expression.
    pub fn new(
        expr: CondExpr,
        label: impl Into<String>,
        period: Ticks,
        deadline: Ticks,
    ) -> Result<Self, CondError> {
        expr.validate()?;
        let label = label.into();
        if !has_leaf(&expr, &label) {
            return Err(CondError::UnknownOffloadLabel(label));
        }
        Ok(HetCondTask {
            expr,
            offload_label: label,
            period,
            deadline,
        })
    }

    /// The underlying expression.
    #[must_use]
    pub fn expr(&self) -> &CondExpr {
        &self.expr
    }

    /// The offloaded leaf's label.
    #[must_use]
    pub fn offload_label(&self) -> &str {
        &self.offload_label
    }

    /// Minimum inter-arrival time.
    #[must_use]
    pub fn period(&self) -> Ticks {
        self.period
    }

    /// Constrained relative deadline.
    #[must_use]
    pub fn deadline(&self) -> Ticks {
        self.deadline
    }

    /// Analyzes every realization (up to `cap`): Theorem 1 for offloading
    /// realizations, Eq. 1 for host-only ones.
    ///
    /// # Errors
    ///
    /// - [`CondError::TooManyRealizations`] beyond `cap`;
    /// - [`CondError::ZeroCores`] if `m == 0`;
    /// - expansion/analysis errors.
    pub fn analyze_realizations(
        &self,
        m: u64,
        cap: usize,
    ) -> Result<Vec<RealizationBound>, CondError> {
        if m == 0 {
            return Err(CondError::ZeroCores);
        }
        let choices = self
            .expr
            .enumerate_choices(cap)
            .ok_or(CondError::TooManyRealizations {
                count: self.expr.realization_count(),
                cap,
            })?;
        let mut out = Vec::with_capacity(choices.len());
        for c in choices {
            let r = expand_with_offload(&self.expr, &c, &self.offload_label)?;
            let (offloads, bound) = match r.offload {
                Some(off) => {
                    let task = HeteroDagTask::new(r.dag, off, self.period, self.deadline)
                        .map_err(CondError::Dag)?;
                    let t = transform(&task).map_err(analysis_err)?;
                    (true, r_het(&t, m).map_err(analysis_err)?.tight_value())
                }
                None => (false, r_hom_dag(&r.dag, m).map_err(analysis_err)?),
            };
            out.push(RealizationBound {
                choices: c,
                offloads,
                bound,
            });
        }
        Ok(out)
    }

    /// The heterogeneous conditional bound: `max` over realizations of
    /// the per-realization sound bound.
    ///
    /// # Errors
    ///
    /// See [`HetCondTask::analyze_realizations`].
    pub fn r_het_cond(&self, m: u64, cap: usize) -> Result<Rational, CondError> {
        Ok(self
            .analyze_realizations(m, cap)?
            .into_iter()
            .map(|r| r.bound)
            .fold(Rational::ZERO, Rational::max))
    }

    /// The conservative DP fallback: the conditional-aware homogeneous
    /// bound with `C_off` charged as host work. Works at any scale.
    ///
    /// # Errors
    ///
    /// See [`r_cond`].
    pub fn r_hom_cond(&self, m: u64) -> Result<Rational, CondError> {
        r_cond(&self.expr, m)
    }

    /// `true` if the task meets its deadline per the realization-exact
    /// analysis.
    ///
    /// # Errors
    ///
    /// See [`HetCondTask::analyze_realizations`].
    pub fn is_schedulable(&self, m: u64, cap: usize) -> Result<bool, CondError> {
        Ok(self.r_het_cond(m, cap)? <= self.deadline.to_rational())
    }
}

fn analysis_err(e: hetrta_core::AnalysisError) -> CondError {
    match e {
        hetrta_core::AnalysisError::ZeroCores => CondError::ZeroCores,
        hetrta_core::AnalysisError::Dag(d) => CondError::Dag(d),
        _ => CondError::ZeroCores,
    }
}

fn has_leaf(expr: &CondExpr, label: &str) -> bool {
    match expr {
        CondExpr::Leaf { label: l, .. } => l == label,
        CondExpr::Series(cs) | CondExpr::Parallel(cs) | CondExpr::Conditional(cs) => {
            cs.iter().any(|c| has_leaf(c, label))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `pre ; if { gpu-branch: (kernel ∥ filter) | cpu-branch: soft } ; post`
    fn vision() -> HetCondTask {
        let expr = CondExpr::series(vec![
            CondExpr::leaf("pre", 2),
            CondExpr::conditional(vec![
                CondExpr::parallel(vec![
                    CondExpr::leaf("kernel", 12),
                    CondExpr::leaf("filter", 5),
                ]),
                CondExpr::leaf("soft", 20),
            ]),
            CondExpr::leaf("post", 1),
        ]);
        HetCondTask::new(expr, "kernel", Ticks::new(60), Ticks::new(40)).unwrap()
    }

    #[test]
    fn realizations_split_by_offload_presence() {
        let t = vision();
        let rs = t.analyze_realizations(2, 100).unwrap();
        assert_eq!(rs.len(), 2);
        assert!(rs.iter().any(|r| r.offloads));
        assert!(rs.iter().any(|r| !r.offloads));
    }

    #[test]
    fn het_cond_bound_is_max_of_realizations() {
        let t = vision();
        let rs = t.analyze_realizations(2, 100).unwrap();
        let max = rs
            .iter()
            .map(|r| r.bound)
            .fold(Rational::ZERO, Rational::max);
        assert_eq!(t.r_het_cond(2, 100).unwrap(), max);
    }

    #[test]
    fn het_cond_at_most_dp_fallback() {
        // The fallback charges the kernel to the host, so it dominates.
        let t = vision();
        for m in [1u64, 2, 4, 8] {
            let het = t.r_het_cond(m, 100).unwrap();
            let dp = t.r_hom_cond(m).unwrap();
            assert!(het <= dp, "m = {m}: het {het} > dp {dp}");
        }
    }

    #[test]
    fn unknown_label_rejected() {
        let expr = CondExpr::leaf("only", 3);
        assert!(matches!(
            HetCondTask::new(expr, "kernel", Ticks::new(10), Ticks::new(10)),
            Err(CondError::UnknownOffloadLabel(_))
        ));
    }

    #[test]
    fn schedulability_uses_deadline() {
        let t = vision();
        // Bound on 2 cores is well below 40.
        assert!(t.is_schedulable(2, 100).unwrap());
        let expr = t.expr().clone();
        let tight = HetCondTask::new(expr, "kernel", Ticks::new(60), Ticks::new(5)).unwrap();
        assert!(!tight.is_schedulable(2, 100).unwrap());
    }

    #[test]
    fn accessors() {
        let t = vision();
        assert_eq!(t.offload_label(), "kernel");
        assert_eq!(t.period(), Ticks::new(60));
        assert_eq!(t.deadline(), Ticks::new(40));
        assert_eq!(t.expr().realization_count(), 2);
    }

    #[test]
    fn zero_cores_rejected() {
        let t = vision();
        assert_eq!(
            t.analyze_realizations(0, 10).unwrap_err(),
            CondError::ZeroCores
        );
    }
}
