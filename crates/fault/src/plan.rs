//! The seeded fault plan: keyed injection sites, one deterministic
//! xoshiro-style stream per site, and a replayable event log.
//!
//! Every injection point in the workspace names a **site** (a short
//! dotted string like `disk.write.enospc` or `wire.corrupt`) and asks
//! the plan whether this *trial* fires. Each site owns its own RNG
//! stream, seeded from `splitmix64(seed ^ fnv64(site))`, and counts its
//! trials — so the sequence of fired trials per site is a pure function
//! of the seed and the number of times the site is exercised, no matter
//! how threads interleave across sites. Two runs with the same seed and
//! the same per-site trial counts produce identical fault-event
//! sequences ([`FaultPlan::report`]), which is what makes failure
//! behavior testable instead of flaky.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

use hetrta_api::wire::{fnv64, FrameFaults};
use hetrta_obs::MetricsRegistry;

/// Default injection probability: 1 in 16 trials per site.
const DEFAULT_RATE: (u32, u32) = (1, 16);

/// One injected fault, as recorded in the plan's log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// The injection site that fired.
    pub site: String,
    /// Zero-based trial index *within the site's stream* that fired.
    pub trial: u64,
    /// The raw random word drawn for the trial (hooks derive fault
    /// parameters — offsets, byte indices, delays — from these bits).
    pub bits: u64,
}

/// Per-site stream state: an xoshiro256++ generator plus trial counts.
#[derive(Debug)]
struct SiteState {
    s: [u64; 4],
    trials: u64,
    fired: u64,
}

impl SiteState {
    fn new(seed: u64, site: &str) -> SiteState {
        // Seed the stream from the plan seed and the site name so every
        // site draws from an independent deterministic sequence.
        let mut sm = seed ^ fnv64(site.as_bytes());
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        SiteState {
            s: [next(), next(), next(), next()],
            trials: 0,
            fired: 0,
        }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[derive(Debug, Default)]
struct PlanInner {
    sites: BTreeMap<String, SiteState>,
    log: Vec<FaultEvent>,
}

/// A seeded, deterministic fault-injection plan.
///
/// Cheap when absent: every hook takes an `Option<&FaultPlan>` (or an
/// `Option<Arc<FaultPlan>>` field) and the disabled path is a `None`
/// check. When present, [`FaultPlan::fires`] decides injection per
/// (site, trial) and logs what fired; counters surface as
/// `fault.<site>` through a bound [`MetricsRegistry`].
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rate: (u32, u32),
    /// When set, only these sites may fire (others are inert — their
    /// streams do not even advance, so restricting one site leaves its
    /// sequence identical to an unrestricted run's for that site).
    only: Option<std::collections::BTreeSet<String>>,
    inner: Mutex<PlanInner>,
    metrics: Mutex<Option<std::sync::Arc<MetricsRegistry>>>,
}

impl FaultPlan {
    /// A plan firing with the default rate (1/16 per trial).
    #[must_use]
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan::with_rate(seed, DEFAULT_RATE.0, DEFAULT_RATE.1)
    }

    /// A plan firing `num` out of every `den` trials (in expectation).
    ///
    /// # Panics
    ///
    /// Panics when `den` is zero.
    #[must_use]
    pub fn with_rate(seed: u64, num: u32, den: u32) -> FaultPlan {
        assert!(den > 0, "fault rate denominator must be positive");
        FaultPlan {
            seed,
            rate: (num, den),
            only: None,
            inner: Mutex::new(PlanInner::default()),
            metrics: Mutex::new(None),
        }
    }

    /// Restricts this plan to the named sites; every other site becomes
    /// inert. For targeting one failure mode in tests or drills.
    #[must_use]
    pub fn restrict_to<S: Into<String>>(mut self, sites: impl IntoIterator<Item = S>) -> FaultPlan {
        self.only = Some(sites.into_iter().map(Into::into).collect());
        self
    }

    /// The seed this plan was built from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Binds `fault.injected` and per-site `fault.<site>` counters to
    /// `metrics` (counters for sites that fire later register lazily).
    pub fn bind_observability(&self, metrics: &std::sync::Arc<MetricsRegistry>) {
        let _ = metrics.counter("fault.injected");
        *lock(&self.metrics) = Some(std::sync::Arc::clone(metrics));
    }

    /// Runs one trial at `site`: returns `Some(bits)` when the fault
    /// fires (logging the event), `None` otherwise. The per-site stream
    /// advances exactly one word per trial either way.
    pub fn fires(&self, site: &str) -> Option<u64> {
        let (num, den) = self.rate;
        self.trial(site, |bits| bits % u64::from(den) < u64::from(num))
    }

    /// An always-firing deterministic draw at `site` — for hooks that
    /// need seeded parameters rather than a fire/no-fire decision (e.g.
    /// picking which worker a kill plan targets).
    pub fn draw(&self, site: &str) -> u64 {
        self.trial(site, |_| true).unwrap_or_default()
    }

    fn trial(&self, site: &str, decide: impl Fn(u64) -> bool) -> Option<u64> {
        if self.only.as_ref().is_some_and(|only| !only.contains(site)) {
            return None;
        }
        let seed = self.seed;
        let mut inner = lock(&self.inner);
        let state = inner
            .sites
            .entry(site.to_owned())
            .or_insert_with(|| SiteState::new(seed, site));
        let trial = state.trials;
        state.trials += 1;
        let bits = state.next_u64();
        if !decide(bits) {
            return None;
        }
        state.fired += 1;
        inner.log.push(FaultEvent {
            site: site.to_owned(),
            trial,
            bits,
        });
        drop(inner);
        if let Some(metrics) = lock(&self.metrics).as_ref() {
            metrics.counter("fault.injected").incr();
            metrics.counter(&format!("fault.{site}")).incr();
        }
        Some(bits)
    }

    /// Total faults injected so far.
    #[must_use]
    pub fn injected(&self) -> u64 {
        lock(&self.inner).log.len() as u64
    }

    /// The fault log so far, sorted by `(site, trial)` so two same-seed
    /// runs compare equal regardless of thread interleaving.
    #[must_use]
    pub fn events(&self) -> Vec<FaultEvent> {
        let mut events = lock(&self.inner).log.clone();
        events.sort_by(|a, b| (a.site.as_str(), a.trial).cmp(&(b.site.as_str(), b.trial)));
        events
    }

    /// A deterministic text rendering of the fault log — one
    /// `fault <site> trial=<n> bits=<hex>` line per event, `(site,
    /// trial)`-ordered. Two runs with the same seed (and the same
    /// per-site workload) render identically; the CLI prints this under
    /// `--chaos` so the acceptance check is a `diff`.
    #[must_use]
    pub fn report(&self) -> String {
        use std::fmt::Write as _;

        let events = self.events();
        let mut out = format!(
            "chaos seed {:#x}: {} fault(s) injected\n",
            self.seed,
            events.len()
        );
        for event in &events {
            let _ = writeln!(
                out,
                "fault {} trial={} bits={:016x}",
                event.site, event.trial, event.bits
            );
        }
        out
    }
}

/// Wire-level faults: truncate or bitflip outgoing frames, stall reads.
/// Applied only where a codec opts in (the dist link under `--chaos`).
impl FrameFaults for FaultPlan {
    fn corrupt_frame(&self, frame: &mut Vec<u8>) -> bool {
        if frame.is_empty() {
            return false;
        }
        if let Some(bits) = self.fires("wire.truncate") {
            // Keep at least one byte so the peer sees a mid-frame cut,
            // not a clean Eof (which would mask the defect as a hangup).
            let keep = 1 + (bits as usize) % frame.len();
            frame.truncate(keep);
            return true;
        }
        if let Some(bits) = self.fires("wire.corrupt") {
            let index = (bits as usize) % frame.len();
            frame[index] ^= 1 << ((bits >> 32) % 8);
            return true;
        }
        false
    }

    fn read_stall(&self) -> Option<Duration> {
        self.fires("wire.stall")
            .map(|bits| Duration::from_millis(1 + bits % 20))
    }
}

/// Locks a mutex, recovering from poisoning (a panicked holder must not
/// cascade through the fault plane itself).
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_event_sequence() {
        let runs: Vec<Vec<FaultEvent>> = (0..2)
            .map(|_| {
                let plan = FaultPlan::with_rate(42, 1, 4);
                for _ in 0..200 {
                    plan.fires("disk.write.enospc");
                    plan.fires("wire.corrupt");
                }
                plan.events()
            })
            .collect();
        assert!(!runs[0].is_empty(), "rate 1/4 over 200 trials must fire");
        assert_eq!(runs[0], runs[1]);

        let other = FaultPlan::with_rate(43, 1, 4);
        for _ in 0..200 {
            other.fires("disk.write.enospc");
            other.fires("wire.corrupt");
        }
        assert_ne!(runs[0], other.events(), "different seed, different plan");
    }

    #[test]
    fn sites_draw_independent_streams() {
        let plan = FaultPlan::with_rate(7, 1, 1);
        let a = plan.draw("site.a");
        let b = plan.draw("site.b");
        assert_ne!(a, b);
        // Re-seeding reproduces both streams from scratch.
        let again = FaultPlan::with_rate(7, 1, 1);
        assert_eq!(again.draw("site.a"), a);
        assert_eq!(again.draw("site.b"), b);
    }

    #[test]
    fn report_is_deterministic_under_interleaving() {
        let render = |order: &[&str]| {
            let plan = FaultPlan::with_rate(11, 1, 2);
            for &site in order {
                plan.fires(site);
            }
            plan.report()
        };
        // Same per-site trial counts, different global interleaving.
        let a = render(&["x", "y", "x", "y", "x", "y"]);
        let b = render(&["x", "x", "x", "y", "y", "y"]);
        assert_eq!(a, b);
        assert!(a.starts_with("chaos seed 0xb:"), "{a}");
    }

    #[test]
    fn frame_faults_produce_decodable_defects() {
        use hetrta_api::wire::{decode_frame, encode_frame};

        let plan = FaultPlan::with_rate(3, 1, 1); // always fire
        let mut truncated = encode_frame(0x10, b"some payload");
        assert!(plan.corrupt_frame(&mut truncated));
        assert!(decode_frame(&truncated).is_err(), "defect must be typed");
        assert!(plan.read_stall().is_some());
    }

    #[test]
    fn restriction_makes_other_sites_inert() {
        let plan = FaultPlan::with_rate(5, 1, 1).restrict_to(["a.only"]);
        assert!(plan.fires("a.only").is_some());
        assert!(plan.fires("b.other").is_none());
        assert_eq!(plan.events().len(), 1);
    }

    #[test]
    fn counters_export_through_a_registry() {
        let metrics = std::sync::Arc::new(MetricsRegistry::new());
        let plan = FaultPlan::with_rate(1, 1, 1);
        plan.bind_observability(&metrics);
        plan.fires("disk.write.enospc");
        plan.fires("disk.write.enospc");
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("fault.injected"), Some(2));
        assert_eq!(snap.counter("fault.disk.write.enospc"), Some(2));
    }
}
