//! A durable, append-only record log with FNV-64 checksummed lines and
//! atomic tmp+rename segment rotation — the storage substrate under the
//! engine's sweep journal.
//!
//! Layout under the log directory:
//!
//! ```text
//! <dir>/segment-0000.log    sealed (atomically renamed into place)
//! <dir>/segment-0001.log    sealed
//! <dir>/active.log          currently appended, flushed per record
//! ```
//!
//! Each record is one line, `"<fnv64:016x> <payload>\n"`, payload
//! newline-free (use [`escape`]/[`unescape`] to embed multi-line text).
//! Readers walk sealed segments in order then the active tail, and stop
//! at the first corrupt or truncated record — a torn tail from a crash
//! loses at most the record being written, never earlier history.

use std::fs;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use hetrta_api::wire::fnv64;

/// Errors from opening, appending to, or reading a record log.
#[derive(Debug)]
pub enum RecordError {
    /// An underlying filesystem operation failed.
    Io(String),
    /// A payload handed to [`RecordLog::append`] contained a newline.
    PayloadNewline,
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Io(message) => write!(f, "record log I/O: {message}"),
            RecordError::PayloadNewline => {
                write!(f, "record payload must be newline-free (escape it first)")
            }
        }
    }
}

impl std::error::Error for RecordError {}

impl From<std::io::Error> for RecordError {
    fn from(error: std::io::Error) -> RecordError {
        RecordError::Io(error.to_string())
    }
}

/// Name of the unsealed tail file.
const ACTIVE: &str = "active.log";

/// A checksummed append-only log over a directory of segments.
#[derive(Debug)]
pub struct RecordLog {
    dir: PathBuf,
    writer: Option<BufWriter<fs::File>>,
    next_segment: u32,
    appended: u64,
}

impl RecordLog {
    /// Opens (creating if needed) the log at `dir` for appending.
    /// Existing sealed segments are preserved; new appends go to the
    /// active tail.
    pub fn open(dir: &Path) -> Result<RecordLog, RecordError> {
        fs::create_dir_all(dir)?;
        let next_segment = sealed_segments(dir)?
            .last()
            .and_then(|path| segment_index(path))
            .map_or(0, |index| index + 1);
        Ok(RecordLog {
            dir: dir.to_owned(),
            writer: None,
            next_segment,
            appended: 0,
        })
    }

    /// The directory this log lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records appended through this handle (not counting prior runs).
    #[must_use]
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Appends one checksummed record and flushes it to the OS. The
    /// payload must be newline-free — embed structured text with
    /// [`escape`].
    pub fn append(&mut self, payload: &str) -> Result<(), RecordError> {
        if payload.contains('\n') {
            return Err(RecordError::PayloadNewline);
        }
        if self.writer.is_none() {
            let file = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.dir.join(ACTIVE))?;
            self.writer = Some(BufWriter::new(file));
        }
        let writer = self.writer.as_mut().expect("writer just ensured");
        writeln!(writer, "{:016x} {payload}", fnv64(payload.as_bytes()))?;
        writer.flush()?;
        self.appended += 1;
        Ok(())
    }

    /// Seals the active tail: fsyncs it, then atomically renames it to
    /// the next `segment-NNNN.log`. A no-op when nothing is active.
    /// Subsequent appends start a fresh tail.
    pub fn seal(&mut self) -> Result<(), RecordError> {
        let Some(writer) = self.writer.take() else {
            return Ok(());
        };
        let file = writer
            .into_inner()
            .map_err(|e| RecordError::Io(e.to_string()))?;
        file.sync_all()?;
        drop(file);
        let sealed = self
            .dir
            .join(format!("segment-{:04}.log", self.next_segment));
        fs::rename(self.dir.join(ACTIVE), sealed)?;
        self.next_segment += 1;
        Ok(())
    }

    /// Reads every valid record payload in order: sealed segments first,
    /// then the active tail. Reading stops at the first record whose
    /// checksum or shape doesn't verify — a torn tail truncates the
    /// replay rather than corrupting it.
    pub fn read_all(dir: &Path) -> Result<Vec<String>, RecordError> {
        let mut records = Vec::new();
        if !dir.exists() {
            return Ok(records);
        }
        for path in sealed_segments(dir)? {
            if !read_file_records(&path, &mut records)? {
                return Ok(records);
            }
        }
        let active = dir.join(ACTIVE);
        if active.exists() {
            read_file_records(&active, &mut records)?;
        }
        Ok(records)
    }
}

/// Reads records from one file into `out`; returns `false` when a
/// corrupt record stopped the scan early.
fn read_file_records(path: &Path, out: &mut Vec<String>) -> Result<bool, RecordError> {
    let text = fs::read_to_string(path)?;
    for line in text.split('\n') {
        if line.is_empty() {
            continue;
        }
        let Some((sum, payload)) = line.split_once(' ') else {
            return Ok(false);
        };
        let Ok(sum) = u64::from_str_radix(sum, 16) else {
            return Ok(false);
        };
        if sum != fnv64(payload.as_bytes()) {
            return Ok(false);
        }
        out.push(payload.to_owned());
    }
    Ok(true)
}

/// Sealed segment paths under `dir`, in index order.
fn sealed_segments(dir: &Path) -> Result<Vec<PathBuf>, RecordError> {
    let mut segments: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|path| segment_index(path).is_some())
        .collect();
    segments.sort();
    Ok(segments)
}

/// Parses `segment-NNNN.log` into its index; `None` for other files.
fn segment_index(path: &Path) -> Option<u32> {
    let name = path.file_name()?.to_str()?;
    let rest = name.strip_prefix("segment-")?.strip_suffix(".log")?;
    rest.parse().ok()
}

/// Escapes arbitrary text into a newline-free payload: `\` becomes
/// `\\` and newline becomes the two characters `\n`.
#[must_use]
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Inverts [`escape`]. Unknown escape sequences pass through verbatim
/// (the checksum already vouches for the record; this never fails).
#[must_use]
pub fn unescape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(ch) = chars.next() {
        if ch != '\\' {
            out.push(ch);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hetrta-record-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_across_seals() {
        let dir = temp_dir("roundtrip");
        let mut log = RecordLog::open(&dir).unwrap();
        log.append("alpha 1").unwrap();
        log.append("beta 2").unwrap();
        log.seal().unwrap();
        log.append("gamma 3").unwrap();
        assert_eq!(log.appended(), 3);
        drop(log);

        assert_eq!(
            RecordLog::read_all(&dir).unwrap(),
            vec!["alpha 1", "beta 2", "gamma 3"]
        );

        // Re-opening appends after the sealed segments.
        let mut log = RecordLog::open(&dir).unwrap();
        log.append("delta 4").unwrap();
        log.seal().unwrap();
        drop(log);
        assert_eq!(
            RecordLog::read_all(&dir).unwrap(),
            vec!["alpha 1", "beta 2", "gamma 3", "delta 4"]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_stops_replay_without_error() {
        let dir = temp_dir("torn");
        let mut log = RecordLog::open(&dir).unwrap();
        log.append("good 1").unwrap();
        log.append("good 2").unwrap();
        drop(log);

        // Tear the tail mid-record, as a crash during append would.
        let active = dir.join(ACTIVE);
        let text = fs::read_to_string(&active).unwrap();
        fs::write(&active, &text[..text.len() - 5]).unwrap();

        assert_eq!(RecordLog::read_all(&dir).unwrap(), vec!["good 1"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checksum_stops_replay() {
        let dir = temp_dir("corrupt");
        let mut log = RecordLog::open(&dir).unwrap();
        log.append("kept").unwrap();
        log.append("mangled").unwrap();
        log.append("unreachable").unwrap();
        drop(log);

        let active = dir.join(ACTIVE);
        let text = fs::read_to_string(&active).unwrap();
        let flipped: String = text.replacen("mangled", "mangLed", 1);
        fs::write(&active, flipped).unwrap();

        assert_eq!(RecordLog::read_all(&dir).unwrap(), vec!["kept"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn newline_payload_rejected() {
        let dir = temp_dir("newline");
        let mut log = RecordLog::open(&dir).unwrap();
        assert!(matches!(
            log.append("two\nlines"),
            Err(RecordError::PayloadNewline)
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn escape_roundtrips() {
        for text in [
            "plain",
            "with\nnewline",
            "back\\slash",
            "both\\\nmixed\n\\",
            "",
        ] {
            let escaped = escape(text);
            assert!(!escaped.contains('\n'));
            assert_eq!(unescape(&escaped), text);
        }
    }

    #[test]
    fn missing_dir_reads_empty() {
        let dir = temp_dir("missing");
        assert!(RecordLog::read_all(&dir).unwrap().is_empty());
    }
}
