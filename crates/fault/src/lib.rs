//! hetrta-fault: deterministic fault injection and durable record logs.
//!
//! Two halves of one robustness story:
//!
//! - [`FaultPlan`] — a seeded, site-keyed fault-injection plane. Hooks
//!   in the disk cache, wire codecs, and dist process management ask
//!   `plan.fires("site.name")`; the answer is a pure function of the
//!   seed and the site's trial count, so the same `--chaos SEED`
//!   reproduces the same fault sequence (and therefore the same
//!   recovery) run after run.
//! - [`RecordLog`] — an append-only, FNV-64 checksummed, atomically
//!   sealed segment log. The engine's sweep journal builds on it to
//!   make sweeps crash-safe: done jobs and aggregate keyframes are
//!   durable, and a torn tail from a crash costs at most the record
//!   in flight.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod plan;
mod record;

pub use plan::{FaultEvent, FaultPlan};
pub use record::{escape, unescape, RecordError, RecordLog};
