//! Property-based tests for the DAG substrate.

use hetrta_dag::algo::{
    count_paths, is_acyclic, topological_order, transitive, CriticalPath, Reachability,
};
use hetrta_dag::{BitSet, Dag, NodeId, Rational, Ticks};
use proptest::prelude::*;

/// Strategy: a random DAG over `n ∈ [1, 24]` nodes where each forward pair
/// `(i, j)`, `i < j`, is an edge with probability ~`density`. Forward-only
/// edges guarantee acyclicity by construction.
fn arb_dag() -> impl Strategy<Value = Dag> {
    (
        1usize..24,
        proptest::collection::vec(0u8..100, 0..600),
        proptest::collection::vec(1u64..50, 1..24),
    )
        .prop_map(|(n, edge_coins, wcets)| {
            let mut dag = Dag::new();
            let ids: Vec<NodeId> = (0..n)
                .map(|i| dag.add_node(Ticks::new(wcets[i % wcets.len()])))
                .collect();
            let mut coin = edge_coins.into_iter().cycle();
            for i in 0..n {
                for j in (i + 1)..n {
                    if coin.next().unwrap_or(0) < 30 {
                        dag.add_edge(ids[i], ids[j]).unwrap();
                    }
                }
            }
            dag
        })
}

proptest! {
    #[test]
    fn forward_construction_is_acyclic(dag in arb_dag()) {
        prop_assert!(is_acyclic(&dag));
    }

    #[test]
    fn topological_order_respects_all_edges(dag in arb_dag()) {
        let order = topological_order(&dag).unwrap();
        prop_assert_eq!(order.len(), dag.node_count());
        let mut pos = vec![0usize; dag.node_count()];
        for (p, &v) in order.iter().enumerate() {
            pos[v.index()] = p;
        }
        for (f, t) in dag.edges() {
            prop_assert!(pos[f.index()] < pos[t.index()]);
        }
    }

    #[test]
    fn reachability_matches_dfs(dag in arb_dag()) {
        let r = Reachability::of(&dag).unwrap();
        for a in dag.node_ids() {
            for b in dag.node_ids() {
                if a == b { continue; }
                prop_assert_eq!(r.is_ordered_before(a, b), dag.reaches(a, b));
            }
        }
    }

    #[test]
    fn parallel_ancestor_descendant_partition(dag in arb_dag()) {
        // For every v: {v} ∪ Pred(v) ∪ Succ(v) ∪ Par(v) = V, pairwise disjoint.
        let r = Reachability::of(&dag).unwrap();
        for v in dag.node_ids() {
            let anc = r.ancestors(v);
            let desc = r.descendants(v);
            let par = r.parallel(v);
            prop_assert!(anc.is_disjoint(desc));
            prop_assert!(anc.is_disjoint(&par));
            prop_assert!(desc.is_disjoint(&par));
            prop_assert!(!par.contains(v));
            prop_assert_eq!(anc.len() + desc.len() + par.len() + 1, dag.node_count());
        }
    }

    #[test]
    fn critical_path_dominates_every_enumerated_path(dag in arb_dag()) {
        let cp = CriticalPath::of(&dag);
        let paths = hetrta_dag::algo::enumerate_paths(&dag, 200).unwrap().paths;
        for p in paths {
            let len: Ticks = p.iter().map(|&v| dag.wcet(v)).sum();
            prop_assert!(len <= cp.length());
        }
    }

    #[test]
    fn critical_path_length_bounded_by_volume(dag in arb_dag()) {
        let cp = CriticalPath::of(&dag);
        prop_assert!(cp.length() <= dag.volume());
        // and at least the largest single WCET
        let max_wcet = dag.node_ids().map(|v| dag.wcet(v)).max().unwrap();
        prop_assert!(cp.length() >= max_wcet);
    }

    #[test]
    fn head_tail_consistency(dag in arb_dag()) {
        let cp = CriticalPath::of(&dag);
        for v in dag.node_ids() {
            // head/tail include the node's own WCET
            prop_assert!(cp.head(v) >= dag.wcet(v));
            prop_assert!(cp.tail(v) >= dag.wcet(v));
            prop_assert!(cp.through(v, &dag) <= cp.length());
        }
        // at least one node attains len(G)
        prop_assert!(dag.node_ids().any(|v| cp.on_critical_path(v, &dag)));
    }

    #[test]
    fn transitive_reduction_preserves_reachability(dag in arb_dag()) {
        let reduced = transitive::transitive_reduction(&dag).unwrap();
        prop_assert!(transitive::is_transitively_reduced(&reduced).unwrap());
        let r1 = Reachability::of(&dag).unwrap();
        let r2 = Reachability::of(&reduced).unwrap();
        for a in dag.node_ids() {
            for b in dag.node_ids() {
                if a == b { continue; }
                prop_assert_eq!(
                    r1.is_ordered_before(a, b),
                    r2.is_ordered_before(a, b),
                    "reachability changed for {} -> {}", a, b
                );
            }
        }
    }

    #[test]
    fn closure_free_reduction_matches_bitset_closure_edge_for_edge(dag in arb_dag()) {
        // The closure-free structural path (levels + pruned mark-DFS) must
        // be indistinguishable from the all-pairs bitset-closure reference:
        // same witness edge, same surviving edges in the same CSR segment
        // order, bitwise.
        prop_assert_eq!(
            transitive::find_transitive_edge(&dag).unwrap(),
            transitive::find_transitive_edge_via_closure(&dag).unwrap()
        );
        let fast = transitive::transitive_reduction(&dag).unwrap();
        let slow = transitive::transitive_reduction_via_closure(&dag).unwrap();
        prop_assert_eq!(fast.node_count(), slow.node_count());
        prop_assert_eq!(fast.edge_count(), slow.edge_count());
        for v in fast.node_ids() {
            prop_assert_eq!(fast.successors(v), slow.successors(v));
            prop_assert_eq!(fast.predecessors(v), slow.predecessors(v));
        }
    }

    #[test]
    fn transitive_reduction_preserves_critical_path(dag in arb_dag()) {
        // Longest paths never use transitive shortcuts (WCETs are ≥ 1).
        let reduced = transitive::transitive_reduction(&dag).unwrap();
        prop_assert_eq!(CriticalPath::of(&reduced).length(), CriticalPath::of(&dag).length());
    }

    #[test]
    fn induced_subgraph_volume_matches_set(dag in arb_dag(), seed in 0u64..1000) {
        let mut set = BitSet::new(dag.node_count());
        for v in dag.node_ids() {
            if (v.index() as u64).wrapping_mul(2654435761).wrapping_add(seed) % 3 == 0 {
                set.insert(v);
            }
        }
        let (sub, mapping) = dag.induced_subgraph(&set);
        prop_assert_eq!(sub.node_count(), set.len());
        prop_assert_eq!(sub.volume(), dag.volume_of(&set));
        // every sub edge maps back to an original edge
        for (f, t) in sub.edges() {
            prop_assert!(dag.has_edge(mapping[f.index()], mapping[t.index()]));
        }
        prop_assert!(is_acyclic(&sub));
    }

    #[test]
    fn path_counts_are_monotone_under_edge_removal(dag in arb_dag()) {
        let sources = dag.sources();
        let sinks = dag.sinks();
        let (src, sink) = (sources[0], sinks[sinks.len() - 1]);
        let full = count_paths(&dag, src, sink).unwrap();
        let mut pruned = dag.clone();
        if let Some((f, t)) = dag.edges().next() {
            pruned.remove_edge(f, t).unwrap();
            let fewer = count_paths(&pruned, src, sink).unwrap();
            prop_assert!(fewer <= full);
        }
    }
}

proptest! {
    #[test]
    fn rational_field_laws(an in -1000i128..1000, ad in 1i128..50, bn in -1000i128..1000, bd in 1i128..50, cn in -1000i128..1000, cd in 1i128..50) {
        let a = Rational::new(an, ad);
        let b = Rational::new(bn, bd);
        let c = Rational::new(cn, cd);
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a - a, Rational::ZERO);
        if !b.is_zero() {
            prop_assert_eq!(a / b * b, a);
        }
    }

    #[test]
    fn rational_order_is_total_and_compatible(an in -100i128..100, ad in 1i128..20, bn in -100i128..100, bd in 1i128..20) {
        let a = Rational::new(an, ad);
        let b = Rational::new(bn, bd);
        prop_assert_eq!(a < b, b > a);
        if a <= b {
            let d = b - a;
            prop_assert!(!d.is_negative());
            prop_assert!(a.to_f64() <= b.to_f64() + 1e-9);
        }
    }

    #[test]
    fn rational_floor_ceil_bracket(an in -10000i128..10000, ad in 1i128..100) {
        let a = Rational::new(an, ad);
        let f = Rational::from_integer(a.floor());
        let c = Rational::from_integer(a.ceil());
        prop_assert!(f <= a && a <= c);
        prop_assert!((c - f) <= Rational::ONE);
        if a.is_integer() {
            prop_assert_eq!(a.floor(), a.ceil());
        }
    }
}

proptest! {
    #[test]
    fn bitset_roundtrip(indices in proptest::collection::btree_set(0usize..500, 0..60)) {
        let mut s = BitSet::new(500);
        for &i in &indices {
            prop_assert!(s.insert(NodeId::from_index(i)));
        }
        prop_assert_eq!(s.len(), indices.len());
        let got: Vec<usize> = s.iter().map(|n| n.index()).collect();
        let want: Vec<usize> = indices.iter().copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bitset_demorgan(xs in proptest::collection::btree_set(0usize..128, 0..40), ys in proptest::collection::btree_set(0usize..128, 0..40)) {
        let mut a = BitSet::new(128);
        let mut b = BitSet::new(128);
        a.extend(xs.iter().map(|&i| NodeId::from_index(i)));
        b.extend(ys.iter().map(|&i| NodeId::from_index(i)));
        // |A ∪ B| + |A ∩ B| = |A| + |B|
        let mut u = a.clone();
        u.union_with(&b);
        let mut i = a.clone();
        i.intersect_with(&b);
        prop_assert_eq!(u.len() + i.len(), a.len() + b.len());
        // A \ B ⊆ A and disjoint from B
        let mut d = a.clone();
        d.difference_with(&b);
        prop_assert!(d.is_subset(&a));
        prop_assert!(d.is_disjoint(&b));
    }
}

mod io_roundtrip {
    use hetrta_dag::io::{parse_task, render_task, TaskKind};
    use hetrta_dag::{Dag, HeteroDagTask, NodeId, Ticks};
    use proptest::prelude::*;

    /// Random single-source/single-sink DAG without transitive edges: built
    /// as a random fork-join-ish layering, then validated.
    fn arb_task() -> impl Strategy<Value = HeteroDagTask> {
        (
            2usize..8,
            proptest::collection::vec(1u64..40, 2..8),
            0usize..100,
        )
            .prop_map(|(width, wcets, off_pick)| {
                let mut dag = Dag::new();
                let src = dag.add_labeled_node("src", Ticks::new(wcets[0]));
                let sink = dag.add_labeled_node("sink", Ticks::new(wcets[1 % wcets.len()]));
                let mut mids = Vec::new();
                for i in 0..width {
                    let v =
                        dag.add_labeled_node(format!("mid{i}"), Ticks::new(wcets[i % wcets.len()]));
                    dag.add_edge(src, v).unwrap();
                    dag.add_edge(v, sink).unwrap();
                    mids.push(v);
                }
                let off = mids[off_pick % mids.len()];
                let vol = dag.volume();
                HeteroDagTask::new(dag, off, vol, vol).unwrap()
            })
    }

    proptest! {
        #[test]
        fn render_parse_roundtrip(task in arb_task()) {
            let text = render_task(&task);
            let parsed = parse_task(&text).unwrap();
            let TaskKind::Heterogeneous(task2) = parsed.task else {
                return Err(TestCaseError::fail("offload lost in roundtrip"));
            };
            prop_assert_eq!(task.volume(), task2.volume());
            prop_assert_eq!(task.c_off(), task2.c_off());
            prop_assert_eq!(task.dag().node_count(), task2.dag().node_count());
            prop_assert_eq!(task.dag().edge_count(), task2.dag().edge_count());
            prop_assert_eq!(task.period(), task2.period());
            prop_assert_eq!(task.deadline(), task2.deadline());
            // edge structure preserved up to renaming: compare sorted WCET
            // pairs across edges
            let pairs = |d: &Dag| {
                let mut v: Vec<(u64, u64)> = d
                    .edges()
                    .map(|(a, b)| (d.wcet(a).get(), d.wcet(b).get()))
                    .collect();
                v.sort_unstable();
                v
            };
            prop_assert_eq!(pairs(task.dag()), pairs(task2.dag()));
            let _ = NodeId::from_index(0);
        }
    }
}

// ------------------------------------------------------------------------
// Builder-first freeze parity: `DagBuilder::build`'s single-pass freeze
// (including the mutation-free dummy-terminal normalization) must equal
// the legacy path — incremental `add_edge` insertion on the frozen graph
// plus post-freeze dummy mutation — bitwise, adjacency order included.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn builder_dummy_normalization_matches_legacy_mutation(
        uppers in 1usize..6,
        lowers in 1usize..6,
        edge_coins in proptest::collection::vec(0u8..100, 1..64),
        wcets in proptest::collection::vec(1u64..50, 1..12),
    ) {
        // A random bipartite graph: upper→lower edges only, so it is
        // acyclic and transitively reduced by construction, but usually
        // has multiple sources and sinks — the dummy-normalization case.
        let n = uppers + lowers;
        let mut coin = edge_coins.iter().copied().cycle();
        let mut edges = Vec::new();
        for u in 0..uppers {
            for l in 0..lowers {
                if coin.next().unwrap_or(0) < 40 {
                    edges.push((NodeId::from_index(u), NodeId::from_index(uppers + l)));
                }
            }
        }

        // Builder-first path.
        let mut b = hetrta_dag::DagBuilder::new();
        for i in 0..n {
            b.node(format!("v{i}"), Ticks::new(wcets[i % wcets.len()]));
        }
        b.edges(edges.iter().copied()).unwrap();
        b.add_dummy_terminals();
        let built = b.build().unwrap();

        // Legacy path: freeze the raw graph via incremental insertion,
        // then mutate the dummy terminals on.
        let mut legacy = Dag::new();
        for i in 0..n {
            legacy.add_labeled_node(format!("v{i}"), Ticks::new(wcets[i % wcets.len()]));
        }
        for &(f, t) in &edges {
            legacy.add_edge(f, t).unwrap();
        }
        let sources = legacy.sources();
        if sources.len() > 1 {
            let src = legacy.add_labeled_node("src", Ticks::ZERO);
            for s in sources {
                legacy.add_edge(src, s).unwrap();
            }
        }
        let sinks = legacy.sinks();
        if sinks.len() > 1 {
            let sink = legacy.add_labeled_node("sink", Ticks::ZERO);
            for s in sinks {
                legacy.add_edge(s, sink).unwrap();
            }
        }

        prop_assert_eq!(built.node_count(), legacy.node_count());
        prop_assert_eq!(built.edge_count(), legacy.edge_count());
        for v in built.node_ids() {
            prop_assert_eq!(built.wcet(v), legacy.wcet(v));
            prop_assert_eq!(built.label(v), legacy.label(v));
            prop_assert_eq!(built.successors(v), legacy.successors(v));
            prop_assert_eq!(built.predecessors(v), legacy.predecessors(v));
        }
    }
}
