//! CSR-refactor parity tests: the flat compressed-sparse-row `Dag` must
//! behave exactly like a naive nested-adjacency reference model under any
//! construction/mutation sequence — adjacency, degrees, iteration order,
//! topological validity, the reachability matrix, and the critical-path
//! length all agree.

use hetrta_dag::algo::{topological_order, CriticalPath, Reachability};
use hetrta_dag::{Dag, NodeId, Ticks};
use proptest::prelude::*;

/// The pre-refactor representation: one `Vec` of successors/predecessors
/// per node, edges in insertion order.
#[derive(Debug, Default, Clone)]
struct RefGraph {
    wcets: Vec<u64>,
    succs: Vec<Vec<NodeId>>,
    preds: Vec<Vec<NodeId>>,
}

impl RefGraph {
    fn add_node(&mut self, wcet: u64) -> NodeId {
        let id = NodeId::from_index(self.wcets.len());
        self.wcets.push(wcet);
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        id
    }

    fn add_edge(&mut self, from: NodeId, to: NodeId) {
        self.succs[from.index()].push(to);
        self.preds[to.index()].push(from);
    }

    fn remove_edge(&mut self, from: NodeId, to: NodeId) {
        let i = self.succs[from.index()]
            .iter()
            .position(|&v| v == to)
            .expect("edge exists");
        self.succs[from.index()].remove(i);
        let j = self.preds[to.index()]
            .iter()
            .position(|&v| v == from)
            .expect("edge exists");
        self.preds[to.index()].remove(j);
    }

    fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for (i, succs) in self.succs.iter().enumerate() {
            for &s in succs {
                out.push((NodeId::from_index(i), s));
            }
        }
        out
    }

    /// Reference reachability: DFS per source.
    fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return true;
        }
        let mut seen = vec![false; self.wcets.len()];
        let mut stack = vec![from];
        while let Some(v) = stack.pop() {
            for &s in &self.succs[v.index()] {
                if s == to {
                    return true;
                }
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        false
    }

    /// Reference `len(G)` by longest-path DP over any topological order.
    fn critical_path_length(&self) -> u64 {
        let n = self.wcets.len();
        let mut indeg: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        let mut order: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut head = 0;
        while head < order.len() {
            let v = order[head];
            head += 1;
            for &s in &self.succs[v] {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    order.push(s.index());
                }
            }
        }
        let mut dist = vec![0u64; n];
        for &v in &order {
            let best = self.preds[v]
                .iter()
                .map(|p| dist[p.index()])
                .max()
                .unwrap_or(0);
            dist[v] = best + self.wcets[v];
        }
        dist.into_iter().max().unwrap_or(0)
    }
}

/// Builds the CSR `Dag` and the reference model through the *same* random
/// construction/mutation sequence: forward edges (acyclic by construction)
/// followed by a random subset of removals.
fn arb_pair() -> impl Strategy<Value = (Dag, RefGraph)> {
    (
        1usize..24,
        proptest::collection::vec(0u8..100, 0..600),
        proptest::collection::vec(0u8..100, 0..600),
        proptest::collection::vec(1u64..50, 1..24),
    )
        .prop_map(|(n, edge_coins, removal_coins, wcets)| {
            let mut dag = Dag::new();
            let mut reference = RefGraph::default();
            let ids: Vec<NodeId> = (0..n)
                .map(|i| {
                    let w = wcets[i % wcets.len()];
                    reference.add_node(w);
                    dag.add_node(Ticks::new(w))
                })
                .collect();
            let mut coin = edge_coins.into_iter().cycle();
            let mut added = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    if coin.next().unwrap_or(0) < 35 {
                        dag.add_edge(ids[i], ids[j]).unwrap();
                        reference.add_edge(ids[i], ids[j]);
                        added.push((ids[i], ids[j]));
                    }
                }
            }
            let mut removal = removal_coins.into_iter().cycle();
            for (f, t) in added {
                if removal.next().unwrap_or(0) < 20 {
                    dag.remove_edge(f, t).unwrap();
                    reference.remove_edge(f, t);
                }
            }
            (dag, reference)
        })
}

proptest! {
    #[test]
    fn adjacency_and_degrees_match_the_reference((dag, reference) in arb_pair()) {
        prop_assert_eq!(dag.node_count(), reference.wcets.len());
        prop_assert_eq!(dag.edge_count(), reference.edges().len());
        for v in dag.node_ids() {
            prop_assert_eq!(dag.successors(v), &reference.succs[v.index()][..]);
            prop_assert_eq!(dag.predecessors(v), &reference.preds[v.index()][..]);
            prop_assert_eq!(dag.out_degree(v), reference.succs[v.index()].len());
            prop_assert_eq!(dag.in_degree(v), reference.preds[v.index()].len());
            prop_assert_eq!(dag.wcet(v).get(), reference.wcets[v.index()]);
        }
        // The edge iterator yields the same edges in the same order.
        let csr_edges: Vec<_> = dag.edges().collect();
        prop_assert_eq!(csr_edges, reference.edges());
    }

    #[test]
    fn topological_order_is_valid_on_both((dag, reference) in arb_pair()) {
        let order = topological_order(&dag).unwrap();
        prop_assert_eq!(order.len(), reference.wcets.len());
        let mut pos = vec![0usize; dag.node_count()];
        for (p, &v) in order.iter().enumerate() {
            pos[v.index()] = p;
        }
        for (f, t) in reference.edges() {
            prop_assert!(pos[f.index()] < pos[t.index()]);
        }
    }

    #[test]
    fn reachability_matrix_matches_the_reference((dag, reference) in arb_pair()) {
        let r = Reachability::of(&dag).unwrap();
        for a in dag.node_ids() {
            for b in dag.node_ids() {
                if a == b { continue; }
                prop_assert_eq!(
                    r.is_ordered_before(a, b),
                    reference.reaches(a, b),
                    "{} -> {}", a, b
                );
            }
        }
    }

    #[test]
    fn critical_path_length_matches_the_reference((dag, reference) in arb_pair()) {
        let cp = CriticalPath::of(&dag);
        prop_assert_eq!(cp.length().get(), reference.critical_path_length());
    }
}
