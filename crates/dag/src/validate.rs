//! Whole-model structural validation.

use crate::algo::{is_acyclic, transitive};
use crate::{Dag, DagError, NodeId};

/// A structural summary of a DAG, produced by [`validate_task_model`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructureReport {
    /// Number of nodes `|V|`.
    pub nodes: usize,
    /// Number of edges `|E|`.
    pub edges: usize,
    /// The unique source node.
    pub source: NodeId,
    /// The unique sink node.
    pub sink: NodeId,
    /// Number of nodes with zero WCET (dummy terminals, `v_sync`, …).
    pub zero_wcet_nodes: usize,
}

/// Validates that `dag` satisfies the paper's task-model constraints
/// (Section 2) and returns a structural summary.
///
/// Checks, in order:
///
/// 1. non-empty;
/// 2. acyclic;
/// 3. exactly one source and one sink;
/// 4. no transitive edges.
///
/// Safe on the n=10⁵–10⁶ tier: the transitive-edge check is the
/// closure-free [`transitive::find_transitive_edge`] — `O(V + E)` on
/// layered/graded graphs, `O(V)` extra memory always — so validating a
/// generated DAG never reintroduces the reachability-closure cost the
/// generators avoid.
///
/// # Errors
///
/// The first violated constraint is reported as the corresponding
/// [`DagError`] variant.
///
/// # Examples
///
/// ```
/// use hetrta_dag::{DagBuilder, Ticks, validate_task_model};
///
/// let mut builder = DagBuilder::new();
/// let a = builder.unlabeled_node(Ticks::new(1));
/// let b = builder.unlabeled_node(Ticks::new(2));
/// builder.edge(a, b)?;
/// // `freeze()` skips validation; check the model explicitly.
/// let report = validate_task_model(&builder.freeze())?;
/// assert_eq!(report.nodes, 2);
/// assert_eq!(report.source, a);
/// # Ok::<(), hetrta_dag::DagError>(())
/// ```
pub fn validate_task_model(dag: &Dag) -> Result<StructureReport, DagError> {
    if dag.is_empty() {
        return Err(DagError::Empty);
    }
    if !is_acyclic(dag) {
        // Recompute for the witness; cheap relative to clarity.
        return Err(crate::algo::topological_order(dag).unwrap_err());
    }
    let sources = dag.sources();
    if sources.len() != 1 {
        return Err(DagError::MultipleSources(sources));
    }
    let sinks = dag.sinks();
    if sinks.len() != 1 {
        return Err(DagError::MultipleSinks(sinks));
    }
    if let Some((u, w)) = transitive::find_transitive_edge(dag)? {
        return Err(DagError::TransitiveEdge(u, w));
    }
    Ok(StructureReport {
        nodes: dag.node_count(),
        edges: dag.edge_count(),
        source: sources[0],
        sink: sinks[0],
        zero_wcet_nodes: dag.node_ids().filter(|&v| dag.wcet(v).is_zero()).count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ticks;

    #[test]
    fn valid_chain_reports_structure() {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::new(1));
        let b = dag.add_node(Ticks::ZERO);
        let c = dag.add_node(Ticks::new(3));
        dag.add_edge(a, b).unwrap();
        dag.add_edge(b, c).unwrap();
        let r = validate_task_model(&dag).unwrap();
        assert_eq!(
            r,
            StructureReport {
                nodes: 3,
                edges: 2,
                source: a,
                sink: c,
                zero_wcet_nodes: 1
            }
        );
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(
            validate_task_model(&Dag::new()).unwrap_err(),
            DagError::Empty
        );
    }

    #[test]
    fn cycle_rejected_before_terminal_check() {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::ONE);
        let b = dag.add_node(Ticks::ONE);
        dag.add_edge(a, b).unwrap();
        dag.add_edge(b, a).unwrap();
        assert!(matches!(validate_task_model(&dag), Err(DagError::Cycle(_))));
    }

    #[test]
    fn multi_sink_rejected() {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::ONE);
        let b = dag.add_node(Ticks::ONE);
        let c = dag.add_node(Ticks::ONE);
        dag.add_edge(a, b).unwrap();
        dag.add_edge(a, c).unwrap();
        assert!(
            matches!(validate_task_model(&dag), Err(DagError::MultipleSinks(v)) if v == vec![b, c])
        );
    }

    #[test]
    fn transitive_edge_rejected() {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::ONE);
        let b = dag.add_node(Ticks::ONE);
        let c = dag.add_node(Ticks::ONE);
        dag.add_edge(a, b).unwrap();
        dag.add_edge(b, c).unwrap();
        dag.add_edge(a, c).unwrap();
        assert_eq!(
            validate_task_model(&dag).unwrap_err(),
            DagError::TransitiveEdge(a, c)
        );
    }
}
