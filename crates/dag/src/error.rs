//! Error types for DAG construction and validation.

use core::fmt;

use crate::NodeId;

/// Errors produced when constructing or validating a DAG task model.
///
/// The paper's task model (Section 2) imposes structural constraints; each
/// violation maps to one variant. All fallible operations in this crate
/// return `Result<_, DagError>`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DagError {
    /// A node id referenced a node that does not exist in the graph.
    UnknownNode(NodeId),
    /// An edge `(v, v)` was requested; the model has no self-loops.
    SelfLoop(NodeId),
    /// The edge already exists; `E ⊆ V × V` is a set, not a multiset.
    DuplicateEdge(NodeId, NodeId),
    /// The requested edge does not exist.
    UnknownEdge(NodeId, NodeId),
    /// The graph contains a directed cycle (witness node on the cycle).
    Cycle(NodeId),
    /// The graph has no nodes at all.
    Empty,
    /// The graph has more than one source node (nodes without predecessors).
    MultipleSources(Vec<NodeId>),
    /// The graph has more than one sink node (nodes without successors).
    MultipleSinks(Vec<NodeId>),
    /// A transitive edge `(u, w)` exists although a longer path `u → … → w`
    /// also exists; the model forbids transitive edges.
    TransitiveEdge(NodeId, NodeId),
    /// The designated offloaded node is invalid in context (e.g. it is the
    /// unique source or sink of the task and the degenerate structure was
    /// not explicitly allowed).
    InvalidOffloadedNode(NodeId),
    /// The task's constrained-deadline requirement `D ≤ T` is violated.
    DeadlineExceedsPeriod {
        /// Relative deadline `D`.
        deadline: u64,
        /// Minimum inter-arrival time `T`.
        period: u64,
    },
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::UnknownNode(v) => write!(f, "unknown node {v}"),
            DagError::SelfLoop(v) => write!(f, "self-loop on node {v}"),
            DagError::DuplicateEdge(a, b) => write!(f, "duplicate edge ({a}, {b})"),
            DagError::UnknownEdge(a, b) => write!(f, "edge ({a}, {b}) does not exist"),
            DagError::Cycle(v) => write!(f, "graph contains a cycle through {v}"),
            DagError::Empty => write!(f, "graph has no nodes"),
            DagError::MultipleSources(vs) => {
                write!(f, "graph has {} sources (expected exactly one)", vs.len())
            }
            DagError::MultipleSinks(vs) => {
                write!(f, "graph has {} sinks (expected exactly one)", vs.len())
            }
            DagError::TransitiveEdge(a, b) => {
                write!(
                    f,
                    "transitive edge ({a}, {b}) is forbidden by the task model"
                )
            }
            DagError::InvalidOffloadedNode(v) => {
                write!(f, "node {v} cannot be the offloaded node in this context")
            }
            DagError::DeadlineExceedsPeriod { deadline, period } => {
                write!(
                    f,
                    "constrained deadline violated: D = {deadline} > T = {period}"
                )
            }
        }
    }
}

impl std::error::Error for DagError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let cases: Vec<(DagError, &str)> = vec![
            (
                DagError::UnknownNode(NodeId::from_index(3)),
                "unknown node n3",
            ),
            (
                DagError::SelfLoop(NodeId::from_index(1)),
                "self-loop on node n1",
            ),
            (
                DagError::DuplicateEdge(NodeId::from_index(0), NodeId::from_index(1)),
                "duplicate edge (n0, n1)",
            ),
            (DagError::Empty, "graph has no nodes"),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
    }

    #[test]
    fn error_trait_object_compatible() {
        fn takes_err(_: &(dyn std::error::Error + Send + Sync)) {}
        takes_err(&DagError::Empty);
    }

    #[test]
    fn deadline_message_mentions_both_values() {
        let e = DagError::DeadlineExceedsPeriod {
            deadline: 10,
            period: 5,
        };
        let msg = e.to_string();
        assert!(msg.contains("10") && msg.contains('5'));
    }
}
