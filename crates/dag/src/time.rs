//! Integer time values.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

use crate::Rational;

/// An integer amount of time, in abstract "ticks".
///
/// The paper draws node WCETs uniformly from `[1, 100]`, so all model
/// quantities — per-node WCETs `C_i`, the offloaded WCET `C_off`, graph
/// volume `vol(G)`, critical-path length `len(G)`, periods, deadlines,
/// simulated start/finish times and makespans — are exact integers. `Ticks`
/// is the shared newtype for all of them; only the response-time *bounds*
/// (which divide by the core count `m`) leave the integers and are
/// represented as [`Rational`].
///
/// Arithmetic on `Ticks` panics on overflow in debug builds (like the
/// underlying `u64`); use [`Ticks::checked_add`] and friends where inputs
/// are untrusted.
///
/// # Examples
///
/// ```
/// use hetrta_dag::Ticks;
///
/// let a = Ticks::new(3);
/// let b = Ticks::new(4);
/// assert_eq!(a + b, Ticks::new(7));
/// assert_eq!((a + b).get(), 7);
/// assert!(Ticks::ZERO.is_zero());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct Ticks(u64);

impl Ticks {
    /// The zero duration (used e.g. for the synchronization node `v_sync`
    /// and for dummy source/sink nodes).
    pub const ZERO: Ticks = Ticks(0);

    /// One tick.
    pub const ONE: Ticks = Ticks(1);

    /// The maximum representable time value.
    pub const MAX: Ticks = Ticks(u64::MAX);

    /// Creates a time value from a raw tick count.
    #[must_use]
    pub const fn new(ticks: u64) -> Self {
        Ticks(ticks)
    }

    /// Returns the raw tick count.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns `true` if this value is zero ticks.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked addition; `None` on overflow.
    #[must_use]
    pub const fn checked_add(self, rhs: Ticks) -> Option<Ticks> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Ticks(v)),
            None => None,
        }
    }

    /// Checked subtraction; `None` on underflow.
    #[must_use]
    pub const fn checked_sub(self, rhs: Ticks) -> Option<Ticks> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Ticks(v)),
            None => None,
        }
    }

    /// Saturating addition.
    #[must_use]
    pub const fn saturating_add(self, rhs: Ticks) -> Ticks {
        Ticks(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamps at zero).
    #[must_use]
    pub const fn saturating_sub(self, rhs: Ticks) -> Ticks {
        Ticks(self.0.saturating_sub(rhs.0))
    }

    /// Returns the larger of `self` and `other`.
    #[must_use]
    pub fn max(self, other: Ticks) -> Ticks {
        Ticks(self.0.max(other.0))
    }

    /// Returns the smaller of `self` and `other`.
    #[must_use]
    pub fn min(self, other: Ticks) -> Ticks {
        Ticks(self.0.min(other.0))
    }

    /// Division rounding towards positive infinity.
    ///
    /// Useful for workload lower bounds such as `ceil(vol / m)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    #[must_use]
    pub const fn div_ceil(self, divisor: u64) -> Ticks {
        assert!(divisor != 0, "division by zero");
        Ticks(self.0.div_ceil(divisor))
    }

    /// Converts to an exact [`Rational`].
    ///
    /// # Panics
    ///
    /// Panics if the tick count exceeds `i128::MAX` (impossible for `u64`).
    #[must_use]
    pub fn to_rational(self) -> Rational {
        Rational::from_integer(self.0 as i128)
    }

    /// Converts to `f64` (lossy above 2^53; fine for model-scale values).
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl fmt::Debug for Ticks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

impl fmt::Display for Ticks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl From<u64> for Ticks {
    fn from(v: u64) -> Self {
        Ticks(v)
    }
}

impl From<Ticks> for u64 {
    fn from(v: Ticks) -> Self {
        v.0
    }
}

impl Add for Ticks {
    type Output = Ticks;
    fn add(self, rhs: Ticks) -> Ticks {
        Ticks(self.0 + rhs.0)
    }
}

impl AddAssign for Ticks {
    fn add_assign(&mut self, rhs: Ticks) {
        self.0 += rhs.0;
    }
}

impl Sub for Ticks {
    type Output = Ticks;
    fn sub(self, rhs: Ticks) -> Ticks {
        Ticks(self.0 - rhs.0)
    }
}

impl SubAssign for Ticks {
    fn sub_assign(&mut self, rhs: Ticks) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Ticks {
    type Output = Ticks;
    fn mul(self, rhs: u64) -> Ticks {
        Ticks(self.0 * rhs)
    }
}

impl Div<u64> for Ticks {
    type Output = Ticks;
    fn div(self, rhs: u64) -> Ticks {
        Ticks(self.0 / rhs)
    }
}

impl Rem<u64> for Ticks {
    type Output = Ticks;
    fn rem(self, rhs: u64) -> Ticks {
        Ticks(self.0 % rhs)
    }
}

impl Sum for Ticks {
    fn sum<I: Iterator<Item = Ticks>>(iter: I) -> Ticks {
        iter.fold(Ticks::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a Ticks> for Ticks {
    fn sum<I: Iterator<Item = &'a Ticks>>(iter: I) -> Ticks {
        iter.copied().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        assert_eq!(Ticks::new(2) + Ticks::new(3), Ticks::new(5));
        assert_eq!(Ticks::new(5) - Ticks::new(3), Ticks::new(2));
        assert_eq!(Ticks::new(5) * 3, Ticks::new(15));
        assert_eq!(Ticks::new(7) / 2, Ticks::new(3));
        assert_eq!(Ticks::new(7) % 2, Ticks::new(1));
    }

    #[test]
    fn div_ceil_rounds_up() {
        assert_eq!(Ticks::new(7).div_ceil(2), Ticks::new(4));
        assert_eq!(Ticks::new(8).div_ceil(2), Ticks::new(4));
        assert_eq!(Ticks::ZERO.div_ceil(3), Ticks::ZERO);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_ceil_zero_divisor_panics() {
        let _ = Ticks::new(1).div_ceil(0);
    }

    #[test]
    fn checked_and_saturating() {
        assert_eq!(Ticks::MAX.checked_add(Ticks::ONE), None);
        assert_eq!(Ticks::ZERO.checked_sub(Ticks::ONE), None);
        assert_eq!(Ticks::MAX.saturating_add(Ticks::ONE), Ticks::MAX);
        assert_eq!(Ticks::ZERO.saturating_sub(Ticks::ONE), Ticks::ZERO);
        assert_eq!(
            Ticks::new(3).checked_add(Ticks::new(4)),
            Some(Ticks::new(7))
        );
    }

    #[test]
    fn sum_of_iterator() {
        let values = [Ticks::new(1), Ticks::new(2), Ticks::new(3)];
        let total: Ticks = values.iter().sum();
        assert_eq!(total, Ticks::new(6));
        let total: Ticks = values.into_iter().sum();
        assert_eq!(total, Ticks::new(6));
    }

    #[test]
    fn min_max() {
        assert_eq!(Ticks::new(3).max(Ticks::new(5)), Ticks::new(5));
        assert_eq!(Ticks::new(3).min(Ticks::new(5)), Ticks::new(3));
    }

    #[test]
    fn rational_conversion() {
        assert_eq!(Ticks::new(5).to_rational(), Rational::from_integer(5));
    }

    #[test]
    fn display_is_plain_number() {
        assert_eq!(format!("{}", Ticks::new(42)), "42");
        assert_eq!(format!("{:?}", Ticks::new(42)), "42t");
    }
}
