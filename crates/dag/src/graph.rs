//! DAG storage in a compressed-sparse-row (CSR) layout.

use core::fmt;

use crate::{BitSet, DagError, NodeId, Ticks};

/// A directed acyclic graph of jobs, each with a worst-case execution time.
///
/// `Dag` is the `G = (V, E)` of the paper's task model: nodes represent
/// sequential jobs characterized by a WCET, edges represent precedence
/// constraints. The structure is **immutable after freeze**: graphs are
/// accumulated in a [`DagBuilder`](crate::DagBuilder) (or assembled in
/// bulk via [`Dag::from_parts`]) and frozen into this compressed-sparse-row
/// form exactly once, in `O(|V| + |E|)`. The *model* constraints
/// (acyclicity, single source/sink, no transitive edges) are enforced at
/// the boundaries by [`DagBuilder::build`](crate::DagBuilder::build) and
/// [`validate_task_model`](crate::validate_task_model). Only node
/// *attributes* (WCETs, labels) stay mutable — the offload sizing of the
/// generators rewrites them in place without touching the structure.
///
/// Node ids are dense indices in insertion order; nodes cannot be removed
/// (the model never needs it and stable ids keep cross-references between
/// the original DAG `G` and the transformed `G'` trivial).
///
/// # Storage layout
///
/// Adjacency is compressed-sparse-row: one flat successor array and one
/// flat predecessor array, each indexed by a per-node offset table, with
/// WCETs in a parallel slice. The analysis kernels in [`crate::algo`]
/// therefore traverse contiguous memory — [`Dag::successors`] and
/// [`Dag::predecessors`] are slices into one allocation, and cloning a
/// graph copies six flat vectors instead of `2·|V|` heap blocks. Because
/// the structure never changes after freeze, nothing ever shifts inside
/// the flat arrays: construction-side code that still needs incremental
/// mutation (test fixtures, legacy-parity references) lives behind the
/// `legacy-mutation` feature, off by default.
///
/// # Examples
///
/// ```
/// use hetrta_dag::{DagBuilder, Ticks};
///
/// let mut b = DagBuilder::new();
/// let a = b.unlabeled_node(Ticks::new(2));
/// let c = b.unlabeled_node(Ticks::new(3));
/// b.edge(a, c)?;
/// let dag = b.build()?;
/// assert_eq!(dag.node_count(), 2);
/// assert_eq!(dag.volume(), Ticks::new(5));
/// assert!(dag.has_edge(a, c));
/// # Ok::<(), hetrta_dag::DagError>(())
/// ```
#[derive(Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dag {
    wcets: Vec<Ticks>,
    labels: Vec<String>,
    /// Successor segment of node `i`: `succs[succ_off[i]..succ_off[i + 1]]`,
    /// in edge-insertion order.
    succ_off: Vec<u32>,
    succs: Vec<NodeId>,
    /// Predecessor segment of node `i`, symmetric to `succ_off`/`succs`.
    pred_off: Vec<u32>,
    preds: Vec<NodeId>,
}

impl Default for Dag {
    fn default() -> Self {
        Dag {
            wcets: Vec::new(),
            labels: Vec::new(),
            succ_off: vec![0],
            succs: Vec::new(),
            pred_off: vec![0],
            preds: Vec::new(),
        }
    }
}

impl Dag {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Dag::default()
    }

    /// Creates an empty graph with room for `nodes` nodes.
    ///
    /// Part of the legacy incremental-construction API (see
    /// [`Dag::add_edge`]); builder-first code never needs it.
    #[cfg(any(test, feature = "legacy-mutation"))]
    #[must_use]
    pub fn with_capacity(nodes: usize) -> Self {
        let mut succ_off = Vec::with_capacity(nodes + 1);
        succ_off.push(0);
        let mut pred_off = Vec::with_capacity(nodes + 1);
        pred_off.push(0);
        Dag {
            wcets: Vec::with_capacity(nodes),
            labels: Vec::with_capacity(nodes),
            succ_off,
            succs: Vec::new(),
            pred_off,
            preds: Vec::new(),
        }
    }

    /// Adds an unlabeled node with the given WCET and returns its id.
    ///
    /// Part of the legacy incremental-construction API: production code
    /// accumulates nodes in a [`DagBuilder`](crate::DagBuilder) instead.
    /// Kept (behind the `legacy-mutation` feature) for test fixtures that
    /// must assemble graphs the validating builder would reject — cyclic
    /// graphs exercising error paths, parity references for the old
    /// edge-by-edge construction.
    #[cfg(any(test, feature = "legacy-mutation"))]
    pub fn add_node(&mut self, wcet: Ticks) -> NodeId {
        self.add_labeled_node(String::new(), wcet)
    }

    /// Adds a node with a human-readable label and returns its id.
    ///
    /// Legacy incremental-construction API; see [`Dag::add_node`].
    #[cfg(any(test, feature = "legacy-mutation"))]
    pub fn add_labeled_node(&mut self, label: impl Into<String>, wcet: Ticks) -> NodeId {
        let id = NodeId::from_index(self.wcets.len());
        self.wcets.push(wcet);
        self.labels.push(label.into());
        self.succ_off
            .push(*self.succ_off.last().expect("offset base"));
        self.pred_off
            .push(*self.pred_off.last().expect("offset base"));
        id
    }

    /// Number of nodes `|V|`.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.wcets.len()
    }

    /// Number of edges `|E|`.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.succs.len()
    }

    /// `true` if the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.wcets.is_empty()
    }

    /// `true` if `id` refers to a node of this graph.
    #[must_use]
    pub fn contains_node(&self, id: NodeId) -> bool {
        id.index() < self.wcets.len()
    }

    fn check_node(&self, id: NodeId) -> Result<(), DagError> {
        if self.contains_node(id) {
            Ok(())
        } else {
            Err(DagError::UnknownNode(id))
        }
    }

    /// WCET of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this graph.
    #[must_use]
    pub fn wcet(&self, id: NodeId) -> Ticks {
        self.wcets[id.index()]
    }

    /// WCET of a node, `None` if the id is out of range.
    #[must_use]
    pub fn get_wcet(&self, id: NodeId) -> Option<Ticks> {
        self.wcets.get(id.index()).copied()
    }

    /// Replaces the WCET of a node.
    ///
    /// # Errors
    ///
    /// Returns [`DagError::UnknownNode`] if `id` is out of range.
    pub fn set_wcet(&mut self, id: NodeId, wcet: Ticks) -> Result<(), DagError> {
        self.check_node(id)?;
        self.wcets[id.index()] = wcet;
        Ok(())
    }

    /// Label of a node (empty string if unlabeled).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this graph.
    #[must_use]
    pub fn label(&self, id: NodeId) -> &str {
        &self.labels[id.index()]
    }

    /// Replaces the label of a node.
    ///
    /// # Errors
    ///
    /// Returns [`DagError::UnknownNode`] if `id` is out of range.
    pub fn set_label(&mut self, id: NodeId, label: impl Into<String>) -> Result<(), DagError> {
        self.check_node(id)?;
        self.labels[id.index()] = label.into();
        Ok(())
    }

    /// Adds the precedence edge `(from, to)`, shifting the CSR arrays —
    /// `O(|V| + |E|)` per edge.
    ///
    /// Part of the legacy incremental-construction API, gated behind the
    /// `legacy-mutation` feature (enabled by the workspace's test suites
    /// only). Production code accumulates edges in a
    /// [`DagBuilder`](crate::DagBuilder) and freezes once; this method
    /// remains as (a) the reference semantics the builder's freeze is
    /// parity-tested against, and (b) the only way to build structurally
    /// *invalid* graphs (cycles, transitive edges) for error-path tests.
    ///
    /// Acyclicity is *not* checked here; use [`Dag::add_edge_acyclic`]
    /// for untrusted input, or validate the finished graph with
    /// [`validate_task_model`](crate::validate_task_model).
    ///
    /// # Errors
    ///
    /// - [`DagError::UnknownNode`] if either endpoint is out of range;
    /// - [`DagError::SelfLoop`] if `from == to`;
    /// - [`DagError::DuplicateEdge`] if the edge already exists.
    #[cfg(any(test, feature = "legacy-mutation"))]
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<(), DagError> {
        self.check_node(from)?;
        self.check_node(to)?;
        if from == to {
            return Err(DagError::SelfLoop(from));
        }
        if self.has_edge(from, to) {
            return Err(DagError::DuplicateEdge(from, to));
        }
        // Append to the end of each endpoint's segment (preserving
        // edge-insertion order within a node) and shift the offsets of
        // every later node.
        self.succs
            .insert(self.succ_off[from.index() + 1] as usize, to);
        for off in &mut self.succ_off[from.index() + 1..] {
            *off += 1;
        }
        self.preds
            .insert(self.pred_off[to.index() + 1] as usize, from);
        for off in &mut self.pred_off[to.index() + 1..] {
            *off += 1;
        }
        Ok(())
    }

    /// Adds `(from, to)` after checking that it would not create a cycle.
    ///
    /// Legacy incremental-construction API; see [`Dag::add_edge`].
    ///
    /// # Errors
    ///
    /// Everything [`Dag::add_edge`] reports, plus [`DagError::Cycle`] if a
    /// path `to → … → from` already exists.
    #[cfg(any(test, feature = "legacy-mutation"))]
    pub fn add_edge_acyclic(&mut self, from: NodeId, to: NodeId) -> Result<(), DagError> {
        self.check_node(from)?;
        self.check_node(to)?;
        if self.reaches(to, from) {
            return Err(DagError::Cycle(from));
        }
        self.add_edge(from, to)
    }

    /// Removes the edge `(from, to)`.
    ///
    /// Legacy incremental-construction API; see [`Dag::add_edge`]. The
    /// Algorithm-1 rewiring that used to need it now assembles the
    /// transformed graph in one [`Dag::from_csr_parts`] pass.
    ///
    /// # Errors
    ///
    /// Returns [`DagError::UnknownEdge`] if the edge does not exist and
    /// [`DagError::UnknownNode`] if either endpoint is out of range.
    #[cfg(any(test, feature = "legacy-mutation"))]
    pub fn remove_edge(&mut self, from: NodeId, to: NodeId) -> Result<(), DagError> {
        self.check_node(from)?;
        self.check_node(to)?;
        let spos = self
            .successors(from)
            .iter()
            .position(|&v| v == to)
            .map(|i| self.succ_off[from.index()] as usize + i);
        match spos {
            None => Err(DagError::UnknownEdge(from, to)),
            Some(i) => {
                self.succs.remove(i);
                for off in &mut self.succ_off[from.index() + 1..] {
                    *off -= 1;
                }
                let j = self
                    .predecessors(to)
                    .iter()
                    .position(|&v| v == from)
                    .map(|j| self.pred_off[to.index()] as usize + j)
                    .expect("adjacency arrays out of sync");
                self.preds.remove(j);
                for off in &mut self.pred_off[to.index() + 1..] {
                    *off -= 1;
                }
                Ok(())
            }
        }
    }

    /// `true` if the edge `(from, to)` exists.
    #[must_use]
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.contains_node(from) && self.contains_node(to) && self.successors(from).contains(&to)
    }

    /// Direct successors of a node, in edge-insertion order — a slice into
    /// the flat CSR edge array.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this graph.
    #[must_use]
    pub fn successors(&self, id: NodeId) -> &[NodeId] {
        &self.succs[self.succ_off[id.index()] as usize..self.succ_off[id.index() + 1] as usize]
    }

    /// Direct predecessors of a node, in edge-insertion order — a slice
    /// into the flat CSR edge array.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this graph.
    #[must_use]
    pub fn predecessors(&self, id: NodeId) -> &[NodeId] {
        &self.preds[self.pred_off[id.index()] as usize..self.pred_off[id.index() + 1] as usize]
    }

    /// Out-degree of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this graph.
    #[must_use]
    pub fn out_degree(&self, id: NodeId) -> usize {
        (self.succ_off[id.index() + 1] - self.succ_off[id.index()]) as usize
    }

    /// In-degree of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this graph.
    #[must_use]
    pub fn in_degree(&self, id: NodeId) -> usize {
        (self.pred_off[id.index() + 1] - self.pred_off[id.index()]) as usize
    }

    /// Iterates over all node ids in index order.
    pub fn node_ids(&self) -> NodeIter {
        NodeIter {
            next: 0,
            count: self.node_count(),
        }
    }

    /// Iterates over all edges as `(from, to)` pairs.
    pub fn edges(&self) -> EdgeIter<'_> {
        EdgeIter {
            dag: self,
            from: 0,
            succ_pos: 0,
        }
    }

    /// All nodes without predecessors, in index order.
    #[must_use]
    pub fn sources(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&v| self.in_degree(v) == 0)
            .collect()
    }

    /// All nodes without successors, in index order.
    #[must_use]
    pub fn sinks(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&v| self.out_degree(v) == 0)
            .collect()
    }

    /// The unique source, if there is exactly one.
    #[must_use]
    pub fn source(&self) -> Option<NodeId> {
        let mut it = self.node_ids().filter(|&v| self.in_degree(v) == 0);
        let first = it.next()?;
        if it.next().is_none() {
            Some(first)
        } else {
            None
        }
    }

    /// The unique sink, if there is exactly one.
    #[must_use]
    pub fn sink(&self) -> Option<NodeId> {
        let mut it = self.node_ids().filter(|&v| self.out_degree(v) == 0);
        let first = it.next()?;
        if it.next().is_none() {
            Some(first)
        } else {
            None
        }
    }

    /// `vol(G)`: the sum of all node WCETs (Section 2 of the paper).
    ///
    /// On a parallel architecture this is the WCET of the task when executed
    /// entirely sequentially.
    #[must_use]
    pub fn volume(&self) -> Ticks {
        self.wcets.iter().copied().sum()
    }

    /// Sum of the WCETs of the nodes in `set`.
    ///
    /// Indices in `set` beyond the node count are ignored.
    #[must_use]
    pub fn volume_of(&self, set: &BitSet) -> Ticks {
        set.iter().filter_map(|v| self.get_wcet(v)).sum()
    }

    /// `true` if `from` can reach `to` through directed edges
    /// (including `from == to`).
    #[must_use]
    pub fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        if !self.contains_node(from) || !self.contains_node(to) {
            return false;
        }
        if from == to {
            return true;
        }
        let mut visited = BitSet::new(self.node_count());
        let mut stack = vec![from];
        visited.insert(from);
        while let Some(v) = stack.pop() {
            for &s in self.successors(v) {
                if s == to {
                    return true;
                }
                if visited.insert(s) {
                    stack.push(s);
                }
            }
        }
        false
    }

    /// Extracts the subgraph induced by `nodes`.
    ///
    /// Returns the new graph together with the mapping *new id → old id*
    /// (position `i` of the vector holds the original id of new node `i`).
    /// Edges of `self` with both endpoints in `nodes` are preserved. Labels
    /// and WCETs are copied.
    ///
    /// This is how the parallel sub-DAG `G_par` is materialized from the
    /// parallel node set `V_par`.
    #[must_use]
    pub fn induced_subgraph(&self, nodes: &BitSet) -> (Dag, Vec<NodeId>) {
        let mut wcets = Vec::with_capacity(nodes.len());
        let mut labels = Vec::with_capacity(nodes.len());
        let mut old_of_new: Vec<NodeId> = Vec::with_capacity(nodes.len());
        let mut new_of_old: Vec<Option<NodeId>> = vec![None; self.node_count()];
        for old in nodes.iter().filter(|&v| self.contains_node(v)) {
            new_of_old[old.index()] = Some(NodeId::from_index(old_of_new.len()));
            old_of_new.push(old);
            wcets.push(self.wcet(old));
            labels.push(self.label(old).to_owned());
        }
        let edges: Vec<(NodeId, NodeId)> = self
            .edges()
            .filter_map(
                |(from, to)| match (new_of_old[from.index()], new_of_old[to.index()]) {
                    (Some(nf), Some(nt)) => Some((nf, nt)),
                    _ => None,
                },
            )
            .collect();
        (Dag::from_parts(wcets, labels, &edges), old_of_new)
    }

    /// Builds a graph in one `O(|V| + |E|)` pass from parallel node arrays
    /// and an already-validated edge list (in-range endpoints, no
    /// self-loops, no duplicates — the caller guarantees it; violations
    /// are caught by `debug_assert` only).
    ///
    /// Successor and predecessor segments come out in edge-list order,
    /// exactly as the same sequence of legacy `add_edge` calls would
    /// produce them — bulk constructors (the builder's freeze, induced
    /// subgraphs, the generators) must not change adjacency iteration
    /// order, because downstream float reductions replay adjacency order
    /// and are pinned bitwise.
    ///
    /// This is the freeze primitive of the builder-first construction
    /// pipeline; most callers want [`DagBuilder`](crate::DagBuilder),
    /// which layers per-edge validation (and, via
    /// [`build`](crate::DagBuilder::build), model validation) on top.
    #[must_use]
    pub fn from_parts(wcets: Vec<Ticks>, labels: Vec<String>, edges: &[(NodeId, NodeId)]) -> Dag {
        let n = wcets.len();
        let mut succ_off = vec![0u32; n + 1];
        let mut pred_off = vec![0u32; n + 1];
        for &(from, to) in edges {
            debug_assert!(from.index() < n && to.index() < n && from != to);
            succ_off[from.index() + 1] += 1;
            pred_off[to.index() + 1] += 1;
        }
        for i in 0..n {
            succ_off[i + 1] += succ_off[i];
            pred_off[i + 1] += pred_off[i];
        }
        let mut succs = vec![NodeId::from_index(0); edges.len()];
        let mut preds = vec![NodeId::from_index(0); edges.len()];
        let mut succ_cursor = succ_off.clone();
        let mut pred_cursor = pred_off.clone();
        for &(from, to) in edges {
            succs[succ_cursor[from.index()] as usize] = to;
            succ_cursor[from.index()] += 1;
            preds[pred_cursor[to.index()] as usize] = from;
            pred_cursor[to.index()] += 1;
        }
        Dag {
            wcets,
            labels,
            succ_off,
            succs,
            pred_off,
            preds,
        }
    }

    /// Assembles a graph directly from its six CSR arrays, in `O(1)`.
    ///
    /// For bulk constructors that already know both adjacency views —
    /// e.g. the transitive reduction (which filters each successor and
    /// predecessor segment of an existing graph) and the Algorithm-1
    /// rewiring (which derives the transformed segments from the original
    /// ones). Unlike [`Dag::from_parts`], the per-node segment *orders*
    /// are taken verbatim, so a caller can preserve the exact adjacency
    /// order of a source graph even where a flat edge list could not
    /// express it.
    ///
    /// The caller guarantees consistency: monotonic offset tables of
    /// length `|V| + 1` ending at the edge count, in-range node ids, and
    /// successor/predecessor views describing the same edge set.
    /// Violations are caught by `debug_assert` only.
    #[must_use]
    pub fn from_csr_parts(
        wcets: Vec<Ticks>,
        labels: Vec<String>,
        succ_off: Vec<u32>,
        succs: Vec<NodeId>,
        pred_off: Vec<u32>,
        preds: Vec<NodeId>,
    ) -> Dag {
        let n = wcets.len();
        debug_assert_eq!(labels.len(), n);
        debug_assert_eq!(succ_off.len(), n + 1);
        debug_assert_eq!(pred_off.len(), n + 1);
        debug_assert_eq!(*succ_off.last().unwrap_or(&0) as usize, succs.len());
        debug_assert_eq!(*pred_off.last().unwrap_or(&0) as usize, preds.len());
        debug_assert_eq!(succs.len(), preds.len());
        debug_assert!(succ_off.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(pred_off.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(succs.iter().chain(&preds).all(|v| v.index() < n));
        Dag {
            wcets,
            labels,
            succ_off,
            succs,
            pred_off,
            preds,
        }
    }
}

impl fmt::Debug for Dag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Dag {{ nodes: {}, edges: {} }}",
            self.node_count(),
            self.edge_count()
        )?;
        for v in self.node_ids() {
            let label = if self.label(v).is_empty() {
                String::new()
            } else {
                format!(" ({})", self.label(v))
            };
            writeln!(
                f,
                "  {v}{label} C={} -> {:?}",
                self.wcet(v),
                self.successors(v)
            )?;
        }
        Ok(())
    }
}

/// Iterator over node ids, produced by [`Dag::node_ids`].
#[derive(Debug, Clone)]
pub struct NodeIter {
    next: usize,
    count: usize,
}

impl Iterator for NodeIter {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.next < self.count {
            let id = NodeId::from_index(self.next);
            self.next += 1;
            Some(id)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.count - self.next;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for NodeIter {}

/// Iterator over edges, produced by [`Dag::edges`].
#[derive(Debug)]
pub struct EdgeIter<'a> {
    dag: &'a Dag,
    from: usize,
    succ_pos: usize,
}

impl Iterator for EdgeIter<'_> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<(NodeId, NodeId)> {
        while self.from < self.dag.node_count() {
            let succs = self.dag.successors(NodeId::from_index(self.from));
            if self.succ_pos < succs.len() {
                let edge = (NodeId::from_index(self.from), succs[self.succ_pos]);
                self.succ_pos += 1;
                return Some(edge);
            }
            self.from += 1;
            self.succ_pos = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Dag, [NodeId; 4]) {
        let mut dag = Dag::new();
        let a = dag.add_labeled_node("a", Ticks::new(1));
        let b = dag.add_labeled_node("b", Ticks::new(2));
        let c = dag.add_labeled_node("c", Ticks::new(3));
        let d = dag.add_labeled_node("d", Ticks::new(4));
        dag.add_edge(a, b).unwrap();
        dag.add_edge(a, c).unwrap();
        dag.add_edge(b, d).unwrap();
        dag.add_edge(c, d).unwrap();
        (dag, [a, b, c, d])
    }

    #[test]
    fn node_and_edge_counts() {
        let (dag, _) = diamond();
        assert_eq!(dag.node_count(), 4);
        assert_eq!(dag.edge_count(), 4);
        assert!(!dag.is_empty());
        assert!(Dag::new().is_empty());
    }

    #[test]
    fn adjacency() {
        let (dag, [a, b, c, d]) = diamond();
        assert_eq!(dag.successors(a), &[b, c]);
        assert_eq!(dag.predecessors(d), &[b, c]);
        assert_eq!(dag.out_degree(a), 2);
        assert_eq!(dag.in_degree(a), 0);
        assert!(dag.has_edge(a, b));
        assert!(!dag.has_edge(b, a));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let (mut dag, [a, b, ..]) = diamond();
        assert_eq!(dag.add_edge(a, b), Err(DagError::DuplicateEdge(a, b)));
    }

    #[test]
    fn self_loop_rejected() {
        let (mut dag, [a, ..]) = diamond();
        assert_eq!(dag.add_edge(a, a), Err(DagError::SelfLoop(a)));
    }

    #[test]
    fn unknown_node_rejected() {
        let (mut dag, [a, ..]) = diamond();
        let bogus = NodeId::from_index(99);
        assert_eq!(dag.add_edge(a, bogus), Err(DagError::UnknownNode(bogus)));
        assert_eq!(
            dag.set_wcet(bogus, Ticks::ZERO),
            Err(DagError::UnknownNode(bogus))
        );
    }

    #[test]
    fn remove_edge_updates_both_lists() {
        let (mut dag, [a, b, _, d]) = diamond();
        dag.remove_edge(a, b).unwrap();
        assert!(!dag.has_edge(a, b));
        assert_eq!(dag.edge_count(), 3);
        assert_eq!(dag.predecessors(b), &[] as &[NodeId]);
        assert_eq!(dag.remove_edge(a, b), Err(DagError::UnknownEdge(a, b)));
        assert_eq!(dag.predecessors(d).len(), 2);
    }

    #[test]
    fn acyclic_guard_detects_cycles() {
        let (mut dag, [a, _, _, d]) = diamond();
        assert_eq!(dag.add_edge_acyclic(d, a), Err(DagError::Cycle(d)));
        // A fresh forward edge is fine.
        let e = dag.add_node(Ticks::new(1));
        dag.add_edge_acyclic(d, e).unwrap();
    }

    #[test]
    fn sources_and_sinks() {
        let (dag, [a, _, _, d]) = diamond();
        assert_eq!(dag.sources(), vec![a]);
        assert_eq!(dag.sinks(), vec![d]);
        assert_eq!(dag.source(), Some(a));
        assert_eq!(dag.sink(), Some(d));

        let mut two_sources = Dag::new();
        let x = two_sources.add_node(Ticks::ONE);
        let y = two_sources.add_node(Ticks::ONE);
        let z = two_sources.add_node(Ticks::ONE);
        two_sources.add_edge(x, z).unwrap();
        two_sources.add_edge(y, z).unwrap();
        assert_eq!(two_sources.source(), None);
        assert_eq!(two_sources.sources().len(), 2);
    }

    #[test]
    fn volume_sums_wcets() {
        let (dag, [_, b, c, _]) = diamond();
        assert_eq!(dag.volume(), Ticks::new(10));
        let mut set = BitSet::new(4);
        set.insert(b);
        set.insert(c);
        assert_eq!(dag.volume_of(&set), Ticks::new(5));
    }

    #[test]
    fn reaches_follows_paths() {
        let (dag, [a, b, c, d]) = diamond();
        assert!(dag.reaches(a, d));
        assert!(dag.reaches(a, a));
        assert!(!dag.reaches(b, c));
        assert!(!dag.reaches(d, a));
    }

    #[test]
    fn edge_iterator_yields_all_edges() {
        let (dag, [a, b, c, d]) = diamond();
        let edges: Vec<_> = dag.edges().collect();
        assert_eq!(edges, vec![(a, b), (a, c), (b, d), (c, d)]);
    }

    #[test]
    fn node_iterator_is_exact_size() {
        let (dag, _) = diamond();
        let it = dag.node_ids();
        assert_eq!(it.len(), 4);
        assert_eq!(it.collect::<Vec<_>>().len(), 4);
    }

    #[test]
    fn induced_subgraph_preserves_internal_edges() {
        let (dag, [_, b, c, d]) = diamond();
        let mut set = BitSet::new(4);
        set.insert(b);
        set.insert(c);
        set.insert(d);
        let (sub, mapping) = dag.induced_subgraph(&set);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2); // b->d, c->d
        assert_eq!(mapping, vec![b, c, d]);
        assert_eq!(sub.volume(), Ticks::new(9));
        assert_eq!(sub.label(NodeId::from_index(0)), "b");
    }

    #[test]
    fn induced_subgraph_of_empty_set_is_empty() {
        let (dag, _) = diamond();
        let (sub, mapping) = dag.induced_subgraph(&BitSet::new(4));
        assert!(sub.is_empty());
        assert!(mapping.is_empty());
        assert_eq!(sub.volume(), Ticks::ZERO);
    }

    #[test]
    fn labels_and_wcets_are_mutable() {
        let (mut dag, [a, ..]) = diamond();
        dag.set_wcet(a, Ticks::new(42)).unwrap();
        dag.set_label(a, "start").unwrap();
        assert_eq!(dag.wcet(a), Ticks::new(42));
        assert_eq!(dag.label(a), "start");
        assert_eq!(dag.get_wcet(NodeId::from_index(77)), None);
    }

    #[test]
    fn debug_output_mentions_nodes() {
        let (dag, _) = diamond();
        let s = format!("{dag:?}");
        assert!(s.contains("nodes: 4"));
        assert!(s.contains("(a)"));
    }
}
