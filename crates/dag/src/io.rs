//! Plain-text task format (`.hdag`) — parse and render.
//!
//! A minimal line-oriented format so tasks can be stored in version
//! control, diffed, and fed to the `hetrta` CLI without pulling in a
//! serialization framework:
//!
//! ```text
//! # comments and blank lines are ignored
//! node <name> <wcet>
//! edge <from-name> <to-name>
//! offload <name>          # optional, at most once
//! period <ticks>          # optional (defaults to vol(G))
//! deadline <ticks>        # optional (defaults to period)
//! ```
//!
//! Names may contain any non-whitespace characters and must be unique.
//! The parsed graph is validated against the task model (acyclic, single
//! source/sink, no transitive edges).

use std::collections::HashMap;
use std::fmt;

use crate::{DagBuilder, DagError, HeteroDagTask, NodeId, Ticks};

/// A parse failure: line number (1-based) plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line (0 for file-level errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "task file invalid: {}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

impl From<DagError> for ParseError {
    fn from(e: DagError) -> Self {
        ParseError {
            line: 0,
            message: e.to_string(),
        }
    }
}

/// Result of parsing: the task plus the name table (id → name).
#[derive(Debug, Clone)]
pub struct ParsedTask {
    /// The heterogeneous task. When the file has no `offload` line the
    /// offloaded node is absent and the task is purely a host DAG.
    pub task: TaskKind,
    /// Node names in id order.
    pub names: Vec<String>,
}

/// Either a plain host task or a heterogeneous one, depending on whether
/// the file declares an `offload` node.
#[derive(Debug, Clone)]
pub enum TaskKind {
    /// No `offload` line: a homogeneous DAG task.
    Homogeneous(crate::DagTask),
    /// An `offload` line designated `v_off`.
    Heterogeneous(HeteroDagTask),
}

impl TaskKind {
    /// The underlying graph.
    #[must_use]
    pub fn dag(&self) -> &crate::Dag {
        match self {
            TaskKind::Homogeneous(t) => t.dag(),
            TaskKind::Heterogeneous(t) => t.dag(),
        }
    }

    /// The offloaded node, if heterogeneous.
    #[must_use]
    pub fn offloaded(&self) -> Option<NodeId> {
        match self {
            TaskKind::Homogeneous(_) => None,
            TaskKind::Heterogeneous(t) => Some(t.offloaded()),
        }
    }
}

/// Parses the `.hdag` text format.
///
/// # Errors
///
/// Returns a [`ParseError`] carrying the offending line number for syntax
/// problems, duplicate/unknown names, or a model violation detected by the
/// validating builder.
///
/// # Examples
///
/// ```
/// use hetrta_dag::io::parse_task;
///
/// let text = "
/// node a 2
/// node k 6
/// node z 2
/// edge a k
/// edge k z
/// offload k
/// deadline 12
/// period 20
/// ";
/// let parsed = parse_task(text)?;
/// assert_eq!(parsed.names, vec!["a", "k", "z"]);
/// assert!(parsed.task.offloaded().is_some());
/// # Ok::<(), hetrta_dag::io::ParseError>(())
/// ```
pub fn parse_task(text: &str) -> Result<ParsedTask, ParseError> {
    let mut builder = DagBuilder::new();
    let mut ids: HashMap<String, NodeId> = HashMap::new();
    let mut names: Vec<String> = Vec::new();
    let mut offload: Option<(usize, NodeId)> = None;
    let mut period: Option<Ticks> = None;
    let mut deadline: Option<Ticks> = None;
    let mut edges: Vec<(usize, String, String)> = Vec::new();

    let err = |line: usize, message: String| ParseError { line, message };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().expect("non-empty line has a first token");
        let rest: Vec<&str> = parts.collect();
        match keyword {
            "node" => {
                let [name, wcet] = rest.as_slice() else {
                    return Err(err(lineno, "expected `node <name> <wcet>`".into()));
                };
                if ids.contains_key(*name) {
                    return Err(err(lineno, format!("duplicate node name `{name}`")));
                }
                let wcet: u64 = wcet
                    .parse()
                    .map_err(|_| err(lineno, format!("invalid WCET `{wcet}`")))?;
                let id = builder.node((*name).to_owned(), Ticks::new(wcet));
                ids.insert((*name).to_owned(), id);
                names.push((*name).to_owned());
            }
            "edge" => {
                let [from, to] = rest.as_slice() else {
                    return Err(err(lineno, "expected `edge <from> <to>`".into()));
                };
                edges.push((lineno, (*from).to_owned(), (*to).to_owned()));
            }
            "offload" => {
                let [name] = rest.as_slice() else {
                    return Err(err(lineno, "expected `offload <name>`".into()));
                };
                if offload.is_some() {
                    return Err(err(lineno, "the model has a single offloaded node".into()));
                }
                let id = *ids
                    .get(*name)
                    .ok_or_else(|| err(lineno, format!("unknown node `{name}`")))?;
                offload = Some((lineno, id));
            }
            "period" => {
                let [v] = rest.as_slice() else {
                    return Err(err(lineno, "expected `period <ticks>`".into()));
                };
                let v: u64 = v
                    .parse()
                    .map_err(|_| err(lineno, format!("invalid period `{v}`")))?;
                period = Some(Ticks::new(v));
            }
            "deadline" => {
                let [v] = rest.as_slice() else {
                    return Err(err(lineno, "expected `deadline <ticks>`".into()));
                };
                let v: u64 = v
                    .parse()
                    .map_err(|_| err(lineno, format!("invalid deadline `{v}`")))?;
                deadline = Some(Ticks::new(v));
            }
            other => {
                return Err(err(lineno, format!("unknown keyword `{other}`")));
            }
        }
    }

    for (lineno, from, to) in edges {
        let f = *ids
            .get(&from)
            .ok_or_else(|| err(lineno, format!("unknown node `{from}`")))?;
        let t = *ids
            .get(&to)
            .ok_or_else(|| err(lineno, format!("unknown node `{to}`")))?;
        builder.edge(f, t).map_err(|e| err(lineno, e.to_string()))?;
    }

    let dag = builder.build()?;
    let period = period.unwrap_or_else(|| dag.volume());
    let deadline = deadline.unwrap_or(period);
    let task = match offload {
        Some((line, v)) => TaskKind::Heterogeneous(
            HeteroDagTask::new(dag, v, period, deadline).map_err(|e| err(line, e.to_string()))?,
        ),
        None => TaskKind::Homogeneous(
            crate::DagTask::new(dag, period, deadline).map_err(ParseError::from)?,
        ),
    };
    Ok(ParsedTask { task, names })
}

/// Renders a heterogeneous task back into the `.hdag` text format.
///
/// Unlabeled nodes are named after their ids (`n0`, `n1`, …); round-trips
/// through [`parse_task`] preserve structure, WCETs, offload designation
/// and timing parameters.
#[must_use]
pub fn render_task(task: &HeteroDagTask) -> String {
    let dag = task.dag();
    // Labels are display aids and need not be unique; fall back to the node
    // id for empty, multi-token, `#`-containing or duplicated labels.
    let mut label_count: HashMap<&str, usize> = HashMap::new();
    for v in dag.node_ids() {
        *label_count.entry(dag.label(v)).or_insert(0) += 1;
    }
    let name = |v: NodeId| -> String {
        let label = dag.label(v);
        let usable = !label.is_empty()
            && label.split_whitespace().count() == 1
            && !label.contains('#')
            && label_count.get(label) == Some(&1);
        if usable {
            label.to_owned()
        } else {
            format!("{v}")
        }
    };
    let mut out = String::from("# hetrta task file\n");
    for v in dag.node_ids() {
        out.push_str(&format!("node {} {}\n", name(v), dag.wcet(v)));
    }
    for (f, t) in dag.edges() {
        out.push_str(&format!("edge {} {}\n", name(f), name(t)));
    }
    out.push_str(&format!("offload {}\n", name(task.offloaded())));
    out.push_str(&format!("period {}\n", task.period()));
    out.push_str(&format!("deadline {}\n", task.deadline()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "
# Figure 1(a)
node v1 1
node v2 4
node v3 6
node v4 2
node v5 1
node v_off 4
edge v1 v2
edge v1 v3
edge v1 v4
edge v4 v_off
edge v2 v5
edge v3 v5
edge v_off v5
offload v_off
period 50
deadline 40
";

    #[test]
    fn parses_figure1() {
        let parsed = parse_task(SAMPLE).unwrap();
        let TaskKind::Heterogeneous(task) = parsed.task else {
            panic!("expected heterogeneous task");
        };
        assert_eq!(task.volume(), Ticks::new(18));
        assert_eq!(task.c_off(), Ticks::new(4));
        assert_eq!(task.period(), Ticks::new(50));
        assert_eq!(task.deadline(), Ticks::new(40));
        assert_eq!(parsed.names.len(), 6);
    }

    #[test]
    fn defaults_for_period_and_deadline() {
        let parsed = parse_task("node a 3\nnode b 4\nedge a b\n").unwrap();
        let TaskKind::Homogeneous(task) = parsed.task else {
            panic!("expected homogeneous task");
        };
        assert_eq!(task.period(), Ticks::new(7));
        assert_eq!(task.deadline(), Ticks::new(7));
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let parsed = parse_task(SAMPLE).unwrap();
        let TaskKind::Heterogeneous(task) = parsed.task else {
            unreachable!()
        };
        let rendered = render_task(&task);
        let reparsed = parse_task(&rendered).unwrap();
        let TaskKind::Heterogeneous(task2) = reparsed.task else {
            panic!("roundtrip lost the offload");
        };
        assert_eq!(task.volume(), task2.volume());
        assert_eq!(task.c_off(), task2.c_off());
        assert_eq!(task.period(), task2.period());
        assert_eq!(task.deadline(), task2.deadline());
        assert_eq!(task.dag().edge_count(), task2.dag().edge_count());
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = parse_task("node a 3\nnode a 4\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("duplicate"));

        let e = parse_task("node a 3\nedge a b\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown node `b`"));

        let e = parse_task("node a x\n").unwrap_err();
        assert!(e.message.contains("invalid WCET"));

        let e = parse_task("frobnicate\n").unwrap_err();
        assert!(e.message.contains("unknown keyword"));
    }

    #[test]
    fn structural_violations_are_reported() {
        // transitive edge
        let e =
            parse_task("node a 1\nnode b 1\nnode c 1\nedge a b\nedge b c\nedge a c\n").unwrap_err();
        assert!(e.to_string().contains("transitive"));
        // two offloads
        let e = parse_task("node a 1\nnode b 1\nedge a b\noffload a\noffload b\n").unwrap_err();
        assert!(e.message.contains("single offloaded node"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let parsed = parse_task("\n# hi\nnode a 3 # trailing\n\n").unwrap();
        assert_eq!(parsed.names, vec!["a"]);
    }

    #[test]
    fn deadline_exceeding_period_rejected() {
        let e = parse_task("node a 1\nperiod 5\ndeadline 9\n").unwrap_err();
        assert!(e.to_string().contains("constrained deadline"));
    }
}
