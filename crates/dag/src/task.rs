//! Sporadic DAG tasks, homogeneous and heterogeneous.

use crate::algo::CriticalPath;
use crate::{Dag, DagError, NodeId, Rational, Ticks};

/// A sporadic DAG task `τ = <G, T, D>` executing entirely on the host
/// (the homogeneous model the paper starts from).
///
/// `T` is the minimum inter-arrival time and `D ≤ T` the constrained
/// relative deadline. The graph is stored by value; it is validated to have
/// a constrained deadline at construction, while structural validation of
/// `G` itself is the responsibility of
/// [`DagBuilder`](crate::DagBuilder) / [`validate_task_model`](crate::validate_task_model).
///
/// # Examples
///
/// ```
/// use hetrta_dag::{DagBuilder, DagTask, Ticks};
///
/// let mut b = DagBuilder::new();
/// let a = b.node("a", Ticks::new(4));
/// let z = b.node("z", Ticks::new(2));
/// b.edge(a, z)?;
/// let task = DagTask::new(b.build()?, Ticks::new(20), Ticks::new(10))?;
/// assert_eq!(task.volume(), Ticks::new(6));
/// assert_eq!(task.utilization(), hetrta_dag::Rational::new(6, 20));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DagTask {
    dag: Dag,
    period: Ticks,
    deadline: Ticks,
}

impl DagTask {
    /// Creates a task, enforcing the constrained deadline `D ≤ T`.
    ///
    /// # Errors
    ///
    /// Returns [`DagError::DeadlineExceedsPeriod`] if `deadline > period`.
    pub fn new(dag: Dag, period: Ticks, deadline: Ticks) -> Result<Self, DagError> {
        if deadline > period {
            return Err(DagError::DeadlineExceedsPeriod {
                deadline: deadline.get(),
                period: period.get(),
            });
        }
        Ok(DagTask {
            dag,
            period,
            deadline,
        })
    }

    /// Creates an implicit-deadline task (`D = T`).
    ///
    /// # Errors
    ///
    /// Never fails today; returns `Result` for signature stability.
    pub fn implicit_deadline(dag: Dag, period: Ticks) -> Result<Self, DagError> {
        Self::new(dag, period, period)
    }

    /// The task's DAG `G`.
    #[must_use]
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// Minimum inter-arrival time `T`.
    #[must_use]
    pub fn period(&self) -> Ticks {
        self.period
    }

    /// Constrained relative deadline `D`.
    #[must_use]
    pub fn deadline(&self) -> Ticks {
        self.deadline
    }

    /// `vol(G)`: total sequential workload.
    #[must_use]
    pub fn volume(&self) -> Ticks {
        self.dag.volume()
    }

    /// `len(G)`: critical-path length.
    #[must_use]
    pub fn critical_path_length(&self) -> Ticks {
        CriticalPath::of(&self.dag).length()
    }

    /// Task utilization `vol(G) / T`.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero.
    #[must_use]
    pub fn utilization(&self) -> Rational {
        assert!(!self.period.is_zero(), "utilization of a zero-period task");
        Rational::new(self.volume().get() as i128, self.period.get() as i128)
    }

    /// Consumes the task and returns its DAG.
    #[must_use]
    pub fn into_dag(self) -> Dag {
        self.dag
    }
}

/// A sporadic DAG task with one node offloaded to the accelerator device —
/// the heterogeneous model of the paper (Section 2).
///
/// `V = {v_1, …, v_n, v_off}`: every node executes on the host except the
/// designated `v_off`, which executes on the single accelerator and never
/// competes for host cores.
///
/// # Examples
///
/// ```
/// use hetrta_dag::{DagBuilder, HeteroDagTask, Ticks};
///
/// let mut b = DagBuilder::new();
/// let a = b.node("a", Ticks::new(1));
/// let k = b.node("kernel", Ticks::new(8)); // will run on the GPU
/// let z = b.node("z", Ticks::new(1));
/// b.edges([(a, k), (k, z)])?;
/// let task = HeteroDagTask::new(b.build()?, k, Ticks::new(30), Ticks::new(30))?;
/// assert_eq!(task.c_off(), Ticks::new(8));
/// assert_eq!(task.host_volume(), Ticks::new(2));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HeteroDagTask {
    dag: Dag,
    offloaded: NodeId,
    period: Ticks,
    deadline: Ticks,
}

impl HeteroDagTask {
    /// Creates a heterogeneous task with `offloaded` as `v_off`.
    ///
    /// # Errors
    ///
    /// - [`DagError::UnknownNode`] if `offloaded` is not a node of `dag`;
    /// - [`DagError::DeadlineExceedsPeriod`] if `deadline > period`.
    pub fn new(
        dag: Dag,
        offloaded: NodeId,
        period: Ticks,
        deadline: Ticks,
    ) -> Result<Self, DagError> {
        if !dag.contains_node(offloaded) {
            return Err(DagError::UnknownNode(offloaded));
        }
        if deadline > period {
            return Err(DagError::DeadlineExceedsPeriod {
                deadline: deadline.get(),
                period: period.get(),
            });
        }
        Ok(HeteroDagTask {
            dag,
            offloaded,
            period,
            deadline,
        })
    }

    /// Like [`HeteroDagTask::new`] but additionally rejects an offloaded
    /// node that is the unique source or sink of the DAG.
    ///
    /// The generic transformed structure of the paper (Figure 4) has host
    /// work both before `v_sync` and after the join of `G_par` and `v_off`;
    /// offloading the source or sink degenerates it. The analysis still
    /// copes, but generators use this constructor to mirror the evaluation
    /// setup.
    ///
    /// # Errors
    ///
    /// Everything [`HeteroDagTask::new`] reports, plus
    /// [`DagError::InvalidOffloadedNode`] for a source/sink offload.
    pub fn new_strict(
        dag: Dag,
        offloaded: NodeId,
        period: Ticks,
        deadline: Ticks,
    ) -> Result<Self, DagError> {
        if dag.source() == Some(offloaded) || dag.sink() == Some(offloaded) {
            return Err(DagError::InvalidOffloadedNode(offloaded));
        }
        Self::new(dag, offloaded, period, deadline)
    }

    /// The task's DAG `G` (host nodes plus `v_off`).
    #[must_use]
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// The offloaded node `v_off`.
    #[must_use]
    pub fn offloaded(&self) -> NodeId {
        self.offloaded
    }

    /// `C_off`: WCET of the offloaded node on the accelerator.
    #[must_use]
    pub fn c_off(&self) -> Ticks {
        self.dag.wcet(self.offloaded)
    }

    /// Minimum inter-arrival time `T`.
    #[must_use]
    pub fn period(&self) -> Ticks {
        self.period
    }

    /// Constrained relative deadline `D`.
    #[must_use]
    pub fn deadline(&self) -> Ticks {
        self.deadline
    }

    /// `vol(G)` including the offloaded node (the paper's definition).
    #[must_use]
    pub fn volume(&self) -> Ticks {
        self.dag.volume()
    }

    /// Workload that runs on the host: `vol(G) − C_off`.
    #[must_use]
    pub fn host_volume(&self) -> Ticks {
        self.volume() - self.c_off()
    }

    /// Fraction `C_off / vol(G)` — the x-axis of every figure of the
    /// paper's evaluation.
    ///
    /// # Panics
    ///
    /// Panics if the volume is zero.
    #[must_use]
    pub fn offload_fraction(&self) -> Rational {
        assert!(
            !self.volume().is_zero(),
            "offload fraction of a zero-volume task"
        );
        Rational::new(self.c_off().get() as i128, self.volume().get() as i128)
    }

    /// `len(G)`: critical-path length of the full DAG.
    #[must_use]
    pub fn critical_path_length(&self) -> Ticks {
        CriticalPath::of(&self.dag).length()
    }

    /// Reinterprets the task as homogeneous (as if `v_off` executed on a
    /// host core) — the baseline the paper compares against.
    #[must_use]
    pub fn as_homogeneous(&self) -> DagTask {
        DagTask {
            dag: self.dag.clone(),
            period: self.period,
            deadline: self.deadline,
        }
    }

    /// Consumes the task and returns its DAG.
    #[must_use]
    pub fn into_dag(self) -> Dag {
        self.dag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DagBuilder;

    fn simple_dag() -> (Dag, NodeId, NodeId, NodeId) {
        let mut b = DagBuilder::new();
        let a = b.node("a", Ticks::new(2));
        let k = b.node("k", Ticks::new(6));
        let z = b.node("z", Ticks::new(2));
        b.edges([(a, k), (k, z)]).unwrap();
        (b.build().unwrap(), a, k, z)
    }

    #[test]
    fn constrained_deadline_enforced() {
        let (dag, ..) = simple_dag();
        let err = DagTask::new(dag, Ticks::new(10), Ticks::new(11)).unwrap_err();
        assert_eq!(
            err,
            DagError::DeadlineExceedsPeriod {
                deadline: 11,
                period: 10
            }
        );
    }

    #[test]
    fn implicit_deadline_sets_d_equal_t() {
        let (dag, ..) = simple_dag();
        let t = DagTask::implicit_deadline(dag, Ticks::new(25)).unwrap();
        assert_eq!(t.deadline(), t.period());
    }

    #[test]
    fn task_accessors() {
        let (dag, ..) = simple_dag();
        let t = DagTask::new(dag, Ticks::new(20), Ticks::new(15)).unwrap();
        assert_eq!(t.volume(), Ticks::new(10));
        assert_eq!(t.critical_path_length(), Ticks::new(10));
        assert_eq!(t.utilization(), Rational::new(1, 2));
        assert_eq!(t.dag().node_count(), 3);
        assert_eq!(t.into_dag().node_count(), 3);
    }

    #[test]
    fn hetero_requires_known_offloaded_node() {
        let (dag, ..) = simple_dag();
        let bogus = NodeId::from_index(9);
        assert_eq!(
            HeteroDagTask::new(dag, bogus, Ticks::new(10), Ticks::new(10)).unwrap_err(),
            DagError::UnknownNode(bogus)
        );
    }

    #[test]
    fn hetero_volume_split() {
        let (dag, _, k, _) = simple_dag();
        let t = HeteroDagTask::new(dag, k, Ticks::new(20), Ticks::new(20)).unwrap();
        assert_eq!(t.c_off(), Ticks::new(6));
        assert_eq!(t.host_volume(), Ticks::new(4));
        assert_eq!(t.volume(), Ticks::new(10));
        assert_eq!(t.offload_fraction(), Rational::new(6, 10));
    }

    #[test]
    fn strict_rejects_source_and_sink() {
        let (dag, a, _, z) = simple_dag();
        assert_eq!(
            HeteroDagTask::new_strict(dag.clone(), a, Ticks::new(10), Ticks::new(10)).unwrap_err(),
            DagError::InvalidOffloadedNode(a)
        );
        assert_eq!(
            HeteroDagTask::new_strict(dag, z, Ticks::new(10), Ticks::new(10)).unwrap_err(),
            DagError::InvalidOffloadedNode(z)
        );
    }

    #[test]
    fn strict_accepts_interior_node() {
        let (dag, _, k, _) = simple_dag();
        assert!(HeteroDagTask::new_strict(dag, k, Ticks::new(10), Ticks::new(10)).is_ok());
    }

    #[test]
    fn as_homogeneous_preserves_timing_parameters() {
        let (dag, _, k, _) = simple_dag();
        let t = HeteroDagTask::new(dag, k, Ticks::new(20), Ticks::new(18)).unwrap();
        let hom = t.as_homogeneous();
        assert_eq!(hom.period(), Ticks::new(20));
        assert_eq!(hom.deadline(), Ticks::new(18));
        assert_eq!(hom.volume(), t.volume());
    }
}
