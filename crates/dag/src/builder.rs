//! Validating DAG builder.

use crate::algo::{topological_order, transitive};
use crate::{Dag, DagError, NodeId, Ticks};

/// A builder that constructs a [`Dag`] and validates the paper's structural
/// model on [`build`](DagBuilder::build).
///
/// The checks performed by `build` are:
///
/// 1. the graph is non-empty;
/// 2. the graph is acyclic;
/// 3. the graph contains no transitive edge (Section 2 of the paper forbids
///    them);
/// 4. optionally — on by default — the graph has exactly one source and one
///    sink. Call
///    [`DagBuilder::allow_multiple_sources_and_sinks`] to skip check 4, or
///    [`add_dummy_terminals`](DagBuilder::add_dummy_terminals) to instead
///    normalize the graph with zero-WCET dummy source/sink nodes as
///    suggested by the paper.
///
/// # Examples
///
/// ```
/// use hetrta_dag::{DagBuilder, Ticks};
///
/// let mut b = DagBuilder::new();
/// let fork = b.node("fork", Ticks::new(1));
/// let left = b.node("left", Ticks::new(5));
/// let right = b.node("right", Ticks::new(4));
/// let join = b.node("join", Ticks::new(1));
/// b.edges([(fork, left), (fork, right), (left, join), (right, join)])?;
/// let dag = b.build()?;
/// assert_eq!(dag.node_count(), 4);
/// # Ok::<(), hetrta_dag::DagError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct DagBuilder {
    wcets: Vec<Ticks>,
    labels: Vec<String>,
    /// Per-node successor lists (amortized `O(1)` insertion, `O(deg)`
    /// duplicate checks) — the mutable accumulation representation.
    succs: Vec<Vec<NodeId>>,
    /// Every edge in insertion order: [`DagBuilder::build`] freezes this
    /// into the [`Dag`]'s CSR arrays in one `O(|V| + |E|)` pass with
    /// adjacency order identical to incremental insertion.
    edges: Vec<(NodeId, NodeId)>,
    allow_multi_terminals: bool,
    add_dummies: bool,
}

impl DagBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        DagBuilder::default()
    }

    /// Adds a labeled node and returns its id.
    pub fn node(&mut self, label: impl Into<String>, wcet: Ticks) -> NodeId {
        let id = NodeId::from_index(self.wcets.len());
        self.wcets.push(wcet);
        self.labels.push(label.into());
        self.succs.push(Vec::new());
        id
    }

    /// Adds an unlabeled node and returns its id.
    pub fn unlabeled_node(&mut self, wcet: Ticks) -> NodeId {
        self.node(String::new(), wcet)
    }

    /// Adds one precedence edge.
    ///
    /// # Errors
    ///
    /// The per-edge structural errors: unknown node, self-loop,
    /// duplicate.
    pub fn edge(&mut self, from: NodeId, to: NodeId) -> Result<&mut Self, DagError> {
        if from.index() >= self.wcets.len() {
            return Err(DagError::UnknownNode(from));
        }
        if to.index() >= self.wcets.len() {
            return Err(DagError::UnknownNode(to));
        }
        if from == to {
            return Err(DagError::SelfLoop(from));
        }
        if self.succs[from.index()].contains(&to) {
            return Err(DagError::DuplicateEdge(from, to));
        }
        self.succs[from.index()].push(to);
        self.edges.push((from, to));
        Ok(self)
    }

    /// Adds many precedence edges at once.
    ///
    /// # Errors
    ///
    /// Stops at and reports the first failing edge.
    pub fn edges(
        &mut self,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Result<&mut Self, DagError> {
        for (f, t) in edges {
            self.edge(f, t)?;
        }
        Ok(self)
    }

    /// Accept graphs with multiple sources and/or sinks.
    ///
    /// The paper assumes a unique source and sink "without loss of
    /// generality"; sub-DAGs such as `G_par` legitimately violate it.
    pub fn allow_multiple_sources_and_sinks(&mut self) -> &mut Self {
        self.allow_multi_terminals = true;
        self
    }

    /// Normalize multi-source / multi-sink graphs by adding zero-WCET dummy
    /// terminals, as described in Section 2 of the paper.
    ///
    /// A dummy source (labeled `"src"`) gains edges to all original sources
    /// and a dummy sink (labeled `"sink"`) from all original sinks; they are
    /// only added when needed.
    pub fn add_dummy_terminals(&mut self) -> &mut Self {
        self.add_dummies = true;
        self
    }

    /// Number of nodes added so far.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.wcets.len()
    }

    /// Number of edges added so far.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// `true` if the edge `(from, to)` was already added — an `O(deg)`
    /// probe into the accumulated adjacency, for construction-side dedup
    /// (e.g. the OpenMP lowering joining the same open task exit twice).
    #[must_use]
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.succs
            .get(from.index())
            .is_some_and(|succs| succs.contains(&to))
    }

    /// Freezes the accumulated structure into a [`Dag`] in one
    /// `O(|V| + |E|)` pass **without model validation** — no acyclicity,
    /// transitive-edge or terminal checks (the per-edge checks of
    /// [`DagBuilder::edge`] have already run).
    ///
    /// This is the fast path for generators whose output is valid by
    /// construction (the nested fork-join expansion can only produce
    /// acyclic, transitively-reduced graphs) and for intermediate graphs
    /// that intentionally violate the model before a later normalization
    /// pass (the OpenMP lowering freezes, transitively reduces, then
    /// validates). Untrusted input should go through
    /// [`DagBuilder::build`].
    ///
    /// Adjacency order is identical to inserting the same edges
    /// incrementally, so freezing is bitwise-transparent to every
    /// downstream analysis.
    #[must_use]
    pub fn freeze(&self) -> Dag {
        Dag::from_parts(self.wcets.clone(), self.labels.clone(), &self.edges)
    }

    /// Finishes construction, validating the task model.
    ///
    /// The accumulated adjacency freezes into the [`Dag`]'s flat CSR form
    /// in one `O(|V| + |E|)` pass (no per-edge shifting), so building a
    /// graph through the builder costs linear time regardless of size.
    ///
    /// # Errors
    ///
    /// - [`DagError::Empty`] for a graph without nodes;
    /// - [`DagError::Cycle`] if a directed cycle exists;
    /// - [`DagError::TransitiveEdge`] if a transitive edge exists;
    /// - [`DagError::MultipleSources`] / [`DagError::MultipleSinks`] unless
    ///   allowed or normalized away.
    pub fn build(&self) -> Result<Dag, DagError> {
        if self.wcets.is_empty() {
            return Err(DagError::Empty);
        }
        // Dummy terminals are decided from the accumulated adjacency and
        // appended to the *parts* before the single freeze — the frozen
        // graph is never mutated. Appending the dummy nodes and edges at
        // the end of the part vectors yields exactly the adjacency the
        // old freeze-then-mutate path produced (appended edges land at
        // the end of each endpoint's segment either way).
        let n = self.wcets.len();
        let dag = if self.add_dummies {
            let mut in_deg = vec![0u32; n];
            let mut out_deg = vec![0u32; n];
            for &(from, to) in &self.edges {
                out_deg[from.index()] += 1;
                in_deg[to.index()] += 1;
            }
            let sources: Vec<NodeId> = (0..n)
                .filter(|&i| in_deg[i] == 0)
                .map(NodeId::from_index)
                .collect();
            let sinks: Vec<NodeId> = (0..n)
                .filter(|&i| out_deg[i] == 0)
                .map(NodeId::from_index)
                .collect();
            if sources.len() > 1 || sinks.len() > 1 {
                let mut wcets = self.wcets.clone();
                let mut labels = self.labels.clone();
                let mut edges = self.edges.clone();
                if sources.len() > 1 {
                    let src = NodeId::from_index(wcets.len());
                    wcets.push(Ticks::ZERO);
                    labels.push("src".to_owned());
                    edges.extend(sources.into_iter().map(|s| (src, s)));
                }
                if sinks.len() > 1 {
                    let sink = NodeId::from_index(wcets.len());
                    wcets.push(Ticks::ZERO);
                    labels.push("sink".to_owned());
                    edges.extend(sinks.into_iter().map(|s| (s, sink)));
                }
                Dag::from_parts(wcets, labels, &edges)
            } else {
                self.freeze()
            }
        } else {
            self.freeze()
        };
        topological_order(&dag)?;
        // Dummy terminal edges can never be transitive (a dummy source is
        // the only predecessor of every original source, symmetrically
        // for sinks), so validating the final graph reports the same
        // transitive edges the pre-dummy graph would.
        if let Some((u, w)) = transitive::find_transitive_edge(&dag)? {
            return Err(DagError::TransitiveEdge(u, w));
        }
        if !self.allow_multi_terminals {
            let sources = dag.sources();
            if sources.len() != 1 {
                return Err(DagError::MultipleSources(sources));
            }
            let sinks = dag.sinks();
            if sinks.len() != 1 {
                return Err(DagError::MultipleSinks(sinks));
            }
        }
        Ok(dag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_valid_fork_join() {
        let mut b = DagBuilder::new();
        let f = b.node("f", Ticks::ONE);
        let l = b.node("l", Ticks::ONE);
        let r = b.node("r", Ticks::ONE);
        let j = b.node("j", Ticks::ONE);
        b.edges([(f, l), (f, r), (l, j), (r, j)]).unwrap();
        let dag = b.build().unwrap();
        assert_eq!(dag.source(), Some(f));
        assert_eq!(dag.sink(), Some(j));
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(DagBuilder::new().build().unwrap_err(), DagError::Empty);
    }

    #[test]
    fn rejects_cycle() {
        let mut b = DagBuilder::new();
        let a = b.node("a", Ticks::ONE);
        let c = b.node("c", Ticks::ONE);
        b.edge(a, c).unwrap();
        b.edge(c, a).unwrap();
        assert!(matches!(b.build(), Err(DagError::Cycle(_))));
    }

    #[test]
    fn rejects_transitive_edge() {
        let mut b = DagBuilder::new();
        let a = b.node("a", Ticks::ONE);
        let m = b.node("m", Ticks::ONE);
        let z = b.node("z", Ticks::ONE);
        b.edges([(a, m), (m, z), (a, z)]).unwrap();
        assert_eq!(b.build().unwrap_err(), DagError::TransitiveEdge(a, z));
    }

    #[test]
    fn rejects_multiple_sources_by_default() {
        let mut b = DagBuilder::new();
        let a = b.node("a", Ticks::ONE);
        let c = b.node("c", Ticks::ONE);
        let z = b.node("z", Ticks::ONE);
        b.edges([(a, z), (c, z)]).unwrap();
        assert!(matches!(b.build(), Err(DagError::MultipleSources(v)) if v.len() == 2));
    }

    #[test]
    fn allow_multi_terminals_accepts_forest() {
        let mut b = DagBuilder::new();
        b.node("a", Ticks::ONE);
        b.node("b", Ticks::ONE);
        b.allow_multiple_sources_and_sinks();
        let dag = b.build().unwrap();
        assert_eq!(dag.sources().len(), 2);
    }

    #[test]
    fn dummy_terminals_normalize() {
        let mut b = DagBuilder::new();
        let a = b.node("a", Ticks::new(3));
        let c = b.node("c", Ticks::new(4));
        let z = b.node("z", Ticks::new(5));
        let y = b.node("y", Ticks::new(6));
        b.edges([(a, z), (c, y)]).unwrap();
        b.add_dummy_terminals();
        let dag = b.build().unwrap();
        assert_eq!(dag.node_count(), 6);
        let src = dag.source().expect("unique source after normalization");
        let sink = dag.sink().expect("unique sink after normalization");
        assert_eq!(dag.wcet(src), Ticks::ZERO);
        assert_eq!(dag.wcet(sink), Ticks::ZERO);
        assert_eq!(dag.label(src), "src");
        assert_eq!(dag.label(sink), "sink");
        // volume unchanged by dummies
        assert_eq!(dag.volume(), Ticks::new(18));
    }

    #[test]
    fn dummy_terminals_noop_when_already_normalized() {
        let mut b = DagBuilder::new();
        let a = b.node("a", Ticks::ONE);
        let z = b.node("z", Ticks::ONE);
        b.edge(a, z).unwrap();
        b.add_dummy_terminals();
        let dag = b.build().unwrap();
        assert_eq!(dag.node_count(), 2);
    }

    #[test]
    fn builder_is_reusable_after_build() {
        let mut b = DagBuilder::new();
        let a = b.node("a", Ticks::ONE);
        let z = b.node("z", Ticks::ONE);
        b.edge(a, z).unwrap();
        let d1 = b.build().unwrap();
        let w = b.node("w", Ticks::ONE);
        b.edge(z, w).unwrap();
        let d2 = b.build().unwrap();
        assert_eq!(d1.node_count(), 2);
        assert_eq!(d2.node_count(), 3);
    }
}
