//! A fixed-capacity bit set over dense node indices.

use core::fmt;

use crate::NodeId;

/// A fixed-capacity set of [`NodeId`]s backed by `u64` words.
///
/// Reachability queries (`Pred(v_off)`, `Succ(v_off)`, the parallel set
/// `V_par`) are the hot path of the DAG transformation; a dense bit set
/// makes the per-node closure computation a handful of word operations.
///
/// The capacity is fixed at construction; inserting an index `≥ capacity`
/// panics.
///
/// # Examples
///
/// ```
/// use hetrta_dag::{BitSet, NodeId};
///
/// let mut s = BitSet::new(10);
/// s.insert(NodeId::from_index(3));
/// s.insert(NodeId::from_index(7));
/// assert!(s.contains(NodeId::from_index(3)));
/// assert_eq!(s.len(), 2);
/// let ids: Vec<usize> = s.iter().map(|n| n.index()).collect();
/// assert_eq!(ids, vec![3, 7]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl Default for BitSet {
    /// The empty set with zero capacity (useful as a take/replace
    /// placeholder in in-place algorithms).
    fn default() -> Self {
        BitSet::new(0)
    }
}

impl BitSet {
    /// Creates an empty set able to hold indices `0..capacity`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Creates a set containing all indices `0..capacity`.
    #[must_use]
    pub fn full(capacity: usize) -> Self {
        let mut s = BitSet::new(capacity);
        for i in 0..capacity {
            s.insert(NodeId::from_index(i));
        }
        s
    }

    /// The maximum number of distinct indices this set can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts a node; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `id.index() >= capacity`.
    pub fn insert(&mut self, id: NodeId) -> bool {
        let i = id.index();
        assert!(
            i < self.capacity,
            "bitset index {i} out of capacity {}",
            self.capacity
        );
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Removes a node; returns `true` if it was present.
    pub fn remove(&mut self, id: NodeId) -> bool {
        let i = id.index();
        if i >= self.capacity {
            return false;
        }
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Membership test. Out-of-range indices are simply absent.
    #[must_use]
    pub fn contains(&self, id: NodeId) -> bool {
        let i = id.index();
        i < self.capacity && self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of elements in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if the set contains no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// In-place union: `self ← self ∪ other`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection: `self ← self ∩ other`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference: `self ← self \ other`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// `true` if `self ⊆ other`.
    #[must_use]
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.capacity == other.capacity
            && self
                .words
                .iter()
                .zip(&other.words)
                .all(|(a, b)| a & !b == 0)
    }

    /// `true` if the two sets share no element.
    #[must_use]
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Iterates over the members in increasing index order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<NodeId> for BitSet {
    /// Collects node ids into a set sized to the largest index + 1.
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let ids: Vec<NodeId> = iter.into_iter().collect();
        let cap = ids.iter().map(|n| n.index() + 1).max().unwrap_or(0);
        let mut s = BitSet::new(cap);
        for id in ids {
            s.insert(id);
        }
        s
    }
}

impl Extend<NodeId> for BitSet {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        for id in iter {
            self.insert(id);
        }
    }
}

/// Iterator over the members of a [`BitSet`], produced by [`BitSet::iter`].
#[derive(Debug)]
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(NodeId::from_index(self.word_idx * 64 + bit));
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = NodeId;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(indices: &[usize]) -> Vec<NodeId> {
        indices.iter().map(|&i| NodeId::from_index(i)).collect()
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(NodeId::from_index(0)));
        assert!(s.insert(NodeId::from_index(64)));
        assert!(s.insert(NodeId::from_index(129)));
        assert!(!s.insert(NodeId::from_index(129)));
        assert!(s.contains(NodeId::from_index(64)));
        assert!(!s.contains(NodeId::from_index(65)));
        assert_eq!(s.len(), 3);
        assert!(s.remove(NodeId::from_index(64)));
        assert!(!s.remove(NodeId::from_index(64)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_capacity_panics() {
        let mut s = BitSet::new(4);
        s.insert(NodeId::from_index(4));
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let s = BitSet::new(4);
        assert!(!s.contains(NodeId::from_index(100)));
    }

    #[test]
    fn set_operations() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.extend(ids(&[1, 2, 3, 70]));
        b.extend(ids(&[2, 3, 4, 71]));

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(
            u.iter().map(|n| n.index()).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 70, 71]
        );

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().map(|n| n.index()).collect::<Vec<_>>(), vec![2, 3]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().map(|n| n.index()).collect::<Vec<_>>(), vec![1, 70]);
    }

    #[test]
    fn subset_and_disjoint() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        a.extend(ids(&[1, 2]));
        b.extend(ids(&[1, 2, 3]));
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        let mut c = BitSet::new(10);
        c.extend(ids(&[4, 5]));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn full_and_clear() {
        let mut s = BitSet::full(65);
        assert_eq!(s.len(), 65);
        assert!(s.contains(NodeId::from_index(64)));
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let mut s = BitSet::new(200);
        s.extend(ids(&[0, 63, 64, 127, 128, 199]));
        let got: Vec<usize> = s.iter().map(|n| n.index()).collect();
        assert_eq!(got, vec![0, 63, 64, 127, 128, 199]);
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let s: BitSet = ids(&[3, 9]).into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert_eq!(s.len(), 2);
        let empty: BitSet = Vec::<NodeId>::new().into_iter().collect();
        assert!(empty.is_empty());
        assert_eq!(empty.capacity(), 0);
    }

    #[test]
    fn debug_lists_members() {
        let mut s = BitSet::new(8);
        s.insert(NodeId::from_index(2));
        assert_eq!(format!("{s:?}"), "{n2}");
    }
}
