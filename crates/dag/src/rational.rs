//! Exact rational arithmetic for response-time values.

use core::cmp::Ordering;
use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number with `i128` numerator and denominator.
///
/// The response-time equations of the paper divide integer workloads by the
/// core count `m` (e.g. `R_hom = len + (vol − len)/m`, Eq. 1). Using floats
/// would make comparisons such as `C_off ≥ R_hom(G_par)` — which select the
/// analysis scenario of Theorem 1 — fragile. All analysis results are
/// therefore exact `Rational` values.
///
/// Values are kept normalized: the denominator is strictly positive and
/// `gcd(|num|, den) == 1`. All model-scale quantities (WCETs ≤ 100, a few
/// hundred nodes, `m ≤ 2^16`) are far below `i128` limits, so plain
/// (panicking-on-overflow-in-debug) arithmetic is used.
///
/// # Examples
///
/// ```
/// use hetrta_dag::Rational;
///
/// let r = Rational::new(10, 4);
/// assert_eq!(r, Rational::new(5, 2));
/// assert_eq!(r + Rational::from_integer(1), Rational::new(7, 2));
/// assert_eq!(r.to_f64(), 2.5);
/// assert_eq!(r.ceil(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Rational {
    num: i128,
    den: i128,
}

const fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    if a < 0 {
        -a
    } else {
        a
    }
}

impl Rational {
    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };

    /// One.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates the rational `num / den`, normalized.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    #[must_use]
    pub const fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let g = gcd(num, den);
        let (mut n, mut d) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if d < 0 {
            n = -n;
            d = -d;
        }
        Rational { num: n, den: d }
    }

    /// Creates a rational from an integer.
    #[must_use]
    pub const fn from_integer(v: i128) -> Self {
        Rational { num: v, den: 1 }
    }

    /// Numerator of the normalized representation.
    #[must_use]
    pub const fn numer(self) -> i128 {
        self.num
    }

    /// Denominator of the normalized representation (always positive).
    #[must_use]
    pub const fn denom(self) -> i128 {
        self.den
    }

    /// `true` if the value is an integer.
    #[must_use]
    pub const fn is_integer(self) -> bool {
        self.den == 1
    }

    /// `true` if the value is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.num == 0
    }

    /// `true` if the value is strictly negative.
    #[must_use]
    pub const fn is_negative(self) -> bool {
        self.num < 0
    }

    /// Largest integer `≤ self`.
    #[must_use]
    pub const fn floor(self) -> i128 {
        if self.num >= 0 {
            self.num / self.den
        } else {
            (self.num - (self.den - 1)) / self.den
        }
    }

    /// Smallest integer `≥ self`.
    #[must_use]
    pub const fn ceil(self) -> i128 {
        if self.num >= 0 {
            (self.num + self.den - 1) / self.den
        } else {
            self.num / self.den
        }
    }

    /// Lossy conversion to `f64`, for reporting.
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Absolute value.
    #[must_use]
    pub const fn abs(self) -> Self {
        Rational {
            num: if self.num < 0 { -self.num } else { self.num },
            den: self.den,
        }
    }

    /// Returns the larger of two rationals.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two rationals.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Checked addition, `None` on overflow.
    #[must_use]
    pub fn checked_add(self, rhs: Self) -> Option<Self> {
        let num = self
            .num
            .checked_mul(rhs.den)?
            .checked_add(rhs.num.checked_mul(self.den)?)?;
        let den = self.den.checked_mul(rhs.den)?;
        Some(Rational::new(num, den))
    }

    /// Checked multiplication, `None` on overflow.
    #[must_use]
    pub fn checked_mul(self, rhs: Self) -> Option<Self> {
        // Cross-reduce first to keep intermediates small.
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        let (a, d) = (self.num / g1, rhs.den / g1);
        let (b, c) = (rhs.num / g2, self.den / g2);
        Some(Rational::new(a.checked_mul(b)?, c.checked_mul(d)?))
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i128> for Rational {
    fn from(v: i128) -> Self {
        Rational::from_integer(v)
    }
}

impl From<u64> for Rational {
    fn from(v: u64) -> Self {
        Rational::from_integer(v as i128)
    }
}

impl From<i32> for Rational {
    fn from(v: i32) -> Self {
        Rational::from_integer(v as i128)
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Denominators are positive, so cross-multiplication preserves order.
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den - rhs.num * self.den, self.den * rhs.den)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        self.checked_mul(rhs)
            .expect("rational multiplication overflow")
    }
}

impl Div for Rational {
    type Output = Rational;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: Rational) -> Rational {
        assert!(!rhs.is_zero(), "rational division by zero");
        Rational::new(self.num * rhs.den, self.den * rhs.num)
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Rational) {
        *self = *self * rhs;
    }
}

impl DivAssign for Rational {
    fn div_assign(&mut self, rhs: Rational) {
        *self = *self / rhs;
    }
}

impl Sum for Rational {
    fn sum<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rational::new(10, 4), Rational::new(5, 2));
        assert_eq!(Rational::new(-10, -4), Rational::new(5, 2));
        assert_eq!(Rational::new(10, -4), Rational::new(-5, 2));
        assert_eq!(Rational::new(0, 7), Rational::ZERO);
        assert_eq!(Rational::new(0, -7).denom(), 1);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a + b, Rational::new(5, 6));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 6));
        assert_eq!(a / b, Rational::new(3, 2));
        assert_eq!(-a, Rational::new(-1, 2));
    }

    #[test]
    fn assign_ops() {
        let mut r = Rational::new(1, 2);
        r += Rational::new(1, 2);
        assert_eq!(r, Rational::ONE);
        r -= Rational::new(1, 4);
        assert_eq!(r, Rational::new(3, 4));
        r *= Rational::from_integer(4);
        assert_eq!(r, Rational::from_integer(3));
        r /= Rational::from_integer(2);
        assert_eq!(r, Rational::new(3, 2));
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert!(Rational::new(7, 7) == Rational::ONE);
        assert_eq!(
            Rational::new(2, 3).max(Rational::new(3, 4)),
            Rational::new(3, 4)
        );
        assert_eq!(
            Rational::new(2, 3).min(Rational::new(3, 4)),
            Rational::new(2, 3)
        );
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(7, 2).ceil(), 4);
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::new(-7, 2).ceil(), -3);
        assert_eq!(Rational::from_integer(5).floor(), 5);
        assert_eq!(Rational::from_integer(5).ceil(), 5);
    }

    #[test]
    fn division_by_zero_panics() {
        let r = std::panic::catch_unwind(|| Rational::ONE / Rational::ZERO);
        assert!(r.is_err());
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Rational::new(5, 2)), "5/2");
        assert_eq!(format!("{}", Rational::from_integer(5)), "5");
    }

    #[test]
    fn sum_iterator() {
        let total: Rational = (1..=4).map(|i| Rational::new(1, i)).sum();
        assert_eq!(total, Rational::new(25, 12));
    }

    #[test]
    fn is_predicates() {
        assert!(Rational::ZERO.is_zero());
        assert!(Rational::from_integer(3).is_integer());
        assert!(!Rational::new(1, 2).is_integer());
        assert!(Rational::new(-1, 2).is_negative());
        assert!(!Rational::new(1, 2).is_negative());
    }
}
