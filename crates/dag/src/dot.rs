//! Graphviz (DOT) export.
//!
//! Debug/visualization aid: render a DAG (optionally highlighting the
//! offloaded node and a node set such as `G_par`) as a `digraph` that can be
//! piped into `dot -Tpng`.

use core::fmt::Write as _;

use crate::{BitSet, Dag, NodeId};

/// Options controlling [`to_dot`].
#[derive(Debug, Clone, Default)]
pub struct DotOptions {
    /// Graph name in the `digraph <name> { … }` header (sanitized).
    pub name: String,
    /// A node rendered as a doubly-circled accelerator node (`v_off`).
    pub offloaded: Option<NodeId>,
    /// A node rendered as a red square (`v_sync`).
    pub sync: Option<NodeId>,
    /// Nodes surrounded by a dashed cluster (`G_par`).
    pub highlight: Option<BitSet>,
}

impl DotOptions {
    /// Creates default options with a graph name.
    #[must_use]
    pub fn named(name: impl Into<String>) -> Self {
        DotOptions {
            name: name.into(),
            ..DotOptions::default()
        }
    }
}

fn node_display(dag: &Dag, v: NodeId) -> String {
    let label = dag.label(v);
    if label.is_empty() {
        format!("{v} ({})", dag.wcet(v))
    } else {
        format!("{label} ({})", dag.wcet(v))
    }
}

/// Renders `dag` as a Graphviz `digraph`.
///
/// # Examples
///
/// ```
/// use hetrta_dag::{DagBuilder, Ticks, dot};
///
/// let mut b = DagBuilder::new();
/// let v1 = b.node("a", Ticks::new(2));
/// let v2 = b.node("b", Ticks::new(3));
/// b.edge(v1, v2)?;
/// let dag = b.build()?;
/// let text = dot::to_dot(&dag, &dot::DotOptions::named("demo"));
/// assert!(text.starts_with("digraph demo {"));
/// assert!(text.contains("n0 -> n1"));
/// # Ok::<(), hetrta_dag::DagError>(())
/// ```
#[must_use]
pub fn to_dot(dag: &Dag, options: &DotOptions) -> String {
    let mut out = String::new();
    let name: String = options
        .name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let name = if name.is_empty() {
        "dag".to_owned()
    } else {
        name
    };
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=circle, fontsize=10];");

    let in_cluster = |v: NodeId| options.highlight.as_ref().is_some_and(|h| h.contains(v));

    if options.highlight.is_some() {
        let _ = writeln!(out, "  subgraph cluster_par {{");
        let _ = writeln!(out, "    label=\"G_par\"; style=dashed; color=blue;");
        for v in dag.node_ids().filter(|&v| in_cluster(v)) {
            let _ = writeln!(out, "    {v} [label=\"{}\"];", node_display(dag, v));
        }
        let _ = writeln!(out, "  }}");
    }

    for v in dag.node_ids().filter(|&v| !in_cluster(v)) {
        let mut attrs = format!("label=\"{}\"", node_display(dag, v));
        if options.offloaded == Some(v) {
            attrs.push_str(", shape=doublecircle, color=darkgreen");
        }
        if options.sync == Some(v) {
            attrs.push_str(", shape=square, color=red");
        }
        let _ = writeln!(out, "  {v} [{attrs}];");
    }
    for (f, t) in dag.edges() {
        let _ = writeln!(out, "  {f} -> {t};");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ticks;

    fn sample() -> (Dag, [NodeId; 3]) {
        let mut dag = Dag::new();
        let a = dag.add_labeled_node("start", Ticks::new(1));
        let b = dag.add_node(Ticks::new(2));
        let c = dag.add_labeled_node("end", Ticks::new(3));
        dag.add_edge(a, b).unwrap();
        dag.add_edge(b, c).unwrap();
        (dag, [a, b, c])
    }

    #[test]
    fn renders_nodes_and_edges() {
        let (dag, _) = sample();
        let text = to_dot(&dag, &DotOptions::named("t"));
        assert!(text.contains("digraph t {"));
        assert!(text.contains("n0 [label=\"start (1)\"]"));
        assert!(text.contains("n1 [label=\"n1 (2)\"]")); // unlabeled fallback
        assert!(text.contains("n0 -> n1;"));
        assert!(text.contains("n1 -> n2;"));
        assert!(text.trim_end().ends_with('}'));
    }

    #[test]
    fn offloaded_and_sync_are_styled() {
        let (dag, [_, b, c]) = sample();
        let mut opts = DotOptions::named("t");
        opts.offloaded = Some(b);
        opts.sync = Some(c);
        let text = to_dot(&dag, &opts);
        assert!(text.contains("doublecircle"));
        assert!(text.contains("shape=square, color=red"));
    }

    #[test]
    fn highlight_cluster_contains_nodes() {
        let (dag, [_, b, _]) = sample();
        let mut set = BitSet::new(3);
        set.insert(b);
        let mut opts = DotOptions::named("t");
        opts.highlight = Some(set);
        let text = to_dot(&dag, &opts);
        assert!(text.contains("cluster_par"));
        let cluster_start = text.find("cluster_par").unwrap();
        let cluster_end = text[cluster_start..].find('}').unwrap() + cluster_start;
        assert!(text[cluster_start..cluster_end].contains("n1 "));
    }

    #[test]
    fn invalid_graph_name_is_sanitized() {
        let (dag, _) = sample();
        let text = to_dot(&dag, &DotOptions::named("my graph/7"));
        assert!(text.starts_with("digraph my_graph_7 {"));
        let empty = to_dot(&dag, &DotOptions::default());
        assert!(empty.starts_with("digraph dag {"));
    }
}
