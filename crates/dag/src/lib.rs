//! # hetrta-dag — DAG task model substrate
//!
//! This crate provides the graph substrate used by the `hetrta` workspace, a
//! reproduction of *"Response-Time Analysis of DAG Tasks Supporting
//! Heterogeneous Computing"* (Serrano & Quiñones, DAC 2018).
//!
//! It contains:
//!
//! * [`Dag`] — a mutable directed-acyclic-graph of jobs, each carrying a
//!   worst-case execution time ([`Ticks`]);
//! * [`DagBuilder`] — a validating builder enforcing the paper's structural
//!   model (acyclic, single source, single sink, no transitive edges);
//! * [`task::DagTask`] and [`task::HeteroDagTask`] — the sporadic DAG task
//!   `τ = <G, T, D>`, optionally with one node offloaded to an accelerator;
//! * exact [`Rational`] arithmetic used by the response-time equations that
//!   divide by the core count `m`;
//! * graph algorithms: topological orders, reachability
//!   ([`algo::Reachability`]), critical paths ([`algo::CriticalPath`]),
//!   transitive-edge detection and reduction, and path enumeration;
//! * [`dot`] — Graphviz export for debugging and documentation.
//!
//! ## Quick example
//!
//! Build the 6-node DAG of Figure 1(a) of the paper and query its
//! properties:
//!
//! ```
//! use hetrta_dag::{DagBuilder, Ticks};
//!
//! # fn main() -> Result<(), hetrta_dag::DagError> {
//! let mut b = DagBuilder::new();
//! let v1 = b.node("v1", Ticks::new(1));
//! let v2 = b.node("v2", Ticks::new(4));
//! let v3 = b.node("v3", Ticks::new(6));
//! let v4 = b.node("v4", Ticks::new(2));
//! let v5 = b.node("v5", Ticks::new(1));
//! let voff = b.node("v_off", Ticks::new(4));
//! b.edges([(v1, v2), (v1, v3), (v1, v4), (v4, voff), (v2, v5), (v3, v5), (voff, v5)])?;
//! let dag = b.build()?;
//!
//! assert_eq!(dag.volume(), Ticks::new(18));
//! assert_eq!(hetrta_dag::algo::CriticalPath::of(&dag).length(), Ticks::new(8));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod algo;
mod bitset;
mod builder;
pub mod dot;
mod error;
mod graph;
mod ids;
pub mod io;
mod rational;
pub mod task;
mod time;
mod validate;

pub use bitset::BitSet;
pub use builder::DagBuilder;
pub use error::DagError;
pub use graph::{Dag, EdgeIter, NodeIter};
pub use ids::NodeId;
pub use rational::Rational;
pub use task::{DagTask, HeteroDagTask};
pub use time::Ticks;
pub use validate::{validate_task_model, StructureReport};
