//! Node identifiers.

use core::fmt;

/// Identifier of a node inside a [`Dag`](crate::Dag).
///
/// A `NodeId` is a dense index: the `i`-th node added to a DAG has id `i`.
/// Ids are only meaningful relative to the graph that produced them; using a
/// `NodeId` from one graph on another is caught (by range checks) only when
/// the index is out of bounds.
///
/// # Examples
///
/// ```
/// use hetrta_dag::{DagBuilder, Ticks};
///
/// let mut builder = DagBuilder::new();
/// let a = builder.unlabeled_node(Ticks::new(1));
/// let b = builder.unlabeled_node(Ticks::new(2));
/// assert_eq!(a.index(), 0);
/// assert_eq!(b.index(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw dense index.
    ///
    /// Mostly useful in tests and when deserializing externally produced
    /// graphs; prefer the ids returned by
    /// [`DagBuilder::node`](crate::DagBuilder::node).
    #[must_use]
    pub const fn from_index(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize);
        NodeId(index as u32)
    }

    /// Returns the dense index of this node.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        for i in [0usize, 1, 17, 1000] {
            assert_eq!(NodeId::from_index(i).index(), i);
        }
    }

    #[test]
    fn display_and_debug_are_compact() {
        let id = NodeId::from_index(4);
        assert_eq!(format!("{id}"), "n4");
        assert_eq!(format!("{id:?}"), "n4");
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
        assert_eq!(NodeId::from_index(3), NodeId::from_index(3));
    }

    #[test]
    fn usize_conversion() {
        let id = NodeId::from_index(9);
        let as_usize: usize = id.into();
        assert_eq!(as_usize, 9);
    }
}
