//! Critical-path computation (`len(G)`).

use crate::algo::topological_order;
use crate::{Dag, DagError, NodeId, Ticks};

/// The critical path of a DAG: its length `len(G)` and a witness path.
///
/// `len(G)` is the WCET of the longest chain of the DAG — the minimum time
/// needed to execute the task on infinitely many cores (Section 2 of the
/// paper). The computation also exposes, for every node `v`:
///
/// * [`head`](CriticalPath::head): the longest-path length *ending at* `v`,
///   **including** `C_v`;
/// * [`tail`](CriticalPath::tail): the longest-path length *starting at*
///   `v`, **including** `C_v`.
///
/// `head(v) + tail(v) − C_v` is the length of the longest path through `v`;
/// `v` lies on a critical path iff this equals `len(G)`. The head/tail
/// decomposition also feeds the exact solver's per-node release/deadline
/// lower bounds.
///
/// Works on any DAG, including disconnected ones and ones with multiple
/// sources/sinks (needed for the parallel sub-DAG `G_par`). The length of an
/// empty graph is zero.
///
/// # Examples
///
/// ```
/// use hetrta_dag::{DagBuilder, Ticks, algo::CriticalPath};
///
/// let mut builder = DagBuilder::new();
/// let a = builder.unlabeled_node(Ticks::new(2));
/// let b = builder.unlabeled_node(Ticks::new(3));
/// let c = builder.unlabeled_node(Ticks::new(1));
/// builder.edges([(a, b), (a, c)])?;
/// let dag = builder.freeze(); // two sinks: `build()` would normalize
/// let cp = CriticalPath::of(&dag);
/// assert_eq!(cp.length(), Ticks::new(5));
/// assert_eq!(cp.path(), &[a, b]);
/// assert!(cp.contains(b) && !cp.contains(c));
/// # Ok::<(), hetrta_dag::DagError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CriticalPath {
    length: Ticks,
    path: Vec<NodeId>,
    head: Vec<Ticks>,
    tail: Vec<Ticks>,
}

impl CriticalPath {
    /// Computes the critical path of `dag`.
    ///
    /// # Panics
    ///
    /// Panics if `dag` contains a cycle (use [`CriticalPath::try_of`] for
    /// untrusted graphs).
    #[must_use]
    pub fn of(dag: &Dag) -> Self {
        Self::try_of(dag).expect("critical path requires an acyclic graph")
    }

    /// Computes the critical path, reporting cycles as errors.
    ///
    /// # Errors
    ///
    /// Returns [`DagError::Cycle`] if the graph is not acyclic.
    pub fn try_of(dag: &Dag) -> Result<Self, DagError> {
        let n = dag.node_count();
        let order = topological_order(dag)?;
        let mut head = vec![Ticks::ZERO; n];
        for &v in &order {
            let best_pred = dag
                .predecessors(v)
                .iter()
                .map(|&p| head[p.index()])
                .max()
                .unwrap_or(Ticks::ZERO);
            head[v.index()] = best_pred + dag.wcet(v);
        }
        let mut tail = vec![Ticks::ZERO; n];
        for &v in order.iter().rev() {
            let best_succ = dag
                .successors(v)
                .iter()
                .map(|&s| tail[s.index()])
                .max()
                .unwrap_or(Ticks::ZERO);
            tail[v.index()] = best_succ + dag.wcet(v);
        }
        let length = head.iter().copied().max().unwrap_or(Ticks::ZERO);

        // Reconstruct one witness path, deterministically (smallest index
        // among equally-long choices).
        let mut path = Vec::new();
        if n > 0 {
            let start = (0..n)
                .map(NodeId::from_index)
                .filter(|&v| dag.in_degree(v) == 0)
                .max_by_key(|&v| (tail[v.index()], core::cmp::Reverse(v.index())))
                .expect("acyclic non-empty graph has a source");
            let mut cur = start;
            path.push(cur);
            loop {
                let next = dag
                    .successors(cur)
                    .iter()
                    .copied()
                    .max_by_key(|&s| (tail[s.index()], core::cmp::Reverse(s.index())));
                match next {
                    Some(s) if !dag.successors(cur).is_empty() => {
                        path.push(s);
                        cur = s;
                    }
                    _ => break,
                }
            }
        }
        debug_assert_eq!(
            path.iter().map(|&v| dag.wcet(v)).sum::<Ticks>(),
            length,
            "witness path must realize len(G)"
        );
        Ok(CriticalPath {
            length,
            path,
            head,
            tail,
        })
    }

    /// `len(G)`, the length of the longest path.
    #[must_use]
    pub fn length(&self) -> Ticks {
        self.length
    }

    /// One longest path, from a source to a sink, in execution order.
    #[must_use]
    pub fn path(&self) -> &[NodeId] {
        &self.path
    }

    /// Longest-path length ending at `v`, including `C_v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a node of the analyzed graph.
    #[must_use]
    pub fn head(&self, v: NodeId) -> Ticks {
        self.head[v.index()]
    }

    /// Longest-path length starting at `v`, including `C_v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a node of the analyzed graph.
    #[must_use]
    pub fn tail(&self, v: NodeId) -> Ticks {
        self.tail[v.index()]
    }

    /// Length of the longest path passing through `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a node of the analyzed graph.
    #[must_use]
    pub fn through(&self, v: NodeId, dag: &Dag) -> Ticks {
        self.head[v.index()] + self.tail[v.index()] - dag.wcet(v)
    }

    /// `true` if `v` lies on *some* critical path (not necessarily the
    /// stored witness).
    ///
    /// This is the test "`v_off` belongs to the critical path" that selects
    /// between Scenario 1 and Scenarios 2.x in Theorem 1. Note that it asks
    /// whether *any* longest path contains `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a node of the analyzed graph.
    #[must_use]
    pub fn on_critical_path(&self, v: NodeId, dag: &Dag) -> bool {
        self.through(v, dag) == self.length
    }

    /// `true` if `v` is on the stored witness path.
    #[must_use]
    pub fn contains(&self, v: NodeId) -> bool {
        self.path.contains(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The DAG of Figure 1(a) of the paper. The figure gives only aggregate
    /// values (vol = 18, len = 8 via {v1, v3, v5}, R_hom = 13 for m = 2,
    /// unsafely-reduced bound 11, worst het response 12, transformed length
    /// 10); the WCETs below — C1=1, C2=4, C3=6, C4=2, C5=1, C_off=4 —
    /// reproduce all of them.
    fn figure1() -> (Dag, [NodeId; 6]) {
        let mut dag = Dag::new();
        let v1 = dag.add_labeled_node("v1", Ticks::new(1));
        let v2 = dag.add_labeled_node("v2", Ticks::new(4));
        let v3 = dag.add_labeled_node("v3", Ticks::new(6));
        let v4 = dag.add_labeled_node("v4", Ticks::new(2));
        let v5 = dag.add_labeled_node("v5", Ticks::new(1));
        let voff = dag.add_labeled_node("v_off", Ticks::new(4));
        for (f, t) in [
            (v1, v2),
            (v1, v3),
            (v1, v4),
            (v4, voff),
            (v2, v5),
            (v3, v5),
            (voff, v5),
        ] {
            dag.add_edge(f, t).unwrap();
        }
        (dag, [v1, v2, v3, v4, v5, voff])
    }

    #[test]
    fn figure1_volume_and_length_match_paper() {
        let (dag, _) = figure1();
        assert_eq!(dag.volume(), Ticks::new(18));
        let cp = CriticalPath::of(&dag);
        assert_eq!(cp.length(), Ticks::new(8));
    }

    #[test]
    fn head_tail_decomposition() {
        let (dag, [v1, v2, v3, v4, v5, voff]) = figure1();
        let cp = CriticalPath::of(&dag);
        assert_eq!(cp.head(v1), Ticks::new(1));
        assert_eq!(cp.head(v4), Ticks::new(3));
        assert_eq!(cp.head(voff), Ticks::new(7));
        assert_eq!(cp.tail(v5), Ticks::new(1));
        assert_eq!(cp.tail(v1), Ticks::new(8));
        // longest path through v2 is v1,v2,v5 = 6
        assert_eq!(cp.through(v2, &dag), Ticks::new(6));
        assert!(cp.on_critical_path(v3, &dag));
        // v4 and v_off are on the tied 8-long chain v1,v4,v_off,v5
        assert!(cp.on_critical_path(v4, &dag));
        assert!(cp.on_critical_path(voff, &dag));
        assert!(!cp.on_critical_path(v2, &dag));
    }

    #[test]
    fn witness_path_realizes_length() {
        let (dag, _) = figure1();
        let cp = CriticalPath::of(&dag);
        let sum: Ticks = cp.path().iter().map(|&v| dag.wcet(v)).sum();
        assert_eq!(sum, cp.length());
        // consecutive nodes are connected
        for w in cp.path().windows(2) {
            assert!(dag.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn empty_graph_has_zero_length() {
        let cp = CriticalPath::of(&Dag::new());
        assert_eq!(cp.length(), Ticks::ZERO);
        assert!(cp.path().is_empty());
    }

    #[test]
    fn single_node() {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::new(7));
        let cp = CriticalPath::of(&dag);
        assert_eq!(cp.length(), Ticks::new(7));
        assert_eq!(cp.path(), &[a]);
        assert!(cp.on_critical_path(a, &dag));
    }

    #[test]
    fn disconnected_components_take_max() {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::new(3));
        let b = dag.add_node(Ticks::new(5));
        let c = dag.add_node(Ticks::new(4));
        dag.add_edge(a, c).unwrap(); // chain of 7 vs isolated 5
        let cp = CriticalPath::of(&dag);
        assert_eq!(cp.length(), Ticks::new(7));
        assert!(!cp.on_critical_path(b, &dag));
    }

    #[test]
    fn zero_wcet_nodes_are_handled() {
        let mut dag = Dag::new();
        let src = dag.add_node(Ticks::ZERO);
        let a = dag.add_node(Ticks::new(4));
        let sink = dag.add_node(Ticks::ZERO);
        dag.add_edge(src, a).unwrap();
        dag.add_edge(a, sink).unwrap();
        let cp = CriticalPath::of(&dag);
        assert_eq!(cp.length(), Ticks::new(4));
        assert!(cp.on_critical_path(src, &dag));
    }

    #[test]
    fn try_of_rejects_cycles() {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::ONE);
        let b = dag.add_node(Ticks::ONE);
        dag.add_edge(a, b).unwrap();
        dag.add_edge(b, a).unwrap();
        assert!(CriticalPath::try_of(&dag).is_err());
    }
}
