//! Path counting and bounded enumeration.

use crate::algo::topological_order;
use crate::{Dag, DagError, NodeId};

/// Counts the number of distinct directed paths from `from` to `to`
/// (a path of zero edges counts when `from == to`).
///
/// Uses saturating arithmetic: on graphs with an astronomically large
/// number of paths the result clamps at `u128::MAX`.
///
/// # Errors
///
/// Returns [`DagError::UnknownNode`] for out-of-range ids and
/// [`DagError::Cycle`] if the graph is not acyclic.
///
/// # Examples
///
/// ```
/// use hetrta_dag::{Dag, Ticks, algo::count_paths};
///
/// let mut dag = Dag::new();
/// let a = dag.add_node(Ticks::ONE);
/// let b = dag.add_node(Ticks::ONE);
/// let c = dag.add_node(Ticks::ONE);
/// let d = dag.add_node(Ticks::ONE);
/// for (f, t) in [(a, b), (a, c), (b, d), (c, d)] {
///     dag.add_edge(f, t)?;
/// }
/// assert_eq!(count_paths(&dag, a, d)?, 2);
/// # Ok::<(), hetrta_dag::DagError>(())
/// ```
pub fn count_paths(dag: &Dag, from: NodeId, to: NodeId) -> Result<u128, DagError> {
    if !dag.contains_node(from) {
        return Err(DagError::UnknownNode(from));
    }
    if !dag.contains_node(to) {
        return Err(DagError::UnknownNode(to));
    }
    let order = topological_order(dag)?;
    let mut count = vec![0u128; dag.node_count()];
    count[from.index()] = 1;
    for &v in &order {
        if count[v.index()] == 0 {
            continue;
        }
        let c = count[v.index()];
        for &s in dag.successors(v) {
            count[s.index()] = count[s.index()].saturating_add(c);
        }
    }
    Ok(count[to.index()])
}

/// Enumerates up to `limit` source-to-sink paths of `dag`, each as a node
/// sequence in execution order.
///
/// Intended for diagnostics and tests on small graphs; the number of paths
/// can be exponential, hence the mandatory bound.
///
/// # Errors
///
/// Returns [`DagError::Cycle`] if the graph is not acyclic.
pub fn enumerate_paths(dag: &Dag, limit: usize) -> Result<Vec<Vec<NodeId>>, DagError> {
    topological_order(dag)?; // cycle check
    let mut out = Vec::new();
    let mut stack: Vec<NodeId> = Vec::new();
    for src in dag.sources() {
        dfs(dag, src, &mut stack, &mut out, limit);
        if out.len() >= limit {
            break;
        }
    }
    Ok(out)
}

fn dfs(dag: &Dag, v: NodeId, stack: &mut Vec<NodeId>, out: &mut Vec<Vec<NodeId>>, limit: usize) {
    if out.len() >= limit {
        return;
    }
    stack.push(v);
    if dag.out_degree(v) == 0 {
        out.push(stack.clone());
    } else {
        for &s in dag.successors(v) {
            dfs(dag, s, stack, out, limit);
        }
    }
    stack.pop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ticks;

    fn diamond() -> (Dag, [NodeId; 4]) {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::ONE);
        let b = dag.add_node(Ticks::ONE);
        let c = dag.add_node(Ticks::ONE);
        let d = dag.add_node(Ticks::ONE);
        for (f, t) in [(a, b), (a, c), (b, d), (c, d)] {
            dag.add_edge(f, t).unwrap();
        }
        (dag, [a, b, c, d])
    }

    #[test]
    fn count_in_diamond() {
        let (dag, [a, b, _, d]) = diamond();
        assert_eq!(count_paths(&dag, a, d).unwrap(), 2);
        assert_eq!(count_paths(&dag, b, d).unwrap(), 1);
        assert_eq!(count_paths(&dag, d, a).unwrap(), 0);
        assert_eq!(count_paths(&dag, a, a).unwrap(), 1);
    }

    #[test]
    fn count_unknown_node() {
        let (dag, [a, ..]) = diamond();
        let bogus = NodeId::from_index(42);
        assert!(matches!(
            count_paths(&dag, a, bogus),
            Err(DagError::UnknownNode(_))
        ));
        assert!(matches!(
            count_paths(&dag, bogus, a),
            Err(DagError::UnknownNode(_))
        ));
    }

    #[test]
    fn enumerate_diamond_paths() {
        let (dag, [a, b, c, d]) = diamond();
        let paths = enumerate_paths(&dag, 100).unwrap();
        assert_eq!(paths.len(), 2);
        assert!(paths.contains(&vec![a, b, d]));
        assert!(paths.contains(&vec![a, c, d]));
    }

    #[test]
    fn enumeration_respects_limit() {
        let (dag, _) = diamond();
        let paths = enumerate_paths(&dag, 1).unwrap();
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn exponential_path_count_does_not_overflow() {
        // A ladder of k diamonds has 2^k paths; build k = 140 > 128 bits.
        let mut dag = Dag::new();
        let mut prev = dag.add_node(Ticks::ONE);
        let first = prev;
        for _ in 0..140 {
            let l = dag.add_node(Ticks::ONE);
            let r = dag.add_node(Ticks::ONE);
            let join = dag.add_node(Ticks::ONE);
            dag.add_edge(prev, l).unwrap();
            dag.add_edge(prev, r).unwrap();
            dag.add_edge(l, join).unwrap();
            dag.add_edge(r, join).unwrap();
            prev = join;
        }
        assert_eq!(count_paths(&dag, first, prev).unwrap(), u128::MAX);
    }

    #[test]
    fn isolated_node_is_its_own_path() {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::ONE);
        let paths = enumerate_paths(&dag, 10).unwrap();
        assert_eq!(paths, vec![vec![a]]);
    }
}
