//! Path counting and bounded enumeration.

use crate::algo::topological_order;
use crate::{Dag, DagError, NodeId};

/// Counts the number of distinct directed paths from `from` to `to`
/// (a path of zero edges counts when `from == to`).
///
/// Uses saturating arithmetic: on graphs with an astronomically large
/// number of paths the result clamps at `u128::MAX`.
///
/// # Errors
///
/// Returns [`DagError::UnknownNode`] for out-of-range ids and
/// [`DagError::Cycle`] if the graph is not acyclic.
///
/// # Examples
///
/// ```
/// use hetrta_dag::{DagBuilder, Ticks, algo::count_paths};
///
/// let mut builder = DagBuilder::new();
/// let a = builder.unlabeled_node(Ticks::ONE);
/// let b = builder.unlabeled_node(Ticks::ONE);
/// let c = builder.unlabeled_node(Ticks::ONE);
/// let d = builder.unlabeled_node(Ticks::ONE);
/// builder.edges([(a, b), (a, c), (b, d), (c, d)])?;
/// let dag = builder.build()?;
/// assert_eq!(count_paths(&dag, a, d)?, 2);
/// # Ok::<(), hetrta_dag::DagError>(())
/// ```
pub fn count_paths(dag: &Dag, from: NodeId, to: NodeId) -> Result<u128, DagError> {
    if !dag.contains_node(from) {
        return Err(DagError::UnknownNode(from));
    }
    if !dag.contains_node(to) {
        return Err(DagError::UnknownNode(to));
    }
    let order = topological_order(dag)?;
    let mut count = vec![0u128; dag.node_count()];
    count[from.index()] = 1;
    for &v in &order {
        if count[v.index()] == 0 {
            continue;
        }
        let c = count[v.index()];
        for &s in dag.successors(v) {
            count[s.index()] = count[s.index()].saturating_add(c);
        }
    }
    Ok(count[to.index()])
}

/// The outcome of a bounded path enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathEnumeration {
    /// The enumerated source-to-sink paths, each a node sequence in
    /// execution order, in deterministic DFS order.
    pub paths: Vec<Vec<NodeId>>,
    /// `true` when the graph has more paths than the requested limit —
    /// the enumeration stopped early rather than being exhaustive.
    pub truncated: bool,
}

/// Enumerates up to `limit` source-to-sink paths of `dag`, each as a node
/// sequence in execution order.
///
/// Intended for diagnostics and tests on small graphs; the number of paths
/// can be exponential, hence the mandatory bound. When the graph has more
/// than `limit` paths the result is flagged
/// [`truncated`](PathEnumeration::truncated) instead of silently stopping.
///
/// The walk is an explicit-stack DFS, so path depth is bounded by available
/// memory, not the thread's call stack — a 100 000-node chain enumerates
/// fine.
///
/// # Errors
///
/// Returns [`DagError::Cycle`] if the graph is not acyclic.
pub fn enumerate_paths(dag: &Dag, limit: usize) -> Result<PathEnumeration, DagError> {
    topological_order(dag)?; // cycle check
    let mut out = Vec::new();
    let mut truncated = false;
    // DFS state: `path` is the current node sequence, `cursor[d]` the next
    // successor index to explore at depth `d`.
    let mut path: Vec<NodeId> = Vec::new();
    let mut cursor: Vec<usize> = Vec::new();
    'sources: for src in dag.sources() {
        path.clear();
        cursor.clear();
        path.push(src);
        cursor.push(0);
        while let Some(&next) = cursor.last() {
            let v = *path.last().expect("path and cursor move together");
            let succs = dag.successors(v);
            if succs.is_empty() {
                // A leaf of the walk is always a complete path: emitting the
                // (limit + 1)-th one instead records the truncation.
                if out.len() == limit {
                    truncated = true;
                    break 'sources;
                }
                out.push(path.clone());
                path.pop();
                cursor.pop();
            } else if next < succs.len() {
                *cursor.last_mut().expect("checked non-empty") += 1;
                path.push(succs[next]);
                cursor.push(0);
            } else {
                path.pop();
                cursor.pop();
            }
        }
    }
    Ok(PathEnumeration {
        paths: out,
        truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ticks;

    fn diamond() -> (Dag, [NodeId; 4]) {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::ONE);
        let b = dag.add_node(Ticks::ONE);
        let c = dag.add_node(Ticks::ONE);
        let d = dag.add_node(Ticks::ONE);
        for (f, t) in [(a, b), (a, c), (b, d), (c, d)] {
            dag.add_edge(f, t).unwrap();
        }
        (dag, [a, b, c, d])
    }

    #[test]
    fn count_in_diamond() {
        let (dag, [a, b, _, d]) = diamond();
        assert_eq!(count_paths(&dag, a, d).unwrap(), 2);
        assert_eq!(count_paths(&dag, b, d).unwrap(), 1);
        assert_eq!(count_paths(&dag, d, a).unwrap(), 0);
        assert_eq!(count_paths(&dag, a, a).unwrap(), 1);
    }

    #[test]
    fn count_unknown_node() {
        let (dag, [a, ..]) = diamond();
        let bogus = NodeId::from_index(42);
        assert!(matches!(
            count_paths(&dag, a, bogus),
            Err(DagError::UnknownNode(_))
        ));
        assert!(matches!(
            count_paths(&dag, bogus, a),
            Err(DagError::UnknownNode(_))
        ));
    }

    #[test]
    fn enumerate_diamond_paths() {
        let (dag, [a, b, c, d]) = diamond();
        let result = enumerate_paths(&dag, 100).unwrap();
        assert_eq!(result.paths.len(), 2);
        assert!(!result.truncated);
        assert!(result.paths.contains(&vec![a, b, d]));
        assert!(result.paths.contains(&vec![a, c, d]));
    }

    #[test]
    fn enumeration_respects_limit_and_reports_truncation() {
        let (dag, _) = diamond();
        let result = enumerate_paths(&dag, 1).unwrap();
        assert_eq!(result.paths.len(), 1);
        assert!(result.truncated, "a second path exists beyond the limit");
        // An exact limit is not truncation.
        let exact = enumerate_paths(&dag, 2).unwrap();
        assert_eq!(exact.paths.len(), 2);
        assert!(!exact.truncated);
    }

    #[test]
    fn deep_chain_does_not_overflow_the_stack() {
        // A recursive DFS would need ~100k stack frames here.
        let mut dag = Dag::new();
        let mut prev = dag.add_node(Ticks::ONE);
        let first = prev;
        for _ in 0..100_000 {
            let v = dag.add_node(Ticks::ONE);
            dag.add_edge(prev, v).unwrap();
            prev = v;
        }
        let result = enumerate_paths(&dag, 10).unwrap();
        assert_eq!(result.paths.len(), 1);
        assert!(!result.truncated);
        assert_eq!(result.paths[0].len(), 100_001);
        assert_eq!(result.paths[0][0], first);
    }

    #[test]
    fn exponential_path_count_does_not_overflow() {
        // A ladder of k diamonds has 2^k paths; build k = 140 > 128 bits.
        let mut dag = Dag::new();
        let mut prev = dag.add_node(Ticks::ONE);
        let first = prev;
        for _ in 0..140 {
            let l = dag.add_node(Ticks::ONE);
            let r = dag.add_node(Ticks::ONE);
            let join = dag.add_node(Ticks::ONE);
            dag.add_edge(prev, l).unwrap();
            dag.add_edge(prev, r).unwrap();
            dag.add_edge(l, join).unwrap();
            dag.add_edge(r, join).unwrap();
            prev = join;
        }
        assert_eq!(count_paths(&dag, first, prev).unwrap(), u128::MAX);
    }

    #[test]
    fn isolated_node_is_its_own_path() {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::ONE);
        let result = enumerate_paths(&dag, 10).unwrap();
        assert_eq!(result.paths, vec![vec![a]]);
        assert!(!result.truncated);
    }
}
