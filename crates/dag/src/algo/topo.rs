//! Topological ordering (Kahn's algorithm).

use crate::{Dag, DagError, NodeId};

/// Computes a topological order of the nodes of `dag`.
///
/// Ties are broken by node index (lowest first), which makes the order
/// deterministic and — because the generators label nodes in creation
/// order — stable across runs.
///
/// # Errors
///
/// Returns [`DagError::Cycle`] with a witness node if the graph contains a
/// directed cycle.
///
/// # Examples
///
/// ```
/// use hetrta_dag::{DagBuilder, Ticks, algo::topological_order};
///
/// let mut builder = DagBuilder::new();
/// let a = builder.unlabeled_node(Ticks::ONE);
/// let b = builder.unlabeled_node(Ticks::ONE);
/// builder.edge(a, b)?;
/// let dag = builder.build()?;
/// assert_eq!(topological_order(&dag)?, vec![a, b]);
/// # Ok::<(), hetrta_dag::DagError>(())
/// ```
pub fn topological_order(dag: &Dag) -> Result<Vec<NodeId>, DagError> {
    let n = dag.node_count();
    let mut in_deg: Vec<u32> = (0..n)
        .map(|i| dag.in_degree(NodeId::from_index(i)) as u32)
        .collect();
    // A BinaryHeap would give the smallest-index-first property directly but
    // costs O(E log V); node ids are created in roughly topological order by
    // the builders, so FIFO seeding in index order is near-optimal and
    // deterministic. The order vector doubles as the FIFO queue (a cursor
    // chases the push end), so the sweep allocates exactly two flat vectors.
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    order.extend(
        (0..n)
            .map(NodeId::from_index)
            .filter(|&v| in_deg[v.index()] == 0),
    );
    let mut head = 0;
    while head < order.len() {
        let v = order[head];
        head += 1;
        for &s in dag.successors(v) {
            in_deg[s.index()] -= 1;
            if in_deg[s.index()] == 0 {
                order.push(s);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        let witness = (0..n)
            .map(NodeId::from_index)
            .find(|&v| in_deg[v.index()] > 0)
            .expect("cycle implies a node with positive residual in-degree");
        Err(DagError::Cycle(witness))
    }
}

/// `true` if `dag` contains no directed cycle.
///
/// # Examples
///
/// ```
/// use hetrta_dag::{DagBuilder, Ticks, algo::is_acyclic};
///
/// let mut builder = DagBuilder::new();
/// let a = builder.unlabeled_node(Ticks::ONE);
/// let b = builder.unlabeled_node(Ticks::ONE);
/// builder.edge(a, b)?;
/// assert!(is_acyclic(&builder.build()?));
/// # Ok::<(), hetrta_dag::DagError>(())
/// ```
#[must_use]
pub fn is_acyclic(dag: &Dag) -> bool {
    topological_order(dag).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ticks;

    #[test]
    fn empty_graph_is_acyclic() {
        let dag = Dag::new();
        assert_eq!(topological_order(&dag).unwrap(), Vec::<NodeId>::new());
        assert!(is_acyclic(&dag));
    }

    #[test]
    fn chain_order() {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::ONE);
        let b = dag.add_node(Ticks::ONE);
        let c = dag.add_node(Ticks::ONE);
        dag.add_edge(b, c).unwrap();
        dag.add_edge(a, b).unwrap();
        assert_eq!(topological_order(&dag).unwrap(), vec![a, b, c]);
    }

    #[test]
    fn diamond_respects_precedence() {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::ONE);
        let b = dag.add_node(Ticks::ONE);
        let c = dag.add_node(Ticks::ONE);
        let d = dag.add_node(Ticks::ONE);
        for (f, t) in [(a, b), (a, c), (b, d), (c, d)] {
            dag.add_edge(f, t).unwrap();
        }
        let order = topological_order(&dag).unwrap();
        let pos = |v: NodeId| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(a) < pos(b) && pos(a) < pos(c));
        assert!(pos(b) < pos(d) && pos(c) < pos(d));
    }

    #[test]
    fn cycle_is_reported_with_witness() {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::ONE);
        let b = dag.add_node(Ticks::ONE);
        dag.add_edge(a, b).unwrap();
        dag.add_edge(b, a).unwrap();
        match topological_order(&dag) {
            Err(DagError::Cycle(w)) => assert!(w == a || w == b),
            other => panic!("expected cycle, got {other:?}"),
        }
        assert!(!is_acyclic(&dag));
    }

    #[test]
    fn disconnected_components_are_ordered() {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::ONE);
        let b = dag.add_node(Ticks::ONE);
        let c = dag.add_node(Ticks::ONE);
        dag.add_edge(b, c).unwrap();
        let order = topological_order(&dag).unwrap();
        assert_eq!(order.len(), 3);
        assert!(order.contains(&a));
    }
}
