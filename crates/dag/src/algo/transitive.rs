//! Transitive-edge detection and reduction.
//!
//! The task model of the paper (Section 2) requires that transitive edges do
//! not exist: if `(v1, v2) ∈ E` and `(v2, v3) ∈ E` then `(v1, v3) ∉ E`.
//! More generally an edge `(u, w)` is transitive when some other path
//! `u → … → w` of length ≥ 2 exists. Algorithm 1 relies on this property
//! (the *other* successors of `v_off`'s direct predecessors are necessarily
//! parallel to `v_off`), so the builder validates it and the generators
//! guarantee it.
//!
//! # Closure-free detection
//!
//! An edge `(u, w)` is transitive iff some *other* successor `s` of `u`
//! reaches `w`. The general formulation queries the all-pairs closure
//! ([`Reachability`]), which costs `O(V·E/64)` time and — fatally for the
//! n=10⁵–10⁶ tier — `O(V²/64)` space. The entry points below never build
//! that closure. Instead they exploit longest-path *levels*: levels
//! strictly increase along every edge, so
//!
//! * if every successor of `u` sits on one level, no successor can reach
//!   another — `u` contributes no transitive edge (a pure `O(deg)` check);
//! * otherwise a mark-DFS from `u`'s successors, pruned at the maximum
//!   successor level, decides every edge of `u` in one pass over the
//!   between-levels region.
//!
//! Graphs whose edges each span exactly one level (the layered generator's
//! wiring, and graded DAGs generally) take the first branch everywhere:
//! total cost `O(V + E)`, no quadratic bitset in sight. Irregular graphs
//! degrade gracefully toward the old time bound but keep `O(V)` memory.
//! The closure-backed originals remain below as `*_via_closure` reference
//! implementations; a proptest pins the two paths edge-for-edge.

use crate::algo::{topological_order, Reachability};
use crate::{Dag, DagError, NodeId};

/// Shared scratch state of one closure-free scan: longest-path levels plus
/// an epoch-stamped visited array (cleared by bumping the epoch, not by
/// touching `O(V)` memory per node).
struct LevelScan {
    /// `level[v]` = length of the longest path from any source to `v`.
    /// Strictly increases along every edge, so a path `s → … → w` implies
    /// `level(w) > level(s)`.
    level: Vec<u32>,
    visited: Vec<u32>,
    epoch: u32,
    stack: Vec<NodeId>,
}

impl LevelScan {
    fn new(dag: &Dag) -> Result<Self, DagError> {
        let n = dag.node_count();
        let order = topological_order(dag)?;
        let mut level = vec![0u32; n];
        for &v in &order {
            let lv = level[v.index()];
            for &s in dag.successors(v) {
                level[s.index()] = level[s.index()].max(lv + 1);
            }
        }
        Ok(LevelScan {
            level,
            visited: vec![0u32; n],
            epoch: 0,
            stack: Vec::new(),
        })
    }

    /// `true` if no successor of `u` can reach another successor of `u` —
    /// decided from levels alone, without traversal. Covers nodes with
    /// fewer than two successors and the graded (layered) case where every
    /// successor shares one level.
    fn trivially_reduced(&self, succs: &[NodeId]) -> bool {
        match succs.split_first() {
            None | Some((_, [])) => true,
            Some((&first, rest)) => {
                let l0 = self.level[first.index()];
                rest.iter().all(|&s| self.level[s.index()] == l0)
            }
        }
    }

    /// Marks every node strictly reachable from a successor of `u`,
    /// pruned at the maximum successor level (deeper nodes cannot be a
    /// successor of `u`, and levels only grow along edges). Afterwards
    /// `self.is_marked(w)` answers "is the edge `(u, w)` transitive?" for
    /// each `w ∈ succ(u)`.
    fn mark_reachable_from(&mut self, dag: &Dag, succs: &[NodeId]) {
        self.epoch += 1;
        let epoch = self.epoch;
        let lmax = succs
            .iter()
            .map(|&s| self.level[s.index()])
            .max()
            .unwrap_or(0);
        // Seed with the successors' children (strict reachability: a
        // successor never marks itself), then expand; nodes *at* the level
        // cap are marked but not expanded — their children are deeper than
        // every successor.
        for &s in succs {
            self.stack.push(s);
        }
        while let Some(x) = self.stack.pop() {
            for &c in dag.successors(x) {
                let ci = c.index();
                if self.level[ci] <= lmax && self.visited[ci] != epoch {
                    self.visited[ci] = epoch;
                    if self.level[ci] < lmax {
                        self.stack.push(c);
                    }
                }
            }
        }
    }

    fn is_marked(&self, w: NodeId) -> bool {
        self.visited[w.index()] == self.epoch
    }
}

/// Finds one transitive edge, if any exists — without materializing the
/// reachability closure (see the module docs; `O(V + E)` on layered/graded
/// graphs, `O(V)` extra memory always).
///
/// An edge `(u, w)` is transitive iff removing it still leaves a directed
/// path from `u` to `w`. The witness returned is the first such edge in
/// [`Dag::edges`] order, bitwise the one
/// [`find_transitive_edge_via_closure`] reports.
///
/// # Errors
///
/// Returns [`DagError::Cycle`] if the graph is not acyclic.
///
/// # Examples
///
/// ```
/// use hetrta_dag::{DagBuilder, Ticks, algo::transitive};
///
/// let mut b = DagBuilder::new();
/// let v1 = b.unlabeled_node(Ticks::ONE);
/// let v2 = b.unlabeled_node(Ticks::ONE);
/// let v3 = b.unlabeled_node(Ticks::ONE);
/// b.edges([(v1, v2), (v2, v3), (v1, v3)])?; // (v1, v3) is transitive
/// let dag = b.freeze(); // `build()` would reject the transitive edge
/// assert_eq!(transitive::find_transitive_edge(&dag)?, Some((v1, v3)));
/// # Ok::<(), hetrta_dag::DagError>(())
/// ```
pub fn find_transitive_edge(dag: &Dag) -> Result<Option<(NodeId, NodeId)>, DagError> {
    let mut scan = LevelScan::new(dag)?;
    for u in dag.node_ids() {
        let succs = dag.successors(u);
        if scan.trivially_reduced(succs) {
            continue;
        }
        scan.mark_reachable_from(dag, succs);
        if let Some(&w) = succs.iter().find(|&&w| scan.is_marked(w)) {
            return Ok(Some((u, w)));
        }
    }
    Ok(None)
}

/// `true` if the graph contains no transitive edge.
///
/// # Errors
///
/// Returns [`DagError::Cycle`] if the graph is not acyclic.
pub fn is_transitively_reduced(dag: &Dag) -> Result<bool, DagError> {
    Ok(find_transitive_edge(dag)?.is_none())
}

/// Returns a copy of `dag` with all transitive edges removed (the unique
/// transitive reduction of a DAG) — closure-free, like
/// [`find_transitive_edge`].
///
/// Node ids, WCETs and labels are preserved; only redundant edges are
/// dropped. The surviving edges keep their exact positions within every
/// successor *and* predecessor segment (the reduction filters the CSR
/// segments in place rather than rebuilding from an edge list), so the
/// result is bitwise-identical to removing each redundant edge one by one
/// — and to [`transitive_reduction_via_closure`], which a proptest pins.
/// Useful to sanitize externally supplied graphs before building a
/// [`DagTask`](crate::task::DagTask).
///
/// # Errors
///
/// Returns [`DagError::Cycle`] if the graph is not acyclic.
pub fn transitive_reduction(dag: &Dag) -> Result<Dag, DagError> {
    let mut scan = LevelScan::new(dag)?;
    let n = dag.node_count();
    let mut removed: std::collections::HashSet<(NodeId, NodeId)> = std::collections::HashSet::new();
    let mut succ_off = Vec::with_capacity(n + 1);
    succ_off.push(0u32);
    let mut succs = Vec::with_capacity(dag.edge_count());
    let mut wcets = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for v in dag.node_ids() {
        let segment = dag.successors(v);
        if scan.trivially_reduced(segment) {
            succs.extend_from_slice(segment);
        } else {
            scan.mark_reachable_from(dag, segment);
            succs.extend(segment.iter().copied().filter(|&w| {
                let keep = !scan.is_marked(w);
                if !keep {
                    removed.insert((v, w));
                }
                keep
            }));
        }
        succ_off.push(succs.len() as u32);
        wcets.push(dag.wcet(v));
        labels.push(dag.label(v).to_owned());
    }
    let mut pred_off = Vec::with_capacity(n + 1);
    pred_off.push(0u32);
    let mut preds = Vec::with_capacity(succs.len());
    if removed.is_empty() {
        for v in dag.node_ids() {
            preds.extend_from_slice(dag.predecessors(v));
            pred_off.push(preds.len() as u32);
        }
    } else {
        for v in dag.node_ids() {
            preds.extend(
                dag.predecessors(v)
                    .iter()
                    .copied()
                    .filter(|&u| !removed.contains(&(u, v))),
            );
            pred_off.push(preds.len() as u32);
        }
    }
    let reduced = Dag::from_csr_parts(wcets, labels, succ_off, succs, pred_off, preds);
    debug_assert!(is_transitively_reduced(&reduced).unwrap_or(false));
    Ok(reduced)
}

// ---------------------------------------------------------------------------
// Closure-backed reference implementations
// ---------------------------------------------------------------------------

/// Reference implementation of [`find_transitive_edge`] via the full
/// [`Reachability`] closure (`O(V·E/64)` time, `O(V²/64)` space).
///
/// Kept as the parity oracle for the closure-free path — tests pin the two
/// witness-for-witness. Do not call on large graphs.
///
/// # Errors
///
/// Returns [`DagError::Cycle`] if the graph is not acyclic.
pub fn find_transitive_edge_via_closure(dag: &Dag) -> Result<Option<(NodeId, NodeId)>, DagError> {
    let reach = Reachability::of(dag)?;
    for (u, w) in dag.edges() {
        // (u, w) is transitive iff some other successor of u reaches w.
        let redundant = dag
            .successors(u)
            .iter()
            .any(|&s| s != w && reach.is_ordered_before(s, w));
        if redundant {
            return Ok(Some((u, w)));
        }
    }
    Ok(None)
}

/// Reference implementation of [`transitive_reduction`] via the full
/// [`Reachability`] closure. Kept as the parity oracle for the
/// closure-free path — tests pin the two edge-for-edge. Do not call on
/// large graphs.
///
/// # Errors
///
/// Returns [`DagError::Cycle`] if the graph is not acyclic.
pub fn transitive_reduction_via_closure(dag: &Dag) -> Result<Dag, DagError> {
    let reach = Reachability::of(dag)?;
    // (u, w) is transitive iff some *other* successor of u reaches w.
    let redundant = |u: NodeId, w: NodeId| {
        dag.successors(u)
            .iter()
            .any(|&s| s != w && reach.is_ordered_before(s, w))
    };
    let n = dag.node_count();
    let mut removed: std::collections::HashSet<(NodeId, NodeId)> = std::collections::HashSet::new();
    let mut succ_off = Vec::with_capacity(n + 1);
    succ_off.push(0u32);
    let mut succs = Vec::with_capacity(dag.edge_count());
    let mut wcets = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for v in dag.node_ids() {
        succs.extend(dag.successors(v).iter().copied().filter(|&w| {
            let keep = !redundant(v, w);
            if !keep {
                removed.insert((v, w));
            }
            keep
        }));
        succ_off.push(succs.len() as u32);
        wcets.push(dag.wcet(v));
        labels.push(dag.label(v).to_owned());
    }
    let mut pred_off = Vec::with_capacity(n + 1);
    pred_off.push(0u32);
    let mut preds = Vec::with_capacity(succs.len());
    for v in dag.node_ids() {
        preds.extend(
            dag.predecessors(v)
                .iter()
                .copied()
                .filter(|&u| !removed.contains(&(u, v))),
        );
        pred_off.push(preds.len() as u32);
    }
    Ok(Dag::from_csr_parts(
        wcets, labels, succ_off, succs, pred_off, preds,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ticks;

    fn chain_with_shortcut() -> (Dag, [NodeId; 3]) {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::ONE);
        let b = dag.add_node(Ticks::ONE);
        let c = dag.add_node(Ticks::ONE);
        dag.add_edge(a, b).unwrap();
        dag.add_edge(b, c).unwrap();
        dag.add_edge(a, c).unwrap();
        (dag, [a, b, c])
    }

    #[test]
    fn detects_direct_transitive_edge() {
        let (dag, [a, _, c]) = chain_with_shortcut();
        assert_eq!(find_transitive_edge(&dag).unwrap(), Some((a, c)));
        assert!(!is_transitively_reduced(&dag).unwrap());
    }

    #[test]
    fn detects_long_range_transitive_edge() {
        let mut dag = Dag::new();
        let v: Vec<NodeId> = (0..4).map(|_| dag.add_node(Ticks::ONE)).collect();
        dag.add_edge(v[0], v[1]).unwrap();
        dag.add_edge(v[1], v[2]).unwrap();
        dag.add_edge(v[2], v[3]).unwrap();
        dag.add_edge(v[0], v[3]).unwrap(); // spans a 3-edge path
        assert_eq!(find_transitive_edge(&dag).unwrap(), Some((v[0], v[3])));
    }

    #[test]
    fn diamond_is_reduced() {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::ONE);
        let b = dag.add_node(Ticks::ONE);
        let c = dag.add_node(Ticks::ONE);
        let d = dag.add_node(Ticks::ONE);
        for (f, t) in [(a, b), (a, c), (b, d), (c, d)] {
            dag.add_edge(f, t).unwrap();
        }
        assert!(is_transitively_reduced(&dag).unwrap());
        assert_eq!(find_transitive_edge(&dag).unwrap(), None);
    }

    #[test]
    fn reduction_removes_only_redundant_edges() {
        let (dag, [a, b, c]) = chain_with_shortcut();
        let reduced = transitive_reduction(&dag).unwrap();
        assert_eq!(reduced.edge_count(), 2);
        assert!(reduced.has_edge(a, b));
        assert!(reduced.has_edge(b, c));
        assert!(!reduced.has_edge(a, c));
        // node data preserved
        assert_eq!(reduced.node_count(), 3);
        assert_eq!(reduced.volume(), dag.volume());
    }

    #[test]
    fn reduction_is_idempotent() {
        let (dag, _) = chain_with_shortcut();
        let once = transitive_reduction(&dag).unwrap();
        let twice = transitive_reduction(&once).unwrap();
        assert_eq!(once.edge_count(), twice.edge_count());
    }

    #[test]
    fn cycle_reported() {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::ONE);
        let b = dag.add_node(Ticks::ONE);
        dag.add_edge(a, b).unwrap();
        dag.add_edge(b, a).unwrap();
        assert!(find_transitive_edge(&dag).is_err());
        assert!(transitive_reduction(&dag).is_err());
        assert!(find_transitive_edge_via_closure(&dag).is_err());
        assert!(transitive_reduction_via_closure(&dag).is_err());
    }

    /// A dense multi-level tangle where the closure-free pruning actually
    /// has to traverse (successors on three distinct levels, long-range
    /// shortcuts spanning several of them).
    fn tangled() -> Dag {
        let mut dag = Dag::new();
        let v: Vec<NodeId> = (0..8).map(|_| dag.add_node(Ticks::ONE)).collect();
        for (f, t) in [
            (0, 1),
            (0, 2),
            (0, 4), // shortcut over 1→3→4
            (0, 6), // shortcut over the whole middle
            (1, 3),
            (2, 3),
            (3, 4),
            (3, 6), // shortcut over 4→5→6
            (4, 5),
            (5, 6),
            (6, 7),
            (2, 7), // shortcut into the sink
        ] {
            dag.add_edge(v[f], v[t]).unwrap();
        }
        dag
    }

    #[test]
    fn structural_path_matches_closure_witness() {
        let dag = tangled();
        assert_eq!(
            find_transitive_edge(&dag).unwrap(),
            find_transitive_edge_via_closure(&dag).unwrap()
        );
    }

    #[test]
    fn structural_reduction_matches_closure_reduction_edge_for_edge() {
        let dag = tangled();
        let fast = transitive_reduction(&dag).unwrap();
        let slow = transitive_reduction_via_closure(&dag).unwrap();
        assert_eq!(fast.edge_count(), slow.edge_count());
        let fast_edges: Vec<_> = fast.edges().collect();
        let slow_edges: Vec<_> = slow.edges().collect();
        assert_eq!(fast_edges, slow_edges);
        assert!(is_transitively_reduced(&fast).unwrap());
    }
}
