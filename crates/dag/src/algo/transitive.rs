//! Transitive-edge detection and reduction.
//!
//! The task model of the paper (Section 2) requires that transitive edges do
//! not exist: if `(v1, v2) ∈ E` and `(v2, v3) ∈ E` then `(v1, v3) ∉ E`.
//! More generally an edge `(u, w)` is transitive when some other path
//! `u → … → w` of length ≥ 2 exists. Algorithm 1 relies on this property
//! (the *other* successors of `v_off`'s direct predecessors are necessarily
//! parallel to `v_off`), so the builder validates it and the generators
//! guarantee it.

use crate::algo::Reachability;
use crate::{Dag, DagError, NodeId};

/// Finds one transitive edge, if any exists.
///
/// An edge `(u, w)` is transitive iff removing it still leaves a directed
/// path from `u` to `w`.
///
/// # Errors
///
/// Returns [`DagError::Cycle`] if the graph is not acyclic.
///
/// # Examples
///
/// ```
/// use hetrta_dag::{DagBuilder, Ticks, algo::transitive};
///
/// let mut b = DagBuilder::new();
/// let v1 = b.unlabeled_node(Ticks::ONE);
/// let v2 = b.unlabeled_node(Ticks::ONE);
/// let v3 = b.unlabeled_node(Ticks::ONE);
/// b.edges([(v1, v2), (v2, v3), (v1, v3)])?; // (v1, v3) is transitive
/// let dag = b.freeze(); // `build()` would reject the transitive edge
/// assert_eq!(transitive::find_transitive_edge(&dag)?, Some((v1, v3)));
/// # Ok::<(), hetrta_dag::DagError>(())
/// ```
pub fn find_transitive_edge(dag: &Dag) -> Result<Option<(NodeId, NodeId)>, DagError> {
    let reach = Reachability::of(dag)?;
    for (u, w) in dag.edges() {
        // (u, w) is transitive iff some other successor of u reaches w.
        let redundant = dag
            .successors(u)
            .iter()
            .any(|&s| s != w && reach.is_ordered_before(s, w));
        if redundant {
            return Ok(Some((u, w)));
        }
    }
    Ok(None)
}

/// `true` if the graph contains no transitive edge.
///
/// # Errors
///
/// Returns [`DagError::Cycle`] if the graph is not acyclic.
pub fn is_transitively_reduced(dag: &Dag) -> Result<bool, DagError> {
    Ok(find_transitive_edge(dag)?.is_none())
}

/// Returns a copy of `dag` with all transitive edges removed (the unique
/// transitive reduction of a DAG).
///
/// Node ids, WCETs and labels are preserved; only redundant edges are
/// dropped. The surviving edges keep their exact positions within every
/// successor *and* predecessor segment (the reduction filters the CSR
/// segments in place rather than rebuilding from an edge list), so the
/// result is bitwise-identical to removing each redundant edge one by one
/// — without the `O(|V| + |E|)`-per-removal cost of mutating a frozen
/// graph. Useful to sanitize externally supplied graphs before building a
/// [`DagTask`](crate::task::DagTask).
///
/// # Errors
///
/// Returns [`DagError::Cycle`] if the graph is not acyclic.
pub fn transitive_reduction(dag: &Dag) -> Result<Dag, DagError> {
    let reach = Reachability::of(dag)?;
    // (u, w) is transitive iff some *other* successor of u reaches w.
    let redundant = |u: NodeId, w: NodeId| {
        dag.successors(u)
            .iter()
            .any(|&s| s != w && reach.is_ordered_before(s, w))
    };
    let n = dag.node_count();
    // One redundancy scan per edge: decide while filtering the successor
    // segments (redundant edges are usually a small minority, so a set of
    // the removed ones is the cheap way to reuse the verdicts when the
    // predecessor segments are filtered below).
    let mut removed: std::collections::HashSet<(NodeId, NodeId)> = std::collections::HashSet::new();
    let mut succ_off = Vec::with_capacity(n + 1);
    succ_off.push(0u32);
    let mut succs = Vec::with_capacity(dag.edge_count());
    let mut wcets = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for v in dag.node_ids() {
        succs.extend(dag.successors(v).iter().copied().filter(|&w| {
            let keep = !redundant(v, w);
            if !keep {
                removed.insert((v, w));
            }
            keep
        }));
        succ_off.push(succs.len() as u32);
        wcets.push(dag.wcet(v));
        labels.push(dag.label(v).to_owned());
    }
    let mut pred_off = Vec::with_capacity(n + 1);
    pred_off.push(0u32);
    let mut preds = Vec::with_capacity(succs.len());
    for v in dag.node_ids() {
        preds.extend(
            dag.predecessors(v)
                .iter()
                .copied()
                .filter(|&u| !removed.contains(&(u, v))),
        );
        pred_off.push(preds.len() as u32);
    }
    let reduced = Dag::from_csr_parts(wcets, labels, succ_off, succs, pred_off, preds);
    debug_assert!(is_transitively_reduced(&reduced).unwrap_or(false));
    Ok(reduced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ticks;

    fn chain_with_shortcut() -> (Dag, [NodeId; 3]) {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::ONE);
        let b = dag.add_node(Ticks::ONE);
        let c = dag.add_node(Ticks::ONE);
        dag.add_edge(a, b).unwrap();
        dag.add_edge(b, c).unwrap();
        dag.add_edge(a, c).unwrap();
        (dag, [a, b, c])
    }

    #[test]
    fn detects_direct_transitive_edge() {
        let (dag, [a, _, c]) = chain_with_shortcut();
        assert_eq!(find_transitive_edge(&dag).unwrap(), Some((a, c)));
        assert!(!is_transitively_reduced(&dag).unwrap());
    }

    #[test]
    fn detects_long_range_transitive_edge() {
        let mut dag = Dag::new();
        let v: Vec<NodeId> = (0..4).map(|_| dag.add_node(Ticks::ONE)).collect();
        dag.add_edge(v[0], v[1]).unwrap();
        dag.add_edge(v[1], v[2]).unwrap();
        dag.add_edge(v[2], v[3]).unwrap();
        dag.add_edge(v[0], v[3]).unwrap(); // spans a 3-edge path
        assert_eq!(find_transitive_edge(&dag).unwrap(), Some((v[0], v[3])));
    }

    #[test]
    fn diamond_is_reduced() {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::ONE);
        let b = dag.add_node(Ticks::ONE);
        let c = dag.add_node(Ticks::ONE);
        let d = dag.add_node(Ticks::ONE);
        for (f, t) in [(a, b), (a, c), (b, d), (c, d)] {
            dag.add_edge(f, t).unwrap();
        }
        assert!(is_transitively_reduced(&dag).unwrap());
        assert_eq!(find_transitive_edge(&dag).unwrap(), None);
    }

    #[test]
    fn reduction_removes_only_redundant_edges() {
        let (dag, [a, b, c]) = chain_with_shortcut();
        let reduced = transitive_reduction(&dag).unwrap();
        assert_eq!(reduced.edge_count(), 2);
        assert!(reduced.has_edge(a, b));
        assert!(reduced.has_edge(b, c));
        assert!(!reduced.has_edge(a, c));
        // node data preserved
        assert_eq!(reduced.node_count(), 3);
        assert_eq!(reduced.volume(), dag.volume());
    }

    #[test]
    fn reduction_is_idempotent() {
        let (dag, _) = chain_with_shortcut();
        let once = transitive_reduction(&dag).unwrap();
        let twice = transitive_reduction(&once).unwrap();
        assert_eq!(once.edge_count(), twice.edge_count());
    }

    #[test]
    fn cycle_reported() {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::ONE);
        let b = dag.add_node(Ticks::ONE);
        dag.add_edge(a, b).unwrap();
        dag.add_edge(b, a).unwrap();
        assert!(find_transitive_edge(&dag).is_err());
        assert!(transitive_reduction(&dag).is_err());
    }
}
