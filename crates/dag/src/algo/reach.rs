//! All-pairs reachability closure.

use crate::algo::topological_order;
use crate::{BitSet, Dag, DagError, NodeId};

/// Precomputed reachability information for a DAG.
///
/// For every node `v` the closure stores the descendant set
/// `Succ(v)` (all nodes reachable from `v`, excluding `v` itself) and the
/// ancestor set `Pred(v)` (all nodes from which `v` can be reached,
/// excluding `v`). These are exactly the `Pred(v_off)` / `Succ(v_off)` sets
/// used by Algorithm 1 of the paper, and the complement
/// `V \ Pred(v) \ Succ(v) \ {v}` is the *parallel set* of `v`.
///
/// Construction costs `O(V · E / 64)` time and `O(V² / 64)` space via
/// bit-set union along a reverse topological sweep.
///
/// # Examples
///
/// ```
/// use hetrta_dag::{DagBuilder, Ticks, algo::Reachability};
///
/// let mut builder = DagBuilder::new();
/// let a = builder.unlabeled_node(Ticks::ONE);
/// let b = builder.unlabeled_node(Ticks::ONE);
/// let c = builder.unlabeled_node(Ticks::ONE);
/// builder.edges([(a, b), (a, c)])?;
/// let dag = builder.freeze(); // two sinks: `build()` would normalize
/// let reach = Reachability::of(&dag)?;
/// assert!(reach.descendants(a).contains(c));
/// assert!(reach.ancestors(c).contains(a));
/// assert!(reach.parallel(b).contains(c)); // b and c are unordered
/// # Ok::<(), hetrta_dag::DagError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Reachability {
    descendants: Vec<BitSet>,
    ancestors: Vec<BitSet>,
}

impl Reachability {
    /// Computes the reachability closure of `dag`.
    ///
    /// # Errors
    ///
    /// Returns [`DagError::Cycle`] if the graph is not acyclic.
    pub fn of(dag: &Dag) -> Result<Self, DagError> {
        let n = dag.node_count();
        let order = topological_order(dag)?;
        // Build each row in place (take/put-back instead of a fresh
        // allocation per node): the only heap traffic is the 2·n row sets
        // the result owns anyway.
        let mut descendants = vec![BitSet::new(n); n];
        for &v in order.iter().rev() {
            // succ sets of children are already complete.
            let mut set = core::mem::take(&mut descendants[v.index()]);
            for &s in dag.successors(v) {
                set.insert(s);
                set.union_with(&descendants[s.index()]);
            }
            descendants[v.index()] = set;
        }
        let mut ancestors = vec![BitSet::new(n); n];
        for &v in &order {
            let mut set = core::mem::take(&mut ancestors[v.index()]);
            for &p in dag.predecessors(v) {
                set.insert(p);
                set.union_with(&ancestors[p.index()]);
            }
            ancestors[v.index()] = set;
        }
        Ok(Reachability {
            descendants,
            ancestors,
        })
    }

    /// `Succ(v)`: all nodes reachable from `v` (excluding `v`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a node of the analyzed graph.
    #[must_use]
    pub fn descendants(&self, v: NodeId) -> &BitSet {
        &self.descendants[v.index()]
    }

    /// `Pred(v)`: all nodes from which `v` is reachable (excluding `v`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a node of the analyzed graph.
    #[must_use]
    pub fn ancestors(&self, v: NodeId) -> &BitSet {
        &self.ancestors[v.index()]
    }

    /// The parallel set of `v`: nodes neither ordered before nor after `v`
    /// (`V \ Pred(v) \ Succ(v) \ {v}`).
    ///
    /// This is the node set `V_par` of the sub-DAG `G_par` in the paper when
    /// `v` is the offloaded node.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a node of the analyzed graph.
    #[must_use]
    pub fn parallel(&self, v: NodeId) -> BitSet {
        let n = self.descendants.len();
        let mut set = BitSet::full(n);
        set.difference_with(&self.descendants[v.index()]);
        set.difference_with(&self.ancestors[v.index()]);
        set.remove(v);
        set
    }

    /// `true` if there is a directed path `from → … → to` (strict:
    /// `false` when `from == to`).
    #[must_use]
    pub fn is_ordered_before(&self, from: NodeId, to: NodeId) -> bool {
        self.descendants[from.index()].contains(to)
    }

    /// `true` if `a` and `b` may execute in parallel (no path in either
    /// direction, and `a != b`).
    #[must_use]
    pub fn are_parallel(&self, a: NodeId, b: NodeId) -> bool {
        a != b && !self.is_ordered_before(a, b) && !self.is_ordered_before(b, a)
    }

    /// Number of nodes in the analyzed graph.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.descendants.len()
    }
}

/// The ancestor and descendant sets of a *single* node — `(Pred(v),
/// Succ(v))`, both excluding `v` — computed by one reverse and one forward
/// traversal in `O(V + E)` time and `O(V/8)` space.
///
/// This is the closure-free alternative to [`Reachability::of`] when only
/// one node's sets matter (Algorithm 1 needs exactly
/// `Pred(v_off)`/`Succ(v_off)`): at n = 10⁶ the full closure would need
/// ~2×125 GB, the two per-node sets ~250 KB. The returned sets are
/// bitwise the closure's [`Reachability::ancestors`] /
/// [`Reachability::descendants`] rows.
///
/// # Errors
///
/// Returns [`DagError::Cycle`] if the graph is not acyclic (the same
/// contract as [`Reachability::of`]).
///
/// # Panics
///
/// Panics if `v` is not a node of `dag`.
pub fn node_reach_sets(dag: &Dag, v: NodeId) -> Result<(BitSet, BitSet), DagError> {
    // Typed acyclicity check up front: a cyclic graph must error, not
    // yield traversal sets that silently mean something else.
    topological_order(dag)?;
    let n = dag.node_count();
    let mut ancestors = BitSet::new(n);
    let mut stack = vec![v];
    while let Some(x) = stack.pop() {
        for &p in dag.predecessors(x) {
            if ancestors.insert(p) {
                stack.push(p);
            }
        }
    }
    let mut descendants = BitSet::new(n);
    stack.push(v);
    while let Some(x) = stack.pop() {
        for &s in dag.successors(x) {
            if descendants.insert(s) {
                stack.push(s);
            }
        }
    }
    Ok((ancestors, descendants))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ticks;

    /// Builds the DAG of Figure 3(a) of the paper (11 nodes + v_off).
    /// Node layout (indices):
    ///   v1=0, v2=1, v3=2, v7=3, v8=4, v9=5, v_off=6, v11=7, v12=8 …
    /// A simplified shape capturing the same pred/succ/parallel structure.
    fn fig3_like() -> (Dag, Vec<NodeId>) {
        let mut dag = Dag::new();
        let v: Vec<NodeId> = (0..8)
            .map(|i| dag.add_labeled_node(format!("v{i}"), Ticks::ONE))
            .collect();
        // v0 -> v1, v0 -> v3 ; v1 -> v4, v1 -> v2 ; v3 -> v4 is transitive-free
        for (f, t) in [
            (0, 1),
            (0, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (3, 5),
            (4, 6),
            (5, 6),
            (6, 7),
        ] {
            dag.add_edge(v[f], v[t]).unwrap();
        }
        (dag, v)
    }

    #[test]
    fn descendants_and_ancestors_chain() {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::ONE);
        let b = dag.add_node(Ticks::ONE);
        let c = dag.add_node(Ticks::ONE);
        dag.add_edge(a, b).unwrap();
        dag.add_edge(b, c).unwrap();
        let r = Reachability::of(&dag).unwrap();
        assert_eq!(r.descendants(a).len(), 2);
        assert_eq!(r.ancestors(c).len(), 2);
        assert!(r.descendants(c).is_empty());
        assert!(r.ancestors(a).is_empty());
        assert!(r.is_ordered_before(a, c));
        assert!(!r.is_ordered_before(c, a));
    }

    #[test]
    fn parallel_set_excludes_self_and_ordered() {
        let (dag, v) = fig3_like();
        let r = Reachability::of(&dag).unwrap();
        // v4 (index 4) and v5 (index 5) are parallel.
        assert!(r.are_parallel(v[4], v[5]));
        let par = r.parallel(v[4]);
        assert!(par.contains(v[5]));
        assert!(!par.contains(v[4]));
        assert!(!par.contains(v[0])); // ancestor
        assert!(!par.contains(v[6])); // descendant
    }

    #[test]
    fn parallel_of_source_is_empty_in_connected_dag() {
        let (dag, v) = fig3_like();
        let r = Reachability::of(&dag).unwrap();
        assert!(r.parallel(v[0]).is_empty());
        assert!(r.parallel(v[7]).is_empty());
    }

    #[test]
    fn closure_matches_reaches_queries() {
        let (dag, _) = fig3_like();
        let r = Reachability::of(&dag).unwrap();
        for a in dag.node_ids() {
            for b in dag.node_ids() {
                if a != b {
                    assert_eq!(
                        r.is_ordered_before(a, b),
                        dag.reaches(a, b),
                        "mismatch for {a}->{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn cycle_is_an_error() {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::ONE);
        let b = dag.add_node(Ticks::ONE);
        dag.add_edge(a, b).unwrap();
        dag.add_edge(b, a).unwrap();
        assert!(matches!(Reachability::of(&dag), Err(DagError::Cycle(_))));
    }

    #[test]
    fn node_reach_sets_match_closure_rows() {
        let (dag, _) = fig3_like();
        let r = Reachability::of(&dag).unwrap();
        for v in dag.node_ids() {
            let (anc, desc) = node_reach_sets(&dag, v).unwrap();
            assert_eq!(&anc, r.ancestors(v), "ancestors of {v}");
            assert_eq!(&desc, r.descendants(v), "descendants of {v}");
        }
    }

    #[test]
    fn node_reach_sets_cycle_is_an_error() {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::ONE);
        let b = dag.add_node(Ticks::ONE);
        dag.add_edge(a, b).unwrap();
        dag.add_edge(b, a).unwrap();
        assert!(matches!(node_reach_sets(&dag, a), Err(DagError::Cycle(_))));
    }

    #[test]
    fn are_parallel_is_irreflexive() {
        let (dag, v) = fig3_like();
        let r = Reachability::of(&dag).unwrap();
        for &x in &v {
            assert!(!r.are_parallel(x, x));
        }
        assert_eq!(r.node_count(), dag.node_count());
    }
}
