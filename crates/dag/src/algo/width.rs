//! DAG width — the maximum number of jobs that can run simultaneously.
//!
//! By Dilworth's theorem the *width* of the precedence order (the largest
//! antichain, i.e. the largest set of pairwise-parallel nodes) equals the
//! minimum number of chains covering all nodes; we compute it as
//! `n − maximum matching` in the bipartite *reachability* graph
//! (Fulkerson's construction on the transitive closure). The width tells a
//! designer how many host cores a task can ever exploit — adding more than
//! `width(G) − 1` cores (one job may be on the accelerator) never helps.

use crate::algo::Reachability;
use crate::{Dag, DagError, NodeId};

/// Computes the width of `dag` (maximum antichain size).
///
/// Runs Fulkerson's chain-cover construction: a maximum bipartite matching
/// on the full reachability relation via repeated augmenting-path search
/// (`O(V·E')` with `E'` edges of the closure — fine for model-scale
/// graphs).
///
/// # Errors
///
/// Returns [`DagError::Cycle`] if the graph is not acyclic.
///
/// # Examples
///
/// ```
/// use hetrta_dag::{DagBuilder, Ticks, algo::width};
///
/// let mut builder = DagBuilder::new();
/// let f = builder.unlabeled_node(Ticks::ONE);
/// let a = builder.unlabeled_node(Ticks::ONE);
/// let b = builder.unlabeled_node(Ticks::ONE);
/// let c = builder.unlabeled_node(Ticks::ONE);
/// let j = builder.unlabeled_node(Ticks::ONE);
/// for mid in [a, b, c] {
///     builder.edge(f, mid)?;
///     builder.edge(mid, j)?;
/// }
/// let dag = builder.build()?;
/// assert_eq!(width(&dag)?, 3); // {a, b, c} run in parallel
/// # Ok::<(), hetrta_dag::DagError>(())
/// ```
pub fn width(dag: &Dag) -> Result<usize, DagError> {
    let n = dag.node_count();
    if n == 0 {
        return Ok(0);
    }
    let reach = Reachability::of(dag)?;
    // Bipartite graph: left copy u → right copy w iff u strictly reaches w.
    // match_right[w] = left node matched to w.
    let mut match_right: Vec<Option<usize>> = vec![None; n];
    let mut matched = 0usize;
    for u in 0..n {
        let mut visited = vec![false; n];
        if augment(u, &reach, &mut visited, &mut match_right) {
            matched += 1;
        }
    }
    Ok(n - matched)
}

fn augment(
    u: usize,
    reach: &Reachability,
    visited: &mut [bool],
    match_right: &mut [Option<usize>],
) -> bool {
    for w in reach.descendants(NodeId::from_index(u)).iter() {
        let wi = w.index();
        if visited[wi] {
            continue;
        }
        visited[wi] = true;
        if match_right[wi].is_none()
            || augment(
                match_right[wi].expect("checked some"),
                reach,
                visited,
                match_right,
            )
        {
            match_right[wi] = Some(u);
            return true;
        }
    }
    false
}

/// A maximum antichain witness: a largest set of pairwise-parallel nodes.
///
/// Derived from the chain cover by taking one node per chain level via the
/// classical König-style alternating reachability; for simplicity (and
/// because the callers only need a witness, not a canonical one) this
/// implementation greedily extends an antichain in topological order and
/// verifies its size against [`width`].
///
/// # Errors
///
/// Returns [`DagError::Cycle`] if the graph is not acyclic.
pub fn max_antichain(dag: &Dag) -> Result<Vec<NodeId>, DagError> {
    let target = width(dag)?;
    let reach = Reachability::of(dag)?;
    // Greedy with backtracking over nodes ordered by |Pred| + |Succ|
    // (least-constrained first) — exact because it retries alternatives.
    let mut nodes: Vec<NodeId> = dag.node_ids().collect();
    nodes.sort_by_key(|&v| reach.ancestors(v).len() + reach.descendants(v).len());
    let mut best: Vec<NodeId> = Vec::new();
    let mut current: Vec<NodeId> = Vec::new();
    search(&nodes, 0, &reach, target, &mut current, &mut best);
    debug_assert_eq!(best.len(), target, "antichain witness must match width");
    Ok(best)
}

fn search(
    nodes: &[NodeId],
    from: usize,
    reach: &Reachability,
    target: usize,
    current: &mut Vec<NodeId>,
    best: &mut Vec<NodeId>,
) -> bool {
    if current.len() == target {
        *best = current.clone();
        return true;
    }
    if from >= nodes.len() || current.len() + (nodes.len() - from) < target {
        return false;
    }
    for i in from..nodes.len() {
        let v = nodes[i];
        if current.iter().all(|&u| reach.are_parallel(u, v)) {
            current.push(v);
            if search(nodes, i + 1, reach, target, current, best) {
                return true;
            }
            current.pop();
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ticks;

    #[test]
    fn chain_has_width_one() {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::ONE);
        let b = dag.add_node(Ticks::ONE);
        let c = dag.add_node(Ticks::ONE);
        dag.add_edge(a, b).unwrap();
        dag.add_edge(b, c).unwrap();
        assert_eq!(width(&dag).unwrap(), 1);
        assert_eq!(max_antichain(&dag).unwrap().len(), 1);
    }

    #[test]
    fn independent_nodes_width_n() {
        let mut dag = Dag::new();
        for _ in 0..5 {
            dag.add_node(Ticks::ONE);
        }
        assert_eq!(width(&dag).unwrap(), 5);
        assert_eq!(max_antichain(&dag).unwrap().len(), 5);
    }

    #[test]
    fn fork_join_width_equals_branches() {
        let mut dag = Dag::new();
        let f = dag.add_node(Ticks::ONE);
        let j = dag.add_node(Ticks::ONE);
        let mids: Vec<NodeId> = (0..4)
            .map(|_| {
                let v = dag.add_node(Ticks::ONE);
                dag.add_edge(f, v).unwrap();
                dag.add_edge(v, j).unwrap();
                v
            })
            .collect();
        assert_eq!(width(&dag).unwrap(), 4);
        let anti = max_antichain(&dag).unwrap();
        assert_eq!(anti.len(), 4);
        for &v in &anti {
            assert!(mids.contains(&v));
        }
    }

    #[test]
    fn nested_structure() {
        // f → {a → {x, y} → b, c} → j : width 3 ({x, y, c})
        let mut dag = Dag::new();
        let f = dag.add_node(Ticks::ONE);
        let a = dag.add_node(Ticks::ONE);
        let x = dag.add_node(Ticks::ONE);
        let y = dag.add_node(Ticks::ONE);
        let b = dag.add_node(Ticks::ONE);
        let c = dag.add_node(Ticks::ONE);
        let j = dag.add_node(Ticks::ONE);
        for (s, t) in [
            (f, a),
            (a, x),
            (a, y),
            (x, b),
            (y, b),
            (b, j),
            (f, c),
            (c, j),
        ] {
            dag.add_edge(s, t).unwrap();
        }
        assert_eq!(width(&dag).unwrap(), 3);
        let anti = max_antichain(&dag).unwrap();
        assert_eq!(anti.len(), 3);
        // witness is pairwise parallel
        let reach = Reachability::of(&dag).unwrap();
        for i in 0..anti.len() {
            for k in (i + 1)..anti.len() {
                assert!(reach.are_parallel(anti[i], anti[k]));
            }
        }
    }

    #[test]
    fn empty_graph() {
        assert_eq!(width(&Dag::new()).unwrap(), 0);
        assert!(max_antichain(&Dag::new()).unwrap().is_empty());
    }

    #[test]
    fn cycle_reported() {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::ONE);
        let b = dag.add_node(Ticks::ONE);
        dag.add_edge(a, b).unwrap();
        dag.add_edge(b, a).unwrap();
        assert!(width(&dag).is_err());
    }
}
