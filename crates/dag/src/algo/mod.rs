//! Graph algorithms on [`Dag`](crate::Dag)s.
//!
//! Everything the model and analysis layers need:
//!
//! * [`topological_order`] / [`is_acyclic`] — Kahn's algorithm;
//! * [`Reachability`] — all-pairs reachability closure with per-node
//!   ancestor/descendant bit sets (`Pred(v)` / `Succ(v)` in the paper);
//! * [`CriticalPath`] — `len(G)` and a witness path, plus per-node
//!   head/tail distances used by the exact solver's lower bounds;
//! * [`transitive`] — detection and removal of transitive edges (the task
//!   model forbids them);
//! * [`count_paths`] / [`enumerate_paths`] — path diagnostics.

mod critical_path;
mod paths;
mod reach;
mod topo;
pub mod transitive;
mod width;

pub use critical_path::CriticalPath;
pub use paths::{count_paths, enumerate_paths, PathEnumeration};
pub use reach::{node_reach_sets, Reachability};
pub use topo::{is_acyclic, topological_order};
pub use width::{max_antichain, width};
