//! Offline, API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 line), vendored so the workspace builds without network access.
//!
//! Only the surface the workspace actually uses is provided:
//!
//! * [`Rng`] — `gen`, `gen_range` (half-open and inclusive integer and float
//!   ranges), `gen_bool`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator.
//!
//! The generator is *not* the upstream ChaCha12 `StdRng`, so absolute random
//! streams differ from crates.io `rand`; everything in this workspace only
//! relies on determinism and statistical quality, both of which hold.
//! Integer `gen_range` uses a modulo reduction whose bias is at most
//! `span / 2^64` — negligible for the experiment-scale spans used here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (unit interval for floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a standard distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value from the standard distribution of `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples uniformly from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let offset = u128::from(rng.next_u64()) % span;
                ((self.start as i128).wrapping_add(offset as i128)) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                let offset = u128::from(rng.next_u64()) % span;
                ((lo as i128).wrapping_add(offset as i128)) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64.
    ///
    /// Not the crates.io `StdRng` (ChaCha12); see the crate docs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_bounds_and_stay_inside() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..=5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
            let w = rng.gen_range(-4i64..4);
            assert!((-4..4).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn usable_through_unsized_refs() {
        fn takes_dyn<R: super::Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..10)
        }
        let mut rng = StdRng::seed_from_u64(2);
        assert!(takes_dyn(&mut rng) < 10);
    }
}
