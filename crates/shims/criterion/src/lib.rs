//! Offline, API-compatible subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness,
//! vendored so the workspace's benches compile and run without network
//! access.
//!
//! Instead of criterion's full statistical machinery this shim runs each
//! benchmark for a fixed warm-up plus measurement iteration budget and
//! prints mean wall-clock time per iteration. That keeps
//! `cargo bench` useful for coarse comparisons and keeps every bench target
//! compiling under `cargo test`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Iterations used to warm up each benchmark.
const WARMUP_ITERS: u64 = 3;
/// Measured iterations per benchmark (kept small: this is a smoke harness,
/// not a statistics engine).
const MEASURE_ITERS: u64 = 10;

/// Re-export matching `criterion::black_box` (std's since 1.66).
pub use std::hint::black_box;

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_owned(),
        }
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration budget is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name));
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Ends the group (no-op in the shim; groups report eagerly).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Times closures; handed to each benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `f` for the warm-up and measurement budgets, recording mean
    /// iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(f());
        }
        self.total = start.elapsed();
        self.iters = MEASURE_ITERS;
    }

    fn report(&self, label: &str) {
        if self.iters == 0 {
            println!("bench {label:<50} (no iterations)");
        } else {
            let per_iter = self.total / u32::try_from(self.iters).unwrap_or(u32::MAX);
            println!(
                "bench {label:<50} {per_iter:>12.2?}/iter ({} iters)",
                self.iters
            );
        }
    }
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        assert_eq!(runs, WARMUP_ITERS + MEASURE_ITERS);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut seen = Vec::new();
        for m in [2u64, 4] {
            group.bench_with_input(BenchmarkId::new("case", m), &m, |b, &m| {
                b.iter(|| seen.push(m));
            });
        }
        group.finish();
        assert!(seen.contains(&2) && seen.contains(&4));
    }
}
