//! Offline, API-compatible subset of the
//! [`proptest`](https://crates.io/crates/proptest) crate, vendored so the
//! workspace's property-test suites build and run without network access.
//!
//! Supported surface (exactly what the workspace uses):
//!
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, `pat in strategy`
//!   and `name: Type` parameter forms;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`];
//! * [`Strategy`](strategy::Strategy) for integer and float ranges, tuples of
//!   strategies, `prop_map`;
//! * [`collection::vec`] and [`collection::btree_set`];
//! * [`test_runner::ProptestConfig`] (`cases`, `with_cases`, struct-update
//!   syntax) and [`test_runner::TestCaseError`].
//!
//! Failing cases are **shrunk** with a simple halving ladder before
//! being reported: numeric inputs halve toward their range start and
//! collections truncate toward their minimum size
//! ([`Strategy::shrink`](strategy::Strategy::shrink)), re-running the
//! test body after each step and keeping the smaller input while it
//! still fails. The panic message reports the case number, *the exact
//! RNG seed that generated the original failure*, and the minimized
//! input (`Debug`-rendered). Runs are fully deterministic per test name,
//! so re-running the test reproduces the failure — and setting
//! `HETRTA_PROPTEST_SEED=0x<seed>` (the value printed in the panic
//! message) re-runs **only** that failing case, which is the fast loop
//! for debugging a property violation. Shrinking is intentionally
//! simpler than upstream proptest's (no strategy-tree rewinding): one
//! candidate per step, at most 64 steps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Produces one *smaller* candidate from a failing `value`, or
        /// `None` when no further shrink applies.
        ///
        /// The shim's minimizer walks this halving ladder: numeric
        /// ranges halve the value toward the range start, collection
        /// strategies truncate toward their minimum size, tuples shrink
        /// their first shrinkable component. Mapped strategies
        /// ([`Strategy::prop_map`]) cannot invert their closure and
        /// return `None` (the default).
        fn shrink(&self, _value: &Self::Value) -> Option<Self::Value> {
            None
        }

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy producing a fixed value (upstream `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Halves an integer value toward the range start (`i128` math like
    /// `generate`, so signed ranges cannot overflow).
    macro_rules! int_halve_toward {
        ($t:ty, $lo:expr, $value:expr) => {{
            let span = (*$value as i128).wrapping_sub($lo as i128);
            if span > 0 {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                Some((($lo as i128).wrapping_add(span / 2)) as $t)
            } else {
                None
            }
        }};
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                    let offset = u128::from(rng.next_u64()) % span;
                    ((self.start as i128).wrapping_add(offset as i128)) as $t
                }

                fn shrink(&self, value: &$t) -> Option<$t> {
                    int_halve_toward!($t, self.start, value)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                    let offset = u128::from(rng.next_u64()) % span;
                    ((lo as i128).wrapping_add(offset as i128)) as $t
                }

                fn shrink(&self, value: &$t) -> Option<$t> {
                    int_halve_toward!($t, *self.start(), value)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

    /// Halves a float value toward the range start, stopping once the
    /// distance becomes negligible.
    macro_rules! float_halve_toward {
        ($t:ty, $lo:expr, $value:expr) => {{
            let distance = *$value - $lo;
            if distance.is_finite() && distance > 1e-9 {
                Some($lo + distance / 2.0)
            } else {
                None
            }
        }};
    }

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (self.end - self.start) * rng.unit() as $t
                }

                fn shrink(&self, value: &$t) -> Option<$t> {
                    float_halve_toward!($t, self.start, value)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    lo + (hi - lo) * rng.unit() as $t
                }

                fn shrink(&self, value: &$t) -> Option<$t> {
                    float_halve_toward!($t, *self.start(), value)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    // Tuple strategies shrink component-wise (first shrinkable component
    // wins), which needs `Clone` values to rebuild the tuple — every
    // value type the shim supports is `Clone` anyway.
    macro_rules! tuple_strategy {
        ($(($name:ident, $idx:tt)),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+)
            where
                $($name::Value: Clone,)+
            {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }

                fn shrink(&self, value: &Self::Value) -> Option<Self::Value> {
                    $(
                        if let Some(candidate) = self.$idx.shrink(&value.$idx) {
                            let mut out = value.clone();
                            out.$idx = candidate;
                            return Some(out);
                        }
                    )+
                    None
                }
            }
        };
    }
    tuple_strategy!((A, 0));
    tuple_strategy!((A, 0), (B, 1));
    tuple_strategy!((A, 0), (B, 1), (C, 2));
    tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3));
    tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
    tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));
    tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5), (G, 6));
    tuple_strategy!(
        (A, 0),
        (B, 1),
        (C, 2),
        (D, 3),
        (E, 4),
        (F, 5),
        (G, 6),
        (H, 7)
    );

    /// Strategy for any [`Arbitrary`](crate::arbitrary::Arbitrary) type
    /// (upstream `any::<T>()`).
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(PhantomData)
        }
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! Default value generation for plain types (the `name: Type` parameter
    //! form of [`proptest!`](crate::proptest)).

    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value of `Self`.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            u128::arbitrary(rng) as i128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit()
        }
    }

    impl Arbitrary for f32 {
        #[allow(clippy::cast_possible_truncation)]
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit() as f32
        }
    }

    /// Returns the whole-domain strategy for `T` (upstream `any::<T>()`).
    #[must_use]
    pub fn any<T: Arbitrary>() -> crate::strategy::Any<T> {
        crate::strategy::Any::default()
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length is uniform in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }

        /// Truncates toward the minimum length (half the excess per step).
        fn shrink(&self, value: &Self::Value) -> Option<Self::Value> {
            let min = self.size.start;
            if value.len() > min {
                Some(value[..min.max(value.len() / 2)].to_vec())
            } else {
                None
            }
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with *target* size drawn from
    /// `size` (duplicates collapse, as in upstream proptest).
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates ordered sets with up to `size.end - 1` elements from
    /// `element`.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord + Clone,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.clone().generate(rng);
            (0..target).map(|_| self.element.generate(rng)).collect()
        }

        /// Truncates (keeping the smallest elements) toward the minimum
        /// size, half the excess per step.
        fn shrink(&self, value: &Self::Value) -> Option<Self::Value> {
            let min = self.size.start;
            if value.len() > min {
                Some(
                    value
                        .iter()
                        .take(min.max(value.len() / 2))
                        .cloned()
                        .collect(),
                )
            } else {
                None
            }
        }
    }
}

pub mod test_runner {
    //! Case execution: configuration, RNG and failure reporting.

    /// Configuration for a [`proptest!`](crate::proptest) block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum number of [`prop_assume!`](crate::prop_assume) rejections
        /// tolerated before the test errors out.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }

    impl ProptestConfig {
        /// A default configuration running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// An assertion failed; the case (and test) fails.
        Fail(String),
        /// The case's inputs were rejected by [`prop_assume!`](crate::prop_assume);
        /// another case is drawn instead.
        Reject(String),
    }

    impl TestCaseError {
        /// Creates a failure with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// Creates a rejection with the given reason.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
                TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
            }
        }
    }

    /// Deterministic RNG driving strategy generation (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG from an explicit seed.
        #[must_use]
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Returns a uniform `f64` in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Environment variable that pins the RNG seed: when set (hex with a
    /// `0x` prefix, or decimal), the runner executes exactly one case from
    /// that seed — the reproduction loop for a reported failure.
    pub const SEED_ENV: &str = "HETRTA_PROPTEST_SEED";

    fn parse_seed(text: &str) -> Option<u64> {
        let text = text.trim();
        match text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
            Some(hex) => u64::from_str_radix(hex, 16).ok(),
            None => text.parse().ok(),
        }
    }

    /// Drives the cases of one property test.
    #[derive(Debug)]
    pub struct TestRunner {
        config: ProptestConfig,
        name: &'static str,
        base_seed: u64,
        rejects: u32,
        seed_override: Option<u64>,
    }

    impl TestRunner {
        /// Creates a runner for the named test, honoring [`SEED_ENV`].
        ///
        /// # Panics
        ///
        /// Panics when [`SEED_ENV`] is set but unparseable — a silently
        /// ignored override would "reproduce" the wrong case.
        #[must_use]
        pub fn new(config: ProptestConfig, name: &'static str) -> Self {
            let seed_override = std::env::var(SEED_ENV).ok().map(|raw| {
                parse_seed(&raw).unwrap_or_else(|| panic!("unparseable {SEED_ENV} value `{raw}`"))
            });
            if let Some(seed) = seed_override {
                // The override is process-wide: every property test in
                // this run shrinks to one case. Say so per test, loudly,
                // so a forgotten export can't silently gut coverage.
                eprintln!(
                    "proptest `{name}`: {SEED_ENV}={seed:#018x} set — running 1 case \
                     from that seed instead of {}",
                    config.cases
                );
            }
            TestRunner::with_seed_override(config, name, seed_override)
        }

        /// Creates a runner with an explicit seed override (what
        /// [`SEED_ENV`] sets from the environment): `Some(seed)` runs
        /// exactly one case generated from `seed`.
        #[must_use]
        pub fn with_seed_override(
            config: ProptestConfig,
            name: &'static str,
            seed_override: Option<u64>,
        ) -> Self {
            // FNV-1a over the test name: deterministic per test, stable
            // across runs, decorrelated between tests.
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRunner {
                config,
                name,
                base_seed: seed,
                rejects: 0,
                seed_override,
            }
        }

        /// The test name this runner reports failures under.
        #[must_use]
        pub fn name(&self) -> &'static str {
            self.name
        }

        /// Number of successful cases required (one under a seed
        /// override).
        #[must_use]
        pub fn cases(&self) -> u32 {
            if self.seed_override.is_some() {
                1
            } else {
                self.config.cases
            }
        }

        /// The RNG seed driving the given case index — the value a
        /// failure report prints and [`SEED_ENV`] accepts back.
        #[must_use]
        pub fn seed_for_case(&self, case: u32) -> u64 {
            self.seed_override
                .unwrap_or_else(|| self.base_seed ^ (u64::from(case) << 32) ^ 0x5851_f42d_4c95_7f2d)
        }

        /// RNG for the given case index.
        #[must_use]
        pub fn rng_for_case(&self, case: u32) -> TestRng {
            TestRng::from_seed(self.seed_for_case(case))
        }

        /// Applies one case outcome; returns `true` if the case counts
        /// toward the required total.
        ///
        /// # Panics
        ///
        /// Panics (failing the enclosing `#[test]`) on
        /// [`TestCaseError::Fail`] or when the rejection budget is
        /// exhausted. The failure message includes the case's RNG seed,
        /// re-runnable in isolation via [`SEED_ENV`].
        pub fn process(&mut self, case: u32, outcome: Result<(), TestCaseError>) -> bool {
            match outcome {
                Ok(()) => true,
                Err(TestCaseError::Reject(_)) => {
                    self.rejects += 1;
                    assert!(
                        self.rejects <= self.config.max_global_rejects,
                        "proptest `{}`: too many prop_assume! rejections ({})",
                        self.name,
                        self.rejects,
                    );
                    false
                }
                Err(TestCaseError::Fail(reason)) => {
                    let seed = self.seed_for_case(case);
                    panic!(
                        "proptest `{}` failed at case {} with seed {:#018x} \
                         (re-run just this case with {}={:#018x}): {}",
                        self.name, case, seed, SEED_ENV, seed, reason
                    );
                }
            }
        }
    }

    /// Cap on halving-ladder steps: each step halves a numeric distance
    /// or a collection length, so 64 steps exhaust any practical input.
    const MAX_SHRINK_STEPS: u32 = 64;

    /// Drives the cases of one property test over `strategy`, feeding
    /// each generated value to `run` (the macro-wrapped test body) and
    /// minimizing failures through [`minimize_and_report`].
    ///
    /// This is what a [`proptest!`](crate::proptest) test function
    /// expands into — keeping the loop generic over the strategy (rather
    /// than expanded inline) is what pins the closure's input type to
    /// `S::Value` for inference, and it keeps the shrink machinery out
    /// of every macro expansion.
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing `#[test]`) when a case fails or the
    /// `prop_assume!` rejection budget is exhausted.
    pub fn run_proptest<S, F>(config: ProptestConfig, name: &'static str, strategy: S, mut run: F)
    where
        S: crate::strategy::Strategy,
        S::Value: Clone + std::fmt::Debug,
        F: FnMut(&S::Value) -> Result<(), TestCaseError>,
    {
        let mut runner = TestRunner::new(config, name);
        let mut accepted: u32 = 0;
        let mut case: u32 = 0;
        while accepted < runner.cases() {
            let mut rng = runner.rng_for_case(case);
            let value = strategy.generate(&mut rng);
            match run(&value) {
                Err(TestCaseError::Fail(reason)) => {
                    minimize_and_report(&runner, case, &strategy, value, reason, &mut run);
                }
                outcome => {
                    if runner.process(case, outcome) {
                        accepted += 1;
                    }
                }
            }
            case += 1;
        }
    }

    /// Minimizes a failing case along the strategy's halving ladder
    /// ([`Strategy::shrink`](crate::strategy::Strategy::shrink)), then
    /// panics with the original case's replay seed *and* the minimized
    /// input.
    ///
    /// Each shrink candidate re-runs the test body; a candidate that
    /// still fails becomes the new current value (and its failure reason
    /// the reported one), a candidate that passes, is rejected by
    /// `prop_assume!`, or *panics* (shrunk inputs can take code paths the
    /// generator never produced — those panics are contained, not
    /// propagated, so the original failure's report is never lost) ends
    /// the ladder. Called by the [`proptest!`] macro expansion; not part
    /// of the upstream-compatible surface.
    ///
    /// # Panics
    ///
    /// Always — this *is* the failure report.
    pub fn minimize_and_report<S: crate::strategy::Strategy>(
        runner: &TestRunner,
        case: u32,
        strategy: &S,
        value: S::Value,
        reason: String,
        run: &mut dyn FnMut(&S::Value) -> Result<(), TestCaseError>,
    ) -> !
    where
        S::Value: std::fmt::Debug,
    {
        let mut value = value;
        let mut reason = reason;
        let mut steps = 0u32;
        while steps < MAX_SHRINK_STEPS {
            let Some(candidate) = strategy.shrink(&value) else {
                break;
            };
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(&candidate)));
            match outcome {
                Ok(Err(TestCaseError::Fail(smaller_reason))) => {
                    value = candidate;
                    reason = smaller_reason;
                    steps += 1;
                }
                // Passed, rejected, or panicked on the shrunk input:
                // keep the last value known to fail *this* property.
                _ => break,
            }
        }
        let seed = runner.seed_for_case(case);
        panic!(
            "proptest `{}` failed at case {} with seed {:#018x} \
             (re-run just this case with {}={:#018x}): {}\n\
             minimized input after {} shrink step(s): {:?}",
            runner.name(),
            case,
            seed,
            SEED_ENV,
            seed,
            reason,
            steps,
            value
        );
    }
}

pub mod prelude {
    //! One-stop import for property tests, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests.
///
/// Supports an optional leading `#![proptest_config(EXPR)]`, then any number
/// of `#[test] fn name(args) { body }` items where each argument is either
/// `pat in strategy` or `name: Type`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal: expands the test functions of a [`proptest!`] block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            $crate::__proptest_case! { ($cfg); $name; [] []; { $($params)* } $body }
        }
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
}

/// Internal: munches the parameter list of one `proptest!` test into a
/// parenthesized-pattern list and a strategy list (the `name: Type` form
/// desugars to `name in any::<Type>()`), then emits the runner loop over
/// the combined tuple strategy — which is what lets the minimizer re-run
/// the body on shrunk inputs.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // `pat in strategy` parameter, more to come.
    (($cfg:expr); $name:ident; [$($pats:tt)*] [$($strats:tt)*];
     { $pat:pat_param in $strat:expr, $($rest:tt)* } $body:block) => {
        $crate::__proptest_case! {
            ($cfg); $name; [$($pats)* ($pat)] [$($strats)* ($strat)]; { $($rest)* } $body
        }
    };
    // `pat in strategy`, final parameter (no trailing comma).
    (($cfg:expr); $name:ident; [$($pats:tt)*] [$($strats:tt)*];
     { $pat:pat_param in $strat:expr } $body:block) => {
        $crate::__proptest_case! {
            ($cfg); $name; [$($pats)* ($pat)] [$($strats)* ($strat)]; {} $body
        }
    };
    // `name: Type` parameter, more to come.
    (($cfg:expr); $name:ident; [$($pats:tt)*] [$($strats:tt)*];
     { $param:ident : $ty:ty, $($rest:tt)* } $body:block) => {
        $crate::__proptest_case! {
            ($cfg); $name;
            [$($pats)* ($param)] [$($strats)* ($crate::arbitrary::any::<$ty>())];
            { $($rest)* } $body
        }
    };
    // `name: Type`, final parameter.
    (($cfg:expr); $name:ident; [$($pats:tt)*] [$($strats:tt)*];
     { $param:ident : $ty:ty } $body:block) => {
        $crate::__proptest_case! {
            ($cfg); $name;
            [$($pats)* ($param)] [$($strats)* ($crate::arbitrary::any::<$ty>())];
            {} $body
        }
    };
    // Every parameter munched: run the generic case driver over the
    // combined tuple strategy.
    (($cfg:expr); $name:ident; [$(($pat:pat_param))+] [$(($strat:expr))+]; {} $body:block) => {
        $crate::test_runner::run_proptest(
            $cfg,
            stringify!($name),
            ($($strat,)+),
            |__proptest_input| {
                let ($($pat,)+) = ::std::clone::Clone::clone(__proptest_input);
                $body
                ::std::result::Result::Ok(())
            },
        )
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}`",
                left, right
            )));
        }
    }};
}

/// Rejects the current case (drawing a fresh one) unless the condition
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)+),
            ));
        }
    };
}

#[cfg(test)]
mod self_tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 1u64..10, (a, b) in (0i32..5, 0.0f64..1.0)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0..5).contains(&a));
            prop_assert!((0.0..1.0).contains(&b), "b = {}", b);
        }

        #[test]
        fn typed_params_and_assume(seed: u64, flag: bool) {
            prop_assume!(seed.is_multiple_of(2) || !flag);
            prop_assert_eq!(seed.is_multiple_of(2) || !flag, true);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn mapped_and_collections(
            v in crate::collection::vec(0u8..10, 1..5),
            s in crate::collection::btree_set(0usize..100, 0..10),
            doubled in (1u32..50).prop_map(|x| x * 2),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(s.len() < 10);
            prop_assert_eq!(doubled % 2, 0);
            prop_assert_ne!(doubled, 1);
        }
    }

    proptest! {
        fn always_fails_inner(x in 0u64..10) {
            prop_assert!(x > 100);
        }
    }

    #[test]
    #[should_panic(expected = "with seed 0x")]
    fn failures_panic_with_the_rng_seed() {
        always_fails_inner();
    }

    proptest! {
        fn shrink_numeric_inner(x in 0u64..1000) {
            prop_assert!(x < 1);
        }

        fn shrink_vec_inner(v in crate::collection::vec(0u8..10, 0..20)) {
            prop_assert!(v.is_empty());
        }
    }

    fn panic_text(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
        let payload = std::panic::catch_unwind(f).expect_err("property must fail");
        payload
            .downcast_ref::<String>()
            .expect("panic carries a String")
            .clone()
    }

    #[test]
    fn numeric_failures_minimize_to_the_boundary() {
        // `x < 1` fails for every x ≥ 1; the halving ladder bottoms out
        // at exactly 1 (its shrink, 0, passes), whatever the original
        // failing value was.
        let text = panic_text(shrink_numeric_inner);
        assert!(text.contains("minimized input after"), "{text}");
        assert!(text.contains("(1,)"), "{text}");
        // The replay seed is still reported alongside.
        assert!(text.contains("HETRTA_PROPTEST_SEED"), "{text}");
    }

    proptest! {
        fn shrink_panicking_candidate_inner(x in 0u64..1000) {
            // Plain `assert!` (a hard panic, not a TestCaseError) on a
            // value the halving ladder reaches while minimizing the
            // `prop_assert!` failure below.
            assert!(x != 1, "boom");
            prop_assert!(x == 0);
        }
    }

    #[test]
    fn panicking_shrink_candidates_do_not_lose_the_report() {
        // The ladder bottoms out against the panicking candidate (x = 1):
        // the panic is contained, the last value known to fail the
        // property is reported, and the replay seed survives.
        let text = panic_text(shrink_panicking_candidate_inner);
        assert!(text.contains("with seed 0x"), "{text}");
        assert!(text.contains("minimized input"), "{text}");
        assert!(
            !text.contains("boom"),
            "shrink-candidate panic must be contained: {text}"
        );
    }

    #[test]
    fn collection_failures_truncate_to_one_element() {
        // `v.is_empty()` fails for every non-empty vector; truncation
        // bottoms out at a single element.
        let text = panic_text(shrink_vec_inner);
        assert!(text.contains("minimized input after"), "{text}");
        let minimized = text.split("minimized input").nth(1).expect("report tail");
        assert_eq!(
            minimized.matches(',').count(),
            1,
            "single-element vec in a 1-tuple: {text}"
        );
    }

    #[test]
    fn determinism_across_runners() {
        let r1 = crate::test_runner::TestRunner::new(ProptestConfig::default(), "same");
        let r2 = crate::test_runner::TestRunner::new(ProptestConfig::default(), "same");
        for case in 0..8 {
            assert_eq!(
                r1.rng_for_case(case).next_u64(),
                r2.rng_for_case(case).next_u64()
            );
        }
    }

    #[test]
    fn reported_seed_reruns_the_exact_failing_case() {
        use crate::test_runner::TestRunner;
        // A "failure" at case 5 of some run: the reported seed, fed back
        // as an override, regenerates the identical inputs in one case.
        let original = TestRunner::new(ProptestConfig::default(), "repro");
        let reported = original.seed_for_case(5);
        let replay =
            TestRunner::with_seed_override(ProptestConfig::default(), "repro", Some(reported));
        assert_eq!(replay.cases(), 1, "override runs exactly one case");
        assert_eq!(replay.seed_for_case(0), reported);
        assert_eq!(
            replay.rng_for_case(0).next_u64(),
            original.rng_for_case(5).next_u64(),
            "the replayed case draws the same values"
        );
        // And the failure message of the replay names the same seed.
        let mut replay =
            TestRunner::with_seed_override(ProptestConfig::default(), "repro", Some(reported));
        let message = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            replay.process(0, Err(crate::test_runner::TestCaseError::fail("boom")));
        }))
        .unwrap_err();
        let text = message
            .downcast_ref::<String>()
            .expect("panic carries a String");
        assert!(text.contains(&format!("{reported:#018x}")), "{text}");
        assert!(text.contains("HETRTA_PROPTEST_SEED"), "{text}");
    }
}
