//! Crash-safety guarantees through the real binary: a SIGKILLed
//! journaled sweep resumes to the bitwise aggregate of an uninterrupted
//! run (engine-local and `--workers 2`), and the same `--chaos` seed
//! renders the same fault report.

use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::{Duration, Instant};

fn hetrta(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_hetrta"))
        .args(args)
        .output()
        .expect("run hetrta");
    assert!(
        out.status.success(),
        "hetrta {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

/// The cell block: everything up to the first blank line (the summary
/// blocks below it are run-dependent).
fn cells(text: &str) -> Vec<String> {
    text.lines()
        .take_while(|l| !l.is_empty())
        .map(String::from)
        .collect()
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hetrta-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// `done` records across every journal segment (sealed + active tail).
/// Record lines are `<checksum> <payload>`, so a done payload shows up
/// as `" done "` right after the 16-hex-digit checksum.
fn done_records(journal: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(journal) else {
        return 0;
    };
    entries
        .flatten()
        .filter_map(|e| std::fs::read_to_string(e.path()).ok())
        .map(|text| text.lines().filter(|l| l.contains(" done ")).count())
        .sum()
}

/// Spawns the binary, SIGKILLs it once the journal holds at least one
/// `done` record, and reaps it.
fn kill_once_journal_has_progress(mut child: Child, journal: &Path) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if done_records(journal) > 0 {
            break;
        }
        if let Some(status) = child.try_wait().expect("poll child") {
            panic!("sweep finished before the kill landed ({status:?}); use a heavier spec");
        }
        assert!(
            Instant::now() < deadline,
            "no journal progress within the deadline"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().expect("SIGKILL the sweep");
    let _ = child.wait();
}

/// Parses `journal: R of T jobs replayed from DIR, E executed...` into
/// `(replayed, total, executed)`.
fn journal_line(text: &str) -> (usize, usize, usize) {
    let line = text
        .lines()
        .find(|l| l.starts_with("journal: "))
        .unwrap_or_else(|| panic!("no journal line in {text:?}"));
    // `journal: R of T jobs replayed from <dir>, E executed...` — the
    // directory may contain digits, so parse around it, not through it.
    let (head, tail) = line
        .split_once(" jobs replayed")
        .unwrap_or_else(|| panic!("malformed journal line {line:?}"));
    let mut counts = head
        .trim_start_matches("journal: ")
        .split(" of ")
        .map(|s| s.parse::<usize>().expect("count"));
    let replayed = counts.next().expect("replayed");
    let total = counts.next().expect("total");
    let executed = tail
        .split(", ")
        .find_map(|s| s.strip_suffix(" executed"))
        .unwrap_or_else(|| panic!("no executed count in {line:?}"))
        .parse()
        .expect("executed");
    (replayed, total, executed)
}

/// A sweep heavy enough that a single thread takes long past the first
/// journal record: 16 large-graph jobs.
const HEAVY: &[&str] = &[
    "engine",
    "sweep",
    "--n-max",
    "2500",
    "--cores",
    "2,4",
    "--fractions",
    "0.2,0.4",
    "--per-point",
    "4",
    "--seed",
    "77",
    "--csv",
];

#[test]
fn sigkilled_local_sweep_resumes_to_the_bitwise_aggregate() {
    let journal = fresh_dir("journal-local");
    let golden = hetrta(&[HEAVY, &["--threads", "2"]].concat());

    let child = Command::new(env!("CARGO_BIN_EXE_hetrta"))
        .args([HEAVY, &["--threads", "1", "--journal"]].concat())
        .arg(&journal)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn journaled sweep");
    kill_once_journal_has_progress(child, &journal);
    let survived = done_records(&journal);
    assert!(survived > 0, "the kill landed after journal progress");

    // Without --resume a non-empty journal is refused, not overwritten.
    let refused = Command::new(env!("CARGO_BIN_EXE_hetrta"))
        .args([HEAVY, &["--threads", "2", "--journal"]].concat())
        .arg(&journal)
        .output()
        .expect("run hetrta");
    assert!(!refused.status.success(), "unresumed reuse must be refused");
    assert!(
        String::from_utf8_lossy(&refused.stderr).contains("--resume"),
        "the refusal names the fix"
    );

    let resumed = {
        let mut args: Vec<String> = HEAVY.iter().map(ToString::to_string).collect();
        args.extend(["--threads".into(), "2".into()]);
        args.extend(["--journal".into(), journal.display().to_string()]);
        args.push("--resume".into());
        let refs: Vec<&str> = args.iter().map(String::as_str).collect();
        hetrta(&refs)
    };
    assert_eq!(
        cells(&golden),
        cells(&resumed),
        "resumed aggregate is bitwise the uninterrupted one"
    );
    let (replayed, total, executed) = journal_line(&resumed);
    assert_eq!(total, 16);
    assert!(replayed >= survived, "every journaled job was replayed");
    assert_eq!(
        replayed + executed,
        total,
        "no job ran twice: replayed + executed covers the sweep exactly"
    );
    let _ = std::fs::remove_dir_all(&journal);
}

#[test]
fn sigkilled_dist_coordinator_resumes_to_the_bitwise_aggregate() {
    let journal = fresh_dir("journal-dist");
    let golden = hetrta(&[HEAVY, &["--threads", "2"]].concat());

    let child = Command::new(env!("CARGO_BIN_EXE_hetrta"))
        .args([HEAVY, &["--workers", "2", "--threads", "1", "--journal"]].concat())
        .arg(&journal)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn dist sweep");
    kill_once_journal_has_progress(child, &journal);

    let resumed = {
        let mut args: Vec<String> = HEAVY.iter().map(ToString::to_string).collect();
        args.extend([
            "--workers".into(),
            "2".into(),
            "--threads".into(),
            "1".into(),
        ]);
        args.extend(["--journal".into(), journal.display().to_string()]);
        args.push("--resume".into());
        let refs: Vec<&str> = args.iter().map(String::as_str).collect();
        hetrta(&refs)
    };
    assert_eq!(
        cells(&golden),
        cells(&resumed),
        "resumed fleet aggregate is bitwise the uninterrupted local one"
    );
    let (replayed, total, executed) = journal_line(&resumed);
    assert_eq!(total, 16);
    assert!(replayed >= 1, "the journaled prefix was replayed");
    assert_eq!(replayed + executed, total, "no job ran twice");
    let _ = std::fs::remove_dir_all(&journal);
}

#[test]
fn same_chaos_seed_renders_the_same_fault_report() {
    let shape = [
        "engine",
        "sweep",
        "--cores",
        "2,4",
        "--per-point",
        "8",
        "--fractions",
        "0.1,0.3",
        "--seed",
        "9",
        "--threads",
        "1",
        "--csv",
        "--chaos",
        "0xC4A05",
        "--cache-dir",
    ];
    let report_of = |tag: &str| {
        let cache = fresh_dir(tag);
        let out = {
            let mut args: Vec<String> = shape.iter().map(ToString::to_string).collect();
            args.push(cache.display().to_string());
            let refs: Vec<&str> = args.iter().map(String::as_str).collect();
            hetrta(&refs)
        };
        let _ = std::fs::remove_dir_all(&cache);
        let report = out
            .split("chaos seed")
            .nth(1)
            .unwrap_or_else(|| panic!("no fault report in {out:?}"))
            .to_string();
        (cells(&out), report)
    };

    let golden = hetrta(&[
        "engine",
        "sweep",
        "--cores",
        "2,4",
        "--per-point",
        "8",
        "--fractions",
        "0.1,0.3",
        "--seed",
        "9",
        "--threads",
        "2",
        "--csv",
    ]);
    let (cells_a, report_a) = report_of("chaos-a");
    let (cells_b, report_b) = report_of("chaos-b");
    assert_eq!(
        report_a, report_b,
        "same seed, same workload: identical fault sequence"
    );
    assert!(
        report_a.lines().any(|l| l.starts_with("fault disk.")),
        "the seed actually injected disk faults: {report_a}"
    );
    assert_eq!(
        cells(&golden),
        cells_a,
        "injected disk faults degrade the cache, never the results"
    );
    assert_eq!(cells_a, cells_b);
}
