//! End-to-end distributed-sweep guarantees through the real binary:
//! `engine sweep --workers N` is bitwise the `--threads`-only run, and
//! a daemon in fleet mode (`serve --workers N`) answers submits with
//! the same cells the local engine produces.

use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};

fn hetrta(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_hetrta"))
        .args(args)
        .output()
        .expect("run hetrta");
    assert!(
        out.status.success(),
        "hetrta {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

/// The cell block: everything up to the first blank line (the stats
/// block below it is run-dependent).
fn cells(text: &str) -> Vec<String> {
    text.lines()
        .take_while(|l| !l.is_empty())
        .map(String::from)
        .collect()
}

#[test]
fn fig8_with_four_workers_is_bitwise_the_threads_only_run() {
    let local = hetrta(&[
        "engine",
        "sweep",
        "--preset",
        "fig8",
        "--threads",
        "2",
        "--csv",
    ]);
    let dist = hetrta(&[
        "engine",
        "sweep",
        "--preset",
        "fig8",
        "--workers",
        "4",
        "--threads",
        "1",
        "--csv",
    ]);
    assert_eq!(cells(&local), cells(&dist), "fig8 dist != local");
    assert!(dist.contains("dist: "), "{dist}");
    assert!(dist.contains("0 redispatched, 0 worker deaths"), "{dist}");
}

#[test]
fn sampled_sweep_with_two_workers_is_bitwise_the_threads_only_run() {
    // The sampled tier's determinism contract: the sample seed and budget
    // live in the spec (not per worker), and every sample's seed is a pure
    // function of the base seed and sample index — so sharding the sweep
    // across worker processes draws the identical sample set and the
    // mean/CI columns match bit-for-bit.
    let shape = [
        "--cores",
        "2",
        "--per-point",
        "4",
        "--fractions",
        "0.1,0.3",
        "--seed",
        "11",
        "--analyses",
        "sampled,anytime",
        "--sample-budget",
        "12",
        "--sample-seed",
        "42",
        "--exact-budget",
        "5000",
        "--csv",
    ];
    let mut local_args = vec!["engine", "sweep", "--threads", "2"];
    local_args.extend_from_slice(&shape);
    let mut dist_args = vec!["engine", "sweep", "--workers", "2", "--threads", "1"];
    dist_args.extend_from_slice(&shape);
    let local = hetrta(&local_args);
    let dist = hetrta(&dist_args);
    assert_eq!(cells(&local), cells(&dist), "sampled dist != local");
    let header = &cells(&local)[0];
    assert!(header.contains("sampled_mean"), "{header}");
    assert!(header.contains("sampled_ci_half"), "{header}");
    assert!(header.contains("anytime_lower"), "{header}");
}

#[test]
fn daemon_in_fleet_mode_answers_with_the_local_cells() {
    let shape = [
        "--cores",
        "2",
        "--per-point",
        "4",
        "--fractions",
        "0.1,0.3",
        "--seed",
        "5",
        "--csv",
    ];

    let mut serve = Command::new(env!("CARGO_BIN_EXE_hetrta"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--threads",
            "1",
        ])
        .stderr(Stdio::piped())
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn daemon");
    // The daemon announces its resolved address on stderr before the
    // accept loop starts.
    let mut announce = String::new();
    BufReader::new(serve.stderr.take().expect("daemon stderr"))
        .read_line(&mut announce)
        .expect("daemon announcement");
    let addr = announce
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in {announce:?}"))
        .to_string();

    let mut local_args = vec!["engine", "sweep", "--threads", "2"];
    local_args.extend_from_slice(&shape);
    let mut remote_args = vec!["submit", "--addr", &addr];
    remote_args.extend_from_slice(&shape);
    let local = hetrta(&local_args);
    let remote = hetrta(&remote_args);
    assert_eq!(cells(&local), cells(&remote), "fleet daemon != local");
    assert!(remote.contains("remote: 8 jobs"), "{remote}");

    hetrta(&["submit", "--addr", &addr, "--shutdown"]);
    let status = serve.wait().expect("daemon exit");
    assert!(status.success(), "daemon exited {status:?}");
}
