//! `hetrta` — command-line front end for the heterogeneous DAG RTA.
//!
//! Run `hetrta help` for the generated command overview, or
//! `hetrta <command> --help` for per-command flags; both screens are
//! generated from the declarative command table in [`commands`].
//!
//! Task files use the `.hdag` text format of [`hetrta_dag::io`].

use std::process::ExitCode;

mod commands;
mod spec;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{}", commands::usage());
            ExitCode::FAILURE
        }
    }
}
