//! `hetrta` — command-line front end for the heterogeneous DAG RTA.
//!
//! ```text
//! hetrta analyze  <task.hdag> [-m CORES[,CORES…]]
//! hetrta transform <task.hdag> [--dot]
//! hetrta simulate <task.hdag> [-m CORES] [--policy bfs|dfs|cp|random:SEED] [--gantt]
//! hetrta solve    <task.hdag> [-m CORES] [--lp]
//! hetrta generate [--small|--large] [--seed N] [--fraction F]
//! hetrta example
//! ```
//!
//! Task files use the `.hdag` text format of [`hetrta_dag::io`].

use std::process::ExitCode;

mod commands;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
