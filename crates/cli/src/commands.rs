//! Command implementations (pure: strings in, strings out, testable).

use std::fmt::Write as _;

use hetrta_core::federated::{minimum_cores, AnalysisKind};
use hetrta_core::{transform, HeterogeneousAnalysis};
use hetrta_dag::dot::{to_dot, DotOptions};
use hetrta_dag::io::{parse_task, render_task, TaskKind};
use hetrta_dag::{HeteroDagTask, NodeId, Ticks};
use hetrta_engine::{AnalysisSelection, CellKind, Engine, GeneratorPreset, SweepSpec, TestKind};
use hetrta_exact::{lp, solve, SolverConfig};
use hetrta_gen::offload::{make_hetero_task, CoffSizing, OffloadSelection};
use hetrta_gen::{generate_nfj, NfjParams};
use hetrta_sched::model::{AnalysisModel, DeviceModel};
use hetrta_sched::taskset::sort_deadline_monotonic;
use hetrta_sched::{gedf_test, gfp_test, SetVerdict};
use hetrta_sim::policy::{BreadthFirst, CriticalPathFirst, DepthFirst, Policy, RandomTieBreak};
use hetrta_sim::{simulate, trace, Platform};
use hetrta_suspend::BaselineComparison;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Usage text shown on errors.
pub const USAGE: &str = "\
usage:
  hetrta analyze   <task.hdag> [-m CORES[,CORES...]]
  hetrta transform <task.hdag> [--dot]
  hetrta simulate  <task.hdag> [-m CORES] [--policy bfs|dfs|cp|random:SEED] [--gantt]
  hetrta solve     <task.hdag> [-m CORES] [--lp]
  hetrta sched     <task.hdag>... [-m CORES] [--edf] [--shared-device]
  hetrta baselines <task.hdag> [-m CORES[,CORES...]]
  hetrta cond      <expr.hcond> [-m CORES[,CORES...]] [--offload LABEL]
  hetrta generate  [--small|--large] [--seed N] [--fraction F]
  hetrta engine sweep [--threads N] [--cores A,B,...] [--per-point N] [--seed S[,S...]]
                      [--fractions F,... | --utils U,... [--n-tasks N]]
                      [--analyses hom,het,sim,exact] [--preset small|large|paper] [--csv]
  hetrta example";

/// Dispatches a command line (without the program name).
///
/// # Errors
///
/// Returns a human-readable message for any failure: unknown command,
/// malformed flags, unreadable file, parse error, analysis error.
pub fn run(args: &[String]) -> Result<String, String> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("analyze") => analyze(&args[1..]),
        Some("transform") => transform_cmd(&args[1..]),
        Some("simulate") => simulate_cmd(&args[1..]),
        Some("solve") => solve_cmd(&args[1..]),
        Some("sched") => sched_cmd(&args[1..]),
        Some("baselines") => baselines_cmd(&args[1..]),
        Some("cond") => cond_cmd(&args[1..]),
        Some("generate") => generate_cmd(&args[1..]),
        Some("engine") => engine_cmd(&args[1..]),
        Some("example") => Ok(example_file()),
        Some(other) => Err(format!("unknown command `{other}`")),
        None => Err("missing command".into()),
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn load_task(args: &[String]) -> Result<(HeteroDagTask, Option<NodeId>), String> {
    let path = args
        .iter()
        .find(|a| !a.starts_with('-') && !a.chars().all(|c| c.is_ascii_digit() || c == ','))
        .ok_or("missing task file argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let parsed = parse_task(&text).map_err(|e| format!("{path}: {e}"))?;
    match parsed.task {
        TaskKind::Heterogeneous(t) => {
            let off = t.offloaded();
            Ok((t, Some(off)))
        }
        TaskKind::Homogeneous(t) => {
            // Wrap as heterogeneous with a phantom offload for the shared
            // plumbing; commands that need v_off check `off` is Some.
            let period = t.period();
            let deadline = t.deadline();
            let dag = t.into_dag();
            let any = dag.node_ids().next().ok_or("empty graph")?;
            let task = HeteroDagTask::new(dag, any, period, deadline).map_err(|e| e.to_string())?;
            Ok((task, None))
        }
    }
}

fn core_list(args: &[String]) -> Result<Vec<u64>, String> {
    match flag_value(args, "-m") {
        None => Ok(vec![2, 4, 8, 16]),
        Some(spec) => parse_list(spec, "core count"),
    }
}

fn analyze(args: &[String]) -> Result<String, String> {
    let (task, off) = load_task(args)?;
    if off.is_none() {
        return Err("task file has no `offload` line; nothing heterogeneous to analyze".into());
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "task: n = {}, vol = {}, len = {}, C_off = {} ({:.1}% of vol), T = {}, D = {}",
        task.dag().node_count(),
        task.volume(),
        task.critical_path_length(),
        task.c_off(),
        task.offload_fraction().to_f64() * 100.0,
        task.period(),
        task.deadline(),
    );
    let _ = writeln!(
        out,
        "\n  m  R_hom(tau)  R_het(tau')  scenario  schedulable(het)  min cores (het)"
    );
    for m in core_list(args)? {
        let report = HeterogeneousAnalysis::run(&task, m).map_err(|e| e.to_string())?;
        let min = minimum_cores(&task, AnalysisKind::Heterogeneous, 128)
            .map_err(|e| e.to_string())?
            .map_or("-".to_owned(), |(c, _)| c.to_string());
        let _ = writeln!(
            out,
            "{m:>3}  {:>10.2}  {:>11.2}  {:>8}  {:>16}  {:>15}",
            report.r_hom_original().to_f64(),
            report.r_het().to_f64(),
            report.scenario().paper_label(),
            report.is_schedulable(),
            min,
        );
    }
    Ok(out)
}

fn transform_cmd(args: &[String]) -> Result<String, String> {
    let (task, off) = load_task(args)?;
    if off.is_none() {
        return Err("task file has no `offload` line; nothing to transform".into());
    }
    let t = transform(&task).map_err(|e| e.to_string())?;
    if has_flag(args, "--dot") {
        let mut opts = DotOptions::named("transformed");
        opts.offloaded = Some(task.offloaded());
        opts.sync = Some(t.sync_node());
        opts.highlight = Some(t.par_nodes().clone());
        Ok(to_dot(t.transformed(), &opts))
    } else {
        let out_task = t.as_task();
        let mut out = render_task(&out_task);
        let _ = writeln!(
            out,
            "# len(G') = {}, vol(G_par) = {}, len(G_par) = {}",
            t.len_transformed(),
            t.vol_g_par(),
            t.len_g_par()
        );
        Ok(out)
    }
}

fn make_policy(args: &[String]) -> Result<Box<dyn Policy>, String> {
    match flag_value(args, "--policy") {
        None | Some("bfs") => Ok(Box::new(BreadthFirst::new())),
        Some("dfs") => Ok(Box::new(DepthFirst::new())),
        Some("cp") => Ok(Box::new(CriticalPathFirst::new())),
        Some(spec) if spec.starts_with("random:") => {
            let seed = spec["random:".len()..]
                .parse::<u64>()
                .map_err(|_| format!("invalid random seed in `{spec}`"))?;
            Ok(Box::new(RandomTieBreak::new(seed)))
        }
        Some(other) => Err(format!("unknown policy `{other}`")),
    }
}

fn single_core_count(args: &[String]) -> Result<u64, String> {
    let list = core_list(args)?;
    Ok(*list.first().unwrap_or(&2))
}

fn simulate_cmd(args: &[String]) -> Result<String, String> {
    let (task, off) = load_task(args)?;
    let m = single_core_count(args)? as usize;
    let mut policy = make_policy(args)?;
    let platform = if off.is_some() {
        Platform::with_accelerator(m)
    } else {
        Platform::host_only(m)
    };
    let result = simulate(task.dag(), off, platform, policy.as_mut()).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "policy {} on {} cores{}: makespan = {}",
        result.policy(),
        m,
        if off.is_some() {
            " + 1 accelerator"
        } else {
            ""
        },
        result.makespan()
    );
    if has_flag(args, "--gantt") {
        let scale = (result.makespan().get() / 72).max(1);
        out.push_str(&trace::gantt(task.dag(), &result, scale));
    }
    Ok(out)
}

fn solve_cmd(args: &[String]) -> Result<String, String> {
    let (task, off) = load_task(args)?;
    let m = single_core_count(args)?;
    if has_flag(args, "--lp") {
        return lp::to_lp_format(task.dag(), off, m).map_err(|e| e.to_string());
    }
    let sol = solve(task.dag(), off, m, &SolverConfig::default()).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "minimum makespan on {m} cores{}: {} ({:?}, lower bound {}, {} nodes explored)",
        if off.is_some() {
            " + 1 accelerator"
        } else {
            ""
        },
        sol.makespan(),
        sol.optimality(),
        sol.lower_bound(),
        sol.explored_nodes()
    );
    Ok(out)
}

/// Loads every non-flag argument as a heterogeneous task file.
fn load_task_files(args: &[String]) -> Result<Vec<HeteroDagTask>, String> {
    let mut tasks = Vec::new();
    let mut skip_next = false;
    for (i, a) in args.iter().enumerate() {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "-m" {
            skip_next = true;
            continue;
        }
        if a.starts_with('-') || a.chars().all(|c| c.is_ascii_digit() || c == ',') {
            continue;
        }
        let text = std::fs::read_to_string(a).map_err(|e| format!("cannot read {a}: {e}"))?;
        let parsed = parse_task(&text).map_err(|e| format!("{a}: {e}"))?;
        match parsed.task {
            TaskKind::Heterogeneous(t) => tasks.push(t),
            TaskKind::Homogeneous(_) => {
                return Err(format!("{a} (argument {i}): task has no `offload` line"));
            }
        }
    }
    if tasks.is_empty() {
        return Err("no task files given".into());
    }
    Ok(tasks)
}

fn render_verdict(out: &mut String, label: &str, v: &SetVerdict, tasks: &[HeteroDagTask]) {
    let _ = writeln!(
        out,
        "\n{label}: {}",
        if v.is_schedulable() {
            "SCHEDULABLE"
        } else {
            "not schedulable"
        }
    );
    for tv in &v.per_task {
        let bound = tv
            .response_bound
            .as_ref()
            .map_or("exceeds deadline".to_owned(), |r| {
                format!("{:.2}", r.to_f64())
            });
        let _ = writeln!(
            out,
            "  task {} (T = {}, D = {}): R = {}",
            tv.task,
            tasks[tv.task].period(),
            tv.deadline,
            bound
        );
    }
}

fn sched_cmd(args: &[String]) -> Result<String, String> {
    let mut tasks = load_task_files(args)?;
    sort_deadline_monotonic(&mut tasks);
    let m = single_core_count(args)?;
    let device = if has_flag(args, "--shared-device") {
        DeviceModel::SharedFifo
    } else {
        DeviceModel::DedicatedPerTask
    };
    let het = AnalysisModel::Heterogeneous(device);
    let mut out = format!(
        "{} tasks (deadline-monotonic order), m = {m} host cores, device: {}\n",
        tasks.len(),
        match device {
            DeviceModel::DedicatedPerTask => "dedicated per task",
            DeviceModel::SharedFifo => "one shared FIFO device",
        }
    );
    if has_flag(args, "--edf") {
        let hom = gedf_test(&tasks, m, AnalysisModel::Homogeneous).map_err(|e| e.to_string())?;
        let hv = gedf_test(&tasks, m, het).map_err(|e| e.to_string())?;
        render_verdict(&mut out, "global EDF, homogeneous model", &hom, &tasks);
        render_verdict(&mut out, "global EDF, heterogeneous model", &hv, &tasks);
    } else {
        let hom = gfp_test(&tasks, m, AnalysisModel::Homogeneous).map_err(|e| e.to_string())?;
        let hv = gfp_test(&tasks, m, het).map_err(|e| e.to_string())?;
        render_verdict(&mut out, "global FP (DM), homogeneous model", &hom, &tasks);
        render_verdict(&mut out, "global FP (DM), heterogeneous model", &hv, &tasks);
    }
    Ok(out)
}

fn baselines_cmd(args: &[String]) -> Result<String, String> {
    let (task, off) = load_task(args)?;
    if off.is_none() {
        return Err("task file has no `offload` line; baselines need one".into());
    }
    let mut out = String::from(
        "  m   oblivious    barrier     R_het~   naive(!)   <- naive is UNSOUND (paper Fig. 1(c))\n",
    );
    for m in core_list(args)? {
        let c = BaselineComparison::compute(&task, m).map_err(|e| e.to_string())?;
        let _ = writeln!(
            out,
            "{m:>3}  {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            c.oblivious.to_f64(),
            c.phase_barrier.to_f64(),
            c.r_het_tight.to_f64(),
            c.naive_unsound.to_f64(),
        );
    }
    Ok(out)
}

fn cond_cmd(args: &[String]) -> Result<String, String> {
    let path = args
        .iter()
        .enumerate()
        .find(|(i, a)| {
            !a.starts_with('-')
                && !a.chars().all(|c| c.is_ascii_digit() || c == ',')
                && (*i == 0 || !matches!(args[*i - 1].as_str(), "-m" | "--offload"))
        })
        .map(|(_, a)| a)
        .ok_or("missing expression file argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let expr = hetrta_cond::parse_expr(&text).map_err(|e| format!("{path}:{e}"))?;
    let mut out = format!(
        "expression: {} leaves, {} realizations, W* = {}, len* = {}\n\n",
        expr.leaf_count(),
        expr.realization_count(),
        expr.worst_case_workload(),
        expr.worst_case_length()
    );
    let offload = flag_value(args, "--offload");
    let het_task = match offload {
        Some(label) => Some(
            hetrta_cond::HetCondTask::new(
                expr.clone(),
                label,
                Ticks::new(u64::MAX / 4),
                Ticks::new(u64::MAX / 4),
            )
            .map_err(|e| e.to_string())?,
        ),
        None => None,
    };
    let _ = writeln!(
        out,
        "  m  flatten-all  cond-aware  per-realization{}",
        if het_task.is_some() {
            "  het (offloaded)"
        } else {
            ""
        }
    );
    for m in core_list(args)? {
        let flat = hetrta_cond::r_parallel_flattening(&expr, m).map_err(|e| e.to_string())?;
        let aware = hetrta_cond::r_cond(&expr, m).map_err(|e| e.to_string())?;
        let exact = match hetrta_cond::r_cond_exact(&expr, m, 4096) {
            Ok(v) => format!("{:.2}", v.to_f64()),
            Err(hetrta_cond::CondError::TooManyRealizations { .. }) => "-".to_owned(),
            Err(e) => return Err(e.to_string()),
        };
        let het = match &het_task {
            Some(t) => match t.r_het_cond(m, 4096) {
                Ok(v) => format!("  {:>14.2}", v.to_f64()),
                Err(hetrta_cond::CondError::TooManyRealizations { .. }) => "  -".to_owned(),
                Err(e) => return Err(e.to_string()),
            },
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "{m:>3}  {:>11.2} {:>11.2}  {:>15}{het}",
            flat.to_f64(),
            aware.to_f64(),
            exact,
        );
    }
    Ok(out)
}

fn generate_cmd(args: &[String]) -> Result<String, String> {
    let params = if has_flag(args, "--large") {
        NfjParams::large_tasks()
    } else {
        NfjParams::small_tasks()
    };
    let seed = match flag_value(args, "--seed") {
        None => 0,
        Some(s) => s
            .parse::<u64>()
            .map_err(|_| format!("invalid seed `{s}`"))?,
    };
    let sizing = match flag_value(args, "--fraction") {
        None => CoffSizing::Generated,
        Some(f) => {
            let f = f
                .parse::<f64>()
                .map_err(|_| format!("invalid fraction `{f}`"))?;
            CoffSizing::VolumeFraction(f)
        }
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let dag = generate_nfj(&params, &mut rng).map_err(|e| e.to_string())?;
    if dag.node_count() < 3 {
        return Err("generated graph too small for an interior offload; try another --seed".into());
    }
    let task = make_hetero_task(dag, OffloadSelection::AnyInterior, sizing, &mut rng)
        .map_err(|e| e.to_string())?;
    Ok(render_task(&task))
}

fn parse_list<T: std::str::FromStr>(spec: &str, what: &str) -> Result<Vec<T>, String> {
    spec.split(',')
        .map(|s| {
            s.trim()
                .parse::<T>()
                .map_err(|_| format!("invalid {what} `{s}`"))
        })
        .collect()
}

/// `hetrta engine sweep …` — run a batch sweep on the work-stealing engine
/// and report per-cell results plus engine statistics (cache hit/miss,
/// per-worker job counts).
fn engine_cmd(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("sweep") => {}
        Some(other) => return Err(format!("unknown engine subcommand `{other}`")),
        None => return Err("missing engine subcommand (try `engine sweep`)".into()),
    }
    let args = &args[1..];

    let threads = match flag_value(args, "--threads") {
        None => 0,
        Some(s) => s
            .parse::<usize>()
            .map_err(|_| format!("invalid thread count `{s}`"))?,
    };
    let cores = match flag_value(args, "--cores") {
        None => vec![2, 8],
        Some(spec) => parse_list(spec, "core count")?,
    };
    let per_point = match flag_value(args, "--per-point") {
        None => 20,
        Some(s) => s
            .parse::<usize>()
            .map_err(|_| format!("invalid per-point count `{s}`"))?,
    };
    let seeds = match flag_value(args, "--seed") {
        None => vec![0xDAC_2018],
        Some(spec) => parse_list(spec, "seed")?,
    };
    let preset = match flag_value(args, "--preset") {
        None | Some("small") => GeneratorPreset::Small,
        Some("large") => GeneratorPreset::Large,
        Some("paper") => GeneratorPreset::LargePaper,
        Some(other) => return Err(format!("unknown preset `{other}`")),
    };
    let analyses = match flag_value(args, "--analyses") {
        None => AnalysisSelection::het_only(),
        Some(list) => AnalysisSelection::parse(list)?,
    };
    if flag_value(args, "--fractions").is_some() && flag_value(args, "--utils").is_some() {
        return Err("choose either --fractions or --utils, not both".into());
    }
    if flag_value(args, "--utils").is_some() {
        if flag_value(args, "--analyses").is_some() {
            return Err("--analyses applies to fraction sweeps; utilization sweeps \
                        always run the six acceptance tests"
                .into());
        }
        if flag_value(args, "--preset").is_some() {
            return Err("--preset applies to fraction sweeps; utilization sweeps \
                        use the small task-set template"
                .into());
        }
    } else if flag_value(args, "--n-tasks").is_some() {
        return Err("--n-tasks applies to utilization sweeps (--utils)".into());
    }

    let spec = if let Some(utils) = flag_value(args, "--utils") {
        let n_tasks = match flag_value(args, "--n-tasks") {
            None => 4,
            Some(s) => s
                .parse::<usize>()
                .map_err(|_| format!("invalid task count `{s}`"))?,
        };
        SweepSpec::acceptance(
            hetrta_sched::taskset::TaskSetParams::small(n_tasks, 1.0)
                .with_offload_fraction(0.2, 0.45),
            cores,
            parse_list(utils, "utilization")?,
            n_tasks,
            per_point,
            seeds[0],
        )
        .with_seeds(seeds)
    } else {
        let fractions = match flag_value(args, "--fractions") {
            None => vec![0.05, 0.10, 0.20, 0.30, 0.50],
            Some(spec) => parse_list(spec, "fraction")?,
        };
        SweepSpec::fractions(preset, cores, fractions, per_point, seeds[0])
            .with_seeds(seeds)
            .with_analyses(analyses)
    };

    let engine = Engine::new(threads);
    let out = engine.run(&spec).map_err(|e| e.to_string())?;

    let mut text = if has_flag(args, "--csv") {
        render_cells_csv(&out.aggregate.cells)
    } else {
        render_cells_table(&out.aggregate.cells)
    };
    text.push('\n');
    text.push_str(&out.stats.render());
    Ok(text)
}

fn render_cells_table(cells: &[hetrta_engine::CellSummary]) -> String {
    let is_set = matches!(cells.first().map(|c| &c.kind), Some(CellKind::Set(_)));
    let mut out = String::new();
    if is_set {
        let _ = writeln!(
            out,
            "  m   U/m  {}",
            TestKind::ALL.map(|t| format!("{:>9}", t.label())).join(" ")
        );
        for cell in cells {
            let CellKind::Set(s) = &cell.kind else {
                continue;
            };
            let ratios = TestKind::ALL
                .map(|t| format!("{:>8.1}%", s.ratio(t, cell.samples) * 100.0))
                .join(" ");
            let _ = writeln!(out, "{:>3}  {:>4.2}  {ratios}", cell.m, cell.grid_value);
        }
    } else {
        let _ = writeln!(
            out,
            "  m  C_off/vol        s1      s2.1      s2.2  mean-impr   max-impr  sched(het)"
        );
        for cell in cells {
            let CellKind::Task(t) = &cell.kind else {
                continue;
            };
            let (s1, s21, s22) = t.scenario_shares(cell.samples);
            let _ = writeln!(
                out,
                "{:>3}  {:>8.2}%  {:>7.1}%  {:>7.1}%  {:>7.1}%  {:>+8.2}%  {:>+8.2}%  {:>6}/{}",
                cell.m,
                cell.grid_value * 100.0,
                s1 * 100.0,
                s21 * 100.0,
                s22 * 100.0,
                t.mean_improvement,
                t.max_improvement,
                t.schedulable_het,
                cell.samples,
            );
        }
    }
    out
}

fn render_cells_csv(cells: &[hetrta_engine::CellSummary]) -> String {
    let is_set = matches!(cells.first().map(|c| &c.kind), Some(CellKind::Set(_)));
    let mut out = String::new();
    if is_set {
        let labels = TestKind::ALL.map(|t| t.label().to_owned()).join(",");
        let _ = writeln!(out, "m,normalized_util,samples,{labels}");
        for cell in cells {
            let CellKind::Set(s) = &cell.kind else {
                continue;
            };
            let ratios = TestKind::ALL
                .map(|t| format!("{:.6}", s.ratio(t, cell.samples)))
                .join(",");
            let _ = writeln!(
                out,
                "{},{},{},{ratios}",
                cell.m, cell.grid_value, cell.samples
            );
        }
    } else {
        let _ = writeln!(
            out,
            "m,fraction,samples,s1,s21,s22,mean_improvement,max_improvement,\
             schedulable_het,schedulable_hom,mean_r_het,mean_r_hom,\
             mean_sim_makespan,exact_solved,mean_exact_makespan"
        );
        let opt = |v: Option<f64>| v.map_or(String::new(), |x| format!("{x:.6}"));
        for cell in cells {
            let CellKind::Task(t) = &cell.kind else {
                continue;
            };
            let (s1, s21, s22) = t.scenario_shares(cell.samples);
            let _ = writeln!(
                out,
                "{},{},{},{s1:.6},{s21:.6},{s22:.6},{:.6},{:.6},{},{},{:.6},{:.6},{},{},{}",
                cell.m,
                cell.grid_value,
                cell.samples,
                t.mean_improvement,
                t.max_improvement,
                t.schedulable_het,
                t.schedulable_hom,
                t.mean_r_het,
                t.mean_r_hom,
                opt(t.mean_sim_makespan),
                t.exact_solved,
                opt(t.mean_exact_makespan),
            );
        }
    }
    out
}

fn example_file() -> String {
    let mut b = hetrta_dag::DagBuilder::new();
    let v1 = b.node("v1", Ticks::new(1));
    let v2 = b.node("v2", Ticks::new(4));
    let v3 = b.node("v3", Ticks::new(6));
    let v4 = b.node("v4", Ticks::new(2));
    let v5 = b.node("v5", Ticks::new(1));
    let voff = b.node("v_off", Ticks::new(4));
    b.edges([
        (v1, v2),
        (v1, v3),
        (v1, v4),
        (v4, voff),
        (v2, v5),
        (v3, v5),
        (voff, v5),
    ])
    .expect("static edges");
    let task = HeteroDagTask::new(
        b.build().expect("static graph"),
        voff,
        Ticks::new(50),
        Ticks::new(50),
    )
    .expect("static task");
    render_task(&task)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    fn write_example() -> tempfile::TempPath {
        let text = example_file();
        let mut f = tempfile::Builder::new().suffix(".hdag").tempfile().unwrap();
        std::io::Write::write_all(&mut f, text.as_bytes()).unwrap();
        f.into_temp_path()
    }

    // tempfile is not a dependency; emulate with std.
    mod tempfile {
        use std::path::PathBuf;

        pub struct TempPath(PathBuf);
        impl TempPath {
            pub fn to_str(&self) -> &str {
                self.0.to_str().unwrap()
            }
        }
        impl Drop for TempPath {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.0);
            }
        }

        pub struct Builder {
            suffix: String,
        }
        pub struct NamedFile {
            pub file: std::fs::File,
            path: PathBuf,
        }
        impl Builder {
            pub fn new() -> Self {
                Builder {
                    suffix: String::new(),
                }
            }
            pub fn suffix(mut self, s: &str) -> Self {
                self.suffix = s.to_owned();
                self
            }
            pub fn tempfile(self) -> std::io::Result<NamedFile> {
                let path = std::env::temp_dir().join(format!(
                    "hetrta-test-{}-{}{}",
                    std::process::id(),
                    std::time::SystemTime::now()
                        .duration_since(std::time::UNIX_EPOCH)
                        .unwrap()
                        .as_nanos(),
                    self.suffix
                ));
                Ok(NamedFile {
                    file: std::fs::File::create(&path)?,
                    path,
                })
            }
        }
        impl NamedFile {
            pub fn into_temp_path(self) -> TempPath {
                TempPath(self.path)
            }
        }
        impl std::io::Write for NamedFile {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.file.write(buf)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                self.file.flush()
            }
        }
    }

    #[test]
    fn example_parses_and_analyzes() {
        let path = write_example();
        let out = run(&args(&["analyze", path.to_str(), "-m", "2"])).unwrap();
        assert!(out.contains("R_hom"));
        assert!(out.contains("13.00"));
        assert!(out.contains("12.00"));
    }

    #[test]
    fn transform_outputs_task_file_and_dot() {
        let path = write_example();
        let out = run(&args(&["transform", path.to_str()])).unwrap();
        assert!(out.contains("node v_sync 0"));
        assert!(out.contains("len(G') = 10"));
        let dot = run(&args(&["transform", path.to_str(), "--dot"])).unwrap();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("cluster_par"));
    }

    #[test]
    fn simulate_reports_makespan() {
        let path = write_example();
        let out = run(&args(&["simulate", path.to_str(), "-m", "2"])).unwrap();
        assert!(out.contains("makespan = 12"));
        let gantt = run(&args(&["simulate", path.to_str(), "-m", "2", "--gantt"])).unwrap();
        assert!(gantt.contains("core 0"));
        let cp = run(&args(&[
            "simulate",
            path.to_str(),
            "-m",
            "2",
            "--policy",
            "cp",
        ]))
        .unwrap();
        assert!(cp.contains("makespan = 8"));
    }

    #[test]
    fn solve_finds_optimum() {
        let path = write_example();
        let out = run(&args(&["solve", path.to_str(), "-m", "2"])).unwrap();
        assert!(out.contains("minimum makespan"));
        assert!(out.contains(": 8 "));
        let lp = run(&args(&["solve", path.to_str(), "-m", "2", "--lp"])).unwrap();
        assert!(lp.contains("Minimize"));
    }

    #[test]
    fn generate_emits_parseable_file() {
        let out = run(&args(&["generate", "--seed", "7", "--fraction", "0.3"])).unwrap();
        let parsed = hetrta_dag::io::parse_task(&out).unwrap();
        assert!(parsed.task.offloaded().is_some());
    }

    #[test]
    fn engine_sweep_reports_cells_and_stats() {
        let out = run(&args(&[
            "engine",
            "sweep",
            "--threads",
            "2",
            "--cores",
            "2,4",
            "--per-point",
            "4",
            "--fractions",
            "0.1,0.3",
            "--seed",
            "9",
        ]))
        .unwrap();
        assert!(out.contains("C_off/vol"), "{out}");
        assert!(out.contains("result cache"), "{out}");
        assert!(out.contains("worker 0"), "{out}");
        assert!(out.contains("worker 1"), "{out}");
    }

    #[test]
    fn engine_sweep_single_thread_matches_parallel() {
        let sweep = |threads: &str| {
            run(&args(&[
                "engine",
                "sweep",
                "--threads",
                threads,
                "--cores",
                "2",
                "--per-point",
                "6",
                "--fractions",
                "0.2,0.4",
                "--seed",
                "11",
                "--csv",
            ]))
            .unwrap()
        };
        let cells = |text: String| {
            text.lines()
                .take_while(|l| !l.is_empty())
                .map(String::from)
                .collect::<Vec<_>>()
        };
        assert_eq!(cells(sweep("1")), cells(sweep("3")));
    }

    #[test]
    fn engine_sweep_acceptance_mode() {
        let out = run(&args(&[
            "engine",
            "sweep",
            "--threads",
            "2",
            "--cores",
            "2",
            "--per-point",
            "4",
            "--utils",
            "0.2,0.8",
            "--n-tasks",
            "3",
            "--seed",
            "5",
        ]))
        .unwrap();
        assert!(out.contains("GFP-hom"), "{out}");
        assert!(out.contains("U/m"), "{out}");
        assert!(out.contains("engine: 8 jobs"), "{out}");
    }

    #[test]
    fn engine_sweep_rejects_bad_flags() {
        assert!(run(&args(&["engine"])).unwrap_err().contains("subcommand"));
        assert!(run(&args(&["engine", "frob"]))
            .unwrap_err()
            .contains("unknown engine"));
        assert!(run(&args(&["engine", "sweep", "--threads", "x"]))
            .unwrap_err()
            .contains("invalid thread count"));
        assert!(run(&args(&["engine", "sweep", "--analyses", "zig"]))
            .unwrap_err()
            .contains("unknown analysis"));
        assert!(run(&args(&[
            "engine",
            "sweep",
            "--fractions",
            "0.1",
            "--utils",
            "0.5"
        ]))
        .unwrap_err()
        .contains("not both"));
        assert!(run(&args(&["engine", "sweep", "--preset", "giant"]))
            .unwrap_err()
            .contains("unknown preset"));
        // Flags that would otherwise be silently ignored are rejected.
        assert!(run(&args(&[
            "engine",
            "sweep",
            "--utils",
            "0.5",
            "--analyses",
            "hom"
        ]))
        .unwrap_err()
        .contains("fraction sweeps"));
        assert!(run(&args(&[
            "engine", "sweep", "--utils", "0.5", "--preset", "large"
        ]))
        .unwrap_err()
        .contains("fraction sweeps"));
        assert!(run(&args(&["engine", "sweep", "--n-tasks", "3"]))
            .unwrap_err()
            .contains("utilization sweeps"));
    }

    #[test]
    fn engine_sweep_without_het_has_no_infinite_improvement() {
        let out = run(&args(&[
            "engine",
            "sweep",
            "--threads",
            "1",
            "--cores",
            "2",
            "--fractions",
            "0.2",
            "--per-point",
            "2",
            "--analyses",
            "sim",
            "--csv",
        ]))
        .unwrap();
        assert!(!out.contains("inf"), "{out}");
        assert!(out.contains("mean_sim_makespan"), "{out}");
    }

    #[test]
    fn example_command_roundtrips() {
        let out = run(&args(&["example"])).unwrap();
        let parsed = hetrta_dag::io::parse_task(&out).unwrap();
        assert_eq!(parsed.task.dag().node_count(), 6);
    }

    #[test]
    fn sched_reports_both_models() {
        let path = write_example();
        let p = path.to_str().to_owned();
        let out = run(&args(&["sched", &p, &p, "-m", "2"])).unwrap();
        assert!(out.contains("2 tasks"));
        assert!(out.contains("homogeneous model"));
        assert!(out.contains("heterogeneous model"));
        assert!(out.contains("task 0"));
        let edf = run(&args(&["sched", &p, "-m", "4", "--edf"])).unwrap();
        assert!(edf.contains("global EDF"));
        let shared = run(&args(&["sched", &p, &p, "-m", "2", "--shared-device"])).unwrap();
        assert!(shared.contains("shared FIFO"));
    }

    #[test]
    fn baselines_prints_all_bounds() {
        let path = write_example();
        let out = run(&args(&["baselines", path.to_str(), "-m", "2"])).unwrap();
        assert!(out.contains("oblivious"));
        // Figure 1 numbers: oblivious 13, naive 11, R_het~ 12.
        assert!(out.contains("13.00"));
        assert!(out.contains("11.00"));
        assert!(out.contains("12.00"));
    }

    fn write_hcond() -> tempfile::TempPath {
        let text = "pre(4); if { par { kernel(26) | edge(11) | flow(9) } | soft(30) }; fuse(3)";
        let mut f = tempfile::Builder::new()
            .suffix(".hcond")
            .tempfile()
            .unwrap();
        std::io::Write::write_all(&mut f, text.as_bytes()).unwrap();
        f.into_temp_path()
    }

    #[test]
    fn cond_reports_bounds() {
        let path = write_hcond();
        let out = run(&args(&["cond", path.to_str(), "-m", "2"])).unwrap();
        assert!(out.contains("2 realizations"));
        assert!(out.contains("W* = 53"));
        assert!(out.contains("cond-aware"));
        let het = run(&args(&[
            "cond",
            path.to_str(),
            "-m",
            "2",
            "--offload",
            "kernel",
        ]))
        .unwrap();
        assert!(het.contains("het (offloaded)"));
        assert!(het.contains("37.00"));
    }

    #[test]
    fn cond_errors_are_positioned() {
        let mut f = tempfile::Builder::new()
            .suffix(".hcond")
            .tempfile()
            .unwrap();
        std::io::Write::write_all(&mut f, b"a(1);\nb(?)").unwrap();
        let path = f.into_temp_path();
        let err = run(&args(&["cond", path.to_str()])).unwrap_err();
        assert!(err.contains(":2:"), "{err}");
        let path2 = write_hcond();
        let err = run(&args(&["cond", path2.to_str(), "--offload", "nope"])).unwrap_err();
        assert!(err.contains("nope"));
    }

    #[test]
    fn sched_rejects_homogeneous_and_missing_files() {
        assert!(run(&args(&["sched", "-m", "2"]))
            .unwrap_err()
            .contains("no task files"));
        assert!(run(&args(&["baselines"]))
            .unwrap_err()
            .contains("missing task file"));
    }

    #[test]
    fn errors_are_informative() {
        assert!(run(&args(&["frobnicate"]))
            .unwrap_err()
            .contains("unknown command"));
        assert!(run(&[]).unwrap_err().contains("missing command"));
        assert!(run(&args(&["analyze"]))
            .unwrap_err()
            .contains("missing task file"));
        assert!(run(&args(&["analyze", "/nonexistent/x.hdag"]))
            .unwrap_err()
            .contains("cannot read"));
        let path = write_example();
        assert!(
            run(&args(&["simulate", path.to_str(), "--policy", "zigzag"]))
                .unwrap_err()
                .contains("unknown policy")
        );
        assert!(run(&args(&["analyze", path.to_str(), "-m", "x"]))
            .unwrap_err()
            .contains("invalid core count"));
    }
}
