//! Command implementations (pure: strings in, strings out, testable).
//!
//! Every subcommand is declared once in [`COMMANDS`] — name, positional
//! synopsis, help line, flags, handler — and dispatch, usage text,
//! per-command `--help` screens, and unknown-flag errors are generated
//! from that table by [`crate::spec`]. The `engine sweep` command resolves
//! `--analyses` against the [`AnalysisRegistry`] of `hetrta-api`, so every
//! registry key (including custom registrations) is a valid selection.

use std::fmt::Write as _;

use hetrta_core::federated::{minimum_cores, AnalysisKind};
use hetrta_core::{transform, HeterogeneousAnalysis};
use hetrta_dag::dot::{to_dot, DotOptions};
use hetrta_dag::io::{parse_task, render_task, TaskKind};
use hetrta_dag::{HeteroDagTask, NodeId, Ticks};
use hetrta_engine::{
    AnalysisSelection, CellKind, EngineBuilder, GeneratorPreset, SweepEvent, SweepSpec, TestKind,
    TraceRecorder,
};
use hetrta_exact::{lp, solve, SolverConfig};
use hetrta_gen::offload::{make_hetero_task, CoffSizing, OffloadSelection};
use hetrta_gen::{generate_nfj, NfjParams};
use hetrta_sched::model::{AnalysisModel, DeviceModel};
use hetrta_sched::taskset::sort_deadline_monotonic;
use hetrta_sched::{gedf_test, gfp_test, SetVerdict};
use hetrta_sim::policy::{BreadthFirst, CriticalPathFirst, DepthFirst, Policy, RandomTieBreak};
use hetrta_sim::{simulate, trace, Platform};
use hetrta_suspend::BaselineComparison;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::spec::{parse_list, CommandSpec, FlagSpec, ParsedArgs};

const M_FLAG: FlagSpec = FlagSpec {
    name: "-m",
    value: Some("CORES[,CORES...]"),
    help: "host core counts (default 2,4,8,16; single-platform commands use the first)",
    ..FlagSpec::DEFAULT
};

const ADDR_FLAG: FlagSpec = FlagSpec {
    name: "--addr",
    value: Some("HOST:PORT"),
    help: "daemon address (default 127.0.0.1:7917)",
    ..FlagSpec::DEFAULT
};

const CSV_FLAG: FlagSpec = FlagSpec {
    name: "--csv",
    value: None,
    help: "machine-readable CSV instead of the table",
    ..FlagSpec::DEFAULT
};

/// The sweep-shape flags (grid, preset, analyses, per-analysis knobs)
/// shared by `engine sweep`, `submit`, and `loadgen`: one source of
/// truth, parsed by [`build_sweep_spec`], so a sweep described at the
/// shell runs identically on a local engine or against a daemon.
/// `pre`/`post` splice each verb's own flags around the shared block.
macro_rules! sweep_shape_flags {
    (pre: [$($pre:expr),* $(,)?], post: [$($post:expr),* $(,)?]) => {
        &[
            $($pre,)*
            FlagSpec {
                name: "--cores",
                value: Some("A,B,..."),
                help: "host core counts to sweep (default 2,8)",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--per-point",
                value: Some("N"),
                help: "jobs per sweep point (default 20)",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--seed",
                value: Some("S[,S...]"),
                help: "replication base seeds",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--fractions",
                value: Some("F,..."),
                help: "offload-fraction grid (the default sweep shape)",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--utils",
                value: Some("U,..."),
                help: "normalized-utilization grid (task-set acceptance tests)",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--cond-shares",
                value: Some("P,..."),
                help: "conditional-share grid (conditional-DAG bounds)",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--n-tasks",
                value: Some("N"),
                help: "tasks per generated set (utilization sweeps, default 4)",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--analyses",
                value: Some("KEY[,KEY...]"),
                help: "registry keys to run per job",
                dynamic_help: Some(analyses_help),
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--preset",
                value: Some("small|large|paper|fig8"),
                help: "DAG generator preset for fraction sweeps \
                       (fig8 = the benchmark harness's quick Figure 8 sweep)",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--n-max",
                value: Some("N"),
                help: "large-graph tier: sweep NFJ DAGs of up to N nodes \
                       (accepted from N/4 up; builder-first generation keeps this O(V+E))",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--sim-transformed",
                value: None,
                help: "sim also measures the transformed task (Figure 6 comparison)",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--exact-budget",
                value: Some("N"),
                help: "node budget for the exact solver",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--explore-seeds",
                value: Some("N"),
                help: "worst-case exploration seeds for suspend (default 0 = off)",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--realization-cap",
                value: Some("N"),
                help: "enumeration cap for cond (default 4096)",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--sample-budget",
                value: Some("K"),
                help: "simulation samples per job for sampled (default 64)",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--sample-seed",
                value: Some("S"),
                help: "base seed for sampled draws (default 0)",
                ..FlagSpec::DEFAULT
            },
            $($post,)*
        ]
    };
}

/// The declarative command table: dispatch, `--help`, usage, and flag
/// validation are all generated from these rows.
pub const COMMANDS: &[CommandSpec] = &[
    CommandSpec {
        name: "analyze",
        args: "<task.hdag>",
        help: "R_hom/R_het bounds, scenario and schedulability per core count",
        flags: &[M_FLAG],
        handler: analyze,
    },
    CommandSpec {
        name: "transform",
        args: "<task.hdag>",
        help: "Algorithm 1 transformation (task file or Graphviz output)",
        flags: &[FlagSpec {
            name: "--dot",
            value: None,
            help: "emit Graphviz instead of the task format",
            ..FlagSpec::DEFAULT
        }],
        handler: transform_cmd,
    },
    CommandSpec {
        name: "simulate",
        args: "<task.hdag>",
        help: "work-conserving execution simulation",
        flags: &[
            M_FLAG,
            FlagSpec {
                name: "--policy",
                value: Some("bfs|dfs|cp|random:SEED"),
                help: "ready-queue policy (default bfs)",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--gantt",
                value: None,
                help: "print an ASCII Gantt chart of the schedule",
                ..FlagSpec::DEFAULT
            },
        ],
        handler: simulate_cmd,
    },
    CommandSpec {
        name: "solve",
        args: "<task.hdag>",
        help: "exact minimum makespan (branch-and-bound, or the ILP in LP format)",
        flags: &[
            M_FLAG,
            FlagSpec {
                name: "--lp",
                value: None,
                help: "emit the CPLEX-style LP formulation instead of solving",
                ..FlagSpec::DEFAULT
            },
        ],
        handler: solve_cmd,
    },
    CommandSpec {
        name: "sched",
        args: "<task.hdag>...",
        help: "multi-task global schedulability (GFP or GEDF)",
        flags: &[
            M_FLAG,
            FlagSpec {
                name: "--edf",
                value: None,
                help: "global EDF instead of fixed priorities",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--shared-device",
                value: None,
                help: "one shared FIFO accelerator instead of one per task",
                ..FlagSpec::DEFAULT
            },
        ],
        handler: sched_cmd,
    },
    CommandSpec {
        name: "baselines",
        args: "<task.hdag>",
        help: "self-suspending baselines vs Theorem 1 (incl. the unsound naive discount)",
        flags: &[M_FLAG],
        handler: baselines_cmd,
    },
    CommandSpec {
        name: "cond",
        args: "<expr.hcond>",
        help: "conditional-DAG bounds (flatten-all, cond-aware, exact, offloaded)",
        flags: &[
            M_FLAG,
            FlagSpec {
                name: "--offload",
                value: Some("LABEL"),
                help: "also bound the expression with LABEL offloaded",
                ..FlagSpec::DEFAULT
            },
        ],
        handler: cond_cmd,
    },
    CommandSpec {
        name: "generate",
        args: "",
        help: "generate a random heterogeneous task file",
        flags: &[
            FlagSpec {
                name: "--small",
                value: None,
                help: "small-tasks preset (default)",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--large",
                value: None,
                help: "large-tasks preset",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--seed",
                value: Some("N"),
                help: "RNG seed (default 0)",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--fraction",
                value: Some("F"),
                help: "target C_off/vol instead of a generated WCET",
                ..FlagSpec::DEFAULT
            },
        ],
        handler: generate_cmd,
    },
    CommandSpec {
        name: "engine sweep",
        args: "",
        help: "batch sweep on the work-stealing engine (registry-driven analyses)",
        flags: sweep_shape_flags!(
            pre: [
                FlagSpec {
                    name: "--threads",
                    value: Some("N"),
                    help: "worker threads (default: all cores)",
                    ..FlagSpec::DEFAULT
                },
                FlagSpec {
                    name: "--workers",
                    value: Some("N"),
                    help: "fan the sweep across N worker processes (each with --threads \
                           threads, all sharing --cache-dir); bitwise the single-process \
                           aggregate",
                    conflicts: &["--shard", "--progress", "--metrics"],
                    ..FlagSpec::DEFAULT
                },
                FlagSpec {
                    name: "--shard",
                    value: Some("I/K"),
                    help: "run only the I-th of K deterministic shards in this process \
                           (zero-based; merge all K partial aggregates to reassemble the \
                           full sweep)",
                    conflicts: &["--workers", "--progress"],
                    ..FlagSpec::DEFAULT
                },
            ],
            post: [
                CSV_FLAG,
                FlagSpec {
                    name: "--cache-dir",
                    value: Some("DIR"),
                    help: "disk-persistent result cache: later sweeps (any process) replay from DIR",
                    ..FlagSpec::DEFAULT
                },
                FlagSpec {
                    name: "--progress",
                    value: None,
                    help: "stream live progress (completed jobs, cache hits) to stderr while sweeping",
                    ..FlagSpec::DEFAULT
                },
                FlagSpec {
                    name: "--journal",
                    value: Some("DIR"),
                    help: "write a durable sweep journal to DIR: every finished job is \
                           recorded (checksummed, atomically) before it aggregates, so a \
                           killed sweep can be resumed",
                    conflicts: &["--shard"],
                    ..FlagSpec::DEFAULT
                },
                FlagSpec {
                    name: "--resume",
                    value: None,
                    help: "replay finished jobs from the --journal DIR of an interrupted \
                           run and execute only the remainder (the final aggregate is \
                           bitwise the uninterrupted one)",
                    conflicts: &["--shard"],
                    ..FlagSpec::DEFAULT
                },
                FlagSpec {
                    name: "--chaos",
                    value: Some("SEED"),
                    help: "arm the deterministic fault-injection plane with SEED (decimal \
                           or 0x hex): seeded disk/wire/process faults, same seed same \
                           fault sequence; the fault report appends to the output",
                    ..FlagSpec::DEFAULT
                },
                FlagSpec {
                    name: "--trace",
                    value: Some("FILE"),
                    help: "record structured spans and write a Chrome trace-event JSON \
                           (load in Perfetto or chrome://tracing)",
                    ..FlagSpec::DEFAULT
                },
                FlagSpec {
                    name: "--metrics",
                    value: None,
                    help: "append the engine metrics table (cache counters, pool totals, \
                           per-analysis latency quantiles) to the output",
                    ..FlagSpec::DEFAULT
                },
            ]
        ),
        handler: engine_sweep_cmd,
    },
    CommandSpec {
        name: "serve",
        args: "",
        help: "multi-tenant analysis daemon: many clients, one shared engine",
        flags: &[
            FlagSpec {
                name: "--addr",
                value: Some("HOST:PORT"),
                help: "listen address (default 127.0.0.1:7917; port 0 picks a free one)",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--threads",
                value: Some("N"),
                help: "worker threads of the shared engine pool (default: all cores)",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--cache-dir",
                value: Some("DIR"),
                help: "disk-persistent result cache shared by every tenant",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--max-active",
                value: Some("N"),
                help: "sweeps running concurrently on the engine (default 2)",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--max-pending",
                value: Some("N"),
                help: "bounded admission queue; past it clients get a typed Busy (default 64)",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--retry-after-ms",
                value: Some("MS"),
                help: "backoff hint carried in Busy replies (default 200)",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--partial-every",
                value: Some("N"),
                help: "stream a partial aggregate every N completed jobs (default 8)",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--workers",
                value: Some("N"),
                help: "fan each granted sweep across N worker processes (the \
                       hetrta-dist fleet) instead of the in-process engine",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--journal-dir",
                value: Some("DIR"),
                help: "journal every in-process sweep under DIR (one subdirectory per \
                       spec hash); a restarted daemon resumes interrupted sweeps on \
                       resubmit instead of recomputing finished jobs",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--chaos",
                value: Some("SEED"),
                help: "arm the shared engine's deterministic fault-injection plane \
                       with SEED (fault counters land in the daemon metrics)",
                ..FlagSpec::DEFAULT
            },
        ],
        handler: serve_cmd,
    },
    CommandSpec {
        name: "dist worker",
        args: "",
        help: "one fleet worker: connect to a coordinator and compute assigned shards",
        flags: &[
            FlagSpec {
                name: "--connect",
                value: Some("HOST:PORT"),
                help: "coordinator address (as printed by the spawning process)",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--worker",
                value: Some("N"),
                help: "this worker's fleet slot index (default 0)",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--threads",
                value: Some("N"),
                help: "engine threads of this worker (default: all cores)",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--cache-dir",
                value: Some("DIR"),
                help: "disk cache namespace shared with the rest of the fleet",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--heartbeat-ms",
                value: Some("MS"),
                help: "liveness heartbeat period (default 200)",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--chaos",
                value: Some("SEED"),
                help: "arm this worker's deterministic fault-injection plane with SEED \
                       (a coordinator running --chaos forwards a derived seed here)",
                ..FlagSpec::DEFAULT
            },
        ],
        handler: dist_worker_cmd,
    },
    CommandSpec {
        name: "submit",
        args: "",
        help: "run a sweep on a daemon, streaming progress (same flags as engine sweep)",
        flags: sweep_shape_flags!(
            pre: [
                ADDR_FLAG,
                FlagSpec {
                    name: "--tenant",
                    value: Some("NAME"),
                    help: "tenant to account and fair-queue the sweep under (default cli)",
                    ..FlagSpec::DEFAULT
                },
                FlagSpec {
                    name: "--stats",
                    value: None,
                    help: "print the daemon's metrics snapshot instead of submitting",
                    ..FlagSpec::DEFAULT
                },
                FlagSpec {
                    name: "--shutdown",
                    value: None,
                    help: "ask the daemon to drain in-flight sweeps and exit instead of submitting",
                    ..FlagSpec::DEFAULT
                },
            ],
            post: [CSV_FLAG]
        ),
        handler: submit_cmd,
    },
    CommandSpec {
        name: "loadgen",
        args: "",
        help: "drive a daemon to saturation, measuring sweeps/sec and p50/p99 latency",
        flags: sweep_shape_flags!(
            pre: [
                ADDR_FLAG,
                FlagSpec {
                    name: "--clients",
                    value: Some("N[,N...]"),
                    help: "concurrent-client ladder (default 1,8,64,256)",
                    ..FlagSpec::DEFAULT
                },
                FlagSpec {
                    name: "--sweeps",
                    value: Some("K"),
                    help: "sweeps each client completes per rung (default 4)",
                    ..FlagSpec::DEFAULT
                },
                FlagSpec {
                    name: "--json",
                    value: Some("PATH"),
                    help: "also write the report as JSON to PATH (the BENCH_6.json format)",
                    ..FlagSpec::DEFAULT
                },
                FlagSpec {
                    name: "--workers",
                    value: Some("N[,N...]"),
                    help: "fleet-scaling ladder instead of a daemon: run the sweep \
                           distributed at each worker count (1 engine thread per \
                           worker), cold then warm, recording per-worker job balance",
                    conflicts: &["--addr", "--clients", "--sweeps"],
                    ..FlagSpec::DEFAULT
                },
            ],
            post: []
        ),
        handler: loadgen_cmd,
    },
    CommandSpec {
        name: "cache gc",
        args: "",
        help: "bound a disk cache directory, sweeping oldest result entries first",
        flags: &[
            FlagSpec {
                name: "--cache-dir",
                value: Some("DIR"),
                help: "the cache directory (as passed to `engine sweep --cache-dir`)",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--max-bytes",
                value: Some("N"),
                help: "target size bound in bytes (identity memo entries are never deleted)",
                ..FlagSpec::DEFAULT
            },
        ],
        handler: cache_gc_cmd,
    },
    CommandSpec {
        name: "bench",
        args: "",
        help: "measure kernel ns/op and end-to-end sweep wall times",
        flags: &[
            FlagSpec {
                name: "--quick",
                help: "scaled-down inputs and iteration budgets (CI smoke mode)",
                ..FlagSpec::DEFAULT
            },
            FlagSpec {
                name: "--json",
                value: Some("PATH"),
                help: "also write the report as JSON to PATH (the BENCH_*.json format)",
                ..FlagSpec::DEFAULT
            },
        ],
        handler: bench_cmd,
    },
    CommandSpec {
        name: "example",
        args: "",
        help: "print the paper's Figure 1 task in the .hdag format",
        flags: &[],
        handler: |_| Ok(example_file()),
    },
];

fn cache_gc_cmd(args: &ParsedArgs) -> Result<String, String> {
    let dir = args
        .value_of("--cache-dir")
        .ok_or("missing --cache-dir DIR")?;
    let raw = args
        .value_of("--max-bytes")
        .ok_or("missing --max-bytes N")?;
    let max_bytes: u64 = raw
        .parse()
        .map_err(|_| format!("invalid byte count `{raw}`"))?;
    let cache = hetrta_engine::DiskCache::open(dir)?;
    let stats = cache.gc(max_bytes)?;
    Ok(format!(
        "cache gc: {} → scanned {} bytes, deleted {} result entries ({} bytes), {} bytes remain (bound {})\n",
        dir,
        stats.scanned_bytes,
        stats.deleted_entries,
        stats.deleted_bytes,
        stats.remaining_bytes,
        max_bytes,
    ))
}

fn bench_cmd(args: &ParsedArgs) -> Result<String, String> {
    let config = if args.has("--quick") {
        hetrta_bench::perf::PerfConfig::quick()
    } else {
        hetrta_bench::perf::PerfConfig::full()
    };
    let report = hetrta_bench::perf::run(&config);
    if let Some(path) = args.value_of("--json") {
        std::fs::write(path, report.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(report.render())
}

/// Usage text shown on errors (generated from the command table).
#[must_use]
pub fn usage() -> String {
    crate::spec::usage(COMMANDS)
}

/// Dispatches a command line (without the program name).
///
/// # Errors
///
/// Returns a human-readable message for any failure: unknown command,
/// malformed flags, unreadable file, parse error, analysis error.
pub fn run(args: &[String]) -> Result<String, String> {
    let Some(first) = args.first().map(String::as_str) else {
        return Err("missing command".into());
    };
    if matches!(first, "help" | "--help" | "-h") {
        let topic = args[1..].join(" ");
        if topic.is_empty() {
            return Ok(crate::spec::global_help(COMMANDS));
        }
        if let Some(command) = COMMANDS.iter().find(|c| c.name == topic) {
            return Ok(command.help_screen());
        }
        // A family name (`help engine`) with a single member resolves to
        // that member, matching the `engine --help` dispatch below.
        let family: Vec<&CommandSpec> = COMMANDS
            .iter()
            .filter(|c| {
                c.name
                    .strip_prefix(topic.as_str())
                    .is_some_and(|rest| rest.starts_with(' '))
            })
            .collect();
        if let [only] = family[..] {
            return Ok(only.help_screen());
        }
        return Err(format!("unknown command `{topic}`"));
    }

    // Two-word command families (`engine sweep`).
    let family: Vec<&CommandSpec> = COMMANDS
        .iter()
        .filter(|c| {
            c.name
                .strip_prefix(first)
                .is_some_and(|rest| rest.starts_with(' '))
        })
        .collect();
    let (command, rest) = if family.is_empty() {
        let command = COMMANDS
            .iter()
            .find(|c| c.name == first)
            .ok_or_else(|| format!("unknown command `{first}`"))?;
        (command, &args[1..])
    } else {
        let subcommands: Vec<&str> = family
            .iter()
            .map(|c| c.name.split_whitespace().nth(1).unwrap_or_default())
            .collect();
        match args.get(1).map(String::as_str) {
            None => {
                return Err(format!(
                    "missing {first} subcommand (try `{first} {}`)",
                    subcommands.join("`, `")
                ))
            }
            Some("--help" | "-h") if family.len() == 1 => {
                return Ok(family[0].help_screen());
            }
            Some(sub) => {
                let command = family
                    .iter()
                    .find(|c| c.name.split_whitespace().nth(1) == Some(sub))
                    .ok_or_else(|| format!("unknown {first} subcommand `{sub}`"))?;
                (*command, &args[2..])
            }
        }
    };

    if rest.iter().any(|a| a == "--help" || a == "-h") {
        return Ok(command.help_screen());
    }
    let parsed = ParsedArgs::parse(command, rest)?;
    (command.handler)(&parsed)
}

fn load_task(args: &ParsedArgs) -> Result<(HeteroDagTask, Option<NodeId>), String> {
    let path = args.first_positional("task file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let parsed = parse_task(&text).map_err(|e| format!("{path}: {e}"))?;
    match parsed.task {
        TaskKind::Heterogeneous(t) => {
            let off = t.offloaded();
            Ok((t, Some(off)))
        }
        TaskKind::Homogeneous(t) => {
            // Wrap as heterogeneous with a phantom offload for the shared
            // plumbing; commands that need v_off check `off` is Some.
            let period = t.period();
            let deadline = t.deadline();
            let dag = t.into_dag();
            let any = dag.node_ids().next().ok_or("empty graph")?;
            let task = HeteroDagTask::new(dag, any, period, deadline).map_err(|e| e.to_string())?;
            Ok((task, None))
        }
    }
}

fn core_list(args: &ParsedArgs) -> Result<Vec<u64>, String> {
    match args.value_of("-m") {
        None => Ok(vec![2, 4, 8, 16]),
        Some(spec) => parse_list(spec, "core count"),
    }
}

fn analyze(args: &ParsedArgs) -> Result<String, String> {
    let (task, off) = load_task(args)?;
    if off.is_none() {
        return Err("task file has no `offload` line; nothing heterogeneous to analyze".into());
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "task: n = {}, vol = {}, len = {}, C_off = {} ({:.1}% of vol), T = {}, D = {}",
        task.dag().node_count(),
        task.volume(),
        task.critical_path_length(),
        task.c_off(),
        task.offload_fraction().to_f64() * 100.0,
        task.period(),
        task.deadline(),
    );
    let _ = writeln!(
        out,
        "\n  m  R_hom(tau)  R_het(tau')  scenario  schedulable(het)  min cores (het)"
    );
    for m in core_list(args)? {
        let report = HeterogeneousAnalysis::run(&task, m).map_err(|e| e.to_string())?;
        let min = minimum_cores(&task, AnalysisKind::Heterogeneous, 128)
            .map_err(|e| e.to_string())?
            .map_or("-".to_owned(), |(c, _)| c.to_string());
        let _ = writeln!(
            out,
            "{m:>3}  {:>10.2}  {:>11.2}  {:>8}  {:>16}  {:>15}",
            report.r_hom_original().to_f64(),
            report.r_het().to_f64(),
            report.scenario().paper_label(),
            report.is_schedulable(),
            min,
        );
    }
    Ok(out)
}

fn transform_cmd(args: &ParsedArgs) -> Result<String, String> {
    let (task, off) = load_task(args)?;
    if off.is_none() {
        return Err("task file has no `offload` line; nothing to transform".into());
    }
    let t = transform(&task).map_err(|e| e.to_string())?;
    if args.has("--dot") {
        let mut opts = DotOptions::named("transformed");
        opts.offloaded = Some(task.offloaded());
        opts.sync = Some(t.sync_node());
        opts.highlight = Some(t.par_nodes().clone());
        Ok(to_dot(t.transformed(), &opts))
    } else {
        let out_task = t.as_task();
        let mut out = render_task(&out_task);
        let _ = writeln!(
            out,
            "# len(G') = {}, vol(G_par) = {}, len(G_par) = {}",
            t.len_transformed(),
            t.vol_g_par(),
            t.len_g_par()
        );
        Ok(out)
    }
}

fn make_policy(args: &ParsedArgs) -> Result<Box<dyn Policy>, String> {
    match args.value_of("--policy") {
        None | Some("bfs") => Ok(Box::new(BreadthFirst::new())),
        Some("dfs") => Ok(Box::new(DepthFirst::new())),
        Some("cp") => Ok(Box::new(CriticalPathFirst::new())),
        Some(spec) if spec.starts_with("random:") => {
            let seed = spec["random:".len()..]
                .parse::<u64>()
                .map_err(|_| format!("invalid random seed in `{spec}`"))?;
            Ok(Box::new(RandomTieBreak::new(seed)))
        }
        Some(other) => Err(format!("unknown policy `{other}`")),
    }
}

fn single_core_count(args: &ParsedArgs) -> Result<u64, String> {
    let list = core_list(args)?;
    Ok(*list.first().unwrap_or(&2))
}

fn simulate_cmd(args: &ParsedArgs) -> Result<String, String> {
    let (task, off) = load_task(args)?;
    let m = single_core_count(args)? as usize;
    let mut policy = make_policy(args)?;
    let platform = if off.is_some() {
        Platform::with_accelerator(m)
    } else {
        Platform::host_only(m)
    };
    let result = simulate(task.dag(), off, platform, policy.as_mut()).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "policy {} on {} cores{}: makespan = {}",
        result.policy(),
        m,
        if off.is_some() {
            " + 1 accelerator"
        } else {
            ""
        },
        result.makespan()
    );
    if args.has("--gantt") {
        let scale = (result.makespan().get() / 72).max(1);
        out.push_str(&trace::gantt(task.dag(), &result, scale));
    }
    Ok(out)
}

fn solve_cmd(args: &ParsedArgs) -> Result<String, String> {
    let (task, off) = load_task(args)?;
    let m = single_core_count(args)?;
    if args.has("--lp") {
        return lp::to_lp_format(task.dag(), off, m).map_err(|e| e.to_string());
    }
    let sol = solve(task.dag(), off, m, &SolverConfig::default()).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "minimum makespan on {m} cores{}: {} ({:?}, lower bound {}, {} nodes explored)",
        if off.is_some() {
            " + 1 accelerator"
        } else {
            ""
        },
        sol.makespan(),
        sol.optimality(),
        sol.lower_bound(),
        sol.explored_nodes()
    );
    Ok(out)
}

/// Loads every positional argument as a heterogeneous task file.
fn load_task_files(args: &ParsedArgs) -> Result<Vec<HeteroDagTask>, String> {
    let mut tasks = Vec::new();
    for (i, path) in args.positionals().iter().enumerate() {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let parsed = parse_task(&text).map_err(|e| format!("{path}: {e}"))?;
        match parsed.task {
            TaskKind::Heterogeneous(t) => tasks.push(t),
            TaskKind::Homogeneous(_) => {
                return Err(format!("{path} (argument {i}): task has no `offload` line"));
            }
        }
    }
    if tasks.is_empty() {
        return Err("no task files given".into());
    }
    Ok(tasks)
}

fn render_verdict(out: &mut String, label: &str, v: &SetVerdict, tasks: &[HeteroDagTask]) {
    let _ = writeln!(
        out,
        "\n{label}: {}",
        if v.is_schedulable() {
            "SCHEDULABLE"
        } else {
            "not schedulable"
        }
    );
    for tv in &v.per_task {
        let bound = tv
            .response_bound
            .as_ref()
            .map_or("exceeds deadline".to_owned(), |r| {
                format!("{:.2}", r.to_f64())
            });
        let _ = writeln!(
            out,
            "  task {} (T = {}, D = {}): R = {}",
            tv.task,
            tasks[tv.task].period(),
            tv.deadline,
            bound
        );
    }
}

fn sched_cmd(args: &ParsedArgs) -> Result<String, String> {
    let mut tasks = load_task_files(args)?;
    sort_deadline_monotonic(&mut tasks);
    let m = single_core_count(args)?;
    let device = if args.has("--shared-device") {
        DeviceModel::SharedFifo
    } else {
        DeviceModel::DedicatedPerTask
    };
    let het = AnalysisModel::Heterogeneous(device);
    let mut out = format!(
        "{} tasks (deadline-monotonic order), m = {m} host cores, device: {}\n",
        tasks.len(),
        match device {
            DeviceModel::DedicatedPerTask => "dedicated per task",
            DeviceModel::SharedFifo => "one shared FIFO device",
        }
    );
    if args.has("--edf") {
        let hom = gedf_test(&tasks, m, AnalysisModel::Homogeneous).map_err(|e| e.to_string())?;
        let hv = gedf_test(&tasks, m, het).map_err(|e| e.to_string())?;
        render_verdict(&mut out, "global EDF, homogeneous model", &hom, &tasks);
        render_verdict(&mut out, "global EDF, heterogeneous model", &hv, &tasks);
    } else {
        let hom = gfp_test(&tasks, m, AnalysisModel::Homogeneous).map_err(|e| e.to_string())?;
        let hv = gfp_test(&tasks, m, het).map_err(|e| e.to_string())?;
        render_verdict(&mut out, "global FP (DM), homogeneous model", &hom, &tasks);
        render_verdict(&mut out, "global FP (DM), heterogeneous model", &hv, &tasks);
    }
    Ok(out)
}

fn baselines_cmd(args: &ParsedArgs) -> Result<String, String> {
    let (task, off) = load_task(args)?;
    if off.is_none() {
        return Err("task file has no `offload` line; baselines need one".into());
    }
    let mut out = String::from(
        "  m   oblivious    barrier     R_het~   naive(!)   <- naive is UNSOUND (paper Fig. 1(c))\n",
    );
    for m in core_list(args)? {
        let c = BaselineComparison::compute(&task, m).map_err(|e| e.to_string())?;
        let _ = writeln!(
            out,
            "{m:>3}  {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            c.oblivious.to_f64(),
            c.phase_barrier.to_f64(),
            c.r_het_tight.to_f64(),
            c.naive_unsound.to_f64(),
        );
    }
    Ok(out)
}

fn cond_cmd(args: &ParsedArgs) -> Result<String, String> {
    let path = args.first_positional("expression file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let expr = hetrta_cond::parse_expr(&text).map_err(|e| format!("{path}:{e}"))?;
    let mut out = format!(
        "expression: {} leaves, {} realizations, W* = {}, len* = {}\n\n",
        expr.leaf_count(),
        expr.realization_count(),
        expr.worst_case_workload(),
        expr.worst_case_length()
    );
    let offload = args.value_of("--offload");
    let het_task = match offload {
        Some(label) => Some(
            hetrta_cond::HetCondTask::new(
                expr.clone(),
                label,
                Ticks::new(u64::MAX / 4),
                Ticks::new(u64::MAX / 4),
            )
            .map_err(|e| e.to_string())?,
        ),
        None => None,
    };
    let _ = writeln!(
        out,
        "  m  flatten-all  cond-aware  per-realization{}",
        if het_task.is_some() {
            "  het (offloaded)"
        } else {
            ""
        }
    );
    for m in core_list(args)? {
        let flat = hetrta_cond::r_parallel_flattening(&expr, m).map_err(|e| e.to_string())?;
        let aware = hetrta_cond::r_cond(&expr, m).map_err(|e| e.to_string())?;
        let exact = match hetrta_cond::r_cond_exact(&expr, m, 4096) {
            Ok(v) => format!("{:.2}", v.to_f64()),
            Err(hetrta_cond::CondError::TooManyRealizations { .. }) => "-".to_owned(),
            Err(e) => return Err(e.to_string()),
        };
        let het = match &het_task {
            Some(t) => match t.r_het_cond(m, 4096) {
                Ok(v) => format!("  {:>14.2}", v.to_f64()),
                Err(hetrta_cond::CondError::TooManyRealizations { .. }) => "  -".to_owned(),
                Err(e) => return Err(e.to_string()),
            },
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "{m:>3}  {:>11.2} {:>11.2}  {:>15}{het}",
            flat.to_f64(),
            aware.to_f64(),
            exact,
        );
    }
    Ok(out)
}

fn generate_cmd(args: &ParsedArgs) -> Result<String, String> {
    let params = if args.has("--large") {
        NfjParams::large_tasks()
    } else {
        NfjParams::small_tasks()
    };
    let seed = args.parsed_or("--seed", "seed", 0u64)?;
    let sizing = match args.value_of("--fraction") {
        None => CoffSizing::Generated,
        Some(f) => {
            let f = f
                .parse::<f64>()
                .map_err(|_| format!("invalid fraction `{f}`"))?;
            CoffSizing::VolumeFraction(f)
        }
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let dag = generate_nfj(&params, &mut rng).map_err(|e| e.to_string())?;
    if dag.node_count() < 3 {
        return Err("generated graph too small for an interior offload; try another --seed".into());
    }
    let task = make_hetero_task(dag, OffloadSelection::AnyInterior, sizing, &mut rng)
        .map_err(|e| e.to_string())?;
    Ok(render_task(&task))
}

/// The `--analyses` help line, generated from the [`AnalysisRegistry`] so
/// it never drifts from the keys actually registered.
fn analyses_help() -> String {
    format!(
        "registry keys to run per job ({})",
        hetrta_engine::AnalysisRegistry::builtin().keys().join(", ")
    )
}

/// `hetrta engine sweep …` — run a batch sweep on the work-stealing engine
/// and report per-cell results plus engine statistics (cache hit/miss,
/// per-worker job counts).
///
/// Any registry key is selectable on any grid; which key/grid pairs are
/// coherent is decided by the registry itself (each analysis declares the
/// input kind it consumes, the engine rejects mismatches up front), not by
/// CLI-side rules.
/// Builds a [`SweepSpec`] from the shared sweep-shape flags — the one
/// parser behind `engine sweep` (local engine), `submit` (daemon), and
/// `loadgen` (saturation driver).
fn build_sweep_spec(args: &ParsedArgs) -> Result<SweepSpec, String> {
    let cores = match args.value_of("--cores") {
        None => vec![2, 8],
        Some(spec) => parse_list(spec, "core count")?,
    };
    let per_point = args.parsed_or("--per-point", "per-point count", 20usize)?;
    let seeds = match args.value_of("--seed") {
        None => vec![0xDAC_2018],
        Some(spec) => parse_list(spec, "seed")?,
    };
    let preset = match (args.value_of("--preset"), args.value_of("--n-max")) {
        (Some(_), Some(_)) => {
            return Err("choose one of --preset and --n-max (the large-graph \
                        tier is its own preset)"
                .into())
        }
        (_, Some(raw)) => {
            let n_max: usize = raw
                .parse()
                .map_err(|_| format!("invalid node count `{raw}`"))?;
            if n_max < 4 {
                return Err(format!("--n-max {n_max} is too small (need ≥ 4 nodes)"));
            }
            GeneratorPreset::LargeGraphs(n_max)
        }
        (None | Some("small" | "fig8"), None) => GeneratorPreset::Small,
        (Some("large"), None) => GeneratorPreset::Large,
        (Some("paper"), None) => GeneratorPreset::LargePaper,
        (Some(other), None) => return Err(format!("unknown preset `{other}`")),
    };
    // `--preset fig8` is not a generator preset but the benchmark
    // harness's quick Figure 8 sweep, spec and all — the same workload
    // `hetrta bench --quick` measures, here with full observability.
    let fig8 = args.value_of("--preset") == Some("fig8");
    if fig8 {
        for flag in ["--fractions", "--utils", "--cond-shares", "--cores"] {
            if args.value_of(flag).is_some() {
                return Err(format!(
                    "{flag} conflicts with --preset fig8 (a fixed benchmark sweep)"
                ));
            }
        }
    }
    // Registry-validated selection; `None` keeps each grid's default
    // (het for fractions, acceptance for utils, cond for cond-shares).
    // Grid/key *compatibility* is the engine's registry-driven check.
    let analyses = args
        .value_of("--analyses")
        .map(AnalysisSelection::parse)
        .transpose()?;

    let grids = [
        args.value_of("--fractions").is_some(),
        args.value_of("--utils").is_some(),
        args.value_of("--cond-shares").is_some(),
    ];
    if grids.iter().filter(|&&g| g).count() > 1 {
        return Err(
            "choose one grid of --fractions, --utils and --cond-shares, not both at once".into(),
        );
    }
    // Flags that only make sense on a fraction grid are rejected (not
    // silently dropped) on the other grids.
    let fraction_only_given = |args: &ParsedArgs| {
        ["--sim-transformed"]
            .iter()
            .copied()
            .filter(|f| args.has(f))
            .chain(
                [
                    "--explore-seeds",
                    "--exact-budget",
                    "--sample-budget",
                    "--sample-seed",
                ]
                .iter()
                .copied()
                .filter(|f| args.value_of(f).is_some()),
            )
            .next()
    };
    if args.value_of("--utils").is_some() {
        if args.value_of("--preset").is_some() || args.value_of("--n-max").is_some() {
            return Err("--preset/--n-max apply to fraction sweeps; utilization \
                        sweeps use the small task-set template"
                .into());
        }
        if let Some(flag) = fraction_only_given(args) {
            return Err(format!("{flag} applies to fraction sweeps"));
        }
        if args.value_of("--realization-cap").is_some() {
            return Err("--realization-cap applies to fraction and conditional sweeps".into());
        }
    } else if args.value_of("--cond-shares").is_some() {
        if args.value_of("--preset").is_some() || args.value_of("--n-max").is_some() {
            return Err("--preset/--n-max apply to fraction sweeps; conditional \
                        sweeps use the small expression template"
                .into());
        }
        if let Some(flag) = fraction_only_given(args) {
            return Err(format!("{flag} applies to fraction sweeps"));
        }
    } else if args.value_of("--n-tasks").is_some() {
        return Err("--n-tasks applies to utilization sweeps (--utils)".into());
    }

    let mut spec = if fig8 {
        hetrta_bench::experiments::fig8::sweep_spec(
            &hetrta_bench::experiments::fig8::Config::quick(),
        )
    } else if let Some(utils) = args.value_of("--utils") {
        let n_tasks = args.parsed_or("--n-tasks", "task count", 4usize)?;
        SweepSpec::acceptance(
            hetrta_sched::taskset::TaskSetParams::small(n_tasks, 1.0)
                .with_offload_fraction(0.2, 0.45),
            cores,
            parse_list(utils, "utilization")?,
            n_tasks,
            per_point,
            seeds[0],
        )
        .with_seeds(seeds)
    } else if let Some(shares) = args.value_of("--cond-shares") {
        let cap = args.parsed_or("--realization-cap", "realization cap", 4096usize)?;
        SweepSpec::conditional(
            hetrta_cond::CondGenParams::small(),
            cores,
            parse_list(shares, "conditional share")?,
            per_point,
            cap,
        )
        .with_seeds(seeds)
    } else {
        let fractions = match args.value_of("--fractions") {
            None => vec![0.05, 0.10, 0.20, 0.30, 0.50],
            Some(spec) => parse_list(spec, "fraction")?,
        };
        let mut spec =
            SweepSpec::fractions(preset, cores, fractions, per_point, seeds[0]).with_seeds(seeds);
        spec.sim_transformed = args.has("--sim-transformed");
        spec.explore_seeds = args.parsed_or("--explore-seeds", "exploration seed count", 0u64)?;
        spec.realization_cap = args.parsed_or("--realization-cap", "realization cap", 4096usize)?;
        spec.sample_budget = args.parsed_or("--sample-budget", "sample budget", 64usize)?;
        spec.sample_seed = args.parsed_or("--sample-seed", "sample seed", 0u64)?;
        if let Some(budget) = args.value_of("--exact-budget") {
            spec.exact_node_budget = Some(
                budget
                    .parse::<u64>()
                    .map_err(|_| format!("invalid exact budget `{budget}`"))?,
            );
        }
        spec
    };
    if let Some(selection) = analyses {
        spec = spec.with_analyses(selection);
    }
    Ok(spec)
}

fn engine_sweep_cmd(args: &ParsedArgs) -> Result<String, String> {
    let threads = args.parsed_or("--threads", "thread count", 0usize)?;
    let spec = build_sweep_spec(args)?;
    if args.has("--resume") && args.value_of("--journal").is_none() {
        return Err("--resume needs --journal DIR (the journal of the interrupted run)".into());
    }

    let workers = args.parsed_or("--workers", "worker count", 0usize)?;
    if workers > 0 {
        return engine_sweep_dist(args, &spec, workers, threads);
    }
    if let Some(raw) = args.value_of("--shard") {
        return engine_sweep_shard(args, &spec, raw, threads);
    }

    let chaos = chaos_plan(args)?;
    let mut builder = EngineBuilder::new().threads(threads);
    if let Some(plan) = &chaos {
        builder = builder.with_fault_plan(std::sync::Arc::clone(plan));
    }
    if let Some(dir) = args.value_of("--cache-dir") {
        builder = builder.with_cache_dir(dir);
    }
    // A recorder is attached only when something consumes it: a --trace
    // output file, or structured stderr logging via HETRTA_LOG. Without
    // either, the engine keeps its zero-cost no-op recorder.
    let trace_path = args.value_of("--trace");
    let stderr_log = std::env::var("HETRTA_LOG").is_ok_and(|v| !v.is_empty() && v != "0");
    let recorder = (trace_path.is_some() || stderr_log)
        .then(|| std::sync::Arc::new(TraceRecorder::new().with_stderr_log(stderr_log)));
    if let Some(recorder) = &recorder {
        builder = builder.with_recorder(std::sync::Arc::clone(recorder) as _);
    }
    let engine = builder.build().map_err(|e| e.to_string())?;

    let (aggregate, run_summary) = if let Some(dir) = args.value_of("--journal") {
        let mut cfg = hetrta_engine::JournalConfig::new(dir);
        if args.has("--resume") {
            cfg = cfg.resuming();
        }
        let progress = args.has("--progress");
        let out = engine
            .run_journaled_with(&spec, &cfg, None, |completed, total, _| {
                if progress {
                    eprint!("\r[{completed}/{total} jobs]   ");
                }
            })
            .map_err(|e| e.to_string())?;
        if progress {
            eprintln!("\r[{0}/{0} jobs] done        ", out.total);
        }
        let summary = format!(
            "journal: {} of {} jobs replayed from {dir}, {} executed, \
             {} journal write failures\n",
            out.replayed, out.total, out.executed, out.journal_write_failures,
        );
        (out.aggregate, summary)
    } else {
        let out = if args.has("--progress") {
            run_with_progress(&engine, &spec)?
        } else {
            engine.run(&spec).map_err(|e| e.to_string())?
        };
        let summary = out.stats.render();
        (out.aggregate, summary)
    };

    let mut text = if args.has("--csv") {
        render_cells_csv(&aggregate.cells)
    } else {
        render_cells_table(&aggregate.cells)
    };
    text.push('\n');
    text.push_str(&run_summary);
    if let (Some(path), Some(recorder)) = (trace_path, &recorder) {
        recorder
            .write_chrome_trace(path)
            .map_err(|e| format!("cannot write trace {path}: {e}"))?;
        text.push_str(&format!(
            "trace: {} spans written to {path} (load in Perfetto or chrome://tracing)\n",
            recorder.spans().len()
        ));
    }
    if args.has("--metrics") {
        text.push('\n');
        text.push_str(&engine.metrics().snapshot().render_table());
    }
    if let Some(plan) = &chaos {
        text.push('\n');
        text.push_str(&plan.report());
    }
    Ok(text)
}

/// Builds the seeded fault-injection plan when `--chaos SEED` is given.
fn chaos_plan(
    args: &ParsedArgs,
) -> Result<Option<std::sync::Arc<hetrta_engine::FaultPlan>>, String> {
    Ok(
        parse_chaos_seed(args)?
            .map(|seed| std::sync::Arc::new(hetrta_engine::FaultPlan::new(seed))),
    )
}

/// The worker launcher for locally spawned fleets: this very binary,
/// re-entered as `hetrta dist worker`.
fn self_launcher() -> Result<hetrta_dist::WorkerLauncher, String> {
    Ok(hetrta_dist::WorkerLauncher {
        program: std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?,
        args: vec!["dist".into(), "worker".into()],
    })
}

/// `engine sweep --workers N`: fan the job list across N locally
/// spawned worker processes and merge their streams into the same
/// bitwise aggregate a single-process run produces.
fn engine_sweep_dist(
    args: &ParsedArgs,
    spec: &SweepSpec,
    workers: usize,
    threads: usize,
) -> Result<String, String> {
    let mut config = hetrta_dist::DistConfig::local(workers, self_launcher()?);
    config.worker_threads = threads;
    config.cache_dir = args.value_of("--cache-dir").map(Into::into);
    if let Some(dir) = args.value_of("--journal") {
        let mut cfg = hetrta_engine::JournalConfig::new(dir);
        if args.has("--resume") {
            cfg = cfg.resuming();
        }
        config.journal = Some(cfg);
    }
    let chaos = chaos_plan(args)?;
    config.fault = chaos.clone();
    // --trace attaches the recorder to the *coordinator*: the sweep
    // span, per-worker lanes, and the byte/re-dispatch counters land in
    // the Chrome trace (workers keep their own no-op recorders).
    let trace_path = args.value_of("--trace");
    let stderr_log = std::env::var("HETRTA_LOG").is_ok_and(|v| !v.is_empty() && v != "0");
    let recorder = (trace_path.is_some() || stderr_log)
        .then(|| std::sync::Arc::new(TraceRecorder::new().with_stderr_log(stderr_log)));
    let dyn_recorder: &dyn hetrta_obs::Recorder = match &recorder {
        Some(recorder) => recorder.as_ref(),
        None => &hetrta_obs::NOOP,
    };
    let out = hetrta_dist::run_distributed(spec, &config, dyn_recorder, None, |_| {})
        .map_err(|e| e.to_string())?;

    let mut text = if args.has("--csv") {
        render_cells_csv(&out.aggregate.cells)
    } else {
        render_cells_table(&out.aggregate.cells)
    };
    text.push('\n');
    let balance: Vec<String> = out.worker_jobs.iter().map(u64::to_string).collect();
    let _ = writeln!(
        text,
        "dist: {} jobs across {workers} workers [{}], {} redispatched, \
         {} worker deaths, {} respawns, {} B tx / {} B rx",
        out.completed,
        balance.join("/"),
        out.redispatched_jobs,
        out.worker_deaths,
        out.respawns,
        out.bytes_tx,
        out.bytes_rx,
    );
    if let Some(dir) = args.value_of("--journal") {
        let executed: u64 = out.worker_jobs.iter().sum();
        let replayed = (out.completed as u64).saturating_sub(executed);
        let _ = writeln!(
            text,
            "journal: {replayed} of {} jobs replayed from {dir}, {executed} executed",
            out.completed,
        );
    }
    if let Some(plan) = &chaos {
        text.push('\n');
        text.push_str(&plan.report());
    }
    if let (Some(path), Some(recorder)) = (trace_path, &recorder) {
        recorder
            .write_chrome_trace(path)
            .map_err(|e| format!("cannot write trace {path}: {e}"))?;
        let _ = writeln!(
            text,
            "trace: {} spans written to {path} (load in Perfetto or chrome://tracing)",
            recorder.spans().len()
        );
    }
    Ok(text)
}

/// `engine sweep --shard I/K`: run only the I-th deterministic shard
/// in-process, rendering its partial aggregate. Merging all K shards
/// through one aggregator reassembles the full sweep bitwise (pinned
/// by `crates/dist/tests/parity.rs`).
fn engine_sweep_shard(
    args: &ParsedArgs,
    spec: &SweepSpec,
    raw: &str,
    threads: usize,
) -> Result<String, String> {
    let (shard, shards) = hetrta_dist::parse_shard(raw)?;
    let chaos = chaos_plan(args)?;
    let mut builder = EngineBuilder::new().threads(threads);
    if let Some(plan) = &chaos {
        builder = builder.with_fault_plan(std::sync::Arc::clone(plan));
    }
    if let Some(dir) = args.value_of("--cache-dir") {
        builder = builder.with_cache_dir(dir);
    }
    let engine = builder.build().map_err(|e| e.to_string())?;
    let (cells, jobs) = spec.expand();
    let total = jobs.len();
    let indices = hetrta_dist::shard_indices(total, shard, shards);
    let mut aggregator = hetrta_engine::Aggregator::new(cells, total, spec.cell_shape());
    let ran = engine
        .run_job_subset(spec, &indices, |result| aggregator.accept(result))
        .map_err(|e| e.to_string())?;
    let aggregate = aggregator.partial();

    let mut text = if args.has("--csv") {
        render_cells_csv(&aggregate.cells)
    } else {
        render_cells_table(&aggregate.cells)
    };
    text.push('\n');
    let _ = writeln!(
        text,
        "shard {shard}/{shards}: ran {ran} of {total} jobs \
         (merge all {shards} shards for the full aggregate)"
    );
    if args.has("--metrics") {
        text.push('\n');
        text.push_str(&engine.metrics().snapshot().render_table());
    }
    if let Some(plan) = &chaos {
        text.push('\n');
        text.push_str(&plan.report());
    }
    Ok(text)
}

/// `dist worker`: the fleet-worker process a coordinator spawns (or an
/// operator starts by hand against `Launch::Attach`).
fn dist_worker_cmd(args: &ParsedArgs) -> Result<String, String> {
    let addr = args
        .value_of("--connect")
        .ok_or("missing --connect HOST:PORT (the coordinator address)")?;
    let heartbeat_ms = args.parsed_or("--heartbeat-ms", "heartbeat period", 200u64)?;
    let config = hetrta_dist::WorkerConfig {
        addr: addr.to_string(),
        worker: args.parsed_or("--worker", "worker index", 0usize)?,
        threads: args.parsed_or("--threads", "thread count", 0usize)?,
        cache_dir: args.value_of("--cache-dir").map(Into::into),
        heartbeat_every: std::time::Duration::from_millis(heartbeat_ms.max(1)),
        chaos: parse_chaos_seed(args)?,
    };
    let jobs = hetrta_dist::run_worker(&config, &hetrta_obs::NOOP).map_err(|e| e.to_string())?;
    Ok(format!("dist worker: {jobs} jobs computed\n"))
}

/// Parses `--chaos SEED` (decimal or `0x` hex) when present.
fn parse_chaos_seed(args: &ParsedArgs) -> Result<Option<u64>, String> {
    let Some(raw) = args.value_of("--chaos") else {
        return Ok(None);
    };
    let seed = raw
        .strip_prefix("0x")
        .map_or_else(|| raw.parse(), |hex| u64::from_str_radix(hex, 16))
        .map_err(|_| format!("--chaos needs a seed (decimal or 0x hex), got `{raw}`"))?;
    Ok(Some(seed))
}

/// Submits the sweep as a session and renders `PartialAggregate`
/// snapshots to stderr as they stream in (stdout stays clean for the
/// final table/CSV).
fn run_with_progress(
    engine: &hetrta_engine::Engine,
    spec: &SweepSpec,
) -> Result<hetrta_engine::EngineOutput, String> {
    let total = spec.job_count();
    // ~50 snapshots over the sweep, at least one per job for tiny runs.
    // Per-job events are off: the renderer only consumes the snapshots,
    // so 2·jobs queue pushes and wakeups would be pure overhead.
    let every = (total / 50).max(1);
    let config = hetrta_engine::SessionConfig {
        job_events: false,
        ..hetrta_engine::SessionConfig::with_partials(every)
    };
    let handle = engine
        .submit_with(spec, config)
        .map_err(|e| e.to_string())?;
    // Partial aggregates stream as changed-cell deltas with periodic
    // keyframes; the view reassembles full snapshots.
    let mut view = hetrta_engine::AggregateView::new();
    while let Some(event) = handle.next_event() {
        match event {
            SweepEvent::PartialAggregate {
                completed,
                total,
                update,
            } => {
                let Some(aggregate) = view.apply(&update) else {
                    continue; // keyframe not seen yet (dropped event)
                };
                let populated = aggregate.cells.iter().filter(|c| c.samples > 0).count();
                let stats = handle.stats();
                eprint!(
                    "\r[{completed}/{total} jobs] {populated}/{} cells populated, \
                     {} cached, {} disk hits ({:.1?})   ",
                    aggregate.cells.len(),
                    stats.cached_jobs,
                    stats.disk_cache.hits,
                    stats.elapsed,
                );
            }
            SweepEvent::SweepFinished { completed, .. } => {
                eprintln!("\r[{completed}/{total} jobs] done{}", " ".repeat(48));
            }
            SweepEvent::JobStarted { .. } | SweepEvent::JobFinished { .. } => {}
        }
    }
    handle.wait().map_err(|e| e.to_string())
}

const DEFAULT_DAEMON_ADDR: &str = "127.0.0.1:7917";

fn serve_cmd(args: &ParsedArgs) -> Result<String, String> {
    let defaults = hetrta_serve::AdmissionConfig::default();
    let workers = args.parsed_or("--workers", "worker count", 0usize)?;
    let threads = args.parsed_or("--threads", "thread count", 0usize)?;
    let dist = if workers > 0 {
        // Fleet mode: each granted sweep fans across `workers` spawned
        // processes; the fleet shares the daemon's cache directory so
        // tenants still warm each other's cells.
        let mut dist = hetrta_dist::DistConfig::local(workers, self_launcher()?);
        dist.worker_threads = threads;
        dist.cache_dir = args.value_of("--cache-dir").map(Into::into);
        Some(dist)
    } else {
        None
    };
    let config = hetrta_serve::ServerConfig {
        addr: args
            .value_of("--addr")
            .unwrap_or(DEFAULT_DAEMON_ADDR)
            .to_string(),
        threads,
        cache_dir: args.value_of("--cache-dir").map(Into::into),
        admission: hetrta_serve::AdmissionConfig {
            max_active: args.parsed_or("--max-active", "active bound", defaults.max_active)?,
            max_pending: args.parsed_or("--max-pending", "pending bound", defaults.max_pending)?,
            retry_after_ms: args.parsed_or(
                "--retry-after-ms",
                "retry hint",
                defaults.retry_after_ms,
            )?,
        },
        partial_every: Some(args.parsed_or("--partial-every", "partial cadence", 8usize)?),
        dist,
        journal_dir: args.value_of("--journal-dir").map(Into::into),
        chaos: parse_chaos_seed(args)?,
    };
    let server = hetrta_serve::Server::bind(config).map_err(|e| e.to_string())?;
    let addr = server.local_addr();
    // Announced on stderr *before* the blocking serve loop, so scripts
    // starting the daemon in the background know where to connect.
    eprintln!(
        "hetrta serve: listening on {addr} \
         (drain with `hetrta submit --addr {addr} --shutdown` or SIGTERM)"
    );
    server.run().map_err(|e| e.to_string())?;
    Ok(format!("hetrta serve: {addr} drained and exited\n"))
}

fn submit_cmd(args: &ParsedArgs) -> Result<String, String> {
    let addr = args.value_of("--addr").unwrap_or(DEFAULT_DAEMON_ADDR);
    let mut client = hetrta_serve::ServeClient::connect(addr).map_err(|e| e.to_string())?;
    if args.has("--shutdown") {
        client.shutdown().map_err(|e| e.to_string())?;
        return Ok(format!(
            "daemon at {addr} acknowledged shutdown and is draining\n"
        ));
    }
    if args.has("--stats") {
        return client.stats().map_err(|e| e.to_string());
    }
    let tenant = args.value_of("--tenant").unwrap_or("cli");
    let spec = build_sweep_spec(args)?;
    drop(client);

    // `Busy` is backpressure, not failure: honour the daemon's hint with
    // the shared jittered-exponential policy (the same one loadgen uses),
    // reconnecting per attempt like any polite client.
    let policy = hetrta_serve::RetryPolicy::new();
    let outcome = policy
        .run(
            || {
                // Reassemble streamed deltas exactly like the local
                // --progress path (fresh per attempt).
                let mut view = hetrta_engine::AggregateView::new();
                let mut client = hetrta_serve::ServeClient::connect(addr)?;
                client.run_to_completion(tenant, &spec, |event| {
                    if let SweepEvent::PartialAggregate {
                        completed,
                        total,
                        update,
                    } = event
                    {
                        if let Some(aggregate) = view.apply(update) {
                            let populated =
                                aggregate.cells.iter().filter(|c| c.samples > 0).count();
                            eprint!(
                                "\r[{completed}/{total} jobs] {populated}/{} cells populated   ",
                                aggregate.cells.len()
                            );
                        }
                    }
                })
            },
            |delay| {
                eprintln!("daemon busy; retrying in {}ms", delay.as_millis());
            },
        )
        .map_err(|e| e.to_string())?;
    eprintln!(
        "\r[{}/{} jobs] done{}",
        outcome.completed,
        spec.job_count(),
        " ".repeat(48)
    );

    let mut text = if args.has("--csv") {
        render_cells_csv(&outcome.aggregate.cells)
    } else {
        render_cells_table(&outcome.aggregate.cells)
    };
    text.push('\n');
    let _ = writeln!(
        text,
        "remote: {} jobs on {addr} as tenant `{tenant}`, cancelled={}, events dropped={}",
        outcome.completed, outcome.cancelled, outcome.events_dropped,
    );
    Ok(text)
}

fn loadgen_cmd(args: &ParsedArgs) -> Result<String, String> {
    if let Some(raw) = args.value_of("--workers") {
        return loadgen_dist(args, raw);
    }
    let addr = args.value_of("--addr").unwrap_or(DEFAULT_DAEMON_ADDR);
    let ladder: Vec<usize> = match args.value_of("--clients") {
        None => vec![1, 8, 64, 256],
        Some(spec) => parse_list(spec, "client count")?,
    };
    let sweeps = args.parsed_or("--sweeps", "sweep count", 4usize)?;
    let spec = build_sweep_spec(args)?;

    let mut rows = Vec::new();
    let mut text =
        String::from("cache  clients  completed  failed  sweeps/s    p50 ms    p99 ms   busy\n");
    // Cold rungs give every sweep a unique seed (nothing replays from
    // cache); warm rungs resubmit the identical spec, so after the first
    // completion the daemon answers from cache.
    let mut cold_seed_offset = 0x5EED_0000u64;
    for cache in ["cold", "warm"] {
        for &clients in &ladder {
            let mut config = hetrta_serve::LoadgenConfig::new(addr, clients, sweeps, spec.clone());
            if cache == "cold" {
                config.vary_seeds = Some(cold_seed_offset);
                cold_seed_offset += (clients * sweeps) as u64;
            }
            let report = hetrta_serve::loadgen::run(&config).map_err(|e| e.to_string())?;
            let _ = writeln!(
                text,
                "{cache:>5}  {:>7}  {:>9}  {:>6}  {:>8.2}  {:>8.2}  {:>8.2}  {:>5}",
                report.clients,
                report.completed,
                report.failed,
                report.sweeps_per_sec,
                report.p50_ms,
                report.p99_ms,
                report.busy_retries,
            );
            if report.protocol_errors > 0 {
                let _ = writeln!(
                    text,
                    "       ^ {} protocol errors at {clients} clients",
                    report.protocol_errors
                );
            }
            if let Some(err) = &report.first_error {
                let _ = writeln!(text, "       ^ first failure: {err}");
            }
            rows.push((cache.to_string(), report));
        }
    }
    if let Some(path) = args.value_of("--json") {
        std::fs::write(
            path,
            hetrta_serve::loadgen::render_bench_json("serve_saturation", &rows),
        )
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(text)
}

/// `loadgen --workers`: the fleet-scaling ladder. No daemon involved —
/// each rung runs the sweep through the dist coordinator at one worker
/// count (1 engine thread per worker, so rungs measure process-level
/// scaling), cold with a fresh cache directory and warm over the first
/// cold rung's directory, recording jobs/sec and per-worker balance.
fn loadgen_dist(args: &ParsedArgs, raw: &str) -> Result<String, String> {
    let ladder: Vec<usize> = parse_list(raw, "worker count")?;
    if ladder.contains(&0) {
        return Err("worker counts must be >= 1".into());
    }
    let spec = build_sweep_spec(args)?;
    let launcher = self_launcher()?;
    let root = std::env::temp_dir().join(format!("hetrta-loadgen-dist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    // Warm rungs replay from the first cold rung's directory: by then it
    // holds every job of the (identical) spec.
    let warm_dir = root.join(format!("cold-{}", ladder[0]));

    let mut rows = Vec::new();
    let mut text =
        String::from("cache  workers  jobs  failed    jobs/s    p50 ms    p99 ms  balance\n");
    for cache in ["cold", "warm"] {
        for &workers in &ladder {
            let mut config = hetrta_dist::DistConfig::local(workers, launcher.clone());
            config.worker_threads = 1;
            config.cache_dir = Some(match cache {
                "cold" => root.join(format!("cold-{workers}")),
                _ => warm_dir.clone(),
            });
            let mut wall_times = Vec::new();
            let started = std::time::Instant::now();
            let out =
                hetrta_dist::run_distributed(&spec, &config, &hetrta_obs::NOOP, None, |progress| {
                    if let hetrta_dist::DistProgress::Job { wall_time, .. } = progress {
                        wall_times.push(wall_time);
                    }
                })
                .map_err(|e| e.to_string())?;
            let elapsed = started.elapsed();
            let balance: Vec<String> = out.worker_jobs.iter().map(u64::to_string).collect();
            let report = hetrta_serve::loadgen::LoadgenReport {
                clients: workers,
                completed: out.completed,
                failed: out.total - out.completed,
                busy_retries: 0,
                protocol_errors: 0,
                elapsed,
                sweeps_per_sec: out.completed as f64 / elapsed.as_secs_f64().max(1e-9),
                p50_ms: hetrta_serve::loadgen::percentile_ms(&wall_times, 0.50),
                p99_ms: hetrta_serve::loadgen::percentile_ms(&wall_times, 0.99),
                first_error: None,
                worker_jobs: out.worker_jobs,
            };
            let _ = writeln!(
                text,
                "{cache:>5}  {:>7}  {:>4}  {:>6}  {:>8.2}  {:>8.2}  {:>8.2}  [{}]",
                report.clients,
                report.completed,
                report.failed,
                report.sweeps_per_sec,
                report.p50_ms,
                report.p99_ms,
                balance.join("/"),
            );
            rows.push((cache.to_string(), report));
        }
    }
    if let Some(path) = args.value_of("--json") {
        std::fs::write(
            path,
            hetrta_serve::loadgen::render_bench_json("dist_scaling", &rows),
        )
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    let _ = std::fs::remove_dir_all(&root);
    Ok(text)
}

fn render_cells_table(cells: &[hetrta_engine::CellSummary]) -> String {
    let mut out = String::new();
    match cells.first().map(|c| &c.kind) {
        Some(CellKind::Set(_)) => {
            let _ = writeln!(
                out,
                "  m   U/m  {}",
                TestKind::ALL.map(|t| format!("{:>9}", t.label())).join(" ")
            );
            for cell in cells {
                let CellKind::Set(s) = &cell.kind else {
                    continue;
                };
                let ratios = TestKind::ALL
                    .map(|t| format!("{:>8.1}%", s.ratio(t, cell.samples) * 100.0))
                    .join(" ");
                let _ = writeln!(out, "{:>3}  {:>4.2}  {ratios}", cell.m, cell.grid_value);
            }
        }
        Some(CellKind::Cond(_)) => {
            let _ = writeln!(
                out,
                "  m  p_cond  included  flat-vs-aware  aware-vs-exact  avg-realizations"
            );
            for cell in cells {
                let CellKind::Cond(c) = &cell.kind else {
                    continue;
                };
                let _ = writeln!(
                    out,
                    "{:>3}  {:>6.2}  {:>8}  {:>+12.2}%  {:>+13.3}%  {:>16.1}",
                    cell.m,
                    cell.grid_value,
                    c.included,
                    c.mean_flat_overhead,
                    c.mean_dp_overhead,
                    c.mean_realizations,
                );
            }
        }
        _ => {
            // The scenario/improvement table only carries data when the
            // het analysis ran; suspend- or sim-only sweeps skip it.
            let has_het = cells.iter().any(|c| {
                matches!(&c.kind, CellKind::Task(t)
                    if t.scenario_counts.iter().sum::<usize>() > 0)
            });
            if has_het {
                let _ = writeln!(
                    out,
                    "  m  C_off/vol        s1      s2.1      s2.2  mean-impr   max-impr  sched(het)"
                );
                for cell in cells {
                    let CellKind::Task(t) = &cell.kind else {
                        continue;
                    };
                    let (s1, s21, s22) = t.scenario_shares(cell.samples);
                    let _ = writeln!(
                        out,
                        "{:>3}  {:>8.2}%  {:>7.1}%  {:>7.1}%  {:>7.1}%  {:>+8.2}%  {:>+8.2}%  {:>6}/{}",
                        cell.m,
                        cell.grid_value * 100.0,
                        s1 * 100.0,
                        s21 * 100.0,
                        s22 * 100.0,
                        t.mean_improvement,
                        t.max_improvement,
                        t.schedulable_het,
                        cell.samples,
                    );
                }
            }
            if cells
                .iter()
                .any(|c| matches!(&c.kind, CellKind::Task(t) if t.mean_sim_makespan.is_some()))
            {
                if has_het {
                    let _ = writeln!(out);
                }
                let _ = writeln!(out, "  m  C_off/vol   mean-sim  mean-sim(tau')");
                for cell in cells {
                    let CellKind::Task(t) = &cell.kind else {
                        continue;
                    };
                    let Some(sim) = t.mean_sim_makespan else {
                        continue;
                    };
                    let trans = t
                        .mean_sim_transformed
                        .map_or("-".to_owned(), |v| format!("{v:.2}"));
                    let _ = writeln!(
                        out,
                        "{:>3}  {:>8.2}%  {:>9.2}  {:>14}",
                        cell.m,
                        cell.grid_value * 100.0,
                        sim,
                        trans,
                    );
                }
            }
            if cells
                .iter()
                .any(|c| matches!(&c.kind, CellKind::Task(t) if t.accuracy.is_some()))
            {
                let _ = writeln!(out, "\n  m  C_off/vol  R_hom-inc  R_het-inc  solved");
                for cell in cells {
                    let CellKind::Task(t) = &cell.kind else {
                        continue;
                    };
                    let Some(a) = &t.accuracy else { continue };
                    let _ = writeln!(
                        out,
                        "{:>3}  {:>8.2}%  {:>+8.2}%  {:>+8.2}%  {:>6}/{}",
                        cell.m,
                        cell.grid_value * 100.0,
                        a.mean_hom_increment,
                        a.mean_het_increment,
                        a.solved,
                        cell.samples,
                    );
                }
            }
            if cells
                .iter()
                .any(|c| matches!(&c.kind, CellKind::Task(t) if t.suspend.is_some()))
            {
                let _ = writeln!(
                    out,
                    "\n  m  C_off/vol  oblivious    barrier     R_het~   naive(!)  violations"
                );
                for cell in cells {
                    let CellKind::Task(t) = &cell.kind else {
                        continue;
                    };
                    let Some(s) = &t.suspend else { continue };
                    let _ = writeln!(
                        out,
                        "{:>3}  {:>8.2}%  {:>9.2}  {:>9.2}  {:>9.2}  {:>9.2}  {:>6}/{}",
                        cell.m,
                        cell.grid_value * 100.0,
                        s.mean_oblivious,
                        s.mean_barrier,
                        s.mean_het_tight,
                        s.mean_naive,
                        s.naive_violations,
                        cell.samples,
                    );
                }
            }
            if cells
                .iter()
                .any(|c| matches!(&c.kind, CellKind::Task(t) if t.sampled.is_some()))
            {
                let _ = writeln!(
                    out,
                    "\n  m  C_off/vol   mean-mk      ±CI        min        max  samples"
                );
                for cell in cells {
                    let CellKind::Task(t) = &cell.kind else {
                        continue;
                    };
                    let Some(s) = &t.sampled else { continue };
                    let _ = writeln!(
                        out,
                        "{:>3}  {:>8.2}%  {:>9.2}  {:>7.2}  {:>9}  {:>9}  {:>7}",
                        cell.m,
                        cell.grid_value * 100.0,
                        s.mean,
                        s.mean_ci_half,
                        s.min,
                        s.max,
                        s.total_samples,
                    );
                }
            }
            if cells
                .iter()
                .any(|c| matches!(&c.kind, CellKind::Task(t) if t.anytime.is_some()))
            {
                let _ = writeln!(out, "\n  m  C_off/vol      lower      upper  optimal");
                for cell in cells {
                    let CellKind::Task(t) = &cell.kind else {
                        continue;
                    };
                    let Some(a) = &t.anytime else { continue };
                    let _ = writeln!(
                        out,
                        "{:>3}  {:>8.2}%  {:>9.2}  {:>9.2}  {:>5}/{}",
                        cell.m,
                        cell.grid_value * 100.0,
                        a.mean_lower,
                        a.mean_upper,
                        a.optimal,
                        cell.samples,
                    );
                }
            }
        }
    }
    out
}

fn render_cells_csv(cells: &[hetrta_engine::CellSummary]) -> String {
    let mut out = String::new();
    let opt = |v: Option<f64>| v.map_or(String::new(), |x| format!("{x:.6}"));
    match cells.first().map(|c| &c.kind) {
        Some(CellKind::Set(_)) => {
            let labels = TestKind::ALL.map(|t| t.label().to_owned()).join(",");
            let _ = writeln!(out, "m,normalized_util,samples,{labels}");
            for cell in cells {
                let CellKind::Set(s) = &cell.kind else {
                    continue;
                };
                let ratios = TestKind::ALL
                    .map(|t| format!("{:.6}", s.ratio(t, cell.samples)))
                    .join(",");
                let _ = writeln!(
                    out,
                    "{},{},{},{ratios}",
                    cell.m, cell.grid_value, cell.samples
                );
            }
        }
        Some(CellKind::Cond(_)) => {
            let _ = writeln!(
                out,
                "m,p_cond,samples,included,mean_flat_overhead,mean_dp_overhead,mean_realizations"
            );
            for cell in cells {
                let CellKind::Cond(c) = &cell.kind else {
                    continue;
                };
                let _ = writeln!(
                    out,
                    "{},{},{},{},{:.6},{:.6},{:.6}",
                    cell.m,
                    cell.grid_value,
                    cell.samples,
                    c.included,
                    c.mean_flat_overhead,
                    c.mean_dp_overhead,
                    c.mean_realizations,
                );
            }
        }
        _ => {
            let _ = writeln!(
                out,
                "m,fraction,samples,s1,s21,s22,mean_improvement,max_improvement,\
                 schedulable_het,schedulable_hom,mean_r_het,mean_r_hom,\
                 mean_sim_makespan,mean_sim_transformed,exact_solved,mean_exact_makespan,\
                 hom_increment,het_increment,solved,\
                 suspend_oblivious,suspend_barrier,suspend_het_tight,suspend_naive,\
                 suspend_worst,naive_violations,\
                 sampled_mean,sampled_ci_half,sampled_min,sampled_max,sampled_total,\
                 anytime_lower,anytime_upper,anytime_optimal"
            );
            for cell in cells {
                let CellKind::Task(t) = &cell.kind else {
                    continue;
                };
                let (s1, s21, s22) = t.scenario_shares(cell.samples);
                let accuracy = t.accuracy.as_ref();
                let suspend = t.suspend.as_ref();
                let sampled = t.sampled.as_ref();
                let anytime = t.anytime.as_ref();
                let _ = writeln!(
                    out,
                    "{},{},{},{s1:.6},{s21:.6},{s22:.6},{:.6},{:.6},{},{},{:.6},{:.6},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                    cell.m,
                    cell.grid_value,
                    cell.samples,
                    t.mean_improvement,
                    t.max_improvement,
                    t.schedulable_het,
                    t.schedulable_hom,
                    t.mean_r_het,
                    t.mean_r_hom,
                    opt(t.mean_sim_makespan),
                    opt(t.mean_sim_transformed),
                    t.exact_solved,
                    opt(t.mean_exact_makespan),
                    opt(accuracy.map(|a| a.mean_hom_increment)),
                    opt(accuracy.map(|a| a.mean_het_increment)),
                    accuracy.map_or(String::new(), |a| a.solved.to_string()),
                    opt(suspend.map(|s| s.mean_oblivious)),
                    opt(suspend.map(|s| s.mean_barrier)),
                    opt(suspend.map(|s| s.mean_het_tight)),
                    opt(suspend.map(|s| s.mean_naive)),
                    opt(suspend.and_then(|s| s.mean_worst_observed)),
                    suspend.map_or(String::new(), |s| s.naive_violations.to_string()),
                    opt(sampled.map(|s| s.mean)),
                    opt(sampled.map(|s| s.mean_ci_half)),
                    sampled.map_or(String::new(), |s| s.min.to_string()),
                    sampled.map_or(String::new(), |s| s.max.to_string()),
                    sampled.map_or(String::new(), |s| s.total_samples.to_string()),
                    opt(anytime.map(|a| a.mean_lower)),
                    opt(anytime.map(|a| a.mean_upper)),
                    anytime.map_or(String::new(), |a| a.optimal.to_string()),
                );
            }
        }
    }
    out
}

fn example_file() -> String {
    let mut b = hetrta_dag::DagBuilder::new();
    let v1 = b.node("v1", Ticks::new(1));
    let v2 = b.node("v2", Ticks::new(4));
    let v3 = b.node("v3", Ticks::new(6));
    let v4 = b.node("v4", Ticks::new(2));
    let v5 = b.node("v5", Ticks::new(1));
    let voff = b.node("v_off", Ticks::new(4));
    b.edges([
        (v1, v2),
        (v1, v3),
        (v1, v4),
        (v4, voff),
        (v2, v5),
        (v3, v5),
        (voff, v5),
    ])
    .expect("static edges");
    let task = HeteroDagTask::new(
        b.build().expect("static graph"),
        voff,
        Ticks::new(50),
        Ticks::new(50),
    )
    .expect("static task");
    render_task(&task)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    /// Registry keys available to `--analyses`.
    fn registry_keys() -> Vec<String> {
        hetrta_engine::AnalysisRegistry::builtin()
            .keys()
            .iter()
            .map(|&k| k.to_owned())
            .collect()
    }

    fn write_example() -> tempfile::TempPath {
        let text = example_file();
        let mut f = tempfile::Builder::new().suffix(".hdag").tempfile().unwrap();
        std::io::Write::write_all(&mut f, text.as_bytes()).unwrap();
        f.into_temp_path()
    }

    // tempfile is not a dependency; emulate with std.
    mod tempfile {
        use std::path::PathBuf;

        pub struct TempPath(PathBuf);
        impl TempPath {
            pub fn to_str(&self) -> &str {
                self.0.to_str().unwrap()
            }
        }
        impl Drop for TempPath {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.0);
            }
        }

        pub struct Builder {
            suffix: String,
        }
        pub struct NamedFile {
            pub file: std::fs::File,
            path: PathBuf,
        }
        impl Builder {
            pub fn new() -> Self {
                Builder {
                    suffix: String::new(),
                }
            }
            pub fn suffix(mut self, s: &str) -> Self {
                self.suffix = s.to_owned();
                self
            }
            pub fn tempfile(self) -> std::io::Result<NamedFile> {
                let path = std::env::temp_dir().join(format!(
                    "hetrta-test-{}-{}{}",
                    std::process::id(),
                    std::time::SystemTime::now()
                        .duration_since(std::time::UNIX_EPOCH)
                        .unwrap()
                        .as_nanos(),
                    self.suffix
                ));
                Ok(NamedFile {
                    file: std::fs::File::create(&path)?,
                    path,
                })
            }
        }
        impl NamedFile {
            pub fn into_temp_path(self) -> TempPath {
                TempPath(self.path)
            }
        }
        impl std::io::Write for NamedFile {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.file.write(buf)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                self.file.flush()
            }
        }
    }

    #[test]
    fn example_parses_and_analyzes() {
        let path = write_example();
        let out = run(&args(&["analyze", path.to_str(), "-m", "2"])).unwrap();
        assert!(out.contains("R_hom"));
        assert!(out.contains("13.00"));
        assert!(out.contains("12.00"));
    }

    #[test]
    fn transform_outputs_task_file_and_dot() {
        let path = write_example();
        let out = run(&args(&["transform", path.to_str()])).unwrap();
        assert!(out.contains("node v_sync 0"));
        assert!(out.contains("len(G') = 10"));
        let dot = run(&args(&["transform", path.to_str(), "--dot"])).unwrap();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("cluster_par"));
    }

    #[test]
    fn simulate_reports_makespan() {
        let path = write_example();
        let out = run(&args(&["simulate", path.to_str(), "-m", "2"])).unwrap();
        assert!(out.contains("makespan = 12"));
        let gantt = run(&args(&["simulate", path.to_str(), "-m", "2", "--gantt"])).unwrap();
        assert!(gantt.contains("core 0"));
        let cp = run(&args(&[
            "simulate",
            path.to_str(),
            "-m",
            "2",
            "--policy",
            "cp",
        ]))
        .unwrap();
        assert!(cp.contains("makespan = 8"));
    }

    #[test]
    fn solve_finds_optimum() {
        let path = write_example();
        let out = run(&args(&["solve", path.to_str(), "-m", "2"])).unwrap();
        assert!(out.contains("minimum makespan"));
        assert!(out.contains(": 8 "));
        let lp = run(&args(&["solve", path.to_str(), "-m", "2", "--lp"])).unwrap();
        assert!(lp.contains("Minimize"));
    }

    #[test]
    fn generate_emits_parseable_file() {
        let out = run(&args(&["generate", "--seed", "7", "--fraction", "0.3"])).unwrap();
        let parsed = hetrta_dag::io::parse_task(&out).unwrap();
        assert!(parsed.task.offloaded().is_some());
    }

    #[test]
    fn engine_sweep_reports_cells_and_stats() {
        let out = run(&args(&[
            "engine",
            "sweep",
            "--threads",
            "2",
            "--cores",
            "2,4",
            "--per-point",
            "4",
            "--fractions",
            "0.1,0.3",
            "--seed",
            "9",
        ]))
        .unwrap();
        assert!(out.contains("C_off/vol"), "{out}");
        assert!(out.contains("result cache"), "{out}");
        assert!(out.contains("worker 0"), "{out}");
        assert!(out.contains("worker 1"), "{out}");
    }

    #[test]
    fn submit_against_a_live_daemon_matches_engine_sweep() {
        let server = hetrta_serve::Server::bind(hetrta_serve::ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            ..Default::default()
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        let daemon = std::thread::spawn(move || server.run().unwrap());

        let shape = [
            "--cores",
            "2",
            "--per-point",
            "4",
            "--fractions",
            "0.1,0.3",
            "--seed",
            "5",
            "--csv",
        ];
        let mut local_args = args(&["engine", "sweep", "--threads", "2"]);
        local_args.extend(shape.iter().map(|s| (*s).to_owned()));
        let mut remote_args = args(&["submit", "--addr", &addr]);
        remote_args.extend(shape.iter().map(|s| (*s).to_owned()));
        let local = run(&local_args).unwrap();
        let remote = run(&remote_args).unwrap();
        // Same flags, same CSV cell block: the daemon path is bitwise
        // the local engine path.
        let cells = |text: &str| {
            text.lines()
                .take_while(|l| !l.is_empty())
                .map(String::from)
                .collect::<Vec<_>>()
        };
        assert_eq!(cells(&local), cells(&remote));
        assert!(remote.contains("remote: 8 jobs"), "{remote}");

        let stats = run(&args(&["submit", "--addr", &addr, "--stats"])).unwrap();
        assert!(stats.contains("serve.tenant.cli.completed"), "{stats}");

        let bye = run(&args(&["submit", "--addr", &addr, "--shutdown"])).unwrap();
        assert!(bye.contains("draining"), "{bye}");
        daemon.join().unwrap();
    }

    #[test]
    fn engine_sweep_shard_runs_its_slice_and_conflicts_are_table_driven() {
        // 2 cores × 2 fractions × 4 per point = 8 jobs; shard 0/2 owns
        // the even expansion indices.
        let out = run(&args(&[
            "engine",
            "sweep",
            "--threads",
            "1",
            "--cores",
            "2",
            "--per-point",
            "4",
            "--fractions",
            "0.1,0.3",
            "--seed",
            "9",
            "--shard",
            "0/2",
        ]))
        .unwrap();
        assert!(out.contains("shard 0/2: ran 4 of 8 jobs"), "{out}");

        // Conflict rules come from the FlagSpec table, not handler code.
        for bad in [
            ["--workers", "2", "--shard", "0/2"],
            ["--workers", "2", "--progress", ""],
        ] {
            let mut argv = args(&["engine", "sweep"]);
            argv.extend(
                bad.iter()
                    .filter(|s| !s.is_empty())
                    .map(|s| (*s).to_owned()),
            );
            let err = run(&argv).unwrap_err();
            assert!(err.contains("conflicts with"), "{err}");
        }
        let err = run(&args(&["engine", "sweep", "--shard", "2/2"])).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn engine_sweep_single_thread_matches_parallel() {
        let sweep = |threads: &str| {
            run(&args(&[
                "engine",
                "sweep",
                "--threads",
                threads,
                "--cores",
                "2",
                "--per-point",
                "6",
                "--fractions",
                "0.2,0.4",
                "--seed",
                "11",
                "--csv",
            ]))
            .unwrap()
        };
        let cells = |text: String| {
            text.lines()
                .take_while(|l| !l.is_empty())
                .map(String::from)
                .collect::<Vec<_>>()
        };
        assert_eq!(cells(sweep("1")), cells(sweep("3")));
    }

    #[test]
    fn engine_sweep_acceptance_mode() {
        let out = run(&args(&[
            "engine",
            "sweep",
            "--threads",
            "2",
            "--cores",
            "2",
            "--per-point",
            "4",
            "--utils",
            "0.2,0.8",
            "--n-tasks",
            "3",
            "--seed",
            "5",
        ]))
        .unwrap();
        assert!(out.contains("GFP-hom"), "{out}");
        assert!(out.contains("U/m"), "{out}");
        assert!(out.contains("engine: 8 jobs"), "{out}");
    }

    #[test]
    fn engine_sweep_conditional_mode() {
        let out = run(&args(&[
            "engine",
            "sweep",
            "--threads",
            "2",
            "--cores",
            "2",
            "--per-point",
            "6",
            "--cond-shares",
            "0.2,0.4",
            "--realization-cap",
            "512",
        ]))
        .unwrap();
        assert!(out.contains("flat-vs-aware"), "{out}");
        assert!(out.contains("p_cond"), "{out}");
        assert!(out.contains("engine: 12 jobs"), "{out}");
    }

    #[test]
    fn engine_sweep_suspend_analysis() {
        let out = run(&args(&[
            "engine",
            "sweep",
            "--threads",
            "1",
            "--cores",
            "2",
            "--per-point",
            "3",
            "--fractions",
            "0.2",
            "--analyses",
            "suspend",
            "--explore-seeds",
            "4",
        ]))
        .unwrap();
        assert!(out.contains("naive(!)"), "{out}");
        assert!(out.contains("violations"), "{out}");
    }

    #[test]
    fn engine_sweep_sampled_and_anytime_analyses() {
        let sweep = |csv: bool| {
            let mut argv = vec![
                "engine",
                "sweep",
                "--threads",
                "1",
                "--cores",
                "2",
                "--per-point",
                "3",
                "--fractions",
                "0.2",
                "--analyses",
                "sampled,anytime",
                "--sample-budget",
                "8",
                "--sample-seed",
                "7",
                "--exact-budget",
                "5000",
            ];
            if csv {
                argv.push("--csv");
            }
            run(&args(&argv)).unwrap()
        };
        let table = sweep(false);
        assert!(table.contains("mean-mk"), "{table}");
        assert!(table.contains("±CI"), "{table}");
        assert!(table.contains("optimal"), "{table}");
        let csv = sweep(true);
        assert!(csv.contains("sampled_mean"), "{csv}");
        assert!(csv.contains("anytime_upper"), "{csv}");
        // 3 jobs × 8 samples land in the one cell.
        let data = csv.lines().nth(1).unwrap();
        let cols: Vec<&str> = data.split(',').collect();
        assert_eq!(cols[cols.len() - 4], "24", "sampled_total in {data}");
        // Same seed and budget ⇒ bitwise-identical report on a rerun
        // (the engine footer carries wall time, so compare the tables).
        let report = |s: &str| s.split("engine:").next().unwrap().to_owned();
        assert_eq!(report(&table), report(&sweep(false)));
    }

    #[test]
    fn engine_sweep_accuracy_analyses() {
        let out = run(&args(&[
            "engine",
            "sweep",
            "--threads",
            "2",
            "--cores",
            "2",
            "--per-point",
            "3",
            "--fractions",
            "0.25",
            "--analyses",
            "exact,hom,het",
            "--csv",
        ]))
        .unwrap();
        assert!(out.contains("hom_increment"), "{out}");
        let data_line = out.lines().nth(1).unwrap();
        assert!(!data_line.is_empty(), "{out}");
    }

    #[test]
    fn engine_sweep_rejects_bad_flags() {
        assert!(run(&args(&["engine"])).unwrap_err().contains("subcommand"));
        assert!(run(&args(&["engine", "frob"]))
            .unwrap_err()
            .contains("unknown engine"));
        assert!(run(&args(&["engine", "sweep", "--threads", "x"]))
            .unwrap_err()
            .contains("invalid thread count"));
        assert!(run(&args(&["engine", "sweep", "--analyses", "zig"]))
            .unwrap_err()
            .contains("unknown analysis"));
        assert!(run(&args(&[
            "engine",
            "sweep",
            "--fractions",
            "0.1",
            "--utils",
            "0.5"
        ]))
        .unwrap_err()
        .contains("not both"));
        assert!(run(&args(&[
            "engine",
            "sweep",
            "--cond-shares",
            "0.2",
            "--utils",
            "0.5"
        ]))
        .unwrap_err()
        .contains("not both"));
        assert!(run(&args(&["engine", "sweep", "--preset", "giant"]))
            .unwrap_err()
            .contains("unknown preset"));
        // Grid/analysis conflicts are decided by the registry (each key
        // declares its input kind), and the error names the keys that fit.
        let err = run(&args(&[
            "engine",
            "sweep",
            "--utils",
            "0.5",
            "--analyses",
            "hom",
        ]))
        .unwrap_err();
        assert!(err.contains("`hom` expects a task"), "{err}");
        assert!(err.contains("produces a task set"), "{err}");
        assert!(err.contains("acceptance"), "{err}");
        let err = run(&args(&[
            "engine",
            "sweep",
            "--cond-shares",
            "0.2",
            "--analyses",
            "het",
        ]))
        .unwrap_err();
        assert!(err.contains("`het` expects a task"), "{err}");
        assert!(err.contains("conditional expression"), "{err}");
        assert!(err.contains("cond"), "{err}");
        assert!(run(&args(&[
            "engine", "sweep", "--utils", "0.5", "--preset", "large"
        ]))
        .unwrap_err()
        .contains("fraction sweeps"));
        assert!(run(&args(&["engine", "sweep", "--n-tasks", "3"]))
            .unwrap_err()
            .contains("utilization sweeps"));
        // Fraction-only knobs are rejected (not dropped) on other grids.
        assert!(run(&args(&[
            "engine",
            "sweep",
            "--utils",
            "0.5",
            "--explore-seeds",
            "5"
        ]))
        .unwrap_err()
        .contains("fraction sweeps"));
        assert!(run(&args(&[
            "engine",
            "sweep",
            "--cond-shares",
            "0.2",
            "--sim-transformed"
        ]))
        .unwrap_err()
        .contains("fraction sweeps"));
        assert!(run(&args(&[
            "engine",
            "sweep",
            "--utils",
            "0.5",
            "--realization-cap",
            "9"
        ]))
        .unwrap_err()
        .contains("conditional sweeps"));
        assert!(run(&args(&[
            "engine",
            "sweep",
            "--utils",
            "0.5",
            "--sample-budget",
            "8"
        ]))
        .unwrap_err()
        .contains("fraction sweeps"));
        assert!(run(&args(&[
            "engine",
            "sweep",
            "--fractions",
            "0.2",
            "--sample-budget",
            "0"
        ]))
        .unwrap_err()
        .contains("sample budget"));
    }

    #[test]
    fn analyses_flag_accepts_every_registry_key_error_lists_them() {
        // Unknown keys list every valid key, so the error is self-serving.
        let err = run(&args(&["engine", "sweep", "--analyses", "zig"])).unwrap_err();
        for key in registry_keys() {
            assert!(err.contains(&key), "`{key}` missing from: {err}");
        }
    }

    #[test]
    fn explicit_analyses_work_on_every_grid_kind() {
        // Selecting the grid's own analysis explicitly is no longer an
        // error: validity comes from the registry's input kinds.
        let utils = run(&args(&[
            "engine",
            "sweep",
            "--cores",
            "2",
            "--per-point",
            "2",
            "--utils",
            "0.5",
            "--analyses",
            "acceptance",
        ]))
        .unwrap();
        assert!(utils.contains("GFP-hom"), "{utils}");
        let cond = run(&args(&[
            "engine",
            "sweep",
            "--cores",
            "2",
            "--per-point",
            "2",
            "--cond-shares",
            "0.2",
            "--analyses",
            "cond",
        ]))
        .unwrap();
        assert!(cond.contains("flat-vs-aware"), "{cond}");
    }

    #[test]
    fn sweep_help_lists_every_registry_key() {
        // The --analyses help line is generated from the registry.
        let help = run(&args(&["engine", "sweep", "--help"])).unwrap();
        for key in registry_keys() {
            assert!(help.contains(&key), "`{key}` missing from:\n{help}");
        }
        assert!(help.contains("--cache-dir"), "{help}");
        assert!(help.contains("--progress"), "{help}");
    }

    #[test]
    fn cache_dir_persists_results_across_engine_processes() {
        let dir = std::env::temp_dir().join(format!("hetrta-cli-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let sweep = || {
            run(&args(&[
                "engine",
                "sweep",
                "--threads",
                "2",
                "--cores",
                "2",
                "--per-point",
                "4",
                "--fractions",
                "0.1,0.3",
                "--seed",
                "9",
                "--cache-dir",
                dir.to_str().unwrap(),
            ]))
            .unwrap()
        };
        let cold = sweep();
        assert!(cold.contains("disk cache"), "{cold}");
        // Each CLI invocation builds a fresh engine: the second one can
        // only be warm through the disk layer.
        let warm = sweep();
        assert!(warm.contains("8 jobs fully cached"), "{warm}");
        assert!(
            warm.contains("0 misses") || warm.contains("(100.0% hit rate)"),
            "warm run must not recompute: {warm}"
        );
        // The cells themselves are identical.
        let cells = |text: &str| {
            text.lines()
                .take_while(|l| !l.starts_with("engine:"))
                .map(String::from)
                .collect::<Vec<_>>()
        };
        assert_eq!(cells(&cold), cells(&warm));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn progress_flag_streams_without_disturbing_the_output() {
        let base = args(&[
            "engine",
            "sweep",
            "--threads",
            "2",
            "--cores",
            "2",
            "--per-point",
            "4",
            "--fractions",
            "0.1,0.3",
            "--seed",
            "9",
            "--csv",
        ]);
        let quiet = run(&base).unwrap();
        let mut progress = base.clone();
        progress.push("--progress".into());
        let streamed = run(&progress).unwrap();
        // Progress renders to stderr; stdout's cells are untouched.
        let cells = |text: &str| {
            text.lines()
                .take_while(|l| !l.is_empty())
                .map(String::from)
                .collect::<Vec<_>>()
        };
        assert_eq!(cells(&quiet), cells(&streamed));
    }

    #[test]
    fn engine_sweep_without_het_has_no_infinite_improvement() {
        let out = run(&args(&[
            "engine",
            "sweep",
            "--threads",
            "1",
            "--cores",
            "2",
            "--fractions",
            "0.2",
            "--per-point",
            "2",
            "--analyses",
            "sim",
            "--csv",
        ]))
        .unwrap();
        assert!(!out.contains("inf"), "{out}");
        assert!(out.contains("mean_sim_makespan"), "{out}");
    }

    #[test]
    fn sim_transformed_flag_fills_the_transformed_column() {
        let base = args(&[
            "engine",
            "sweep",
            "--threads",
            "1",
            "--cores",
            "2",
            "--fractions",
            "0.3",
            "--per-point",
            "2",
            "--analyses",
            "sim",
            "--csv",
        ]);
        let without = run(&base).unwrap();
        let mut with = base.clone();
        with.push("--sim-transformed".into());
        let with = run(&with).unwrap();
        let column = |text: &str, name: &str| {
            let header: Vec<&str> = text.lines().next().unwrap().split(',').collect();
            let idx = header.iter().position(|&h| h == name).unwrap();
            text.lines()
                .nth(1)
                .unwrap()
                .split(',')
                .nth(idx)
                .unwrap()
                .to_owned()
        };
        assert!(column(&without, "mean_sim_transformed").is_empty());
        assert!(!column(&with, "mean_sim_transformed").is_empty());
    }

    #[test]
    fn example_command_roundtrips() {
        let out = run(&args(&["example"])).unwrap();
        let parsed = hetrta_dag::io::parse_task(&out).unwrap();
        assert_eq!(parsed.task.dag().node_count(), 6);
    }

    #[test]
    fn sched_reports_both_models() {
        let path = write_example();
        let p = path.to_str().to_owned();
        let out = run(&args(&["sched", &p, &p, "-m", "2"])).unwrap();
        assert!(out.contains("2 tasks"));
        assert!(out.contains("homogeneous model"));
        assert!(out.contains("heterogeneous model"));
        assert!(out.contains("task 0"));
        let edf = run(&args(&["sched", &p, "-m", "4", "--edf"])).unwrap();
        assert!(edf.contains("global EDF"));
        let shared = run(&args(&["sched", &p, &p, "-m", "2", "--shared-device"])).unwrap();
        assert!(shared.contains("shared FIFO"));
    }

    #[test]
    fn baselines_prints_all_bounds() {
        let path = write_example();
        let out = run(&args(&["baselines", path.to_str(), "-m", "2"])).unwrap();
        assert!(out.contains("oblivious"));
        // Figure 1 numbers: oblivious 13, naive 11, R_het~ 12.
        assert!(out.contains("13.00"));
        assert!(out.contains("11.00"));
        assert!(out.contains("12.00"));
    }

    fn write_hcond() -> tempfile::TempPath {
        let text = "pre(4); if { par { kernel(26) | edge(11) | flow(9) } | soft(30) }; fuse(3)";
        let mut f = tempfile::Builder::new()
            .suffix(".hcond")
            .tempfile()
            .unwrap();
        std::io::Write::write_all(&mut f, text.as_bytes()).unwrap();
        f.into_temp_path()
    }

    #[test]
    fn cond_reports_bounds() {
        let path = write_hcond();
        let out = run(&args(&["cond", path.to_str(), "-m", "2"])).unwrap();
        assert!(out.contains("2 realizations"));
        assert!(out.contains("W* = 53"));
        assert!(out.contains("cond-aware"));
        let het = run(&args(&[
            "cond",
            path.to_str(),
            "-m",
            "2",
            "--offload",
            "kernel",
        ]))
        .unwrap();
        assert!(het.contains("het (offloaded)"));
        assert!(het.contains("37.00"));
    }

    #[test]
    fn cond_errors_are_positioned() {
        let mut f = tempfile::Builder::new()
            .suffix(".hcond")
            .tempfile()
            .unwrap();
        std::io::Write::write_all(&mut f, b"a(1);\nb(?)").unwrap();
        let path = f.into_temp_path();
        let err = run(&args(&["cond", path.to_str()])).unwrap_err();
        assert!(err.contains(":2:"), "{err}");
        let path2 = write_hcond();
        let err = run(&args(&["cond", path2.to_str(), "--offload", "nope"])).unwrap_err();
        assert!(err.contains("nope"));
    }

    #[test]
    fn sched_rejects_homogeneous_and_missing_files() {
        assert!(run(&args(&["sched", "-m", "2"]))
            .unwrap_err()
            .contains("no task files"));
        assert!(run(&args(&["baselines"]))
            .unwrap_err()
            .contains("missing task file"));
    }

    #[test]
    fn errors_are_informative() {
        assert!(run(&args(&["frobnicate"]))
            .unwrap_err()
            .contains("unknown command"));
        assert!(run(&[]).unwrap_err().contains("missing command"));
        assert!(run(&args(&["analyze"]))
            .unwrap_err()
            .contains("missing task file"));
        assert!(run(&args(&["analyze", "/nonexistent/x.hdag"]))
            .unwrap_err()
            .contains("cannot read"));
        let path = write_example();
        assert!(
            run(&args(&["simulate", path.to_str(), "--policy", "zigzag"]))
                .unwrap_err()
                .contains("unknown policy")
        );
        assert!(run(&args(&["analyze", path.to_str(), "-m", "x"]))
            .unwrap_err()
            .contains("invalid core count"));
    }

    #[test]
    fn unknown_flags_are_rejected_with_the_valid_set() {
        let path = write_example();
        let err = run(&args(&["analyze", path.to_str(), "--frobnicate"])).unwrap_err();
        assert!(err.contains("unknown flag `--frobnicate`"), "{err}");
        assert!(err.contains("-m"), "{err}");
        let err = run(&args(&["simulate", path.to_str(), "--policy"])).unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
    }

    #[test]
    fn global_help_lists_every_command() {
        let help = run(&args(&["help"])).unwrap();
        for command in COMMANDS {
            assert!(help.contains(command.name), "`{}` missing", command.name);
        }
        assert_eq!(help, run(&args(&["--help"])).unwrap());
        let usage = usage();
        for command in COMMANDS {
            assert!(usage.contains(command.name), "`{}` missing", command.name);
        }
    }

    #[test]
    fn per_command_help_is_generated_from_the_spec() {
        let analyze_help = run(&args(&["analyze", "--help"])).unwrap();
        assert_eq!(analyze_help, run(&args(&["help", "analyze"])).unwrap());
        let sweep_help = run(&args(&["engine", "sweep", "--help"])).unwrap();
        assert_eq!(sweep_help, run(&args(&["help", "engine sweep"])).unwrap());
        // A single-member family resolves by its family name too.
        assert_eq!(sweep_help, run(&args(&["help", "engine"])).unwrap());
        // --help short-circuits even with other flags present.
        assert_eq!(
            sweep_help,
            run(&args(&["engine", "sweep", "--cores", "2", "--help"])).unwrap()
        );
        assert_eq!(sweep_help, run(&args(&["engine", "--help"])).unwrap());
        for flag in ["--analyses", "--cond-shares", "--sim-transformed", "--csv"] {
            assert!(sweep_help.contains(flag), "`{flag}` missing:\n{sweep_help}");
        }
    }

    /// Golden rendering of a generated help screen: pins the exact shape
    /// the spec table produces.
    #[test]
    fn analyze_help_golden() {
        let expected = "\
hetrta analyze — R_hom/R_het bounds, scenario and schedulability per core count

usage:
  hetrta analyze <task.hdag> [-m CORES[,CORES...]]

flags:
  -m CORES[,CORES...]  host core counts (default 2,4,8,16; single-platform commands use the first)
";
        assert_eq!(run(&args(&["analyze", "--help"])).unwrap(), expected);
    }

    #[test]
    fn usage_golden_first_lines() {
        let text = usage();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("usage:"));
        assert_eq!(
            lines.next(),
            Some("  hetrta analyze <task.hdag> [-m CORES[,CORES...]]")
        );
    }
}
