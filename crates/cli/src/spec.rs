//! Declarative command and flag specifications.
//!
//! Every subcommand is one [`CommandSpec`] row in a table: name, positional
//! synopsis, one-line help, flag specs, handler. Dispatch, usage text,
//! per-command `--help` screens, unknown-command and unknown-flag errors
//! are all *generated* from the table — no hand-rolled parsing per
//! command.

use std::fmt::Write as _;

/// One flag a command accepts.
#[derive(Debug, Clone, Copy)]
pub struct FlagSpec {
    /// The literal flag token (`"-m"`, `"--policy"`).
    pub name: &'static str,
    /// `Some(placeholder)` when the flag consumes a value (shown in help
    /// as `--flag PLACEHOLDER`); `None` for boolean switches.
    pub value: Option<&'static str>,
    /// One-line description (the fallback when `dynamic_help` is unset).
    pub help: &'static str,
    /// Generates the help line at render time — for flags whose
    /// documentation is derived from runtime state (e.g. `--analyses`
    /// listing the keys of the `AnalysisRegistry`), so help never drifts
    /// from the registry.
    pub dynamic_help: Option<fn() -> String>,
}

impl FlagSpec {
    /// Base for struct-update literals (`..FlagSpec::DEFAULT`), so table
    /// rows only spell the fields they use and future optional fields
    /// default here instead of in every literal.
    pub const DEFAULT: FlagSpec = FlagSpec {
        name: "",
        value: None,
        help: "",
        dynamic_help: None,
    };

    /// The help line: generated when [`FlagSpec::dynamic_help`] is set,
    /// the static text otherwise.
    #[must_use]
    pub fn help_text(&self) -> String {
        match self.dynamic_help {
            Some(generate) => generate(),
            None => self.help.to_owned(),
        }
    }
}

/// One subcommand: everything needed to parse, document, and run it.
#[derive(Debug, Clone, Copy)]
pub struct CommandSpec {
    /// Command name; two-word names (`"engine sweep"`) form families.
    pub name: &'static str,
    /// Positional-argument synopsis (`"<task.hdag>"`, possibly empty).
    pub args: &'static str,
    /// One-line description for help screens.
    pub help: &'static str,
    /// The flags this command accepts.
    pub flags: &'static [FlagSpec],
    /// The implementation.
    pub handler: fn(&ParsedArgs) -> Result<String, String>,
}

impl CommandSpec {
    /// `name args [flags...]` — the one-line synopsis.
    #[must_use]
    pub fn synopsis(&self) -> String {
        let mut out = self.name.to_owned();
        if !self.args.is_empty() {
            let _ = write!(out, " {}", self.args);
        }
        for flag in self.flags {
            match flag.value {
                Some(placeholder) => {
                    let _ = write!(out, " [{} {placeholder}]", flag.name);
                }
                None => {
                    let _ = write!(out, " [{}]", flag.name);
                }
            }
        }
        out
    }

    /// The full `--help` screen of this command.
    #[must_use]
    pub fn help_screen(&self) -> String {
        let mut out = format!(
            "hetrta {} — {}\n\nusage:\n  hetrta {}\n",
            self.name,
            self.help,
            self.synopsis()
        );
        if !self.flags.is_empty() {
            out.push_str("\nflags:\n");
            let width = self
                .flags
                .iter()
                .map(|f| f.name.len() + f.value.map_or(0, |v| v.len() + 1))
                .max()
                .unwrap_or(0);
            for flag in self.flags {
                let label = match flag.value {
                    Some(placeholder) => format!("{} {placeholder}", flag.name),
                    None => flag.name.to_owned(),
                };
                let _ = writeln!(out, "  {label:<width$}  {}", flag.help_text());
            }
        }
        out
    }
}

/// Arguments of one command, parsed against its [`CommandSpec`].
#[derive(Debug, Clone)]
pub struct ParsedArgs {
    positionals: Vec<String>,
    switches: Vec<&'static str>,
    values: Vec<(&'static str, String)>,
}

impl ParsedArgs {
    /// Parses `args` against `spec`.
    ///
    /// # Errors
    ///
    /// Unknown flags (listing the command's valid flags) and flags missing
    /// their value.
    pub fn parse(spec: &CommandSpec, args: &[String]) -> Result<ParsedArgs, String> {
        let mut parsed = ParsedArgs {
            positionals: Vec::new(),
            switches: Vec::new(),
            values: Vec::new(),
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if let Some(flag) = spec.flags.iter().find(|f| f.name == arg) {
                match flag.value {
                    None => parsed.switches.push(flag.name),
                    Some(placeholder) => {
                        let value = it.next().ok_or_else(|| {
                            format!("flag `{}` needs a value ({placeholder})", flag.name)
                        })?;
                        parsed.values.push((flag.name, value.clone()));
                    }
                }
            } else if arg.starts_with('-') && arg.len() > 1 {
                let valid = spec
                    .flags
                    .iter()
                    .map(|f| f.name)
                    .collect::<Vec<_>>()
                    .join(", ");
                return Err(if valid.is_empty() {
                    format!(
                        "unknown flag `{arg}` for `{}` (no flags accepted)",
                        spec.name
                    )
                } else {
                    format!(
                        "unknown flag `{arg}` for `{}` (valid flags: {valid})",
                        spec.name
                    )
                });
            } else {
                parsed.positionals.push(arg.clone());
            }
        }
        Ok(parsed)
    }

    /// Every positional argument, in order.
    #[must_use]
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// The first positional argument, or a `missing {what} argument`
    /// error.
    ///
    /// # Errors
    ///
    /// When no positional argument was given.
    pub fn first_positional(&self, what: &str) -> Result<&str, String> {
        self.positionals
            .first()
            .map(String::as_str)
            .ok_or_else(|| format!("missing {what} argument"))
    }

    /// `true` if the boolean switch was given.
    #[must_use]
    pub fn has(&self, flag: &str) -> bool {
        self.switches.contains(&flag)
    }

    /// The value of a value flag, if given (last occurrence wins).
    #[must_use]
    pub fn value_of(&self, flag: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(name, _)| *name == flag)
            .map(|(_, value)| value.as_str())
    }

    /// Parses the value of `flag` with `parse`, or returns `default` when
    /// the flag is absent.
    ///
    /// # Errors
    ///
    /// `invalid {what} \`{value}\`` when parsing fails.
    pub fn parsed_or<T: std::str::FromStr>(
        &self,
        flag: &str,
        what: &str,
        default: T,
    ) -> Result<T, String> {
        match self.value_of(flag) {
            None => Ok(default),
            Some(raw) => raw
                .parse::<T>()
                .map_err(|_| format!("invalid {what} `{raw}`")),
        }
    }
}

/// Splits a comma-separated list into parsed items.
///
/// # Errors
///
/// `invalid {what} \`{item}\`` on the first unparseable item.
pub fn parse_list<T: std::str::FromStr>(spec: &str, what: &str) -> Result<Vec<T>, String> {
    spec.split(',')
        .map(|s| {
            s.trim()
                .parse::<T>()
                .map_err(|_| format!("invalid {what} `{s}`"))
        })
        .collect()
}

/// Generates the global usage text from the command table.
#[must_use]
pub fn usage(commands: &[CommandSpec]) -> String {
    let mut out = String::from("usage:\n");
    for command in commands {
        let _ = writeln!(out, "  hetrta {}", command.synopsis());
    }
    out.push_str("  hetrta help [COMMAND]   (or --help anywhere)");
    out
}

/// Generates the global help screen (usage plus one line per command).
#[must_use]
pub fn global_help(commands: &[CommandSpec]) -> String {
    let mut out =
        String::from("hetrta — response-time analysis of heterogeneous DAG tasks\n\ncommands:\n");
    let width = commands.iter().map(|c| c.name.len()).max().unwrap_or(0);
    for command in commands {
        let _ = writeln!(out, "  {:<width$}  {}", command.name, command.help);
    }
    out.push_str("\nrun `hetrta <command> --help` for flags and details\n");
    out
}
